/**
 * @file
 * Scenario: social-network analytics pipeline.
 *
 * The intro workloads the paper motivates — community structure and
 * influence ranking over a skewed social graph — run back to back
 * on one simulated CMP: connected components to find communities,
 * then PageRank to rank members, both under Minnow with
 * worklist-directed prefetching, with a software-Galois reference
 * run for comparison.
 *
 *   ./examples/social_network_analytics [--users=20000]
 *       [--threads=32] [--minnow=true]
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "apps/cc.hh"
#include "apps/pr.hh"
#include "base/options.hh"
#include "base/table.hh"
#include "galois/executor.hh"
#include "graph/generators.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"
#include "worklist/obim.hh"

using namespace minnow;

namespace
{

galois::RunResult
runOnce(apps::App &app, graph::CsrGraph &g, std::uint32_t threads,
        bool useMinnow, std::uint32_t lgDelta)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = threads;
    cfg.minnow.enabled = useMinnow;
    cfg.minnow.prefetchEnabled = useMinnow;
    runtime::Machine m(cfg);
    g.assignAddresses(m.alloc);
    app.reset();
    galois::RunConfig rc;
    rc.threads = threads;
    if (useMinnow)
        return minnowengine::runMinnow(m, app, lgDelta, rc);
    worklist::ObimWorklist wl(&m, lgDelta, 16, 8);
    return galois::runParallel(m, app, wl, rc);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    NodeId users = NodeId(opts.getUint("users", 20000));
    std::uint32_t threads =
        std::uint32_t(opts.getUint("threads", 32));
    bool useMinnow = opts.getBool("minnow", true);
    opts.rejectUnused();

    // A follower-style graph: power-law in and out degrees.
    graph::CsrGraph g =
        graph::powerLawGraph(users, 8.0, 0.9, 42, true);
    std::printf("social graph: %s users, %s follow edges\n\n",
                TextTable::count(g.numNodes()).c_str(),
                TextTable::count(g.numEdges()).c_str());

    // Stage 1: communities via connected components.
    apps::CcApp cc(&g, 256);
    galois::RunResult ccRun =
        runOnce(cc, g, threads, useMinnow, 6);
    std::map<NodeId, std::uint64_t> sizes;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        sizes[cc.labels()[v]] += 1;
    std::uint64_t biggest = 0;
    for (const auto &[label, n] : sizes)
        biggest = std::max(biggest, n);
    std::printf("stage 1 (components): %zu communities, largest"
                " %s users  [%s cycles, verified=%s]\n",
                sizes.size(), TextTable::count(biggest).c_str(),
                TextTable::count(ccRun.cycles).c_str(),
                ccRun.verified ? "yes" : "NO");

    // Stage 2: influence ranking via data-driven PageRank.
    apps::PrApp pr(&g, 0.85, 1e-4, 1u << 30);
    galois::RunResult prRun =
        runOnce(pr, g, threads, useMinnow, 4);
    std::vector<NodeId> order(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](NodeId a, NodeId b) {
                          return pr.ranks()[a] > pr.ranks()[b];
                      });
    std::printf("stage 2 (pagerank):  [%s cycles, verified=%s]\n"
                "top influencers:\n",
                TextTable::count(prRun.cycles).c_str(),
                prRun.verified ? "yes" : "NO");
    for (int i = 0; i < 5; ++i) {
        std::printf("  user %-8u rank %.5f  degree %u\n", order[i],
                    pr.ranks()[order[i]], g.degree(order[i]));
    }

    std::printf("\npipeline total: %s simulated cycles under %s\n",
                TextTable::count(ccRun.cycles + prRun.cycles)
                    .c_str(),
                useMinnow ? "Minnow (offload + prefetch)"
                          : "software Galois");
    return 0;
}
