/**
 * @file
 * Scenario: road-network navigation server.
 *
 * A batch of point-to-point shortest-path queries over a large
 * weighted road grid (the USA-road class input), answered by
 * delta-stepping SSSP runs on the simulated CMP. Demonstrates the
 * scheduler-choice story of Section 3.1: the same query answered
 * under OBIM, plain FIFO, and Minnow differs massively in executed
 * work, and the DIMACS I/O path for loading real road files.
 *
 *   ./examples/road_navigation [--side=120] [--queries=3]
 *       [--threads=16] [--gr=path/to/file.gr]
 */

#include <cstdio>

#include "apps/sssp.hh"
#include "base/options.hh"
#include "base/table.hh"
#include "galois/executor.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "graph/io.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"
#include "worklist/chunked.hh"
#include "worklist/obim.hh"

using namespace minnow;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::uint32_t side = std::uint32_t(opts.getUint("side", 120));
    std::uint32_t queries =
        std::uint32_t(opts.getUint("queries", 3));
    std::uint32_t threads =
        std::uint32_t(opts.getUint("threads", 16));
    std::string grPath = opts.getString("gr", "");
    opts.rejectUnused();

    // Load a real DIMACS road file when given one; otherwise
    // generate the scaled road-grid stand-in.
    graph::CsrGraph g;
    if (!grPath.empty()) {
        std::printf("loading DIMACS file %s...\n", grPath.c_str());
        g = graph::readDimacs(grPath);
    } else {
        g = graph::gridGraph(side, side, 100, 7);
    }
    graph::GraphStats gs = graph::analyzeGraph(g);
    std::printf("road network: %s junctions, %s segments,"
                " diameter ~%u hops\n\n",
                TextTable::count(gs.nodes).c_str(),
                TextTable::count(gs.edges).c_str(), gs.estDiameter);

    Rng rng(99);
    TextTable table;
    table.header({"query", "dest-dist", "obim-cycles",
                  "fifo-cycles", "minnow-pf-cycles",
                  "obim-edges", "fifo-edges"});

    for (std::uint32_t q = 0; q < queries; ++q) {
        NodeId src = NodeId(rng.below(g.numNodes()));
        NodeId dst = NodeId(rng.below(g.numNodes()));

        auto query = [&](int mode) {
            MachineConfig cfg = scaledMachine();
            cfg.numCores = threads;
            cfg.minnow.enabled = mode == 2;
            cfg.minnow.prefetchEnabled = mode == 2;
            runtime::Machine m(cfg);
            g.assignAddresses(m.alloc);
            apps::SsspApp app(&g, src, false, 1u << 30, "sssp");
            galois::RunConfig rc;
            rc.threads = threads;
            galois::RunResult r;
            if (mode == 0) {
                worklist::ObimWorklist wl(&m, 4, 16, 8);
                r = galois::runParallel(m, app, wl, rc);
            } else if (mode == 1) {
                worklist::ChunkedWorklist wl(
                    &m, worklist::ChunkedWorklist::Policy::Fifo,
                    32, 8);
                r = galois::runParallel(m, app, wl, rc);
            } else {
                r = minnowengine::runMinnow(m, app, 4, rc);
            }
            if (!r.verified && !r.timedOut) {
                std::fprintf(stderr,
                             "WARNING: query verification failed\n");
            }
            return std::pair<galois::RunResult, std::uint32_t>(
                r, app.distances()[dst]);
        };

        auto [obim, d0] = query(0);
        auto [fifo, d1] = query(1);
        auto [mpf, d2] = query(2);
        if (d0 != d1 || d1 != d2) {
            std::fprintf(stderr, "WARNING: query %u distance"
                                 " mismatch across schedulers\n",
                         q);
        }
        table.row({std::to_string(q),
                   d0 == apps::SsspApp::kInf ? "unreachable"
                                             : std::to_string(d0),
                   TextTable::count(obim.cycles),
                   TextTable::count(fifo.cycles),
                   TextTable::count(mpf.cycles),
                   TextTable::count(obim.workload.edgesVisited),
                   TextTable::count(fifo.workload.edgesVisited)});
    }
    table.print();
    std::printf("\nnote: FIFO visits more edges than OBIM on road"
                " networks (work inefficiency of unordered"
                " scheduling); Minnow answers fastest.\n");
    return 0;
}
