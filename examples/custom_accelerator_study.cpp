/**
 * @file
 * Scenario: architecture study with the simulator's public API.
 *
 * Uses the library the way a computer-architecture researcher
 * would: define a candidate Minnow engine configuration, sweep one
 * design parameter (prefetch credits), and read out the
 * cost/performance curve together with the area model — a
 * miniature design-space exploration built entirely on the public
 * API (Machine, runMinnow, estimateArea).
 *
 *   ./examples/custom_accelerator_study [--threads=16]
 */

#include <cstdio>

#include "apps/sssp.hh"
#include "base/options.hh"
#include "base/table.hh"
#include "galois/executor.hh"
#include "graph/generators.hh"
#include "minnow/area.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"

using namespace minnow;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::uint32_t threads =
        std::uint32_t(opts.getUint("threads", 16));
    opts.rejectUnused();

    graph::CsrGraph g = graph::randomGraph(20000, 4.0, 11);
    std::printf("design-space study: BFS on random graph (%s"
                " nodes), %u cores\n\n",
                TextTable::count(g.numNodes()).c_str(), threads);

    TextTable table;
    table.header({"credits", "cycles", "L2 MPKI", "pf-efficiency%",
                  "engine mm^2@14nm", "perf/area"});

    double bestPerfPerArea = 0;
    std::uint32_t bestCredits = 0;
    for (std::uint32_t credits : {4u, 16u, 32u, 64u, 128u}) {
        MachineConfig cfg = scaledMachine();
        cfg.numCores = threads;
        cfg.minnow.enabled = true;
        cfg.minnow.prefetchEnabled = true;
        cfg.minnow.prefetchCredits = credits;

        runtime::Machine m(cfg);
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, true, 1u << 30, "bfs");
        galois::RunConfig rc;
        rc.threads = threads;
        galois::RunResult r = minnowengine::runMinnow(m, app, 0, rc);
        minnowengine::AreaEstimate area =
            minnowengine::estimateArea(cfg);

        double eff =
            r.mem.prefetchFills
                ? 100.0 * double(r.mem.prefetchUsed) /
                      double(r.mem.prefetchFills)
                : 0.0;
        double perfPerArea =
            r.cycles ? 1e9 / (double(r.cycles) * area.totalMm2At14)
                     : 0;
        if (perfPerArea > bestPerfPerArea) {
            bestPerfPerArea = perfPerArea;
            bestCredits = credits;
        }
        table.row({std::to_string(credits),
                   TextTable::count(r.cycles),
                   TextTable::num(r.l2Mpki, 1),
                   TextTable::num(eff, 1),
                   TextTable::num(area.totalMm2At14, 4),
                   TextTable::num(perfPerArea, 2)});
    }
    table.print();
    std::printf("\nbest perf/area at %u credits — the credit system"
                " costs no area, so the knee of the MPKI curve"
                " decides.\n",
                bestCredits);
    return 0;
}
