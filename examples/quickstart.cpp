/**
 * @file
 * Quickstart: the paper's Fig. 1 scenario end to end.
 *
 * Builds a weighted road-style grid, runs SSSP delta-stepping three
 * ways on a simulated 16-core machine — software Galois OBIM,
 * Minnow offload, and Minnow with worklist-directed prefetching —
 * verifies each against Dijkstra, and prints the cycle counts and
 * cache behaviour side by side.
 *
 *   ./examples/quickstart [--threads=16] [--side=100] [--seed=1]
 */

#include <cstdio>

#include "apps/sssp.hh"
#include "base/options.hh"
#include "base/table.hh"
#include "galois/executor.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "minnow/minnow_system.hh"
#include "runtime/machine.hh"
#include "worklist/obim.hh"

using namespace minnow;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::uint32_t threads =
        std::uint32_t(opts.getUint("threads", 16));
    std::uint32_t side = std::uint32_t(opts.getUint("side", 100));
    std::uint64_t seed = opts.getUint("seed", 1);
    opts.rejectUnused();

    // 1. Build the input graph: a weighted grid, the road-network
    //    class that makes SSSP priority-sensitive.
    graph::CsrGraph g = graph::gridGraph(side, side, 100, seed);
    graph::GraphStats gs = graph::analyzeGraph(g);
    std::printf("input: %ux%u grid, %s nodes, %s edges, diameter"
                " ~%u\n\n",
                side, side, TextTable::count(gs.nodes).c_str(),
                TextTable::count(gs.edges).c_str(), gs.estDiameter);

    TextTable table;
    table.header({"config", "cycles", "L2 MPKI", "tasks",
                  "verified"});

    auto report = [&](const char *label,
                      const galois::RunResult &r) {
        table.row({label, TextTable::count(r.cycles),
                   TextTable::num(r.l2Mpki, 1),
                   TextTable::count(r.tasks),
                   r.verified ? "yes" : "NO"});
    };

    // 2. Software baseline: Galois-style OBIM priority worklist.
    {
        MachineConfig cfg = scaledMachine();
        cfg.numCores = threads;
        runtime::Machine m(cfg);
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
        worklist::ObimWorklist wl(&m, 4, 16, 8);
        galois::RunConfig rc;
        rc.threads = threads;
        report("galois-obim", galois::runParallel(m, app, wl, rc));
    }

    // 3. Minnow: worklist scheduling offloaded to per-core engines.
    {
        MachineConfig cfg = scaledMachine();
        cfg.numCores = threads;
        cfg.minnow.enabled = true;
        runtime::Machine m(cfg);
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
        galois::RunConfig rc;
        rc.threads = threads;
        report("minnow",
               minnowengine::runMinnow(m, app, 4, rc));
    }

    // 4. Minnow + worklist-directed prefetching: the engines also
    //    prefetch each scheduled task's node/edge/destination data
    //    into the L2, throttled by 32 cacheline credits.
    {
        MachineConfig cfg = scaledMachine();
        cfg.numCores = threads;
        cfg.minnow.enabled = true;
        cfg.minnow.prefetchEnabled = true;
        runtime::Machine m(cfg);
        g.assignAddresses(m.alloc);
        apps::SsspApp app(&g, 0, false, 1u << 30, "sssp");
        galois::RunConfig rc;
        rc.threads = threads;
        minnowengine::EngineStats es;
        galois::RunResult r =
            minnowengine::runMinnow(m, app, 4, rc, &es);
        report("minnow+prefetch", r);
        std::printf("prefetch: %s fills, %.1f%% used before"
                    " eviction\n",
                    TextTable::count(r.mem.prefetchFills).c_str(),
                    r.mem.prefetchFills
                        ? 100.0 * double(r.mem.prefetchUsed) /
                              double(r.mem.prefetchFills)
                        : 0.0);
    }

    std::printf("\n");
    table.print();
    return 0;
}
