/**
 * @file
 * Graph utility: generate any of the library's synthetic graph
 * classes, convert between formats (DIMACS .gr, edge list, binary
 * CSR), and print Table-1-style statistics. Useful for preparing
 * inputs once and replaying benches on them, and for exporting our
 * generated stand-ins for inspection by other tools.
 *
 *   graphgen --kind=grid --side=256 --out=road.gr
 *   graphgen --kind=rmat --rmat-scale=16 --out=g500.bin
 *   graphgen --in=snap.txt --symmetrize --out=graph.bin
 *   graphgen --in=road.gr --stats
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/options.hh"
#include "base/table.hh"
#include "graph/generators.hh"
#include "graph/gstats.hh"
#include "graph/io.hh"

using namespace minnow;

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::string in = opts.getString("in", "");
    std::string out = opts.getString("out", "");
    std::string kind = opts.getString("kind", "");
    bool symmetrize = opts.getBool("symmetrize", false);
    bool stats = opts.getBool("stats", out.empty());
    std::uint64_t seed = opts.getUint("seed", 1);

    graph::CsrGraph g;
    if (!in.empty()) {
        if (endsWith(in, ".gr"))
            g = graph::readDimacs(in);
        else if (endsWith(in, ".bin"))
            g = graph::readBinary(in);
        else
            g = graph::readEdgeList(in, symmetrize);
    } else if (kind == "grid") {
        auto side = std::uint32_t(opts.getUint("side", 256));
        auto maxw = std::uint32_t(opts.getUint("max-weight", 100));
        g = graph::gridGraph(side, side, maxw, seed);
    } else if (kind == "random") {
        NodeId n = NodeId(opts.getUint("nodes", 100000));
        double d = opts.getDouble("degree", 4.0);
        g = graph::randomGraph(n, d, seed);
    } else if (kind == "rmat") {
        auto sc = std::uint32_t(opts.getUint("rmat-scale", 16));
        auto ef = std::uint32_t(opts.getUint("edge-factor", 8));
        g = graph::rmatGraph(sc, ef, seed);
    } else if (kind == "powerlaw") {
        NodeId n = NodeId(opts.getUint("nodes", 100000));
        double d = opts.getDouble("degree", 8.0);
        double a = opts.getDouble("alpha", 0.9);
        g = graph::powerLawGraph(n, d, a, seed, symmetrize);
    } else if (kind == "ws") {
        NodeId n = NodeId(opts.getUint("nodes", 100000));
        auto k = std::uint32_t(opts.getUint("k", 10));
        double beta = opts.getDouble("beta", 0.05);
        g = graph::wattsStrogatz(n, k, beta, seed);
    } else if (kind == "bipartite") {
        NodeId l = NodeId(opts.getUint("left", 60000));
        NodeId r = NodeId(opts.getUint("right", 40000));
        double d = opts.getDouble("degree", 4.0);
        double a = opts.getDouble("alpha", 0.8);
        g = graph::bipartiteGraph(l, r, d, a, seed);
    } else {
        fatal("give --in=<file> or --kind="
              "grid|random|rmat|powerlaw|ws|bipartite");
    }
    opts.rejectUnused();

    if (stats) {
        graph::GraphStats s = graph::analyzeGraph(g);
        TextTable t;
        t.header({"nodes", "edges", "avg-deg", "max-deg",
                  "est-diam", "reach(0)", "sim-bytes(32B nodes)"});
        SimAlloc alloc;
        g.assignAddresses(alloc, 32);
        t.row({TextTable::count(s.nodes), TextTable::count(s.edges),
               TextTable::num(s.avgDegree, 2),
               TextTable::count(s.maxDegree),
               TextTable::count(s.estDiameter),
               TextTable::count(s.reachableFrom0),
               TextTable::count(g.simBytes())});
        t.print();
    }
    if (!out.empty()) {
        if (endsWith(out, ".gr"))
            graph::writeDimacs(g, out);
        else if (endsWith(out, ".bin"))
            graph::writeBinary(g, out);
        else
            fatal("--out must end in .gr or .bin");
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
