/**
 * @file
 * Experiment harness: builds the seven paper workloads (Table 2)
 * over their scaled Table 1 input classes, and runs them under any
 * scheduler configuration (serial baseline, Galois software
 * worklists, Minnow with/without prefetching, BSP/GraphMat modes,
 * baseline hardware prefetchers).
 *
 * Every bench binary is a thin driver over this harness, so the
 * workload definitions and configuration names are identical across
 * all tables and figures.
 */

#ifndef MINNOW_HARNESS_WORKLOADS_HH
#define MINNOW_HARNESS_WORKLOADS_HH

#include <csignal>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "base/ckpt.hh"
#include "bsp/bsp_engine.hh"
#include "galois/executor.hh"
#include "graph/csr.hh"
#include "minnow/minnow_system.hh"
#include "sim/config.hh"

namespace minnow::harness
{

/** One benchmark workload: input graph + application + tuning. */
struct Workload
{
    std::string name;          //!< "sssp", "bfs", "g500", ...
    std::string inputDesc;     //!< generator description (Table 1).
    graph::CsrGraph graph;
    std::unique_ptr<apps::App> app;
    std::uint32_t lgDelta = 3; //!< OBIM bucket interval.
    std::uint32_t nodeBytes = 32;
    bool usesPriority = true;  //!< benefits from ordering (paper).
    double scale = 1.0;        //!< scale it was built at.
    std::uint64_t seed = 1;    //!< generator seed it was built with.
    bool warmLoaded = false;   //!< graph came from a checkpoint.
};

/** The paper's seven workloads, in Fig. 16 order. */
const std::vector<std::string> &workloadNames();

/**
 * Build one workload at the given scale factor (1.0 = the default
 * second-scale inputs; benches expose --scale).
 */
Workload makeWorkload(const std::string &name, double scale = 1.0,
                      std::uint64_t seed = 1);

/**
 * Build a workload from a warm checkpoint: validates the file
 * (CRC/version/meta) and loads the graph arrays materially instead
 * of regenerating them. Any failure — missing file, corrupt
 * sections, meta describing a different workload — warns and falls
 * back to cold generation ("warn, never wrong"); check
 * Workload::warmLoaded for which path was taken.
 */
Workload makeWorkloadWarm(const std::string &name, double scale,
                          std::uint64_t seed,
                          const std::string &ckptPath);

/**
 * The "meta" checkpoint section: which run produced the file and
 * where its resume anchor sits. kind 0 = warm boundary (taken
 * before simulated time started), 1 = rescue (mid-run anchor; a
 * restore replays deterministically to (cycle, executed) and
 * witness-validates there).
 */
struct CkptMeta
{
    std::uint8_t kind = 0;
    Cycle cycle = 0;
    std::uint64_t executed = 0;
    std::string workload;
    double scale = 1.0;
    std::uint64_t seed = 1;
    std::string config;
    std::uint32_t threads = 0;

    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(kind);
        ck.io(cycle);
        ck.io(executed);
        ck.io(workload);
        ck.io(scale);
        ck.io(seed);
        ck.io(config);
        ck.io(threads);
    }
};

/** Scheduler/hardware configurations runnable by the harness. */
enum class Config
{
    SerialRelaxed,  //!< 1 thread, atomics removed (Fig. 15 baseline).
    Obim,           //!< Galois software OBIM.
    ObimStride,     //!< OBIM + L2 stride prefetcher.
    ObimImp,        //!< OBIM + IMP prefetcher.
    Fifo,           //!< chunked FIFO.
    Lifo,           //!< chunked LIFO ("Carbon" policy, Fig. 3).
    Strict,         //!< centralized strict priority queue.
    Minnow,         //!< engines, prefetch off.
    MinnowPf,       //!< engines + worklist-directed prefetching.
    Bsp,            //!< GraphMat-like unordered BSP.
    BspBucketed,    //!< GMat*: one BSP pass per priority bucket.
};

/** Parse a config name ("obim", "minnow-pf", ...); fatal on typo. */
Config parseConfig(const std::string &name);
std::string configName(Config c);

/** Everything one run produces. */
struct ExperimentResult
{
    galois::RunResult run;
    minnowengine::EngineStats engines; //!< Minnow configs only.
    bsp::BspStats bsp;                 //!< BSP configs only.
    Cycle serialBaselineCycles = 0;    //!< when requested.
};

/** Options for one experiment run. */
struct RunSpec
{
    Config config = Config::Obim;
    std::uint32_t threads = 64;
    MachineConfig machine;      //!< defaults to scaledMachine().
    bool verify = true;
    std::uint64_t maxEvents = 400'000'000;

    /** Write a checkpoint here ("" = off); see checkpointAfter. */
    std::string checkpointOut;
    /** Restore/validate from this checkpoint ("" = off). */
    std::string checkpointIn;
    /**
     * When to save: "warmup" = at the warm boundary (right before
     * simulated time starts), or a cycle count N = a mid-run rescue
     * anchor at the first event boundary at or after cycle N.
     */
    std::string checkpointAfter = "warmup";

    /**
     * Signal-handler flag for graceful SIGINT/SIGTERM (null = off):
     * the event loop polls it and stops cleanly at an event
     * boundary; a rescue checkpoint is written when checkpointOut
     * is set.
     */
    const volatile std::sig_atomic_t *interruptFlag = nullptr;

    RunSpec() : machine(scaledMachine()) {}
};

/**
 * Run @p workload under @p spec on a fresh machine.
 * The workload's app state is reset; its graph is (re)assigned
 * simulated addresses in the new machine's address space.
 */
ExperimentResult runExperiment(Workload &workload,
                               const RunSpec &spec);

} // namespace minnow::harness

#endif // MINNOW_HARNESS_WORKLOADS_HH
