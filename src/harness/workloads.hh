/**
 * @file
 * Experiment harness: builds the seven paper workloads (Table 2)
 * over their scaled Table 1 input classes, and runs them under any
 * scheduler configuration (serial baseline, Galois software
 * worklists, Minnow with/without prefetching, BSP/GraphMat modes,
 * baseline hardware prefetchers).
 *
 * Every bench binary is a thin driver over this harness, so the
 * workload definitions and configuration names are identical across
 * all tables and figures.
 */

#ifndef MINNOW_HARNESS_WORKLOADS_HH
#define MINNOW_HARNESS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "bsp/bsp_engine.hh"
#include "galois/executor.hh"
#include "graph/csr.hh"
#include "minnow/minnow_system.hh"
#include "sim/config.hh"

namespace minnow::harness
{

/** One benchmark workload: input graph + application + tuning. */
struct Workload
{
    std::string name;          //!< "sssp", "bfs", "g500", ...
    std::string inputDesc;     //!< generator description (Table 1).
    graph::CsrGraph graph;
    std::unique_ptr<apps::App> app;
    std::uint32_t lgDelta = 3; //!< OBIM bucket interval.
    std::uint32_t nodeBytes = 32;
    bool usesPriority = true;  //!< benefits from ordering (paper).
};

/** The paper's seven workloads, in Fig. 16 order. */
const std::vector<std::string> &workloadNames();

/**
 * Build one workload at the given scale factor (1.0 = the default
 * second-scale inputs; benches expose --scale).
 */
Workload makeWorkload(const std::string &name, double scale = 1.0,
                      std::uint64_t seed = 1);

/** Scheduler/hardware configurations runnable by the harness. */
enum class Config
{
    SerialRelaxed,  //!< 1 thread, atomics removed (Fig. 15 baseline).
    Obim,           //!< Galois software OBIM.
    ObimStride,     //!< OBIM + L2 stride prefetcher.
    ObimImp,        //!< OBIM + IMP prefetcher.
    Fifo,           //!< chunked FIFO.
    Lifo,           //!< chunked LIFO ("Carbon" policy, Fig. 3).
    Strict,         //!< centralized strict priority queue.
    Minnow,         //!< engines, prefetch off.
    MinnowPf,       //!< engines + worklist-directed prefetching.
    Bsp,            //!< GraphMat-like unordered BSP.
    BspBucketed,    //!< GMat*: one BSP pass per priority bucket.
};

/** Parse a config name ("obim", "minnow-pf", ...); fatal on typo. */
Config parseConfig(const std::string &name);
std::string configName(Config c);

/** Everything one run produces. */
struct ExperimentResult
{
    galois::RunResult run;
    minnowengine::EngineStats engines; //!< Minnow configs only.
    bsp::BspStats bsp;                 //!< BSP configs only.
    Cycle serialBaselineCycles = 0;    //!< when requested.
};

/** Options for one experiment run. */
struct RunSpec
{
    Config config = Config::Obim;
    std::uint32_t threads = 64;
    MachineConfig machine;      //!< defaults to scaledMachine().
    bool verify = true;
    std::uint64_t maxEvents = 400'000'000;

    RunSpec() : machine(scaledMachine()) {}
};

/**
 * Run @p workload under @p spec on a fresh machine.
 * The workload's app state is reset; its graph is (re)assigned
 * simulated addresses in the new machine's address space.
 */
ExperimentResult runExperiment(Workload &workload,
                               const RunSpec &spec);

} // namespace minnow::harness

#endif // MINNOW_HARNESS_WORKLOADS_HH
