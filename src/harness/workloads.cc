#include "harness/workloads.hh"

#include <cmath>
#include <cstdlib>

#include "apps/bc.hh"
#include "apps/cc.hh"
#include "apps/kcore.hh"
#include "apps/mis.hh"
#include "apps/pr.hh"
#include "apps/sssp.hh"
#include "apps/tc.hh"
#include "base/logging.hh"
#include "graph/generators.hh"
#include "runtime/machine.hh"
#include "sim/checkpoint.hh"
#include "worklist/chunked.hh"
#include "worklist/obim.hh"
#include "worklist/strict_priority.hh"

namespace minnow::harness
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "sssp", "bfs", "g500", "cc", "pr", "tc", "bc"};
    return names;
}

namespace
{

NodeId
scaled(double base, double scale)
{
    double v = base * scale;
    return NodeId(std::max(64.0, v));
}

/**
 * Shared builder: when @p preload is non-null the (expensive) graph
 * generation is skipped and the preloaded arrays are adopted — the
 * warm-start path. Everything else (app construction, tuning) is
 * identical, so warm and cold workloads behave the same.
 */
Workload
makeWorkloadImpl(const std::string &name, double scale,
                 std::uint64_t seed, graph::CsrGraph *preload)
{
    Workload w;
    w.name = name;
    w.scale = scale;
    w.seed = seed;
    if (preload) {
        w.graph = std::move(*preload);
        w.warmLoaded = true;
    }
    if (name == "sssp") {
        // USA-road-d.W class: high-diameter weighted grid.
        std::uint32_t side =
            std::uint32_t(std::sqrt(double(scaled(22500, scale))));
        w.inputDesc = "grid " + std::to_string(side) + "x" +
                      std::to_string(side) + " w<=100";
        if (!preload)
            w.graph = graph::gridGraph(side, side, 100, seed);
        w.lgDelta = 4; // delta ~16 for weights ~1..100.
        w.app = std::make_unique<apps::SsspApp>(
            &w.graph, 0, false, 1u << 30, "sssp");
    } else if (name == "bfs") {
        // r4-2e23 class: random avg-degree-4 "mesh".
        NodeId n = scaled(30000, scale);
        w.inputDesc = "random n=" + std::to_string(n) + " d=4";
        if (!preload)
            w.graph = graph::randomGraph(n, 4.0, seed);
        w.lgDelta = 0; // hop-count buckets.
        w.app = std::make_unique<apps::SsspApp>(
            &w.graph, 0, true, 1u << 30, "bfs");
    } else if (name == "g500") {
        // rmat16-2e22 class: Kronecker, hub-dominated.
        std::uint32_t sc = 14;
        if (scale >= 2.0)
            sc += std::uint32_t(std::log2(scale));
        w.inputDesc = "rmat scale=" + std::to_string(sc) + " ef=8";
        if (!preload)
            w.graph = graph::rmatGraph(sc, 8, seed);
        w.lgDelta = 0;
        // Task splitting: the hub holds a large share of all edges.
        w.app = std::make_unique<apps::SsspApp>(
            &w.graph, 0, true, 512, "g500");
    } else if (name == "cc") {
        // wikipedia class: skewed symmetric digraph.
        NodeId n = scaled(30000, scale);
        w.inputDesc = "powerlaw-sym n=" + std::to_string(n) +
                      " d=6";
        if (!preload)
            w.graph = graph::powerLawGraph(n, 6.0, 0.9, seed, true);
        w.lgDelta = 6; // component-id buckets.
        // Task splitting (Section 6.2.1), threshold scaled from the
        // paper's 10K edges to our input sizes.
        w.app = std::make_unique<apps::CcApp>(&w.graph, 256);
    } else if (name == "pr") {
        // wiki-Talk class: directed power-law.
        NodeId n = scaled(15000, scale);
        w.inputDesc = "powerlaw n=" + std::to_string(n) + " d=8";
        if (!preload)
            w.graph = graph::powerLawGraph(n, 8.0, 0.9, seed);
        w.lgDelta = 4; // residual-derived priorities.
        w.app = std::make_unique<apps::PrApp>(&w.graph, 0.85, 1e-4,
                                              1u << 30);
    } else if (name == "tc") {
        // com-dblp class: clustered, triangle-rich, fits in LLC.
        NodeId n = scaled(3000, scale);
        w.inputDesc = "watts-strogatz n=" + std::to_string(n) +
                      " k=10";
        if (!preload)
            w.graph = graph::wattsStrogatz(n, 10, 0.05, seed);
        w.nodeBytes = 64; // paper: TC uses 64 B nodes.
        w.usesPriority = false;
        w.app = std::make_unique<apps::TcApp>(&w.graph, 1u << 30);
    } else if (name == "bc") {
        // amazon-ratings class: bipartite, skewed.
        NodeId left = scaled(12000, scale);
        NodeId right = scaled(8000, scale);
        w.inputDesc = "bipartite " + std::to_string(left) + "+" +
                      std::to_string(right) + " d=4";
        if (!preload) {
            w.graph =
                graph::bipartiteGraph(left, right, 4.0, 0.8, seed);
        }
        w.usesPriority = false;
        w.app = std::make_unique<apps::BcApp>(&w.graph, 256);
    } else if (name == "mis") {
        // Extension workload (paper conclusion: "other classes of
        // irregular workloads"): greedy maximal independent set.
        NodeId n = scaled(25000, scale);
        w.inputDesc = "powerlaw-sym n=" + std::to_string(n) +
                      " d=6";
        if (!preload)
            w.graph = graph::powerLawGraph(n, 6.0, 0.9, seed, true);
        w.lgDelta = 6; // ascending node-id order helps releases.
        w.usesPriority = true;
        w.app = std::make_unique<apps::MisApp>(&w.graph, 256);
    } else if (name == "kcore") {
        // Extension workload: k-core peeling (k = 5) on a skewed
        // graph whose degree spread drives long peeling cascades.
        NodeId n = scaled(25000, scale);
        w.inputDesc = "powerlaw-sym n=" + std::to_string(n) +
                      " d=6, k=5";
        if (!preload)
            w.graph = graph::powerLawGraph(n, 6.0, 0.9, seed, true);
        w.usesPriority = false;
        w.app = std::make_unique<apps::KcoreApp>(&w.graph, 5, 256);
    } else {
        fatal("unknown workload '%s'", name.c_str());
    }
    return w;
}

} // anonymous namespace

Workload
makeWorkload(const std::string &name, double scale,
             std::uint64_t seed)
{
    return makeWorkloadImpl(name, scale, seed, nullptr);
}

Workload
makeWorkloadWarm(const std::string &name, double scale,
                 std::uint64_t seed, const std::string &ckptPath)
{
    // Every failure below warns and falls back to cold generation:
    // a stale or damaged checkpoint may cost time, never
    // correctness ("warn, never wrong").
    ckpt::Reader r;
    std::string err = r.openFile(ckptPath);
    if (!err.empty()) {
        warn("warm start from %s failed (%s); generating cold",
             ckptPath.c_str(), err.c_str());
        return makeWorkloadImpl(name, scale, seed, nullptr);
    }
    const ckpt::Section *ms = r.find("meta");
    if (!ms) {
        warn("checkpoint %s has no meta section; generating cold",
             ckptPath.c_str());
        return makeWorkloadImpl(name, scale, seed, nullptr);
    }
    CkptMeta meta;
    {
        ckpt::Ckpt ck =
            ckpt::Ckpt::loader(ms->bytes.data(), ms->bytes.size());
        meta.checkpoint(ck);
        if (!ck.ok()) {
            warn("checkpoint %s meta section is malformed (%s);"
                 " generating cold",
                 ckptPath.c_str(), ck.error().c_str());
            return makeWorkloadImpl(name, scale, seed, nullptr);
        }
    }
    if (meta.workload != name || meta.scale != scale ||
        meta.seed != seed) {
        warn("checkpoint %s is for %s scale=%g seed=%llu, not %s"
             " scale=%g seed=%llu; generating cold",
             ckptPath.c_str(), meta.workload.c_str(), meta.scale,
             (unsigned long long)meta.seed, name.c_str(), scale,
             (unsigned long long)seed);
        return makeWorkloadImpl(name, scale, seed, nullptr);
    }
    const ckpt::Section *gs = r.find("graph");
    if (!gs) {
        warn("checkpoint %s has no graph section; generating cold",
             ckptPath.c_str());
        return makeWorkloadImpl(name, scale, seed, nullptr);
    }
    graph::CsrGraph g;
    {
        ckpt::Ckpt ck =
            ckpt::Ckpt::loader(gs->bytes.data(), gs->bytes.size());
        g.checkpoint(ck);
        if (!ck.ok()) {
            warn("checkpoint %s graph section is malformed (%s);"
                 " generating cold",
                 ckptPath.c_str(), ck.error().c_str());
            return makeWorkloadImpl(name, scale, seed, nullptr);
        }
    }
    return makeWorkloadImpl(name, scale, seed, &g);
}

Config
parseConfig(const std::string &name)
{
    if (name == "serial")
        return Config::SerialRelaxed;
    if (name == "obim")
        return Config::Obim;
    if (name == "obim-stride")
        return Config::ObimStride;
    if (name == "obim-imp")
        return Config::ObimImp;
    if (name == "fifo")
        return Config::Fifo;
    if (name == "lifo")
        return Config::Lifo;
    if (name == "strict")
        return Config::Strict;
    if (name == "minnow")
        return Config::Minnow;
    if (name == "minnow-pf")
        return Config::MinnowPf;
    if (name == "bsp")
        return Config::Bsp;
    if (name == "bsp-bucket")
        return Config::BspBucketed;
    fatal("unknown config '%s'", name.c_str());
    return Config::Obim;
}

std::string
configName(Config c)
{
    switch (c) {
      case Config::SerialRelaxed: return "serial";
      case Config::Obim: return "obim";
      case Config::ObimStride: return "obim-stride";
      case Config::ObimImp: return "obim-imp";
      case Config::Fifo: return "fifo";
      case Config::Lifo: return "lifo";
      case Config::Strict: return "strict";
      case Config::Minnow: return "minnow";
      case Config::MinnowPf: return "minnow-pf";
      case Config::Bsp: return "bsp";
      case Config::BspBucketed: return "bsp-bucket";
    }
    return "?";
}

ExperimentResult
runExperiment(Workload &w, const RunSpec &spec)
{
    ExperimentResult out;
    MachineConfig mc = spec.machine;
    mc.numCores = std::max(mc.numCores, spec.threads);
    mc.minnow.enabled = spec.config == Config::Minnow ||
                        spec.config == Config::MinnowPf;
    mc.minnow.prefetchEnabled = spec.config == Config::MinnowPf;
    if (spec.config == Config::ObimStride)
        mc.prefetcher = PrefetcherKind::Stride;
    else if (spec.config == Config::ObimImp)
        mc.prefetcher = PrefetcherKind::Imp;

    runtime::Machine machine(mc);
    if (spec.interruptFlag)
        machine.setInterruptSource(spec.interruptFlag);
    w.graph.assignAddresses(machine.alloc, w.nodeBytes);
    if (mc.prefetcher == PrefetcherKind::Imp)
        machine.memory.setValueOracle(w.graph.makeEdgeOracle());
    w.app->reset();

    galois::RunConfig rc;
    rc.threads = spec.threads;
    rc.verify = spec.verify;
    rc.maxEvents = spec.maxEvents;

    // ---- checkpoint/restore wiring (DESIGN.md section 5i) ----
    // The harness owns the run-scoped sections the Machine cannot
    // see: the resume anchor ("meta", read live at serialize time),
    // the input graph (material on warm start) and the app state.
    // Registered unconditionally so save-run and restore-run emit
    // identical section sequences.
    std::uint8_t ckKind = 0; // 0 = warm boundary, 1 = rescue.
    machine.addCkptHook("meta", [&](ckpt::Ckpt &ck) {
        CkptMeta m;
        m.kind = ckKind;
        m.cycle = machine.eq.now();
        m.executed = machine.executedTotal();
        m.workload = w.name;
        m.scale = w.scale;
        m.seed = w.seed;
        m.config = configName(spec.config);
        m.threads = rc.threads;
        m.checkpoint(ck);
    });
    machine.addCkptHook("graph", [&](ckpt::Ckpt &ck) {
        w.graph.checkpoint(ck);
    });
    machine.addCkptHook(
        "app", [&](ckpt::Ckpt &ck) { w.app->checkpoint(ck); });

    bool isBsp = spec.config == Config::Bsp ||
                 spec.config == Config::BspBucketed;
    if (isBsp &&
        (!spec.checkpointOut.empty() || !spec.checkpointIn.empty()))
        warn("checkpointing is not supported for BSP configs;"
             " ignoring checkpoint flags");

    // Restore side: verify the file belongs to this exact machine
    // build and workload; any failure degrades to a plain cold run.
    ckpt::Reader reader;
    CkptMeta meta;
    bool restoring = false;
    if (!isBsp && !spec.checkpointIn.empty()) {
        std::string err = machine.restore(spec.checkpointIn, reader);
        if (!err.empty()) {
            warn("cannot restore %s (%s); cold-starting",
                 spec.checkpointIn.c_str(), err.c_str());
        } else if (const ckpt::Section *ms = reader.find("meta")) {
            ckpt::Ckpt ck = ckpt::Ckpt::loader(ms->bytes.data(),
                                               ms->bytes.size());
            meta.checkpoint(ck);
            std::uint32_t wantThreads =
                spec.config == Config::SerialRelaxed
                    ? 1
                    : spec.threads;
            if (!ck.ok()) {
                warn("checkpoint %s meta section is malformed (%s);"
                     " cold-starting",
                     spec.checkpointIn.c_str(), ck.error().c_str());
            } else if (meta.workload != w.name ||
                       meta.scale != w.scale ||
                       meta.seed != w.seed ||
                       meta.config != configName(spec.config) ||
                       meta.threads != wantThreads) {
                warn("checkpoint %s was taken for a different"
                     " experiment (%s/%s/%u threads);"
                     " cold-starting",
                     spec.checkpointIn.c_str(),
                     meta.workload.c_str(), meta.config.c_str(),
                     meta.threads);
            } else {
                restoring = true;
            }
        } else {
            warn("checkpoint %s has no meta section; cold-starting",
                 spec.checkpointIn.c_str());
        }
    }

    // Save side: "warmup" saves at the warm boundary; a cycle count
    // arms the one-shot stop trigger for a mid-run rescue anchor.
    bool saveOut = !isBsp && !spec.checkpointOut.empty();
    bool saveAtWarm = spec.checkpointAfter == "warmup";
    std::uint64_t saveCycle = 0;
    if (saveOut && !saveAtWarm) {
        char *end = nullptr;
        saveCycle =
            std::strtoull(spec.checkpointAfter.c_str(), &end, 10);
        fatal_if(end == spec.checkpointAfter.c_str() || *end != '\0',
                 "bad checkpoint-after '%s' (want 'warmup' or a"
                 " cycle count)",
                 spec.checkpointAfter.c_str());
    }
    // Rescue restore and timed rescue save both need the single
    // one-shot stop trigger; combining them is a driver error.
    fatal_if(restoring && meta.kind == 1 && saveOut && !saveAtWarm,
             "cannot combine checkpoint-after=<cycles> with"
             " restoring a rescue checkpoint");

    auto saveNow = [&](const char *what) {
        std::string err = machine.save(spec.checkpointOut);
        if (!err.empty())
            warn("failed to write %s checkpoint %s: %s", what,
                 spec.checkpointOut.c_str(), err.c_str());
    };
    auto witness = [&](const char *what) {
        std::vector<std::string> bad =
            machine.validateAgainst(reader);
        if (bad.empty())
            return;
        std::string names;
        for (const std::string &n : bad)
            names += (names.empty() ? "" : ", ") + n;
        warn("%s witness mismatch in section(s) %s; continuing with"
             " the replayed state",
             what, names.c_str());
    };

    rc.warmBoundaryHook = [&] {
        if (restoring && meta.kind == 0) {
            ckKind = 0;
            witness("warm-restore");
        }
        if (saveOut && saveAtWarm) {
            ckKind = 0;
            saveNow("warm");
        }
    };
    if (restoring && meta.kind == 1) {
        // Replay deterministically to the saved anchor, then prove
        // the replayed state matches the checkpoint byte-for-byte.
        rc.stopAt = true;
        rc.stopAtCycle = meta.cycle;
        rc.stopAtExec = meta.executed;
        rc.midRunHook = [&] {
            ckKind = 1;
            witness("rescue-restore");
        };
    } else if (saveOut && !saveAtWarm) {
        rc.stopAt = true;
        rc.stopAtCycle = saveCycle;
        rc.stopAtExec = 0;
        rc.midRunHook = [&] {
            ckKind = 1;
            saveNow("rescue");
        };
    }
    if (saveOut) {
        // SIGINT/SIGTERM: the executor calls this while run-scoped
        // state is still live, so the rescue file is complete.
        rc.interruptHook = [&] {
            ckKind = 1;
            saveNow("interrupt rescue");
        };
    }

    switch (spec.config) {
      case Config::SerialRelaxed: {
        rc.threads = 1;
        rc.serialRelaxed = true;
        worklist::ObimWorklist wl(&machine, w.lgDelta, 16, 1);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Obim:
      case Config::ObimStride:
      case Config::ObimImp: {
        worklist::ObimWorklist wl(&machine, w.lgDelta, 16, 8);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Fifo: {
        worklist::ChunkedWorklist wl(
            &machine, worklist::ChunkedWorklist::Policy::Fifo, 32,
            8);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Lifo: {
        worklist::ChunkedWorklist wl(
            &machine, worklist::ChunkedWorklist::Policy::Lifo, 32,
            8);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Strict: {
        worklist::StrictPriorityWorklist wl(&machine);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Minnow:
      case Config::MinnowPf: {
        out.run = minnowengine::runMinnow(machine, *w.app,
                                          w.lgDelta, rc,
                                          &out.engines);
        break;
      }
      case Config::Bsp:
      case Config::BspBucketed: {
        bsp::BspConfig bc;
        bc.threads = rc.threads;
        bc.verify = rc.verify;
        bc.maxEvents = rc.maxEvents;
        bc.bucketed = spec.config == Config::BspBucketed;
        bc.lgBucketInterval = w.lgDelta;
        out.run = bsp::runBsp(machine, *w.app, bc, &out.bsp);
        break;
      }
    }
    return out;
}

} // namespace minnow::harness
