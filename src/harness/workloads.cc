#include "harness/workloads.hh"

#include <cmath>

#include "apps/bc.hh"
#include "apps/cc.hh"
#include "apps/kcore.hh"
#include "apps/mis.hh"
#include "apps/pr.hh"
#include "apps/sssp.hh"
#include "apps/tc.hh"
#include "base/logging.hh"
#include "graph/generators.hh"
#include "runtime/machine.hh"
#include "worklist/chunked.hh"
#include "worklist/obim.hh"
#include "worklist/strict_priority.hh"

namespace minnow::harness
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "sssp", "bfs", "g500", "cc", "pr", "tc", "bc"};
    return names;
}

namespace
{

NodeId
scaled(double base, double scale)
{
    double v = base * scale;
    return NodeId(std::max(64.0, v));
}

} // anonymous namespace

Workload
makeWorkload(const std::string &name, double scale,
             std::uint64_t seed)
{
    Workload w;
    w.name = name;
    if (name == "sssp") {
        // USA-road-d.W class: high-diameter weighted grid.
        std::uint32_t side =
            std::uint32_t(std::sqrt(double(scaled(22500, scale))));
        w.inputDesc = "grid " + std::to_string(side) + "x" +
                      std::to_string(side) + " w<=100";
        w.graph = graph::gridGraph(side, side, 100, seed);
        w.lgDelta = 4; // delta ~16 for weights ~1..100.
        w.app = std::make_unique<apps::SsspApp>(
            &w.graph, 0, false, 1u << 30, "sssp");
    } else if (name == "bfs") {
        // r4-2e23 class: random avg-degree-4 "mesh".
        NodeId n = scaled(30000, scale);
        w.inputDesc = "random n=" + std::to_string(n) + " d=4";
        w.graph = graph::randomGraph(n, 4.0, seed);
        w.lgDelta = 0; // hop-count buckets.
        w.app = std::make_unique<apps::SsspApp>(
            &w.graph, 0, true, 1u << 30, "bfs");
    } else if (name == "g500") {
        // rmat16-2e22 class: Kronecker, hub-dominated.
        std::uint32_t sc = 14;
        if (scale >= 2.0)
            sc += std::uint32_t(std::log2(scale));
        w.inputDesc = "rmat scale=" + std::to_string(sc) + " ef=8";
        w.graph = graph::rmatGraph(sc, 8, seed);
        w.lgDelta = 0;
        // Task splitting: the hub holds a large share of all edges.
        w.app = std::make_unique<apps::SsspApp>(
            &w.graph, 0, true, 512, "g500");
    } else if (name == "cc") {
        // wikipedia class: skewed symmetric digraph.
        NodeId n = scaled(30000, scale);
        w.inputDesc = "powerlaw-sym n=" + std::to_string(n) +
                      " d=6";
        w.graph = graph::powerLawGraph(n, 6.0, 0.9, seed, true);
        w.lgDelta = 6; // component-id buckets.
        // Task splitting (Section 6.2.1), threshold scaled from the
        // paper's 10K edges to our input sizes.
        w.app = std::make_unique<apps::CcApp>(&w.graph, 256);
    } else if (name == "pr") {
        // wiki-Talk class: directed power-law.
        NodeId n = scaled(15000, scale);
        w.inputDesc = "powerlaw n=" + std::to_string(n) + " d=8";
        w.graph = graph::powerLawGraph(n, 8.0, 0.9, seed);
        w.lgDelta = 4; // residual-derived priorities.
        w.app = std::make_unique<apps::PrApp>(&w.graph, 0.85, 1e-4,
                                              1u << 30);
    } else if (name == "tc") {
        // com-dblp class: clustered, triangle-rich, fits in LLC.
        NodeId n = scaled(3000, scale);
        w.inputDesc = "watts-strogatz n=" + std::to_string(n) +
                      " k=10";
        w.graph = graph::wattsStrogatz(n, 10, 0.05, seed);
        w.nodeBytes = 64; // paper: TC uses 64 B nodes.
        w.usesPriority = false;
        w.app = std::make_unique<apps::TcApp>(&w.graph, 1u << 30);
    } else if (name == "bc") {
        // amazon-ratings class: bipartite, skewed.
        NodeId left = scaled(12000, scale);
        NodeId right = scaled(8000, scale);
        w.inputDesc = "bipartite " + std::to_string(left) + "+" +
                      std::to_string(right) + " d=4";
        w.graph = graph::bipartiteGraph(left, right, 4.0, 0.8, seed);
        w.usesPriority = false;
        w.app = std::make_unique<apps::BcApp>(&w.graph, 256);
    } else if (name == "mis") {
        // Extension workload (paper conclusion: "other classes of
        // irregular workloads"): greedy maximal independent set.
        NodeId n = scaled(25000, scale);
        w.inputDesc = "powerlaw-sym n=" + std::to_string(n) +
                      " d=6";
        w.graph = graph::powerLawGraph(n, 6.0, 0.9, seed, true);
        w.lgDelta = 6; // ascending node-id order helps releases.
        w.usesPriority = true;
        w.app = std::make_unique<apps::MisApp>(&w.graph, 256);
    } else if (name == "kcore") {
        // Extension workload: k-core peeling (k = 5) on a skewed
        // graph whose degree spread drives long peeling cascades.
        NodeId n = scaled(25000, scale);
        w.inputDesc = "powerlaw-sym n=" + std::to_string(n) +
                      " d=6, k=5";
        w.graph = graph::powerLawGraph(n, 6.0, 0.9, seed, true);
        w.usesPriority = false;
        w.app = std::make_unique<apps::KcoreApp>(&w.graph, 5, 256);
    } else {
        fatal("unknown workload '%s'", name.c_str());
    }
    return w;
}

Config
parseConfig(const std::string &name)
{
    if (name == "serial")
        return Config::SerialRelaxed;
    if (name == "obim")
        return Config::Obim;
    if (name == "obim-stride")
        return Config::ObimStride;
    if (name == "obim-imp")
        return Config::ObimImp;
    if (name == "fifo")
        return Config::Fifo;
    if (name == "lifo")
        return Config::Lifo;
    if (name == "strict")
        return Config::Strict;
    if (name == "minnow")
        return Config::Minnow;
    if (name == "minnow-pf")
        return Config::MinnowPf;
    if (name == "bsp")
        return Config::Bsp;
    if (name == "bsp-bucket")
        return Config::BspBucketed;
    fatal("unknown config '%s'", name.c_str());
    return Config::Obim;
}

std::string
configName(Config c)
{
    switch (c) {
      case Config::SerialRelaxed: return "serial";
      case Config::Obim: return "obim";
      case Config::ObimStride: return "obim-stride";
      case Config::ObimImp: return "obim-imp";
      case Config::Fifo: return "fifo";
      case Config::Lifo: return "lifo";
      case Config::Strict: return "strict";
      case Config::Minnow: return "minnow";
      case Config::MinnowPf: return "minnow-pf";
      case Config::Bsp: return "bsp";
      case Config::BspBucketed: return "bsp-bucket";
    }
    return "?";
}

ExperimentResult
runExperiment(Workload &w, const RunSpec &spec)
{
    ExperimentResult out;
    MachineConfig mc = spec.machine;
    mc.numCores = std::max(mc.numCores, spec.threads);
    mc.minnow.enabled = spec.config == Config::Minnow ||
                        spec.config == Config::MinnowPf;
    mc.minnow.prefetchEnabled = spec.config == Config::MinnowPf;
    if (spec.config == Config::ObimStride)
        mc.prefetcher = PrefetcherKind::Stride;
    else if (spec.config == Config::ObimImp)
        mc.prefetcher = PrefetcherKind::Imp;

    runtime::Machine machine(mc);
    w.graph.assignAddresses(machine.alloc, w.nodeBytes);
    if (mc.prefetcher == PrefetcherKind::Imp)
        machine.memory.setValueOracle(w.graph.makeEdgeOracle());
    w.app->reset();

    galois::RunConfig rc;
    rc.threads = spec.threads;
    rc.verify = spec.verify;
    rc.maxEvents = spec.maxEvents;

    switch (spec.config) {
      case Config::SerialRelaxed: {
        rc.threads = 1;
        rc.serialRelaxed = true;
        worklist::ObimWorklist wl(&machine, w.lgDelta, 16, 1);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Obim:
      case Config::ObimStride:
      case Config::ObimImp: {
        worklist::ObimWorklist wl(&machine, w.lgDelta, 16, 8);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Fifo: {
        worklist::ChunkedWorklist wl(
            &machine, worklist::ChunkedWorklist::Policy::Fifo, 32,
            8);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Lifo: {
        worklist::ChunkedWorklist wl(
            &machine, worklist::ChunkedWorklist::Policy::Lifo, 32,
            8);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Strict: {
        worklist::StrictPriorityWorklist wl(&machine);
        out.run = galois::runParallel(machine, *w.app, wl, rc);
        break;
      }
      case Config::Minnow:
      case Config::MinnowPf: {
        out.run = minnowengine::runMinnow(machine, *w.app,
                                          w.lgDelta, rc,
                                          &out.engines);
        break;
      }
      case Config::Bsp:
      case Config::BspBucketed: {
        bsp::BspConfig bc;
        bc.threads = rc.threads;
        bc.verify = rc.verify;
        bc.maxEvents = rc.maxEvents;
        bc.bucketed = spec.config == Config::BspBucketed;
        bc.lgBucketInterval = w.lgDelta;
        out.run = bsp::runBsp(machine, *w.app, bc, &out.bsp);
        break;
      }
    }
    return out;
}

} // namespace minnow::harness
