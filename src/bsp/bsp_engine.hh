/**
 * @file
 * Bulk-synchronous vertex-program engine, standing in for GraphMat
 * (Sundaram et al., VLDB'15) in the Figs. 2-3 comparisons.
 *
 * Execution model (Section 3.1): each superstep processes every
 * active vertex in parallel over static range partitions, generates
 * the next active set, hits a global barrier, and repeats until no
 * vertex is active. Unordered by construction. A "bucketed" mode
 * mirrors the GMat* kernel the GraphMat authors wrote for the paper:
 * one full engine pass per priority bucket, giving coarse priority
 * order at the cost of per-bucket sweep overhead.
 *
 * The engine reuses the simulated machine: vertices run on cores as
 * timed micro-op streams; the barrier is a real synchronization (all
 * workers reach it before the next superstep starts).
 */

#ifndef MINNOW_BSP_BSP_ENGINE_HH
#define MINNOW_BSP_BSP_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/app.hh"
#include "galois/executor.hh"
#include "runtime/machine.hh"

namespace minnow::bsp
{

/** Per-superstep statistics. */
struct BspStats
{
    std::uint64_t supersteps = 0;
    std::uint64_t vertexOps = 0;   //!< active-vertex executions.
    std::uint64_t sweepWork = 0;   //!< active-flag scan cost proxy.
};

/** Run parameters. */
struct BspConfig
{
    std::uint32_t threads = 1;
    bool verify = true;

    /**
     * GMat* mode: process only the lowest-priority-bucket vertices
     * per pass (one full engine invocation per bucket). 0 disables
     * bucketing (plain unordered GraphMat).
     */
    std::uint32_t lgBucketInterval = 0;
    bool bucketed = false;

    std::uint64_t maxEvents = 400'000'000;
};

/**
 * Execute @p app to convergence under the BSP model.
 *
 * The app's operator is reused unchanged; the engine feeds it one
 * task per active vertex per superstep and collects newly activated
 * vertices (the app's TaskSink pushes) into the next frontier.
 */
galois::RunResult runBsp(runtime::Machine &machine, apps::App &app,
                         const BspConfig &cfg,
                         BspStats *stats = nullptr);

} // namespace minnow::bsp

#endif // MINNOW_BSP_BSP_ENGINE_HH
