#include "bsp/bsp_engine.hh"

#include <algorithm>
#include <coroutine>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"

namespace minnow::bsp
{

using runtime::CoTask;
using runtime::Machine;
using runtime::PhaseGuard;
using runtime::SimContext;
using worklist::WorkItem;

namespace
{

/** Shared superstep state. */
struct BspShared
{
    std::vector<WorkItem> frontier;      //!< this superstep.
    std::vector<WorkItem> next;          //!< being generated.
    /** Dedup set and min-priority fold, keyed by task payload so
     *  split task parts survive (g500's hub tasks). */
    std::unordered_set<std::uint64_t> nextActive;
    std::unordered_map<std::uint64_t, std::int64_t> nextPrio;
    Addr flagBase = 0;                   //!< sim address of flags.
    std::uint32_t threads = 1;
    std::uint32_t arrived = 0;
    std::uint64_t supersteps = 0;
    std::uint64_t vertexOps = 0;
    std::uint64_t sweepWork = 0;
    bool bucketed = false;
    std::uint32_t lg = 0;
    bool done = false;
    std::vector<std::coroutine_handle<>> waiting;
    EventQueue *eq = nullptr;
    NodeId numNodes = 0;

    /** Deferred pool for bucketed (GMat*) mode. */
    std::vector<WorkItem> deferred;
};

/** TaskSink collecting activations into the next frontier. */
class BspSink : public apps::TaskSink
{
  public:
    explicit BspSink(BspShared *sh) : sh_(sh) {}

    CoTask<void>
    put(SimContext &ctx, WorkItem item) override
    {
        PhaseGuard guard(ctx, cpu::Phase::Worklist);
        NodeId v = apps::taskNode(item.payload);
        // Activation: test-and-set on the next-frontier flag plus
        // the message write (GraphMat's sparse-vector insert).
        ctx.compute(6);
        ctx.load(sh_->flagBase + v / 8, 0);
        if (!sh_->nextActive.count(item.payload)) {
            co_await ctx.atomicAccess(sh_->flagBase + v / 8);
            if (!sh_->nextActive.count(item.payload)) {
                sh_->nextActive.insert(item.payload);
                sh_->nextPrio[item.payload] = item.priority;
                sh_->next.push_back(item);
                co_return;
            }
        }
        // Already active: fold the priority (min).
        auto it = sh_->nextPrio.find(item.payload);
        if (it != sh_->nextPrio.end() &&
            item.priority < it->second) {
            it->second = item.priority;
        }
        co_await ctx.sync();
    }

  private:
    BspShared *sh_;
};

/** Superstep barrier; the last arriver advances the frontier. */
CoTask<void>
barrier(SimContext &ctx, BspShared &sh)
{
    struct Waiter
    {
        BspShared *sh;

        bool await_ready() const { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            sh->arrived += 1;
            if (sh->arrived < sh->threads) {
                sh->waiting.push_back(h);
                return true;
            }
            // Last arriver: advance the superstep.
            sh->arrived = 0;
            sh->supersteps += 1;
            // Fold priorities back in and swap frontiers.
            for (auto &item : sh->next)
                item.priority = sh->nextPrio[item.payload];
            sh->frontier.swap(sh->next);
            sh->next.clear();
            sh->nextActive.clear();
            sh->nextPrio.clear();
            // Bucketed (GMat*) mode: only the best bucket runs now;
            // the rest is deferred to later passes.
            if (sh->bucketed) {
                sh->frontier.insert(sh->frontier.end(),
                                    sh->deferred.begin(),
                                    sh->deferred.end());
                sh->deferred.clear();
                if (!sh->frontier.empty()) {
                    std::int64_t best =
                        sh->frontier[0].priority >> sh->lg;
                    for (const auto &it : sh->frontier) {
                        best = std::min(best,
                                        it.priority >> sh->lg);
                    }
                    auto mid = std::partition(
                        sh->frontier.begin(), sh->frontier.end(),
                        [&](const WorkItem &it) {
                            return (it.priority >> sh->lg) == best;
                        });
                    sh->deferred.assign(mid, sh->frontier.end());
                    sh->frontier.erase(mid, sh->frontier.end());
                }
            }
            if (sh->frontier.empty())
                sh->done = true;
            for (std::coroutine_handle<> w : sh->waiting)
                sh->eq->schedule(sh->eq->now(), w);
            sh->waiting.clear();
            return false; // last arriver continues immediately.
        }

        void await_resume() const {}
    };
    // The active-set sweep: GraphMat scans its sparse vectors every
    // superstep; charge a bitmap scan share per worker.
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    std::uint32_t share = std::uint32_t(
        sh.numNodes / (8 * 64 * sh.threads) + 1);
    ctx.compute(4 * share);
    ctx.cheapLoads(share);
    sh.sweepWork += share;
    co_await ctx.sync();
    co_await Waiter{&sh};
    ctx.core().idleUntil(ctx.eq().now());
}

CoTask<void>
bspWorker(SimContext &ctx, BspShared &sh, apps::App &app,
          BspSink &sink, std::uint32_t tid)
{
    for (;;) {
        // Process my static slice of the frontier.
        std::size_t n = sh.frontier.size();
        std::size_t lo = n * tid / sh.threads;
        std::size_t hi = n * (tid + 1) / sh.threads;
        for (std::size_t i = lo; i < hi; ++i) {
            ctx.core().setPhase(cpu::Phase::App);
            sh.vertexOps += 1;
            co_await app.process(ctx, sh.frontier[i], sink);
            co_await ctx.sync();
        }
        ctx.core().setPhase(cpu::Phase::Idle);
        co_await barrier(ctx, sh);
        if (sh.done)
            break;
    }
}

} // anonymous namespace

galois::RunResult
runBsp(Machine &machine, apps::App &app, const BspConfig &cfg,
       BspStats *statsOut)
{
    fatal_if(cfg.threads == 0, "need at least one worker");
    fatal_if(cfg.threads > machine.cfg.numCores,
             "%u workers > %u cores", cfg.threads,
             machine.cfg.numCores);

    machine.monitor.reset(cfg.threads);
    app.resetCounters();

    BspShared sh;
    sh.threads = cfg.threads;
    sh.eq = &machine.eq;
    sh.numNodes = app.graph().numNodes();
    sh.bucketed = cfg.bucketed;
    sh.lg = cfg.lgBucketInterval;
    sh.flagBase =
        machine.alloc.alloc("bsp.activeFlags", sh.numNodes / 8 + 64);

    // Seed the first frontier (every task part; split tasks keep
    // their slices).
    for (const WorkItem &item : app.initialWork()) {
        if (sh.nextActive.insert(item.payload).second)
            sh.frontier.push_back(item);
    }
    sh.nextActive.clear();
    if (sh.bucketed && !sh.frontier.empty()) {
        std::int64_t best = sh.frontier[0].priority >> sh.lg;
        for (const auto &it : sh.frontier)
            best = std::min(best, it.priority >> sh.lg);
        auto mid = std::partition(
            sh.frontier.begin(), sh.frontier.end(),
            [&](const WorkItem &it) {
                return (it.priority >> sh.lg) == best;
            });
        sh.deferred.assign(mid, sh.frontier.end());
        sh.frontier.erase(mid, sh.frontier.end());
    }

    std::vector<std::unique_ptr<SimContext>> contexts;
    std::vector<CoTask<void>> workers;
    BspSink sink(&sh);
    for (std::uint32_t i = 0; i < cfg.threads; ++i) {
        contexts.push_back(
            std::make_unique<SimContext>(&machine, i));
        workers.push_back(
            bspWorker(*contexts[i], sh, app, sink, i));
    }
    for (auto &w : workers)
        w.start();

    machine.runEvents(cfg.maxEvents);

    bool timedOut = false;
    for (const auto &w : workers)
        timedOut |= !w.done();
    if (timedOut) {
        warn("BSP run of %s timed out after %llu events",
             app.name().c_str(),
             (unsigned long long)cfg.maxEvents);
    }

    galois::RunResult r = galois::collectResult(
        machine, app, cfg.threads, timedOut, sh.vertexOps);
    r.tasks = sh.vertexOps;
    if (statsOut) {
        statsOut->supersteps = sh.supersteps;
        statsOut->vertexOps = sh.vertexOps;
        statsOut->sweepWork = sh.sweepWork;
    }
    if (cfg.verify && !timedOut)
        r.verified = app.verify();
    return r;
}

} // namespace minnow::bsp
