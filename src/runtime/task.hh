/**
 * @file
 * Lazily-started coroutine task type used for simulated threads.
 *
 * Simulated worker threads, Galois operators, and Minnow threadlets
 * are all C++20 coroutines returning CoTask. A CoTask is:
 *
 *  - lazy: the body does not run until the task is co_awaited (or
 *    explicitly start()ed as a root task);
 *  - composable: co_await'ing a child task uses symmetric transfer
 *    and resumes the parent when the child finishes;
 *  - owning: the handle is destroyed with the CoTask object.
 *
 * The simulation is single-host-threaded, so no synchronization is
 * needed anywhere in this machinery.
 */

#ifndef MINNOW_RUNTIME_TASK_HH
#define MINNOW_RUNTIME_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace minnow::runtime
{

template <typename T>
class CoTask;

namespace detail
{

/** On completion, transfer control back to the awaiting parent. */
template <typename Promise>
struct FinalAwaiter
{
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) const noexcept
    {
        auto &p = h.promise();
        if (p.continuation)
            return p.continuation;
        return std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase
{
    std::coroutine_handle<> continuation;

    std::suspend_always initial_suspend() noexcept { return {}; }

    void unhandled_exception() { std::terminate(); }
};

} // namespace detail

/** Coroutine task yielding a value of type T (or void). */
template <typename T = void>
class [[nodiscard]] CoTask
{
  public:
    struct promise_type : detail::PromiseBase
    {
        T value{};

        CoTask
        get_return_object()
        {
            return CoTask{
                std::coroutine_handle<promise_type>::from_promise(
                    *this)};
        }

        detail::FinalAwaiter<promise_type>
        final_suspend() noexcept
        {
            return {};
        }

        void return_value(T v) { value = std::move(v); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    CoTask() = default;
    explicit CoTask(Handle h) : handle_(h) {}
    CoTask(CoTask &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr))
    {
    }

    CoTask &
    operator=(CoTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;

    ~CoTask() { destroy(); }

    /** Start as a root task (no awaiting parent). */
    void
    start()
    {
        handle_.resume();
    }

    /** True once the body has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    bool valid() const { return bool(handle_); }

    /** Result after completion (root tasks). */
    T &result() { return handle_.promise().value; }

    // Awaiter protocol so a parent coroutine can co_await the task.
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        handle_.promise().continuation = parent;
        return handle_;
    }

    T
    await_resume()
    {
        return std::move(handle_.promise().value);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

/** Void specialization. */
template <>
class [[nodiscard]] CoTask<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        CoTask
        get_return_object()
        {
            return CoTask{
                std::coroutine_handle<promise_type>::from_promise(
                    *this)};
        }

        detail::FinalAwaiter<promise_type>
        final_suspend() noexcept
        {
            return {};
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    CoTask() = default;
    explicit CoTask(Handle h) : handle_(h) {}
    CoTask(CoTask &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr))
    {
    }

    CoTask &
    operator=(CoTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;

    ~CoTask() { destroy(); }

    void start() { handle_.resume(); }
    bool done() const { return !handle_ || handle_.done(); }
    bool valid() const { return bool(handle_); }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        handle_.promise().continuation = parent;
        return handle_;
    }

    void await_resume() {}

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

} // namespace minnow::runtime

#endif // MINNOW_RUNTIME_TASK_HH
