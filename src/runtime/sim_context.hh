/**
 * @file
 * Per-worker view of the simulated machine.
 *
 * Application operators and worklist implementations are coroutines
 * that receive a SimContext and describe their execution as a stream
 * of micro-operations. Non-blocking calls (load/store/compute/branch)
 * account timing and return immediately with completion cycles;
 * blocking calls (atomic read-modify-writes, sync points) are
 * awaitables that suspend the coroutine and resume it at the right
 * simulated cycle, which is what serializes cross-core access to
 * shared functional state.
 *
 * Functional data lives in host containers; the simulated address of
 * each structure is decoupled from its host layout (DESIGN.md §5.1),
 * which is how the paper's 32 B node / 16 B edge memory layout is
 * modelled regardless of host representation.
 */

#ifndef MINNOW_RUNTIME_SIM_CONTEXT_HH
#define MINNOW_RUNTIME_SIM_CONTEXT_HH

#include <algorithm>
#include <coroutine>

#include "cpu/ooo_core.hh"
#include "runtime/machine.hh"

namespace minnow::minnowengine
{
class MinnowEngine;
}

namespace minnow::runtime
{

/** One worker thread's handle onto the machine. */
class SimContext
{
  public:
    SimContext(Machine *machine, CoreId core)
        : machine_(machine),
          core_(machine->cores[core].get()),
          eq_(&machine->wheelFor(core)),
          id_(core)
    {
    }

    CoreId id() const { return id_; }
    Machine &machine() { return *machine_; }
    cpu::OooCore &core() { return *core_; }

    /**
     * This worker's timing wheel: its shard's wheel under --shards>1
     * (so scheduling stays on the owner shard), else the machine's
     * single queue. now() is the same on every wheel — they advance
     * in lockstep.
     */
    EventQueue &eq() { return *eq_; }
    WorkMonitor &monitor() { return machine_->monitor; }

    /**
     * Serial-baseline mode: atomicOrRelaxed() degrades to a plain
     * load+store (the paper's serial baseline is "Galois with atomics
     * removed").
     */
    bool serialMode = false;

    /** Minnow engine paired with this core (null without Minnow). */
    minnowengine::MinnowEngine *engine = nullptr;

    // ---- Non-blocking timed operations ----

    /** Issue a load; returns the value-ready cycle. */
    Cycle
    load(Addr addr, Cycle dep = 0, const cpu::LoadInfo &info = {})
    {
        return core_->load(addr, dep, info);
    }

    /** First-touch ("delinquent") load of a node/edge structure. */
    Cycle
    loadDelinquent(Addr addr, Cycle dep = 0, std::uint16_t site = 0,
                   std::uint64_t value = 0, bool hasValue = false)
    {
        cpu::LoadInfo info;
        info.site = site;
        info.value = value;
        info.hasValue = hasValue;
        info.delinquent = true;
        return core_->load(addr, dep, info);
    }

    Cycle store(Addr addr, Cycle dep = 0)
    {
        return core_->store(addr, dep);
    }

    void compute(std::uint32_t n, Cycle dep = 0)
    {
        core_->compute(n, dep);
    }

    void cheapLoads(std::uint32_t n) { core_->cheapLoads(n); }

    Cycle branch(cpu::BranchKind kind, Cycle dep)
    {
        return core_->branch(kind, dep);
    }

    /** Frontend position of this worker's core. */
    Cycle now() const { return core_->frontier(); }

    // ---- Blocking (suspending) operations ----

    /**
     * Awaitable atomic RMW. The coroutine resumes exactly at the
     * completion cycle, at which point the caller performs its
     * functional read-modify-write on host data: because resumption
     * order across cores follows simulated time, those updates are
     * linearized. In serialMode the fence/RMW cost degrades to a
     * load + store.
     */
    auto
    atomicAccess(Addr addr, Cycle dep = 0)
    {
        struct Awaiter
        {
            SimContext *ctx;
            Addr addr;
            Cycle dep;
            Cycle done = 0;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                if (ctx->serialMode) {
                    Cycle v = ctx->core_->load(addr, dep);
                    ctx->core_->store(addr, v);
                    done = v;
                } else {
                    done = ctx->core_->atomic(addr, dep);
                }
                // Without fences the completion can trail global
                // time (the frontend is not dragged forward);
                // resuming "now" is then the right semantics.
                ctx->eq().schedule(std::max(done, ctx->eq().now()),
                                   h);
            }

            Cycle await_resume() const { return done; }
        };
        return Awaiter{this, addr, dep};
    }

    /**
     * Quantum sync: suspend until global time catches up whenever
     * this core has run more than cfg.syncQuantum cycles ahead.
     * Bounds functional skew between cores.
     */
    auto
    sync()
    {
        struct Awaiter
        {
            SimContext *ctx;

            bool
            await_ready() const
            {
                return ctx->core_->frontier() <=
                       ctx->eq().now() + ctx->machine_->cfg.syncQuantum;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->eq().schedule(ctx->core_->frontier(), h);
            }

            void await_resume() const {}
        };
        return Awaiter{this};
    }

    /** Suspend until the given absolute cycle (>= now). */
    auto
    waitUntil(Cycle when)
    {
        struct Awaiter
        {
            SimContext *ctx;
            Cycle when;

            bool
            await_ready() const
            {
                return when <= ctx->eq().now();
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ctx->eq().schedule(when, h);
            }

            void await_resume() const {}
        };
        return Awaiter{this, when};
    }

  private:
    Machine *machine_;
    cpu::OooCore *core_;
    EventQueue *eq_; //!< this core's shard wheel (see eq()).
    CoreId id_;
};

/**
 * RAII phase switch for cycle attribution: worklist code runs under
 * Phase::Worklist and restores the caller's phase on scope exit
 * (coroutine frames destroy locals at co_return, so this is safe in
 * coroutines too).
 */
class PhaseGuard
{
  public:
    PhaseGuard(SimContext &ctx, cpu::Phase p)
        : core_(ctx.core()), prev_(core_.phase())
    {
        core_.setPhase(p);
    }

    ~PhaseGuard() { core_.setPhase(prev_); }

    PhaseGuard(const PhaseGuard &) = delete;
    PhaseGuard &operator=(const PhaseGuard &) = delete;

  private:
    cpu::OooCore &core_;
    cpu::Phase prev_;
};

} // namespace minnow::runtime

#endif // MINNOW_RUNTIME_SIM_CONTEXT_HH
