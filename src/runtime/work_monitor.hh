/**
 * @file
 * Global work accounting and distributed-termination detection.
 *
 * Every scheduler implementation (software worklists and Minnow
 * engines alike) reports queued-task deltas here. Two counts are
 * kept:
 *
 *  - pending:   every queued task anywhere, including tasks sitting
 *               in a Minnow engine's local queue. Termination is
 *               declared when all workers are idle and pending == 0 —
 *               the condition the paper's minnow_done instruction
 *               tests.
 *  - stealable: tasks a generic worker could obtain by popping or
 *               stealing (i.e. not bound to one core's local queue).
 *               Parked workers are only woken for stealable work;
 *               this avoids livelock when the only remaining tasks
 *               are private to other cores.
 *
 * Workers blocked inside a Minnow dequeue don't park here; their
 * engine resumes them. They still report idleness via enterIdle /
 * exitIdle so termination accounts for them, and engines subscribe a
 * termination callback to release blocked cores with a null task.
 */

#ifndef MINNOW_RUNTIME_WORK_MONITOR_HH
#define MINNOW_RUNTIME_WORK_MONITOR_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "base/ckpt.hh"
#include "base/logging.hh"
#include "base/trace.hh"
#include "base/types.hh"
#include "sim/event_queue.hh"

namespace minnow::runtime
{

/** Tracks pending work and idle workers; wakes or terminates them. */
class WorkMonitor
{
  public:
    WorkMonitor(EventQueue *eq, std::uint32_t workers)
        : eq_(eq), workers_(workers)
    {
    }

    /**
     * Publish @p n queued tasks. @p stealable tasks are reachable by
     * any worker; non-stealable ones live in a core-private queue.
     */
    void
    addWork(std::uint64_t n, bool stealable = true)
    {
        pending_ += n;
        if (stealable) {
            stealable_ += n;
            wake(n);
        }
    }

    /** @p n queued tasks were handed to workers for execution. */
    void
    takeWork(std::uint64_t n, bool stealable = true)
    {
        panic_if(pending_ < n, "work accounting went negative");
        pending_ -= n;
        if (stealable) {
            panic_if(stealable_ < n,
                     "stealable accounting went negative");
            stealable_ -= n;
        }
    }

    /**
     * Move @p n tasks between the stealable pool and a core-private
     * queue without touching the pending count (Minnow spill/fill).
     */
    void
    transferWork(std::uint64_t n, bool nowStealable)
    {
        if (nowStealable) {
            stealable_ += n;
            wake(n);
        } else {
            panic_if(stealable_ < n,
                     "stealable accounting went negative");
            stealable_ -= n;
        }
    }

    /**
     * A worker has nothing to do. May declare global termination
     * (when all workers are idle and nothing is pending anywhere).
     * Callers not using waitForWork() must pair with exitIdle().
     */
    void
    enterIdle()
    {
        idle_ += 1;
        panic_if(idle_ > workers_, "more idle workers than workers");
        if (idle_ == workers_ && pending_ == 0 && !terminated_) {
            DPRINTF(Monitor, "monitor",
                    "termination: %u workers idle, nothing pending",
                    idle_);
            terminated_ = true;
            for (auto &fn : terminationHooks_)
                fn();
            wakeAll();
        }
    }

    /** A previously idle worker got work again. */
    void
    exitIdle()
    {
        panic_if(idle_ == 0, "exitIdle with no idle workers");
        idle_ -= 1;
    }

    /** Engines register here to release cores blocked in dequeue. */
    void
    subscribeTermination(std::function<void()> fn)
    {
        terminationHooks_.push_back(std::move(fn));
    }

    std::uint64_t pending() const { return pending_; }
    std::uint64_t stealable() const { return stealable_; }
    bool terminated() const { return terminated_; }
    std::uint32_t idleWorkers() const { return idle_; }

    /**
     * Awaitable used by software-scheduled workers with nothing to
     * do. Yields true if more work may exist (retry your queues) and
     * false when global termination has been declared.
     */
    auto
    waitForWork()
    {
        struct Awaiter
        {
            WorkMonitor *mon;

            bool
            await_ready()
            {
                return mon->stealable_ > 0 || mon->terminated_;
            }

            bool
            await_suspend(std::coroutine_handle<> h)
            {
                mon->enterIdle();
                if (mon->terminated_)
                    return false; // resume immediately; it is over.
                mon->waiters_.push_back(h);
                return true;
            }

            bool
            await_resume()
            {
                return !mon->terminated_;
            }
        };
        return Awaiter{this};
    }

    /**
     * Awaitable used by Minnow engine fill daemons: parks until
     * stealable work appears (or termination) WITHOUT counting as an
     * idle worker. Yields false on termination.
     */
    auto
    waitForStealable()
    {
        struct Awaiter
        {
            WorkMonitor *mon;

            bool
            await_ready()
            {
                return mon->stealable_ > 0 || mon->terminated_;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                mon->engineWaiters_.push_back(h);
            }

            bool
            await_resume()
            {
                return !mon->terminated_;
            }
        };
        return Awaiter{this};
    }

    /**
     * Baton passing: a woken waiter that declines the work calls
     * this so another parked waiter gets the wakeup instead.
     */
    void rewake(std::uint64_t n = 1) { wake(n); }

    /**
     * Serialize the work/idle accounting. Parked coroutine handles
     * and termination hooks are rebuilt by the restored run itself.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(workers_);
        ck.io(pending_);
        ck.io(stealable_);
        ck.io(idle_);
        ck.io(terminated_);
        ck.transient("eq_ waiters_ engineWaiters_ terminationHooks_");
    }

    /** Reset between runs. */
    void
    reset(std::uint32_t workers)
    {
        panic_if(!waiters_.empty() || !engineWaiters_.empty(),
                 "resetting with parked workers");
        workers_ = workers;
        pending_ = 0;
        stealable_ = 0;
        idle_ = 0;
        terminated_ = false;
        terminationHooks_.clear();
    }

  private:
    void
    wake(std::uint64_t n)
    {
        while (n > 0 && !waiters_.empty()) {
            std::coroutine_handle<> h = waiters_.front();
            waiters_.pop_front();
            exitIdle();
            eq_->schedule(eq_->now(), h);
            --n;
        }
        while (n > 0 && !engineWaiters_.empty()) {
            std::coroutine_handle<> h = engineWaiters_.front();
            engineWaiters_.pop_front();
            eq_->schedule(eq_->now(), h);
            --n;
        }
    }

    void
    wakeAll()
    {
        while (!waiters_.empty()) {
            std::coroutine_handle<> h = waiters_.front();
            waiters_.pop_front();
            exitIdle();
            eq_->schedule(eq_->now(), h);
        }
        while (!engineWaiters_.empty()) {
            std::coroutine_handle<> h = engineWaiters_.front();
            engineWaiters_.pop_front();
            eq_->schedule(eq_->now(), h);
        }
    }

    EventQueue *eq_;
    std::uint32_t workers_;
    std::uint64_t pending_ = 0;
    std::uint64_t stealable_ = 0;
    std::uint32_t idle_ = 0;
    bool terminated_ = false;
    std::deque<std::coroutine_handle<>> waiters_;
    std::deque<std::coroutine_handle<>> engineWaiters_;
    std::vector<std::function<void()>> terminationHooks_;
};

} // namespace minnow::runtime

#endif // MINNOW_RUNTIME_WORK_MONITOR_HH
