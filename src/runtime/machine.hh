/**
 * @file
 * The simulated machine: event queue, memory hierarchy, cores, the
 * simulated-address allocator and the global work monitor, bundled
 * with their configuration.
 *
 * Minnow engines are attached by the minnow module (see
 * minnow/minnow_system.hh); the Machine itself is scheduler-agnostic.
 */

#ifndef MINNOW_RUNTIME_MACHINE_HH
#define MINNOW_RUNTIME_MACHINE_HH

#include <memory>
#include <vector>

#include "base/sim_alloc.hh"
#include "base/trace.hh"
#include "cpu/ooo_core.hh"
#include "mem/memory_system.hh"
#include "runtime/work_monitor.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace minnow::runtime
{

/** Owns all hardware models for one simulation. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config,
                     std::uint64_t seed = 1)
        : cfg(config),
          memory(config),
          monitor(&eq, config.numCores)
    {
        cfg.validate();
        trace::setCycleSource(&eq.nowRef());
        cores.reserve(cfg.numCores);
        for (CoreId i = 0; i < cfg.numCores; ++i) {
            cores.emplace_back(std::make_unique<cpu::OooCore>(
                i, cfg.core, &memory, seed));
        }
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Latest drain time across all cores = run makespan. */
    Cycle
    makespan() const
    {
        Cycle worst = 0;
        for (const auto &c : cores)
            worst = std::max(worst, c->drain());
        return worst;
    }

    /** Sum of retired micro-ops across cores. */
    std::uint64_t
    totalUops() const
    {
        std::uint64_t n = 0;
        for (const auto &c : cores)
            n += c->stats().uops;
        return n;
    }

    MachineConfig cfg;
    EventQueue eq;
    SimAlloc alloc;
    mem::MemorySystem memory;
    std::vector<std::unique_ptr<cpu::OooCore>> cores;
    WorkMonitor monitor;
};

} // namespace minnow::runtime

#endif // MINNOW_RUNTIME_MACHINE_HH
