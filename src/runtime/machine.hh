/**
 * @file
 * The simulated machine: event queue, memory hierarchy, cores, the
 * simulated-address allocator and the global work monitor, bundled
 * with their configuration.
 *
 * Minnow engines are attached by the minnow module (see
 * minnow/minnow_system.hh); the Machine itself is scheduler-agnostic.
 */

#ifndef MINNOW_RUNTIME_MACHINE_HH
#define MINNOW_RUNTIME_MACHINE_HH

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/sim_alloc.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "cpu/ooo_core.hh"
#include "mem/attribution.hh"
#include "mem/memory_system.hh"
#include "runtime/work_monitor.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/hostprof.hh"
#include "sim/parallel/shard_map.hh"
#include "sim/parallel/shard_pool.hh"
#include "sim/parallel/sharded_scheduler.hh"
#include "sim/timeline.hh"
#include "sim/watchdog.hh"

namespace minnow::runtime
{

/** Owns all hardware models for one simulation. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config,
                     std::uint64_t seed = 1)
        : cfg(config),
          memory(config),
          monitor(&eq, config.numCores)
    {
        cfg.validate();
        // Sharded-host mode (DESIGN.md 5j): build the extra wheels,
        // the weave scheduler and the host-thread pool before any
        // component schedules an event — the scheduler attaches the
        // machine-global sequence counter to every wheel, which must
        // happen while they are all empty. With one shard (or a
        // partition that collapses to one — e.g. a single engine
        // group) none of this exists and eq takes the exact legacy
        // single-wheel path.
        if (cfg.shards > 1) {
            shardMap_ = std::make_unique<parallel::ShardMap>(
                cfg.numCores, cfg.minnow.coresPerEngine, cfg.shards);
            if (shardMap_->numShards() > 1) {
                std::vector<EventQueue *> wheels;
                wheels.push_back(&eq);
                for (std::uint32_t s = 1;
                     s < shardMap_->numShards(); ++s) {
                    shardWheels_.push_back(
                        std::make_unique<EventQueue>());
                    wheels.push_back(shardWheels_.back().get());
                }
                sched_ =
                    std::make_unique<parallel::ShardedScheduler>(
                        std::move(wheels));
                pool_ = std::make_unique<parallel::ShardPool>(
                    shardMap_->numShards());
            } else {
                shardMap_.reset();
            }
        }
        if (pool_) {
            // Offload interval-sample evaluation (the dominant
            // serial-phase cost at 64 cores: ~40 stats per core
            // slice) onto the pool; the merge stays byte-identical
            // (see StatsRegistry::setSampleExecutor).
            stats.setSampleExecutor(
                pool_->lanes(),
                [this](
                    const std::function<void(std::uint32_t)> &fn) {
                    pool_->runOnAll(fn);
                });
        }
        trace::setCycleSource(&eq.nowRef());
        if (!cfg.timelinePath.empty()) {
            timeline = std::make_unique<::minnow::timeline::Timeline>(
                cfg.timelineBufferCap,
                ::minnow::timeline::parseTracks(cfg.timelineTracks));
            timeline->bindClock(&eq.nowRef());
            timeline->registerCoreTracks(cfg.numCores);
        }
        cores.reserve(cfg.numCores);
        for (CoreId i = 0; i < cfg.numCores; ++i) {
            cores.emplace_back(std::make_unique<cpu::OooCore>(
                i, cfg.core, &memory, seed));
        }
        registerStats();
        if (cfg.attribution) {
            attribution = std::make_unique<mem::Attribution>(
                stats, timeline.get(), cfg.numCores,
                cfg.attributionWindow);
            attribution->bindClock(&eq.nowRef());
            memory.setAttribution(attribution.get());
        }
        if (timeline) {
            timeline->registerStats(stats);
            for (CoreId i = 0; i < cfg.numCores; ++i) {
                cores[i]->bindTimeline(
                    timeline.get(), timeline->corePhaseTrack(i));
            }
            using ::minnow::timeline::Cat;
            // Windowed MPKI: misses-per-kilo-uop over each sampling
            // interval (the Fig. 18-20 dynamics), not the cumulative
            // average the stats groups report.
            timeline->addCounterProvider(
                Cat::Mem, "mem.l2MpkiWindow", this,
                [this, lastMiss = 0.0, lastUops = 0.0,
                 primed = false]() mutable {
                    double miss =
                        double(memory.totals().l2DemandMisses);
                    double uops = double(totalUops());
                    double dk = (uops - lastUops) / 1000.0;
                    double mpki =
                        dk > 0 ? (miss - lastMiss) / dk : 0.0;
                    // The first poll's window starts at cycle 0 and
                    // spans graph build + warmup, understating MPKI;
                    // prime the baselines and emit nothing (NaN)
                    // until one complete window has elapsed.
                    bool first = !primed;
                    primed = true;
                    lastMiss = miss;
                    lastUops = uops;
                    return first ? std::nan("") : mpki;
                });
            timeline->addCounterProvider(
                Cat::Mem, "mem.prefetchLinesTracked", this, [this] {
                    return double(memory.prefetchLinesTracked());
                });
            if (cfg.timelineInterval)
                timeline->startSampling(eq, cfg.timelineInterval);
        }
        if (cfg.statsSampleInterval)
            stats.startSampling(eq, cfg.statsSampleInterval);
        if (!cfg.faultSpec.empty()) {
            faults = std::make_unique<FaultInjector>(cfg.faultSpec,
                                                     cfg.faultSeed);
            faults->bindClock(&eq.nowRef());
            faults->bindTimeline(timeline.get());
            faults->registerStats(stats);
            memory.setFaultInjector(faults.get());
        }
        if (cfg.watchdogInterval) {
            watchdog = std::make_unique<Watchdog>(
                this, cfg.watchdogInterval, cfg.watchdogChecks);
            watchdog->arm();
        }
        if (cfg.hostProfile) {
            hostprof = std::make_unique<HostProfiler>();
            hostprof->registerStats(stats);
            eq.setHostProfiler(hostprof.get());
            if (sched_) {
                sched_->setHostProfiler(hostprof.get());
                pool_->setProfiler(hostprof.get());
                hostprof->setBarrierWaitSource([this] {
                    std::uint64_t ns = 0;
                    for (std::uint32_t l = 0; l < pool_->lanes();
                         ++l)
                        ns += pool_->barrierWaitNs(l);
                    return ns;
                });
            }
            hostprof->activate();
        }
        // A timed-out run leaves the same post-mortem as a hung one.
        eq.setDiagnosticHook([this](const char *reason) {
            dumpDiagnostic(*this, reason);
        });
        if (sched_) {
            sched_->setDiagnosticHook([this](const char *reason) {
                dumpDiagnostic(*this, reason);
            });
        }
        panicHookId_ = addPanicHook(&Machine::panicHook, this);
    }

    ~Machine()
    {
        removePanicHook(panicHookId_);
        if (timeline && !timeline->writeFile(cfg.timelinePath)) {
            warn("cannot write --timeline file %s",
                 cfg.timelinePath.c_str());
        }
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Latest drain time across all cores = run makespan. */
    Cycle
    makespan() const
    {
        Cycle worst = 0;
        for (const auto &c : cores)
            worst = std::max(worst, c->drain());
        return worst;
    }

    /** Sum of retired micro-ops across cores. */
    std::uint64_t
    totalUops() const
    {
        std::uint64_t n = 0;
        for (const auto &c : cores)
            n += c->stats().uops;
        return n;
    }

    // -----------------------------------------------------------
    // Run control: one surface over the legacy single wheel and
    // the sharded weave, so drivers (galois executor, BSP engine,
    // harness) never branch on the shard count themselves.
    // -----------------------------------------------------------

    /** True when the machine runs as a sharded weave (--shards>1). */
    bool sharded() const { return sched_ != nullptr; }

    /** Host shard count actually in effect (after clamping). */
    std::uint32_t
    shardCount() const
    {
        return shardMap_ ? shardMap_->numShards() : 1;
    }

    /**
     * The timing wheel owning @p core's events: its shard's wheel in
     * sharded mode, else the single global queue. Components cache
     * this at attach time (SimContext, MinnowEngine); all wheels
     * advance in lockstep, so now() agrees everywhere.
     */
    EventQueue &
    wheelFor(CoreId core)
    {
        if (!shardMap_)
            return eq;
        std::uint32_t s = shardMap_->shardOf(core);
        return s == 0 ? eq : *shardWheels_[s - 1];
    }

    /** Run up to @p maxEvents events (0 = unlimited); see
     *  EventQueue::run / ShardedScheduler::run. */
    std::uint64_t
    runEvents(std::uint64_t maxEvents = 0)
    {
        return sched_ ? sched_->run(maxEvents) : eq.run(maxEvents);
    }

    void
    setStopTrigger(Cycle when, std::uint64_t execCount)
    {
        if (sched_)
            sched_->setStopTrigger(when, execCount);
        else
            eq.setStopTrigger(when, execCount);
    }

    bool
    stopTriggerFired() const
    {
        return sched_ ? sched_->stopTriggerFired()
                      : eq.stopTriggerFired();
    }

    void
    ackStopTrigger()
    {
        if (sched_)
            sched_->ackStopTrigger();
        else
            eq.ackStopTrigger();
    }

    void
    setInterruptSource(const volatile std::sig_atomic_t *src)
    {
        if (sched_)
            sched_->setInterruptSource(src);
        else
            eq.setInterruptSource(src);
    }

    bool
    interrupted() const
    {
        return sched_ ? sched_->interrupted() : eq.interrupted();
    }

    /** Events executed, whole machine (all wheels). */
    std::uint64_t
    executedTotal() const
    {
        return sched_ ? sched_->executed() : eq.executed();
    }

    /** Events pending, whole machine (all wheels). */
    std::size_t
    pendingTotal() const
    {
        return sched_ ? sched_->pending() : eq.pending();
    }

    /** Pending daemon events, whole machine. */
    std::size_t
    daemonsTotal() const
    {
        return sched_ ? sched_->daemonsPending()
                      : eq.daemonsPending();
    }

    /** Earliest pending event cycle over the whole machine. */
    Cycle
    nextEventTime() const
    {
        return sched_ ? sched_->headTime() : eq.headTime();
    }

    /** Host-thread pool (null at --shards=1). */
    parallel::ShardPool *pool() { return pool_.get(); }

    // -----------------------------------------------------------
    // Checkpoint/restore (DESIGN.md section 5i).
    // -----------------------------------------------------------

    /**
     * Register a run-scoped checkpoint section (worklist, app,
     * graph, resume meta — components the Machine does not own).
     * Sections are emitted in registration order; re-registering a
     * name replaces the previous hook.
     */
    void
    addCkptHook(const std::string &name,
                std::function<void(ckpt::Ckpt &)> fn)
    {
        removeCkptHook(name);
        ckptHooks_.emplace_back(name, std::move(fn));
    }

    void
    removeCkptHook(const std::string &name)
    {
        std::erase_if(ckptHooks_,
                      [&](const auto &h) { return h.first == name; });
    }

    /**
     * Everything that pins a checkpoint to one machine build: the
     * hardware description plus the fault spec/seed. A checkpoint
     * taken under a different fingerprint is rejected (the harness
     * then degrades to cold start).
     */
    std::string
    configFingerprint() const
    {
        return cfg.describe() + "\nfaults=" + cfg.faultSpec +
               " faultSeed=" + std::to_string(cfg.faultSeed);
    }

    /** Serialize every component into @p w, one section each. */
    void
    checkpointSections(ckpt::Writer &w)
    {
        {
            std::vector<std::uint8_t> buf;
            ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
            std::string fp = configFingerprint();
            ck.io(fp);
            w.add("config", std::move(buf));
        }
        w.add("alloc", ckpt::serialize(alloc));
        if (sched_) {
            // Same four-field witness layout EventQueue::checkpoint
            // emits, with the counts summed over every shard wheel
            // and the weave's executed count: the section is
            // shard-count-invariant, so a checkpoint saved at
            // --shards=4 validates byte-for-byte at --shards=1.
            std::vector<std::uint8_t> buf;
            ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
            Cycle t = eq.now();
            ck.io(t);
            std::uint64_t v = sched_->pending();
            ck.io(v);
            v = sched_->daemonsPending();
            ck.io(v);
            std::uint64_t ex = sched_->executed();
            ck.io(ex);
            w.add("eq", std::move(buf));
        } else {
            w.add("eq", ckpt::serialize(eq));
        }
        w.add("monitor", ckpt::serialize(monitor));
        w.add("mem", ckpt::serialize(memory));
        for (CoreId i = 0; i < cfg.numCores; ++i) {
            w.add("core" + std::to_string(i),
                  ckpt::serialize(*cores[i]));
        }
        if (faults)
            w.add("faults", ckpt::serialize(*faults));
        w.add("stats", ckpt::serialize(stats));
        if (attribution)
            w.add("attribution", ckpt::serialize(*attribution));
        for (auto &[name, fn] : ckptHooks_) {
            std::vector<std::uint8_t> buf;
            ckpt::Ckpt ck = ckpt::Ckpt::saver(&buf);
            fn(ck);
            w.add(name, std::move(buf));
        }
    }

    /**
     * Write a checkpoint of the current state to @p path (atomic:
     * temp file + rename). @return "" on success, else a one-line
     * error description.
     */
    std::string
    save(const std::string &path)
    {
        ckpt::Writer w;
        checkpointSections(w);
        return w.writeFile(path);
    }

    /**
     * Open @p path into @p r and verify it belongs to this machine:
     * container magic/version/CRCs (Reader::openFile) plus the
     * config fingerprint. On success the harness loads the material
     * sections (graph, meta) from @p r and witness-validates the
     * rest with validateAgainst(). @return "" or a diagnostic.
     */
    std::string
    restore(const std::string &path, ckpt::Reader &r)
    {
        std::string err = r.openFile(path);
        if (!err.empty())
            return err;
        const ckpt::Section *cs = r.find("config");
        if (!cs)
            return "checkpoint has no config section";
        ckpt::Ckpt ck =
            ckpt::Ckpt::loader(cs->bytes.data(), cs->bytes.size());
        std::string fp;
        ck.io(fp);
        if (!ck.ok())
            return "checkpoint config section is malformed: " +
                   ck.error();
        if (fp != configFingerprint()) {
            return "checkpoint was taken under a different machine"
                   " configuration";
        }
        return "";
    }

    /**
     * Witness validation: re-serialize the live state and compare
     * byte-for-byte against the sections in @p r. @return the names
     * of mismatched or missing sections (empty = state identical).
     */
    std::vector<std::string>
    validateAgainst(const ckpt::Reader &r)
    {
        ckpt::Writer w;
        checkpointSections(w);
        std::vector<std::string> bad;
        for (const ckpt::Section &s : w.sections()) {
            const ckpt::Section *o = r.find(s.name);
            if (!o)
                bad.push_back(s.name + " (missing)");
            else if (o->bytes != s.bytes)
                bad.push_back(s.name);
        }
        return bad;
    }

    MachineConfig cfg;
    EventQueue eq;
    SimAlloc alloc;

    /**
     * The machine's stats tree. Groups follow the naming scheme in
     * DESIGN.md: "sim", "core<N>", "l2_<N>", "mem", and — added by
     * their owners — "minnow<N>" and "worklist". Declared before
     * every component that registers a group (memory, timeline,
     * cores, faults, hostprof): registrants remove their groups in
     * their destructors, so the registry must still be alive when
     * they die — i.e. be destroyed last among them.
     */
    StatsRegistry stats;

    mem::MemorySystem memory;

    /**
     * Simulated-time trace sink; null when --timeline is unset (emit
     * sites guard on this pointer and pay nothing else). Its
     * destructor removes the "timeline" group, whose formulas
     * capture it.
     */
    std::unique_ptr<::minnow::timeline::Timeline> timeline;

    /**
     * Causal-attribution tracker (--attribution; DESIGN.md 5k); null
     * when off — emit sites guard on this pointer and pay nothing
     * else. Declared after `stats` and `timeline` (it registers the
     * "attribution" group and emits flow arrows into the timeline;
     * both must outlive it).
     */
    std::unique_ptr<mem::Attribution> attribution;

    std::vector<std::unique_ptr<cpu::OooCore>> cores;
    WorkMonitor monitor;

    /** Deterministic fault injection; null when --faults is unset. */
    std::unique_ptr<FaultInjector> faults;

    /** Hang detector; null when --watchdog is unset. */
    std::unique_ptr<Watchdog> watchdog;

    /** Host-speed self-profiler; null when --host-profile is unset. */
    std::unique_ptr<HostProfiler> hostprof;

  private:
    /**
     * panic() post-mortem: best-effort stats snapshot so invariant
     * failures leave inspectable state (cfg.panicStatsPath).
     */
    static void
    panicHook(void *arg)
    {
        auto *m = static_cast<Machine *>(arg);
        if (m->cfg.panicStatsPath.empty())
            return;
        if (m->stats.writeJsonFile(m->cfg.panicStatsPath)) {
            std::fprintf(stderr, "panic stats snapshot written to"
                         " %s\n", m->cfg.panicStatsPath.c_str());
        }
    }

    int panicHookId_ = 0;

    /**
     * Sharded-host state (all null at --shards=1). Declaration
     * order matters for destruction: the pool joins its threads
     * first, then the scheduler detaches, then the extra wheels die
     * (eq, a plain member, outlives all of them).
     */
    std::unique_ptr<parallel::ShardMap> shardMap_;
    std::vector<std::unique_ptr<EventQueue>> shardWheels_;
    std::unique_ptr<parallel::ShardedScheduler> sched_;
    std::unique_ptr<parallel::ShardPool> pool_;

    /** Run-scoped checkpoint sections, in registration order. */
    std::vector<
        std::pair<std::string, std::function<void(ckpt::Ckpt &)>>>
        ckptHooks_;

    /** Register sim/core/l2/mem groups over the built components. */
    void
    registerStats()
    {
        StatsGroup &sim = stats.group("sim");
        sim.formula("cycles", "run makespan over all cores",
                    [this] { return double(makespan()); });
        sim.formula("instructions", "retired uops over all cores",
                    [this] { return double(totalUops()); });
        sim.formula("ipc", "aggregate uops per makespan cycle",
                    [this] {
                        Cycle c = makespan();
                        return c ? double(totalUops()) / double(c)
                                 : 0.0;
                    });
        sim.formula("l2Mpki",
                    "aggregate L2 demand misses per kilo-uop",
                    [this] {
                        double ki = double(totalUops()) / 1000.0;
                        return ki ? double(memory.totals()
                                               .l2DemandMisses) /
                                        ki
                                  : 0.0;
                    });
        sim.scalar("cores", "simulated core count") =
            double(cfg.numCores);

        memory.registerStats(stats);
        for (CoreId i = 0; i < cfg.numCores; ++i) {
            cores[i]->registerStats(
                stats.group("core" + std::to_string(i)));
            StatsGroup &l2 =
                stats.group("l2_" + std::to_string(i));
            memory.registerCoreStats(l2, i);
            cpu::OooCore *core = cores[i].get();
            l2.formula("mpki",
                       "L2 demand misses per kilo-uop of this core",
                       [this, core, i] {
                           double ki =
                               double(core->stats().uops) / 1000.0;
                           return ki ? double(memory.stats(i)
                                                  .l2DemandMisses) /
                                           ki
                                     : 0.0;
                       });
        }
    }
};

} // namespace minnow::runtime

#endif // MINNOW_RUNTIME_MACHINE_HH
