/**
 * @file
 * The simulated machine: event queue, memory hierarchy, cores, the
 * simulated-address allocator and the global work monitor, bundled
 * with their configuration.
 *
 * Minnow engines are attached by the minnow module (see
 * minnow/minnow_system.hh); the Machine itself is scheduler-agnostic.
 */

#ifndef MINNOW_RUNTIME_MACHINE_HH
#define MINNOW_RUNTIME_MACHINE_HH

#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/sim_alloc.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "cpu/ooo_core.hh"
#include "mem/memory_system.hh"
#include "runtime/work_monitor.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/hostprof.hh"
#include "sim/timeline.hh"
#include "sim/watchdog.hh"

namespace minnow::runtime
{

/** Owns all hardware models for one simulation. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config,
                     std::uint64_t seed = 1)
        : cfg(config),
          memory(config),
          monitor(&eq, config.numCores)
    {
        cfg.validate();
        trace::setCycleSource(&eq.nowRef());
        if (!cfg.timelinePath.empty()) {
            timeline = std::make_unique<::minnow::timeline::Timeline>(
                cfg.timelineBufferCap,
                ::minnow::timeline::parseTracks(cfg.timelineTracks));
            timeline->bindClock(&eq.nowRef());
            timeline->registerCoreTracks(cfg.numCores);
        }
        cores.reserve(cfg.numCores);
        for (CoreId i = 0; i < cfg.numCores; ++i) {
            cores.emplace_back(std::make_unique<cpu::OooCore>(
                i, cfg.core, &memory, seed));
        }
        registerStats();
        if (timeline) {
            timeline->registerStats(stats);
            for (CoreId i = 0; i < cfg.numCores; ++i) {
                cores[i]->bindTimeline(
                    timeline.get(), timeline->corePhaseTrack(i));
            }
            using ::minnow::timeline::Cat;
            // Windowed MPKI: misses-per-kilo-uop over each sampling
            // interval (the Fig. 18-20 dynamics), not the cumulative
            // average the stats groups report.
            timeline->addCounterProvider(
                Cat::Mem, "mem.l2MpkiWindow", this,
                [this, lastMiss = 0.0, lastUops = 0.0]() mutable {
                    double miss =
                        double(memory.totals().l2DemandMisses);
                    double uops = double(totalUops());
                    double dk = (uops - lastUops) / 1000.0;
                    double mpki =
                        dk > 0 ? (miss - lastMiss) / dk : 0.0;
                    lastMiss = miss;
                    lastUops = uops;
                    return mpki;
                });
            timeline->addCounterProvider(
                Cat::Mem, "mem.prefetchLinesTracked", this, [this] {
                    return double(memory.prefetchLinesTracked());
                });
            if (cfg.timelineInterval)
                timeline->startSampling(eq, cfg.timelineInterval);
        }
        if (cfg.statsSampleInterval)
            stats.startSampling(eq, cfg.statsSampleInterval);
        if (!cfg.faultSpec.empty()) {
            faults = std::make_unique<FaultInjector>(cfg.faultSpec,
                                                     cfg.faultSeed);
            faults->bindClock(&eq.nowRef());
            faults->bindTimeline(timeline.get());
            faults->registerStats(stats);
            memory.setFaultInjector(faults.get());
        }
        if (cfg.watchdogInterval) {
            watchdog = std::make_unique<Watchdog>(
                this, cfg.watchdogInterval, cfg.watchdogChecks);
            watchdog->arm();
        }
        if (cfg.hostProfile) {
            hostprof = std::make_unique<HostProfiler>();
            hostprof->registerStats(stats);
            eq.setHostProfiler(hostprof.get());
            hostprof->activate();
        }
        // A timed-out run leaves the same post-mortem as a hung one.
        eq.setDiagnosticHook([this](const char *reason) {
            dumpDiagnostic(*this, reason);
        });
        panicHookId_ = addPanicHook(&Machine::panicHook, this);
    }

    ~Machine()
    {
        removePanicHook(panicHookId_);
        if (timeline && !timeline->writeFile(cfg.timelinePath)) {
            warn("cannot write --timeline file %s",
                 cfg.timelinePath.c_str());
        }
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Latest drain time across all cores = run makespan. */
    Cycle
    makespan() const
    {
        Cycle worst = 0;
        for (const auto &c : cores)
            worst = std::max(worst, c->drain());
        return worst;
    }

    /** Sum of retired micro-ops across cores. */
    std::uint64_t
    totalUops() const
    {
        std::uint64_t n = 0;
        for (const auto &c : cores)
            n += c->stats().uops;
        return n;
    }

    MachineConfig cfg;
    EventQueue eq;
    SimAlloc alloc;

    /**
     * The machine's stats tree. Groups follow the naming scheme in
     * DESIGN.md: "sim", "core<N>", "l2_<N>", "mem", and — added by
     * their owners — "minnow<N>" and "worklist". Declared before
     * every component that registers a group (memory, timeline,
     * cores, faults, hostprof): registrants remove their groups in
     * their destructors, so the registry must still be alive when
     * they die — i.e. be destroyed last among them.
     */
    StatsRegistry stats;

    mem::MemorySystem memory;

    /**
     * Simulated-time trace sink; null when --timeline is unset (emit
     * sites guard on this pointer and pay nothing else). Its
     * destructor removes the "timeline" group, whose formulas
     * capture it.
     */
    std::unique_ptr<::minnow::timeline::Timeline> timeline;

    std::vector<std::unique_ptr<cpu::OooCore>> cores;
    WorkMonitor monitor;

    /** Deterministic fault injection; null when --faults is unset. */
    std::unique_ptr<FaultInjector> faults;

    /** Hang detector; null when --watchdog is unset. */
    std::unique_ptr<Watchdog> watchdog;

    /** Host-speed self-profiler; null when --host-profile is unset. */
    std::unique_ptr<HostProfiler> hostprof;

  private:
    /**
     * panic() post-mortem: best-effort stats snapshot so invariant
     * failures leave inspectable state (cfg.panicStatsPath).
     */
    static void
    panicHook(void *arg)
    {
        auto *m = static_cast<Machine *>(arg);
        if (m->cfg.panicStatsPath.empty())
            return;
        if (m->stats.writeJsonFile(m->cfg.panicStatsPath)) {
            std::fprintf(stderr, "panic stats snapshot written to"
                         " %s\n", m->cfg.panicStatsPath.c_str());
        }
    }

    int panicHookId_ = 0;

    /** Register sim/core/l2/mem groups over the built components. */
    void
    registerStats()
    {
        StatsGroup &sim = stats.group("sim");
        sim.formula("cycles", "run makespan over all cores",
                    [this] { return double(makespan()); });
        sim.formula("instructions", "retired uops over all cores",
                    [this] { return double(totalUops()); });
        sim.formula("ipc", "aggregate uops per makespan cycle",
                    [this] {
                        Cycle c = makespan();
                        return c ? double(totalUops()) / double(c)
                                 : 0.0;
                    });
        sim.formula("l2Mpki",
                    "aggregate L2 demand misses per kilo-uop",
                    [this] {
                        double ki = double(totalUops()) / 1000.0;
                        return ki ? double(memory.totals()
                                               .l2DemandMisses) /
                                        ki
                                  : 0.0;
                    });
        sim.scalar("cores", "simulated core count") =
            double(cfg.numCores);

        memory.registerStats(stats);
        for (CoreId i = 0; i < cfg.numCores; ++i) {
            cores[i]->registerStats(
                stats.group("core" + std::to_string(i)));
            StatsGroup &l2 =
                stats.group("l2_" + std::to_string(i));
            memory.registerCoreStats(l2, i);
            cpu::OooCore *core = cores[i].get();
            l2.formula("mpki",
                       "L2 demand misses per kilo-uop of this core",
                       [this, core, i] {
                           double ki =
                               double(core->stats().uops) / 1000.0;
                           return ki ? double(memory.stats(i)
                                                  .l2DemandMisses) /
                                           ki
                                     : 0.0;
                       });
        }
    }
};

} // namespace minnow::runtime

#endif // MINNOW_RUNTIME_MACHINE_HH
