/**
 * @file
 * Galois-like parallel foreach executor.
 *
 * Drives N worker threads (one per simulated core) over a software
 * worklist: pop a task, run the application operator, repeat; park on
 * the work monitor when empty; exit on distributed termination. This
 * is the software baseline of the paper — every scheduler operation
 * executes on the worker's own core and is exposed to all its
 * latency, contention and serialization.
 */

#ifndef MINNOW_GALOIS_EXECUTOR_HH
#define MINNOW_GALOIS_EXECUTOR_HH

#include <cstdint>
#include <functional>

#include "apps/app.hh"
#include "base/stats.hh"
#include "mem/memory_system.hh"
#include "runtime/machine.hh"
#include "worklist/worklist.hh"

namespace minnow::galois
{

/** Run parameters. */
struct RunConfig
{
    std::uint32_t threads = 1;
    bool verify = true;

    /**
     * Serial-baseline mode (Section 6.3.1): single thread with
     * atomics degraded to plain load/store.
     */
    bool serialRelaxed = false;

    /**
     * Event budget; a run that exceeds it is reported as timed out
     * (the high bars of Fig. 3). 0 = unlimited.
     */
    std::uint64_t maxEvents = 400'000'000;

    // ----- checkpoint/restore plumbing (DESIGN.md section 5i) -----

    /**
     * Invoked after seeding, immediately before simulated time
     * starts: the warm-boundary checkpoint point (save there, or
     * witness-validate a warm restore against it).
     */
    std::function<void()> warmBoundaryHook;

    /**
     * When stopAt is set, the executor arms
     * EventQueue::setStopTrigger(stopAtCycle, stopAtExec) and calls
     * midRunHook once the trigger fires — after eq.run() returns,
     * so on the normalized between-events state — then resumes the
     * run with its remaining event budget. Drives
     * --checkpoint-after rescue saves and restore-replay witness
     * validation.
     */
    bool stopAt = false;
    Cycle stopAtCycle = 0;
    std::uint64_t stopAtExec = 0;
    std::function<void()> midRunHook;

    /**
     * Invoked once when a signal interrupted the run, while all
     * run-scoped state (worklists, Minnow engines) is still live —
     * the rescue-checkpoint point for graceful SIGINT/SIGTERM.
     */
    std::function<void()> interruptHook;
};

/** Outcome of one simulated run. */
struct RunResult
{
    Cycle cycles = 0;              //!< makespan over all cores.
    std::uint64_t instructions = 0;
    std::uint64_t tasks = 0;       //!< operator invocations.
    std::uint64_t pops = 0;        //!< successful dequeues.
    bool verified = false;
    bool timedOut = false;
    bool interrupted = false;      //!< SIGINT/SIGTERM clean stop.

    double l2Mpki = 0;             //!< L2 demand misses / kilo-instr.
    mem::MemStats mem;             //!< aggregated hierarchy stats.

    /** Cycle/uop totals per phase (App, Worklist, Idle). */
    Cycle phaseCycles[3] = {};
    std::uint64_t phaseUops[3] = {};

    std::uint64_t delinquentLoads = 0;
    std::uint64_t allLoads = 0;
    std::uint64_t atomics = 0;
    std::uint64_t mispredicts = 0;
    Cycle fenceStallCycles = 0;
    Cycle branchStallCycles = 0;

    apps::AppCounters workload;

    /** Full dotted-key stats dump (see base/stats.hh). */
    StatsReport report;

    /**
     * JSON snapshot of the machine's StatsRegistry taken at collect
     * time (schema "minnow-stats-1"; see DESIGN.md). Safe to keep
     * after the machine is gone.
     */
    std::string statsJson;

    double
    mlpProxyIpc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0;
    }
};

/** TaskSink that forwards into a software worklist. */
class WorklistSink : public apps::TaskSink
{
  public:
    explicit WorklistSink(worklist::Worklist *wl) : wl_(wl) {}

    runtime::CoTask<void>
    put(runtime::SimContext &ctx, worklist::WorkItem item) override
    {
        timeline::Timeline *tl = ctx.machine().timeline.get();
        mem::Attribution *attr = ctx.machine().attribution.get();
        Cycle pushStart = ctx.machine().eq.now();
        if (attr)
            item.lineage = attr->pushTask(ctx.id(), pushStart);
        co_await wl_->push(ctx, item);
        if (attr)
            attr->taskEnqueued(item.lineage,
                               ctx.machine().eq.now());
        if (tl) {
            Cycle now = ctx.machine().eq.now();
            tl->span(tl->coreTaskTrack(ctx.id()),
                     timeline::Name::Push, pushStart, now);
            tl->taskSample(timeline::TaskPhase::Push,
                           now - pushStart);
        }
    }

  private:
    worklist::Worklist *wl_;
};

/**
 * Execute @p app to completion over @p wl with cfg.threads workers.
 * The machine must be freshly constructed (or reset) for meaningful
 * statistics.
 */
RunResult runParallel(runtime::Machine &machine, apps::App &app,
                      worklist::Worklist &wl, const RunConfig &cfg);

/** Collect a RunResult from machine state after any executor. */
RunResult collectResult(runtime::Machine &machine, apps::App &app,
                        std::uint32_t threads, bool timedOut,
                        std::uint64_t pops);

/**
 * Drive machine.eq.run() honoring the RunConfig checkpoint hooks:
 * warm-boundary hook, stop-trigger mid-run hook with
 * remaining-budget resume. Shared by runParallel and runMinnow.
 * @return true if a signal interrupted the run cleanly.
 */
bool runEventLoop(runtime::Machine &machine, const RunConfig &cfg);

} // namespace minnow::galois

#endif // MINNOW_GALOIS_EXECUTOR_HH
