#include "galois/executor.hh"

#include <memory>
#include <vector>

#include "base/logging.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"

namespace minnow::galois
{

using runtime::CoTask;
using runtime::SimContext;

namespace
{

/** Per-worker bookkeeping for the run. */
struct WorkerState
{
    std::uint64_t pops = 0;
};

/** Stats shared by all workers of one run ("worklist" group). */
struct WorklistRunStats
{
    HistogramStat *popLatency = nullptr;
    CounterStat *pops = nullptr;
};

/** The worker main loop: pop - run operator - repeat - park. */
CoTask<void>
workerLoop(SimContext &ctx, worklist::Worklist &wl, apps::App &app,
           WorklistSink &sink, WorkerState &state,
           WorklistRunStats &wstats)
{
    timeline::Timeline *tl = ctx.machine().timeline.get();
    timeline::TrackId taskTrack = tl
        ? tl->coreTaskTrack(ctx.id())
        : timeline::kNoTrack;
    for (;;) {
        ctx.core().setPhase(cpu::Phase::Worklist);
        worklist::WorkItem item;
        Cycle popStart = ctx.eq().now();
        bool got = co_await wl.pop(ctx, item);
        if (got) {
            Cycle now = ctx.eq().now();
            wstats.popLatency->sample(now - popStart);
            ++*wstats.pops;
            if (mem::Attribution *attr =
                    ctx.machine().attribution.get()) {
                attr->taskDequeued(ctx.id(), item.lineage, now);
            }
            if (tl) {
                tl->span(taskTrack, timeline::Name::Dequeue,
                         popStart, now);
                tl->taskSample(timeline::TaskPhase::Dequeue,
                               now - popStart);
            }
        }
        if (!got) {
            ctx.core().setPhase(cpu::Phase::Idle);
            Cycle waitStart = ctx.eq().now();
            bool more = co_await ctx.monitor().waitForWork();
            ctx.core().idleUntil(ctx.eq().now());
            if (tl && more) {
                Cycle now = ctx.eq().now();
                tl->span(taskTrack, timeline::Name::PopWait,
                         waitStart, now);
                tl->taskSample(timeline::TaskPhase::PopWait,
                               now - waitStart);
            }
            if (!more)
                break;
            continue;
        }
        state.pops += 1;
        ctx.core().setPhase(cpu::Phase::App);
        Cycle execStart = ctx.eq().now();
        co_await app.process(ctx, item, sink);
        co_await ctx.sync();
        if (tl) {
            Cycle now = ctx.eq().now();
            tl->span(taskTrack, timeline::Name::Task, execStart,
                     now);
            tl->taskSample(timeline::TaskPhase::Execute,
                           now - execStart);
        }
    }
    ctx.core().setPhase(cpu::Phase::Idle);
}

} // anonymous namespace

bool
runEventLoop(runtime::Machine &machine, const RunConfig &cfg)
{
    if (cfg.warmBoundaryHook)
        cfg.warmBoundaryHook();
    if (cfg.stopAt)
        machine.setStopTrigger(cfg.stopAtCycle, cfg.stopAtExec);
    std::uint64_t budget = cfg.maxEvents;
    for (;;) {
        std::uint64_t before = machine.executedTotal();
        machine.runEvents(budget);
        if (budget) {
            std::uint64_t used = machine.executedTotal() - before;
            budget = used < budget ? budget - used : 1;
        }
        if (machine.stopTriggerFired()) {
            machine.ackStopTrigger();
            if (cfg.midRunHook)
                cfg.midRunHook();
            continue;
        }
        break;
    }
    if (machine.interrupted()) {
        if (cfg.interruptHook)
            cfg.interruptHook();
        return true;
    }
    return false;
}

RunResult
collectResult(runtime::Machine &machine, apps::App &app,
              std::uint32_t threads, bool timedOut,
              std::uint64_t pops)
{
    RunResult r;
    r.timedOut = timedOut;
    r.pops = pops;
    r.workload = app.counters();
    r.tasks = r.workload.tasks;

    for (std::uint32_t i = 0; i < threads; ++i) {
        const cpu::CoreStats &cs = machine.cores[i]->stats();
        r.cycles = std::max(r.cycles, machine.cores[i]->drain());
        r.instructions += cs.uops;
        r.delinquentLoads += cs.delinquentLoads;
        r.allLoads += cs.loads;
        r.atomics += cs.atomics;
        r.mispredicts += cs.mispredicts;
        r.fenceStallCycles += cs.fenceStallCycles;
        r.branchStallCycles += cs.branchStallCycles;
        for (int p = 0; p < 3; ++p) {
            r.phaseCycles[p] += cs.phases[p].cycles;
            r.phaseUops[p] += cs.phases[p].uops;
        }
    }
    r.mem = machine.memory.totals();
    if (r.instructions > 0) {
        r.l2Mpki = double(r.mem.l2DemandMisses) /
                   (double(r.instructions) / 1000.0);
    }

    // Full stats report for --stats-file dumps.
    r.report.add("run.cycles", double(r.cycles));
    r.report.add("run.instructions", double(r.instructions));
    r.report.add("run.tasks", double(r.tasks));
    r.report.add("run.ipc", r.mlpProxyIpc());
    r.report.add("run.l2Mpki", r.l2Mpki);
    r.report.add("run.threads", double(threads));
    r.report.add("core.delinquentLoads",
                 double(r.delinquentLoads));
    r.report.add("core.loads", double(r.allLoads));
    r.report.add("core.atomics", double(r.atomics));
    r.report.add("core.mispredicts", double(r.mispredicts));
    r.report.add("core.fenceStallCycles",
                 double(r.fenceStallCycles));
    r.report.add("core.branchStallCycles",
                 double(r.branchStallCycles));
    const char *phaseNames[3] = {"app", "worklist", "idle"};
    for (int p = 0; p < 3; ++p) {
        r.report.add(std::string("phase.") + phaseNames[p] +
                         ".cycles",
                     double(r.phaseCycles[p]));
        r.report.add(std::string("phase.") + phaseNames[p] +
                         ".uops",
                     double(r.phaseUops[p]));
    }
    r.report.add("workload.edgesVisited",
                 double(r.workload.edgesVisited));
    r.report.add("workload.updates", double(r.workload.updates));
    r.report.add("workload.pushes", double(r.workload.pushes));
    machine.memory.report(r.report, "mem");

    // Hierarchical registry: flatten into the legacy report and
    // snapshot the JSON form while every component is still alive.
    machine.stats.flatten(r.report);
    r.statsJson = machine.stats.toJson();
    return r;
}

RunResult
runParallel(runtime::Machine &machine, apps::App &app,
            worklist::Worklist &wl, const RunConfig &cfg)
{
    fatal_if(cfg.threads == 0, "need at least one worker");
    fatal_if(cfg.threads > machine.cfg.numCores,
             "%u workers > %u cores", cfg.threads,
             machine.cfg.numCores);
    fatal_if(cfg.serialRelaxed && cfg.threads != 1,
             "the relaxed serial baseline is single-threaded");

    machine.monitor.reset(cfg.threads);
    app.resetCounters();

    // Seed the worklist functionally (input setup is untimed).
    for (const worklist::WorkItem &item : app.initialWork())
        wl.pushInitial(item);

    // The software scheduler's own observability group, owned by the
    // worklist (attachStats replaces any previous run's group and
    // removes it again when the worklist is destroyed).
    StatsGroup &wg = wl.attachStats(machine.stats);
    if (machine.timeline) {
        machine.timeline->addCounterProvider(
            timeline::Cat::Worklist, "worklist.depth", &wl,
            [&wl] { return double(wl.size()); });
        wl.registerTimeline(*machine.timeline);
    }
    WorklistRunStats wstats;
    wstats.popLatency = &wg.histogram(
        "popLatency", "cycles a worker spent inside pop", 64, 32);
    wstats.pops = &wg.counter("pops", "successful dequeues");

    std::vector<std::unique_ptr<SimContext>> contexts;
    std::vector<WorkerState> states(cfg.threads);
    std::vector<CoTask<void>> workers;
    WorklistSink sink(&wl);
    contexts.reserve(cfg.threads);
    workers.reserve(cfg.threads);
    for (std::uint32_t i = 0; i < cfg.threads; ++i) {
        contexts.push_back(
            std::make_unique<SimContext>(&machine, i));
        contexts.back()->serialMode = cfg.serialRelaxed;
        workers.push_back(workerLoop(*contexts[i], wl, app, sink,
                                     states[i], wstats));
    }
    for (auto &w : workers)
        w.start();

    // The worklist is caller-owned and run-scoped; expose it as a
    // checkpoint section only while the run is live.
    machine.addCkptHook(
        "worklist", [&wl](ckpt::Ckpt &ck) { wl.checkpoint(ck); });
    bool interrupted = runEventLoop(machine, cfg);
    machine.removeCkptHook("worklist");

    bool timedOut = !interrupted && !machine.monitor.terminated();
    if (timedOut) {
        // Drain remaining events is impossible mid-flight; report
        // and let the Machine be discarded by the caller.
        warn("run of %s timed out after %llu events",
             app.name().c_str(),
             (unsigned long long)cfg.maxEvents);
    }

    std::uint64_t pops = 0;
    for (const auto &s : states)
        pops += s.pops;
    RunResult r = collectResult(machine, app, cfg.threads, timedOut,
                                pops);
    r.interrupted = interrupted;
    // Counter providers capture the caller-owned worklist; it may
    // not outlive this run.
    if (machine.timeline)
        machine.timeline->removeProviders(&wl);
    if (cfg.verify && !timedOut && !interrupted)
        r.verified = app.verify();
    return r;
}

} // namespace minnow::galois
