/**
 * @file
 * The full simulated memory hierarchy.
 *
 * Per core: a private L1D and a private L2 (inclusive of L1). Shared:
 * an address-hash-banked L3 (one bank per core tile, inclusive of all
 * private caches) with a MESI-lite sharer directory, an 8x8 mesh NoC,
 * and a channel-interleaved DRAM model.
 *
 * The hierarchy is timing + coherence state only; functional data
 * lives in host containers owned by the workloads. Every access
 * returns its completion cycle so the core model and Minnow engines
 * can account latency.
 *
 * Prefetch support (Section 5.3.1): L2 lines carry a prefetch bit.
 * Prefetch-marked fills report back through a credit hook when the
 * line is used by a demand access, evicted, or invalidated, which is
 * how the Minnow credit throttle and the Fig. 20 efficiency metric
 * are implemented. Optional per-core baseline prefetchers (stride or
 * IMP) observe the demand load stream and inject their own fills.
 */

#ifndef MINNOW_MEM_MEMORY_SYSTEM_HH
#define MINNOW_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/noc.hh"
#include "mem/prefetcher.hh"
#include "sim/config.hh"

namespace minnow
{
class FaultInjector;
} // namespace minnow

namespace minnow::mem
{

class Attribution;

/** Kind of memory operation. */
enum class AccessType
{
    Load,
    Store,
    Atomic,
};

/** One memory request from a core or Minnow engine. */
struct MemAccess
{
    Addr addr = 0;
    AccessType type = AccessType::Load;
    CoreId core = 0;
    Cycle when = 0;

    std::uint16_t site = 0;    //!< load-site tag (PC proxy).
    std::uint64_t value = 0;   //!< functional value (IMP training).
    bool hasValue = false;

    bool engine = false;       //!< from a Minnow engine (skip L1).
    bool prefetch = false;     //!< mark the L2 fill as a prefetch.
    bool hwPrefetch = false;   //!< HW prefetcher fill (no credits).

    /** Trigger-task lineage id (--attribution; 0 = untracked). */
    std::uint64_t lineage = 0;
};

/** Where an access was satisfied. */
enum class HitLevel
{
    L1 = 1,
    L2 = 2,
    L3 = 3,
    Mem = 4,
};

/** Timing outcome of one access. */
struct AccessResult
{
    Cycle done = 0;
    HitLevel level = HitLevel::L1;
    /** A new prefetch-marked L2 line was installed (credit consumed). */
    bool prefetchFilled = false;
    /** The access hit a prefetched line (fully or in flight). */
    bool hitPrefetched = false;
};

/** Per-core memory statistics. */
struct MemStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t engineAccesses = 0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2HitsUnderFill = 0; //!< prefetch arrived late.
    std::uint64_t l2DemandMisses = 0;  //!< core demand misses (MPKI).
    std::uint64_t l3Hits = 0;
    std::uint64_t memAccesses = 0;

    std::uint64_t invalidationsSent = 0;
    std::uint64_t invalidationsTaken = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t prefetchFills = 0;
    std::uint64_t prefetchUsed = 0;
    std::uint64_t prefetchUsedLate = 0;
    std::uint64_t prefetchEvictedUnused = 0;
    std::uint64_t prefetchInvalidated = 0;
    std::uint64_t prefetchRedundant = 0;
};

/**
 * Called when a prefetch-marked line stops being tracked.
 * @param core The owning core.
 * @param used True if a demand access consumed the line.
 */
using CreditHook = std::function<void(CoreId core, bool used)>;

/** The complete cache/NoC/DRAM hierarchy. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &cfg);

    ~MemorySystem()
    {
        // The "mem" formulas capture `this`; drop them before the
        // hierarchy dies (the registry may outlive us).
        if (statsReg_)
            statsReg_->removeGroup("mem");
    }

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /** Perform one timed access; updates all cache/coherence state. */
    AccessResult access(const MemAccess &req);

    /**
     * Install the Minnow credit-return hook; fired whenever a
     * prefetch-marked line is consumed, evicted, or invalidated.
     */
    void setCreditHook(CreditHook hook) { creditHook_ = std::move(hook); }

    /**
     * Attach the machine's fault injector (nullptr detaches). Adds
     * noc_delay/dram_delay latency spikes on the demand path and
     * drops hardware prefetch issues per drop_prefetch clauses.
     */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /**
     * Attach the causal-attribution tracker (nullptr detaches).
     * When set, every prefetch fill/use/eviction and demand miss is
     * reported for lifecycle classification (--attribution).
     */
    void setAttribution(Attribution *attr) { attr_ = attr; }

    /**
     * Register the functional-read oracle used by the IMP prefetcher
     * to chase index arrays ahead of the demand stream.
     */
    void setValueOracle(ValueOracle oracle);

    /** Drop all cached state (between benchmark phases). */
    void flushAll();

    /** Zero all statistics (after warmup). */
    void resetStats();

    const MemStats &stats(CoreId core) const { return stats_[core]; }
    MemStats totals() const;

    const Noc &noc() const { return noc_; }
    const Dram &dram() const { return dram_; }

    /** Aggregate stats into a report under the given prefix. */
    void report(StatsReport &out, const std::string &prefix) const;

    /**
     * Register hierarchy totals (plus NoC/DRAM counters and the
     * derived prefetch coverage/accuracy) as the "mem" group.
     */
    void registerStats(StatsRegistry &reg);

    /**
     * Register core @p i's private-cache counters into @p g (the
     * machine's "l2_<i>" group), including per-slice prefetch
     * coverage and accuracy formulas.
     */
    void registerCoreStats(StatsGroup &g, CoreId i);

    /**
     * Engine-prefetched (credit-tracked) L2 lines currently resident
     * or in flight, summed over all cores. Feeds the timeline's L2
     * occupancy counter track; HW-prefetcher fills are excluded.
     */
    std::uint64_t prefetchLinesTracked() const
    {
        return pfLinesTracked_;
    }

    /** Probe helpers for tests. */
    bool inL1(CoreId core, Addr addr) const;
    bool inL2(CoreId core, Addr addr) const;
    bool inL3(Addr addr) const;

    /**
     * Serialize the hierarchy: every cache array, the directory and
     * atomic serialization points (sorted by line for determinism),
     * NoC/DRAM meters and per-core counters. Symmetric. Hardware
     * prefetcher tables are transient: deterministic replay retrains
     * them, and any divergence they could cause shows up in the cache
     * and stats sections of the witness.
     */
    void checkpoint(ckpt::Ckpt &ck);

  private:
    /** Directory entry for a line cached somewhere on chip. */
    struct DirEntry
    {
        std::uint64_t sharers = 0; //!< bitmask of cores with the line.
        std::int32_t owner = -1;   //!< core with a dirty copy, or -1.

        // Per-member: 4 tail padding bytes must not leak into a
        // checkpoint stream.
        void
        checkpoint(ckpt::Ckpt &ck)
        {
            ck.io(sharers);
            ck.io(owner);
        }
    };

    std::uint32_t bankOf(Addr lnum) const;
    std::uint32_t tileOf(std::uint32_t unit) const { return unit; }

    /**
     * Remove a line from one core's private caches, returning credit
     * if it was an unused prefetch. Updates stats but not directory.
     */
    void invalidatePrivate(CoreId core, Addr lnum);

    /** Handle L2 victim: writeback, inclusion, credits, directory. */
    void handleL2Eviction(CoreId core, const Eviction &ev);

    /**
     * Fill L3 bank for a line fetched from memory; returns the
     * installed frame (saves the caller a re-lookup).
     */
    CacheLine *fillL3(std::uint32_t bank, Addr lnum);

    /** Run the baseline hardware prefetcher for one demand load. */
    void runHwPrefetcher(const MemAccess &req, Cycle when);

    MachineConfig cfg_;
    std::vector<CacheArray> l1_;
    std::vector<CacheArray> l2_;
    std::vector<CacheArray> l3_;
    std::unordered_map<Addr, DirEntry> directory_;
    /**
     * Per-line serialization point for locked RMWs: concurrent
     * atomics to one line execute back to back (the CAS-retry /
     * locked-bus behaviour contended lines exhibit on real x86).
     * Booked in call order, which tracks simulated-time order to
     * within the sync quantum (callers sync before shared-state
     * RMWs).
     */
    std::unordered_map<Addr, Cycle> atomicBusy_;
    Noc noc_;
    Dram dram_;
    std::vector<MemStats> stats_;
    CreditHook creditHook_;
    Attribution *attr_ = nullptr;
    FaultInjector *faults_ = nullptr;
    std::vector<std::unique_ptr<Prefetcher>> hwPrefetchers_;
    ValueOracle oracle_;
    std::vector<Addr> pfScratch_;
    bool inPrefetchIssue_ = false;
    std::uint64_t pfLinesTracked_ = 0;
    /** Registry holding our "mem" group (for dtor removal). */
    StatsRegistry *statsReg_ = nullptr;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_MEMORY_SYSTEM_HH
