#include "mem/noc.hh"

#include <cstdlib>

namespace minnow::mem
{

namespace
{

enum Direction
{
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
};

} // anonymous namespace

Noc::Noc(const NocParams &params)
    : params_(params),
      width_(params.meshWidth),
      links_(std::size_t(params.meshWidth) * params.meshWidth * 4,
             LinkMeter(std::uint32_t(LinkMeter::kWindow)))
{
}

std::uint32_t
Noc::hops(std::uint32_t src, std::uint32_t dst) const
{
    int sx = int(src % width_), sy = int(src / width_);
    int dx = int(dst % width_), dy = int(dst / width_);
    return std::uint32_t(std::abs(sx - dx) + std::abs(sy - dy));
}

Cycle
Noc::idleLatency(std::uint32_t src, std::uint32_t dst) const
{
    return Cycle(hops(src, dst)) * params_.cyclesPerHop;
}

Cycle
Noc::traverse(std::uint32_t src, std::uint32_t dst, Cycle start)
{
    ++messages_;
    if (src == dst)
        return start;

    std::uint32_t x = src % width_, y = src / width_;
    std::uint32_t dx = dst % width_, dy = dst / width_;
    Cycle t = start;
    Cycle ideal = start;

    auto hop = [&](int dir, std::uint32_t nx, std::uint32_t ny) {
        std::size_t link = linkIndex(x, y, dir);
        Cycle depart = t;
        if (params_.modelContention)
            depart = links_[link].reserve(t);
        t = depart + params_.cyclesPerHop;
        ideal += params_.cyclesPerHop;
        x = nx;
        y = ny;
        ++totalHops_;
    };

    // X first, then Y (dimension-ordered routing avoids deadlock).
    while (x != dx) {
        if (x < dx)
            hop(kEast, x + 1, y);
        else
            hop(kWest, x - 1, y);
    }
    while (y != dy) {
        if (y < dy)
            hop(kSouth, x, y + 1);
        else
            hop(kNorth, x, y - 1);
    }

    if (t > ideal)
        contention_ += t - ideal;
    return t;
}

} // namespace minnow::mem
