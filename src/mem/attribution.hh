/**
 * @file
 * Causal attribution layer (--attribution; DESIGN.md section 5k).
 *
 * Two trackers behind one object, both deterministic and
 * checkpoint-safe:
 *
 *  - Prefetch provenance: every in-flight prefetched L2 line is
 *    tagged with {issuer core, trigger task lineage id, issue/fill
 *    cycles} and classified at first demand use or eviction as
 *    timely / late (demand arrived between issue and fill, with
 *    stall-cycles-covered accounting) / early-evicted / redundant
 *    (line already present or in flight) / polluting (the fill's
 *    victim demand-misses again within --attribution-window).
 *
 *  - Task lineage: a compact id assigned at push time rides the
 *    WorkItem through worklist push -> engine fill/spill ->
 *    dequeue/spec-slot delivery, yielding a per-task critical-path
 *    split (parent-push -> enqueue -> dequeue -> first demand miss)
 *    and push->pop flow arrows in the timeline trace.
 *
 * Exported as the "attribution" stats group (class counters,
 * issue->fill->use delta histograms with P50/P95/P99, per-core class
 * counts) and as Chrome-trace flow events when a timeline is active.
 *
 * Overhead contract: with --attribution unset no Attribution exists
 * and every emit site costs one pointer null-check (the same
 * contract as sim/timeline.hh).
 *
 * Determinism: ids are assigned in simulated push/classify order and
 * every counter derives from simulated state only — byte-identical
 * per seed and shard-invariant. The hot-path line/lineage maps are
 * open-addressed flat tables (no per-insert node allocation at
 * ~100k fills per run); their layout never leaks into results, and
 * the checkpoint code sorts entries by key before serializing so the
 * "attribution" section bytes stay canonical (base/ckpt.hh).
 */

#ifndef MINNOW_MEM_ATTRIBUTION_HH
#define MINNOW_MEM_ATTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "base/ckpt.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "sim/timeline.hh"

namespace minnow::mem
{

/** Outcome-class counters (one aggregate set + one per core). */
struct AttrClassCounts
{
    std::uint64_t timely = 0;
    std::uint64_t late = 0;
    std::uint64_t earlyEvicted = 0;
    std::uint64_t redundant = 0;
    std::uint64_t polluting = 0;

    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(timely);
        ck.io(late);
        ck.io(earlyEvicted);
        ck.io(redundant);
        ck.io(polluting);
    }
};

namespace detail
{

/** splitmix64 finalizer: the flat tables' 64->64 bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

constexpr std::uint64_t
hashKey(std::uint64_t k)
{
    return mix64(k);
}

constexpr std::uint64_t
hashKey(const std::pair<std::uint32_t, Addr> &k)
{
    return mix64(k.second * 0x9e3779b97f4a7c15ULL + k.first);
}

/**
 * Open-addressed hash map (linear probing, backward-shift erase,
 * power-of-two capacity, grown at 3/4 load). The attribution hot
 * path inserts and erases an entry per prefetch fill and per pushed
 * task — ~100k+ of each per run — and node-based maps spent more
 * host time in the allocator than the overhead contract allows.
 * Layout depends only on the insert/erase sequence (keys, never
 * pointers, are hashed), so behavior is deterministic; nothing
 * result-bearing iterates the table, and checkpoint code sorts
 * entries by key before serializing.
 */
template <typename K, typename V>
struct FlatTable
{
    struct Slot
    {
        K key{};
        V val{};
        std::uint8_t used = 0;
    };

    std::vector<Slot> slots;
    std::size_t count = 0;

    std::size_t size() const { return count; }

    std::size_t mask() const { return slots.size() - 1; }

    V *
    find(const K &k)
    {
        if (count == 0)
            return nullptr;
        std::size_t i = hashKey(k) & mask();
        while (slots[i].used) {
            if (slots[i].key == k)
                return &slots[i].val;
            i = (i + 1) & mask();
        }
        return nullptr;
    }

    void
    put(const K &k, const V &v)
    {
        if (slots.empty() || (count + 1) * 4 > slots.size() * 3)
            grow();
        std::size_t i = hashKey(k) & mask();
        while (slots[i].used) {
            if (slots[i].key == k) {
                slots[i].val = v;
                return;
            }
            i = (i + 1) & mask();
        }
        slots[i].key = k;
        slots[i].val = v;
        slots[i].used = 1;
        ++count;
    }

    bool
    erase(const K &k)
    {
        if (count == 0)
            return false;
        std::size_t i = hashKey(k) & mask();
        while (slots[i].used && !(slots[i].key == k))
            i = (i + 1) & mask();
        if (!slots[i].used)
            return false;
        // Backward-shift deletion: pull displaced entries into the
        // hole so probe chains stay intact without tombstones.
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask();
            if (!slots[j].used)
                break;
            std::size_t h = hashKey(slots[j].key) & mask();
            // An entry whose home slot lies cyclically in (i, j]
            // must stay put; anything else fills the hole.
            bool anchored =
                i <= j ? (i < h && h <= j) : (i < h || h <= j);
            if (!anchored) {
                slots[i] = std::move(slots[j]);
                i = j;
            }
        }
        slots[i] = Slot{};
        --count;
        return true;
    }

    void
    clear()
    {
        slots.clear();
        count = 0;
    }

    /** Visit every live entry (layout order — sort before use). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots)
            if (s.used)
                fn(s.key, s.val);
    }

  private:
    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(old.empty() ? 1024 : old.size() * 2, Slot{});
        count = 0;
        for (Slot &s : old)
            if (s.used)
                put(s.key, s.val);
    }
};

} // namespace detail

/** The causal-attribution tracker (owned by the Machine). */
class Attribution
{
  public:
    /**
     * @param reg      registry receiving the "attribution" group.
     * @param tl       timeline for flow arrows (null: stats only).
     * @param numCores core count (per-core counters, track lookup).
     * @param window   pollution / re-miss window in cycles (> 0).
     */
    Attribution(StatsRegistry &reg, timeline::Timeline *tl,
                std::uint32_t numCores, std::uint32_t window);

    Attribution(const Attribution &) = delete;
    Attribution &operator=(const Attribution &) = delete;

    ~Attribution()
    {
        // The "attribution" formulas capture `this`; drop them
        // before the tracker dies (the registry may outlive us).
        if (statsReg_)
            statsReg_->removeGroup("attribution");
    }

    /** Clock used when a hook site has no cycle of its own. */
    void bindClock(const Cycle *now) { now_ = now; }

    Cycle now() const { return now_ ? *now_ : 0; }

    // ---- prefetch lifecycle (called from mem::MemorySystem) ----

    /**
     * A prefetch-marked L2 fill was installed on @p core.
     * @param issue   cycle the prefetch request was issued.
     * @param fill    cycle the line becomes ready (fill arrival).
     * @param lineage trigger task id (0 = none/untracked).
     * @param hw      hardware-prefetcher fill (no engine credits).
     */
    void prefetchFilled(CoreId core, Addr lnum, Cycle issue,
                        Cycle fill, std::uint64_t lineage, bool hw);

    /**
     * A prefetch fill displaced valid line @p victim on @p core: if
     * the victim demand-misses within the window, the displacing
     * prefetch is charged as polluting.
     */
    void fillVictim(CoreId core, Addr victim, Cycle at);

    /** A prefetch hit a line already present or in flight. */
    void prefetchRedundant(CoreId core);

    /**
     * A tracked line was evicted or invalidated before any demand
     * use: early-evicted. The line enters the re-miss window so a
     * demand miss shortly after is attributed (missAfterEvict).
     */
    void prefetchEvicted(CoreId core, Addr lnum);

    /**
     * A demand access consumed a tracked line. @p late is true when
     * the fill was still in flight (hit-under-fill): the class is
     * `late` and the prefetch covered (demand - issue) stall cycles;
     * otherwise `timely`.
     */
    void prefetchDemandUse(CoreId core, Addr lnum, Cycle demand,
                           bool late);

    /**
     * A core demand access missed past the L2: drives the pollution
     * / re-miss windows and the lineage first-miss split.
     */
    void demandMiss(CoreId core, Addr lnum, Cycle at);

    // ---- task lineage (called from sinks / worker loops) ----

    /**
     * Assign a lineage id to a task being pushed from @p core at
     * @p at; store the result in the WorkItem before push. Ids are
     * never 0 (0 marks seeds / untracked items everywhere).
     */
    std::uint64_t pushTask(CoreId core, Cycle at);

    /** The item reached queue storage (engine insert / wl push). */
    void taskEnqueued(std::uint64_t lineage, Cycle at);

    /**
     * A worker on @p core dequeued the item: completes the
     * push->pop flow arrow, samples the critical-path histograms,
     * and makes @p lineage the core's current task for first-miss
     * attribution. Call with lineage 0 to just roll the occupancy.
     */
    void taskDequeued(CoreId core, std::uint64_t lineage, Cycle at);

    // ---- inspection (tests / reports) ----

    std::uint64_t trackedLines() const { return tracked_.size(); }
    std::uint64_t liveLineage() const { return lineage_.size(); }
    const AttrClassCounts &counts() const { return total_; }
    std::uint64_t stallCyclesCovered() const { return stallCovered_; }
    std::uint64_t missAfterEvict() const { return missAfterEvict_; }
    std::uint64_t demandMisses() const { return demandMisses_; }

    /**
     * Serialize all tracker state (ordered containers, so the bytes
     * are deterministic and shard-invariant). Symmetric.
     */
    void checkpoint(ckpt::Ckpt &ck);

  private:
    /** Map key: (core, line number). */
    using Key = std::pair<std::uint32_t, Addr>;

    /** One tracked in-flight/resident prefetched line. */
    struct Tracked
    {
        Cycle issue = 0;
        Cycle fill = 0;
        std::uint64_t lineage = 0;
        std::uint8_t hw = 0;

        void
        checkpoint(ckpt::Ckpt &ck)
        {
            ck.io(issue);
            ck.io(fill);
            ck.io(lineage);
            ck.io(hw);
        }
    };

    /** One in-flight lineage id (assigned at push, drained at pop). */
    struct LineageEntry
    {
        Cycle pushCycle = 0;
        Cycle enqueueCycle = 0;
        std::uint32_t pushCore = 0;

        void
        checkpoint(ckpt::Ckpt &ck)
        {
            ck.io(pushCycle);
            ck.io(enqueueCycle);
            ck.io(pushCore);
        }
    };

    /** Per-core current-task occupancy for first-miss attribution. */
    struct CurTask
    {
        Cycle dequeueCycle = 0;
        std::uint8_t active = 0; //!< lineage != 0 task running.

        void
        checkpoint(ckpt::Ckpt &ck)
        {
            ck.io(dequeueCycle);
            ck.io(active);
        }
    };

    /** A keyed cycle map + FIFO implementing a sliding window. */
    struct Window
    {
        detail::FlatTable<Key, Cycle> at;
        std::deque<std::pair<Cycle, Key>> fifo;

        void insert(const Key &k, Cycle c, Cycle window);
        /** Expire entries older than @p window before @p c. */
        void expire(Cycle c, Cycle window);
        /** Remove and report a live entry for @p k at cycle @p c. */
        bool take(const Key &k, Cycle c, Cycle window);

        void checkpoint(ckpt::Ckpt &ck);
    };

    void charge(CoreId core,
                std::uint64_t AttrClassCounts::*field);
    void emitPrefetchFlow(CoreId core, const Tracked &t, Cycle use,
                          bool late);
    void registerStats(StatsRegistry &reg);

    const Cycle *now_ = nullptr;
    timeline::Timeline *tl_ = nullptr;
    std::uint32_t numCores_;
    std::uint32_t window_;

    detail::FlatTable<Key, Tracked> tracked_;
    Window victims_; //!< lines displaced by prefetch fills.
    Window evicted_; //!< early-evicted prefetched lines.

    detail::FlatTable<std::uint64_t, LineageEntry> lineage_;
    std::vector<CurTask> cur_;
    std::uint64_t nextId_ = 0;

    AttrClassCounts total_;
    std::vector<AttrClassCounts> perCore_;
    std::uint64_t fills_ = 0;
    std::uint64_t stallCovered_ = 0;
    std::uint64_t missAfterEvict_ = 0;
    std::uint64_t demandMisses_ = 0;
    std::uint64_t lineageAssigned_ = 0;
    std::uint64_t lineageDequeued_ = 0;

    // Histograms (registry-owned; see registerStats()).
    HistogramStat *issueToFill_ = nullptr;
    HistogramStat *fillToUse_ = nullptr;
    HistogramStat *issueToUse_ = nullptr;
    HistogramStat *pushToEnqueue_ = nullptr;
    HistogramStat *enqueueToDequeue_ = nullptr;
    HistogramStat *dequeueToFirstMiss_ = nullptr;

    /** Registry holding our "attribution" group (dtor removal). */
    StatsRegistry *statsReg_ = nullptr;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_ATTRIBUTION_HH
