#include "mem/prefetcher.hh"

namespace minnow::mem
{

//
// StridePrefetcher
//

StridePrefetcher::StridePrefetcher(std::uint32_t distance,
                                   std::uint32_t degree)
    : distance_(distance), degree_(degree), table_(kEntries)
{
}

StridePrefetcher::Entry &
StridePrefetcher::entryFor(std::uint16_t site)
{
    return table_[site % kEntries];
}

void
StridePrefetcher::observe(const LoadObservation &obs,
                          std::vector<Addr> &out)
{
    Entry &e = entryFor(obs.site);
    if (!e.valid) {
        e.valid = true;
        e.lastAddr = obs.addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }
    std::int64_t stride = std::int64_t(obs.addr) -
                          std::int64_t(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 4)
            ++e.confidence;
    } else if (stride != 0) {
        e.stride = stride;
        e.confidence = 0;
    }
    // stride == 0 is a re-reference of the same line (a flag poll,
    // a spin loop), not a new stream: leave the learned stride and
    // its confidence untouched.
    e.lastAddr = obs.addr;
    if (e.confidence >= 2 && e.stride != 0) {
        for (std::uint32_t d = 0; d < degree_; ++d) {
            std::int64_t target = std::int64_t(obs.addr) +
                e.stride * std::int64_t(distance_ + d);
            if (target > 0)
                out.push_back(lineAddr(Addr(target)));
        }
    }
}

void
StridePrefetcher::reset()
{
    for (auto &e : table_)
        e = Entry{};
}

//
// ImpPrefetcher
//

ImpPrefetcher::ImpPrefetcher(ValueOracle oracle, std::uint32_t distance)
    : oracle_(std::move(oracle)),
      distance_(distance),
      streams_(kStreams),
      indirects_(kIndirects)
{
}

ImpPrefetcher::StreamEntry &
ImpPrefetcher::streamFor(std::uint16_t site)
{
    return streams_[site % kStreams];
}

ImpPrefetcher::IndirectEntry &
ImpPrefetcher::indirectFor(std::uint16_t site)
{
    return indirects_[site % kIndirects];
}

void
ImpPrefetcher::observe(const LoadObservation &obs,
                       std::vector<Addr> &out)
{
    // Part 1: stride/stream detection on this site.
    StreamEntry &s = streamFor(obs.site);
    bool streaming = false;
    if (!s.valid) {
        s.valid = true;
        s.lastAddr = obs.addr;
        s.stride = 0;
        s.confidence = 0;
    } else {
        std::int64_t stride = std::int64_t(obs.addr) -
                              std::int64_t(s.lastAddr);
        if (stride != 0 && stride == s.stride) {
            if (s.confidence < 4)
                ++s.confidence;
        } else if (stride != 0) {
            s.stride = stride;
            s.confidence = 0;
        }
        s.lastAddr = obs.addr;
        streaming = s.confidence >= 2 && s.stride != 0;
    }
    s.lastValue = obs.value;
    s.hasLastValue = obs.hasValue;

    // Part 2: indirect-pattern training. If the *previous* observed
    // load was an index-carrying stream access with value v, try to
    // explain this load's address as base + (v << shift).
    if (haveLastIndex_ && obs.site != lastIndexSite_) {
        IndirectEntry &ind = indirectFor(obs.site);
        if (!ind.valid && !ind.training) {
            ind.training = true;
            ind.indexSite = lastIndexSite_;
            ind.sampleValue = lastIndexValue_;
            ind.sampleAddr = obs.addr;
        } else if (!ind.valid && ind.training &&
                   ind.indexSite == lastIndexSite_ &&
                   lastIndexValue_ != ind.sampleValue) {
            // Two samples: solve addr = base + (value << shift).
            std::int64_t dAddr = std::int64_t(obs.addr) -
                                 std::int64_t(ind.sampleAddr);
            std::int64_t dVal = std::int64_t(lastIndexValue_) -
                                std::int64_t(ind.sampleValue);
            for (std::uint32_t shift = 0; shift <= 6; ++shift) {
                if (dVal != 0 && dAddr == (dVal << shift)) {
                    ind.valid = true;
                    ind.shift = shift;
                    ind.base = obs.addr -
                        (lastIndexValue_ << shift);
                    ind.confidence = 1;
                    ++patterns_;
                    break;
                }
            }
            if (!ind.valid) {
                // Re-sample; pattern may start later.
                ind.sampleValue = lastIndexValue_;
                ind.sampleAddr = obs.addr;
            }
        } else if (ind.valid && ind.indexSite == lastIndexSite_) {
            // Verify and reinforce / decay.
            Addr predicted = ind.base + (lastIndexValue_ << ind.shift);
            if (predicted == obs.addr) {
                if (ind.confidence < 4)
                    ++ind.confidence;
            } else if (ind.confidence > 0) {
                --ind.confidence;
            } else {
                ind = IndirectEntry{};
            }
        }
    }

    // Part 3: issue. On a confident index stream, prefetch the index
    // line ahead and, for every indirect pattern keyed off this site,
    // read B[i + distance] and prefetch A[B[i + distance]].
    if (streaming) {
        std::int64_t ahead = std::int64_t(obs.addr) +
            s.stride * std::int64_t(distance_);
        if (ahead > 0)
            out.push_back(lineAddr(Addr(ahead)));

        if (obs.hasValue) {
            for (auto &ind : indirects_) {
                if (!ind.valid || ind.indexSite != obs.site ||
                    ind.confidence < 2) {
                    continue;
                }
                std::uint64_t futureVal = 0;
                if (ahead > 0 && oracle_ &&
                    oracle_(Addr(ahead), futureVal)) {
                    out.push_back(lineAddr(
                        ind.base + (futureVal << ind.shift)));
                }
            }
        }
    }

    if (obs.hasValue) {
        lastIndexSite_ = obs.site;
        lastIndexValue_ = obs.value;
        haveLastIndex_ = true;
    }
}

void
ImpPrefetcher::reset()
{
    for (auto &s : streams_)
        s = StreamEntry{};
    for (auto &i : indirects_)
        i = IndirectEntry{};
    haveLastIndex_ = false;
    patterns_ = 0;
}

} // namespace minnow::mem
