/**
 * @file
 * 2-D mesh network-on-chip timing model.
 *
 * Dimension-ordered (X-Y) routing per Table 3: 8x8 mesh, 3 cycles per
 * hop, 512-bit links. A 64 B line plus header is one flit at 512-bit
 * links, so each message occupies each traversed link for one cycle;
 * contention is modelled by per-link next-free bookkeeping.
 */

#ifndef MINNOW_MEM_NOC_HH
#define MINNOW_MEM_NOC_HH

#include <cstdint>
#include <vector>

#include "base/ckpt.hh"
#include "base/types.hh"
#include "mem/bandwidth.hh"
#include "sim/config.hh"

namespace minnow::mem
{

/** Mesh NoC latency/contention model. */
class Noc
{
  public:
    explicit Noc(const NocParams &params);

    /**
     * Send one message from tile @p src to tile @p dst starting at
     * @p start; returns the arrival cycle and books link occupancy.
     */
    Cycle traverse(std::uint32_t src, std::uint32_t dst, Cycle start);

    /** Pure latency of src->dst with an idle network (stats, tests). */
    Cycle idleLatency(std::uint32_t src, std::uint32_t dst) const;

    /** Manhattan hop count between two tiles. */
    std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const;

    std::uint64_t messages() const { return messages_; }
    std::uint64_t totalHops() const { return totalHops_; }
    std::uint64_t contentionCycles() const { return contention_; }

    void
    resetStats()
    {
        messages_ = 0;
        totalHops_ = 0;
        contention_ = 0;
    }

    /**
     * Serialize counters and per-link meter occupancy (BandwidthMeter
     * is trivially copyable, so the link vector transfers in bulk).
     * params_/width_ are construction-time config, covered by the
     * machine-level config fingerprint.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(messages_);
        ck.io(totalHops_);
        ck.io(contention_);
        ck.io(links_);
        ck.transient("params_ width_");
    }

  private:
    /** Links: width*width tiles x 4 directions (E, W, N, S). */
    std::size_t
    linkIndex(std::uint32_t x, std::uint32_t y, int dir) const
    {
        return (std::size_t(y) * width_ + x) * 4 + std::size_t(dir);
    }

    /** One flit per cycle per link -> window-width flits/window. */
    using LinkMeter = BandwidthMeter<5, 16>;

    NocParams params_;
    std::uint32_t width_;
    std::vector<LinkMeter> links_;

    std::uint64_t messages_ = 0;
    std::uint64_t totalHops_ = 0;
    std::uint64_t contention_ = 0;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_NOC_HH
