#include "mem/attribution.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"

namespace minnow::mem
{

Attribution::Attribution(StatsRegistry &reg, timeline::Timeline *tl,
                         std::uint32_t numCores, std::uint32_t window)
    : tl_(tl), numCores_(numCores), window_(window),
      cur_(numCores), perCore_(numCores)
{
    fatal_if(window == 0, "attribution window must be nonzero");
    registerStats(reg);
}

// ---- sliding windows ----

void
Attribution::Window::insert(const Key &k, Cycle c, Cycle window)
{
    expire(c, window);
    at.put(k, c);
    fifo.emplace_back(c, k);
}

void
Attribution::Window::expire(Cycle c, Cycle window)
{
    while (!fifo.empty() && fifo.front().first + window < c) {
        const Cycle *it = at.find(fifo.front().second);
        // Only retire the map entry if this FIFO slot is its latest
        // insertion; a re-inserted key has a younger slot behind us.
        if (it && *it == fifo.front().first)
            at.erase(fifo.front().second);
        fifo.pop_front();
    }
}

bool
Attribution::Window::take(const Key &k, Cycle c, Cycle window)
{
    expire(c, window);
    if (!at.find(k))
        return false;
    at.erase(k); // charge at most once per insertion.
    return true;
}

void
Attribution::Window::checkpoint(ckpt::Ckpt &ck)
{
    std::uint64_t n = at.size();
    ck.io(n);
    if (ck.saving()) {
        // Canonical bytes: the flat table's layout order is an
        // implementation detail, so serialize sorted by key.
        std::vector<std::pair<Key, Cycle>> entries;
        entries.reserve(at.size());
        at.forEach([&](const Key &k, Cycle c) {
            entries.emplace_back(k, c);
        });
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &[k, c] : entries) {
            std::uint32_t core = k.first;
            Addr lnum = k.second;
            Cycle cyc = c;
            ck.io(core);
            ck.io(lnum);
            ck.io(cyc);
        }
    } else {
        at.clear();
        for (std::uint64_t i = 0; i < n && ck.ok(); ++i) {
            std::uint32_t core = 0;
            Addr lnum = 0;
            Cycle cyc = 0;
            ck.io(core);
            ck.io(lnum);
            ck.io(cyc);
            at.put(Key{core, lnum}, cyc);
        }
    }
    std::uint64_t m = fifo.size();
    ck.io(m);
    if (ck.loading())
        fifo.clear();
    for (std::uint64_t i = 0; i < m && ck.ok(); ++i) {
        Cycle cyc = 0;
        std::uint32_t core = 0;
        Addr lnum = 0;
        if (ck.saving()) {
            cyc = fifo[std::size_t(i)].first;
            core = fifo[std::size_t(i)].second.first;
            lnum = fifo[std::size_t(i)].second.second;
        }
        ck.io(cyc);
        ck.io(core);
        ck.io(lnum);
        if (ck.loading())
            fifo.emplace_back(cyc, Key{core, lnum});
    }
}

// ---- prefetch lifecycle ----

void
Attribution::charge(CoreId core,
                    std::uint64_t AttrClassCounts::*field)
{
    total_.*field += 1;
    if (core < perCore_.size())
        perCore_[core].*field += 1;
}

void
Attribution::emitPrefetchFlow(CoreId core, const Tracked &t,
                              Cycle use, bool late)
{
    if (!tl_)
        return;
    timeline::TrackId track = tl_->coreTaskTrack(core);
    if (track == timeline::kNoTrack)
        return;
    std::uint64_t id = ++nextId_;
    tl_->flowStart(track, timeline::Name::PrefetchFlow, t.issue, id);
    // A late use happens before the fill lands; skip the fill leg so
    // the arrow's timestamps stay monotonic.
    if (!late)
        tl_->flowStep(track, timeline::Name::PrefetchFlow, t.fill,
                      id);
    tl_->flowEnd(track, timeline::Name::PrefetchFlow,
                 std::max(use, t.issue), id);
}

void
Attribution::prefetchFilled(CoreId core, Addr lnum, Cycle issue,
                            Cycle fill, std::uint64_t lineage,
                            bool hw)
{
    fills_ += 1;
    // A refill of a still-tracked key (evicted + re-prefetched with
    // the eviction hook missed) cannot happen — every removal path
    // (use/evict/invalidate) erases the entry — but put() overwrites
    // and keeps this self-healing anyway.
    tracked_.put(Key{core, lnum},
                 Tracked{issue, fill, lineage, std::uint8_t(hw)});
}

void
Attribution::fillVictim(CoreId core, Addr victim, Cycle at)
{
    victims_.insert(Key{core, victim}, at, window_);
}

void
Attribution::prefetchRedundant(CoreId core)
{
    charge(core, &AttrClassCounts::redundant);
}

void
Attribution::prefetchEvicted(CoreId core, Addr lnum)
{
    Key k{core, lnum};
    if (!tracked_.find(k))
        return;
    tracked_.erase(k);
    charge(core, &AttrClassCounts::earlyEvicted);
    evicted_.insert(k, now(), window_);
}

void
Attribution::prefetchDemandUse(CoreId core, Addr lnum, Cycle demand,
                               bool late)
{
    Key k{core, lnum};
    const Tracked *it = tracked_.find(k);
    if (!it)
        return;
    Tracked t = *it;
    tracked_.erase(k);
    if (late) {
        charge(core, &AttrClassCounts::late);
        // The prefetch's head start is exactly the stall the demand
        // access did not pay.
        if (demand > t.issue)
            stallCovered_ += demand - t.issue;
        if (issueToUse_ && demand >= t.issue)
            issueToUse_->sample(demand - t.issue);
    } else {
        charge(core, &AttrClassCounts::timely);
        if (fillToUse_ && demand >= t.fill)
            fillToUse_->sample(demand - t.fill);
        if (issueToUse_ && demand >= t.issue)
            issueToUse_->sample(demand - t.issue);
    }
    if (issueToFill_ && t.fill >= t.issue)
        issueToFill_->sample(t.fill - t.issue);
    emitPrefetchFlow(core, t, demand, late);
}

void
Attribution::demandMiss(CoreId core, Addr lnum, Cycle at)
{
    demandMisses_ += 1;
    Key k{core, lnum};
    if (victims_.take(k, at, window_)) {
        // The line a prefetch displaced is wanted again: that
        // prefetch polluted the cache.
        charge(core, &AttrClassCounts::polluting);
    }
    if (evicted_.take(k, at, window_))
        missAfterEvict_ += 1;

    CurTask &c = cur_[core];
    if (c.active) {
        c.active = 0; // first miss only.
        if (dequeueToFirstMiss_ && at >= c.dequeueCycle)
            dequeueToFirstMiss_->sample(at - c.dequeueCycle);
    }
}

// ---- task lineage ----

std::uint64_t
Attribution::pushTask(CoreId core, Cycle at)
{
    std::uint64_t id = ++nextId_;
    lineageAssigned_ += 1;
    lineage_.put(id, LineageEntry{at, 0, core});
    return id;
}

void
Attribution::taskEnqueued(std::uint64_t lineage, Cycle at)
{
    if (!lineage)
        return;
    LineageEntry *e = lineage_.find(lineage);
    if (e && e->enqueueCycle == 0)
        e->enqueueCycle = at;
}

void
Attribution::taskDequeued(CoreId core, std::uint64_t lineage,
                          Cycle at)
{
    if (core < cur_.size()) {
        cur_[core].dequeueCycle = at;
        cur_[core].active = 1;
    }
    if (!lineage)
        return;
    const LineageEntry *it = lineage_.find(lineage);
    if (!it)
        return;
    LineageEntry e = *it;
    lineage_.erase(lineage);
    lineageDequeued_ += 1;
    if (pushToEnqueue_ && e.enqueueCycle >= e.pushCycle &&
        e.enqueueCycle != 0) {
        pushToEnqueue_->sample(e.enqueueCycle - e.pushCycle);
    }
    Cycle from = e.enqueueCycle ? e.enqueueCycle : e.pushCycle;
    if (enqueueToDequeue_ && at >= from)
        enqueueToDequeue_->sample(at - from);
    if (tl_ && at >= e.pushCycle) {
        timeline::TrackId src = tl_->coreTaskTrack(e.pushCore);
        timeline::TrackId dst = tl_->coreTaskTrack(core);
        if (src != timeline::kNoTrack &&
            dst != timeline::kNoTrack) {
            tl_->flowStart(src, timeline::Name::LineageFlow,
                           e.pushCycle, lineage);
            tl_->flowEnd(dst, timeline::Name::LineageFlow, at,
                         lineage);
        }
    }
}

// ---- stats ----

void
Attribution::registerStats(StatsRegistry &reg)
{
    statsReg_ = &reg;
    StatsGroup &g = reg.freshGroup("attribution");

    g.formula("timely", "prefetches consumed after the fill landed",
              [this] { return double(total_.timely); });
    g.formula("late", "prefetches consumed while still in flight",
              [this] { return double(total_.late); });
    g.formula("earlyEvicted",
              "prefetched lines evicted/invalidated before use",
              [this] { return double(total_.earlyEvicted); });
    g.formula("redundant",
              "prefetches to lines already present or in flight",
              [this] { return double(total_.redundant); });
    g.formula("polluting",
              "prefetch fills whose victim re-missed in the window",
              [this] { return double(total_.polluting); });
    g.formula("fills", "prefetch fills tracked",
              [this] { return double(fills_); });
    g.formula("stallCyclesCovered",
              "demand stall cycles absorbed by late prefetch "
              "head starts",
              [this] { return double(stallCovered_); });
    g.formula("missAfterEvict",
              "demand misses on early-evicted lines in the window",
              [this] { return double(missAfterEvict_); });
    g.formula("demandMisses", "demand misses observed past the L2",
              [this] { return double(demandMisses_); });
    g.formula("trackedLines",
              "prefetched lines currently tracked",
              [this] { return double(tracked_.size()); });
    g.formula("coveredPct",
              "covered demand uses of prefetched lines, percent: "
              "100*(timely+late)/(timely+late+missAfterEvict)",
              [this] {
                  double cov = double(total_.timely + total_.late);
                  double denom = cov + double(missAfterEvict_);
                  return denom > 0 ? 100.0 * cov / denom : 0.0;
              });
    g.formula("pollutionPct",
              "polluting fills over all tracked fills, percent",
              [this] {
                  return fills_ ? 100.0 * double(total_.polluting) /
                                      double(fills_)
                                : 0.0;
              });
    g.formula("lineageAssigned", "lineage ids assigned at push",
              [this] { return double(lineageAssigned_); });
    g.formula("lineageDequeued",
              "lineage-tagged tasks delivered to workers",
              [this] { return double(lineageDequeued_); });
    g.formula("lineageLive", "lineage ids pushed but not yet popped",
              [this] { return double(lineage_.size()); });
    g.formula("lineageFanout",
              "average pushes per delivered task",
              [this] {
                  return lineageDequeued_
                             ? double(lineageAssigned_) /
                                   double(lineageDequeued_)
                             : 0.0;
              });

    struct HistDef
    {
        HistogramStat **slot;
        const char *name;
        const char *desc;
        Cycle width;
        std::uint32_t buckets;
    } defs[] = {
        {&issueToFill_, "issueToFill",
         "prefetch issue to fill arrival, cycles", 16, 128},
        {&fillToUse_, "fillToUse",
         "fill arrival to first demand use (timely), cycles", 16,
         128},
        {&issueToUse_, "issueToUse",
         "prefetch issue to first demand use, cycles", 16, 128},
        {&pushToEnqueue_, "pushToEnqueue",
         "parent push to queue arrival, cycles", 64, 256},
        {&enqueueToDequeue_, "enqueueToDequeue",
         "queue arrival to worker dequeue, cycles", 64, 256},
        {&dequeueToFirstMiss_, "dequeueToFirstMiss",
         "dequeue to the task's first demand miss, cycles", 64, 256},
    };
    for (const HistDef &d : defs) {
        HistogramStat &h =
            g.histogram(d.name, d.desc, d.width, d.buckets);
        *d.slot = &h;
        for (double frac : {0.50, 0.95, 0.99}) {
            char name[48];
            std::snprintf(name, sizeof(name), "%sP%.0f", d.name,
                          frac * 100);
            g.formula(name, "delta percentile (cycles)", [&h, frac] {
                return double(h.percentile(frac));
            });
        }
    }

    for (std::uint32_t c = 0; c < numCores_; ++c) {
        struct ClassDef
        {
            const char *name;
            std::uint64_t AttrClassCounts::*field;
        } classes[] = {
            {"timely", &AttrClassCounts::timely},
            {"late", &AttrClassCounts::late},
            {"earlyEvicted", &AttrClassCounts::earlyEvicted},
            {"redundant", &AttrClassCounts::redundant},
            {"polluting", &AttrClassCounts::polluting},
        };
        for (const ClassDef &cd : classes) {
            char name[48];
            std::snprintf(name, sizeof(name), "core%u.%s", c,
                          cd.name);
            const AttrClassCounts *pc = &perCore_[c];
            std::uint64_t AttrClassCounts::*field = cd.field;
            g.formula(name, "per-core prefetch class count",
                      [pc, field] { return double(pc->*field); });
        }
    }
}

void
Attribution::checkpoint(ckpt::Ckpt &ck)
{
    std::uint64_t n = tracked_.size();
    ck.io(n);
    if (ck.saving()) {
        // Sorted-by-key serialization keeps the section bytes
        // canonical regardless of the flat table's layout.
        std::vector<std::pair<Key, Tracked>> entries;
        entries.reserve(tracked_.size());
        tracked_.forEach([&](const Key &k, const Tracked &t) {
            entries.emplace_back(k, t);
        });
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &[k, t] : entries) {
            std::uint32_t core = k.first;
            Addr lnum = k.second;
            ck.io(core);
            ck.io(lnum);
            t.checkpoint(ck);
        }
    } else {
        tracked_.clear();
        for (std::uint64_t i = 0; i < n && ck.ok(); ++i) {
            std::uint32_t core = 0;
            Addr lnum = 0;
            ck.io(core);
            ck.io(lnum);
            Tracked t;
            t.checkpoint(ck);
            tracked_.put(Key{core, lnum}, t);
        }
    }
    victims_.checkpoint(ck);
    evicted_.checkpoint(ck);

    std::uint64_t m = lineage_.size();
    ck.io(m);
    if (ck.saving()) {
        std::vector<std::pair<std::uint64_t, LineageEntry>> live;
        live.reserve(lineage_.size());
        lineage_.forEach(
            [&](std::uint64_t id, const LineageEntry &e) {
                live.emplace_back(id, e);
            });
        std::sort(live.begin(), live.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &[id, e] : live) {
            std::uint64_t key = id;
            ck.io(key);
            e.checkpoint(ck);
        }
    } else {
        lineage_.clear();
        for (std::uint64_t i = 0; i < m && ck.ok(); ++i) {
            std::uint64_t key = 0;
            ck.io(key);
            LineageEntry e;
            e.checkpoint(ck);
            lineage_.put(key, e);
        }
    }
    ck.io(cur_);
    ck.io(nextId_);
    total_.checkpoint(ck);
    ck.io(perCore_);
    ck.io(fills_);
    ck.io(stallCovered_);
    ck.io(missAfterEvict_);
    ck.io(demandMisses_);
    ck.io(lineageAssigned_);
    ck.io(lineageDequeued_);
    ck.transient("now_ tl_ numCores_ window_ issueToFill_ fillToUse_"
                 " issueToUse_ pushToEnqueue_ enqueueToDequeue_"
                 " dequeueToFirstMiss_ statsReg_");
}

} // namespace minnow::mem
