/**
 * @file
 * Baseline hardware L2 prefetchers: classic per-PC stride, and IMP
 * (Yu et al., MICRO-48) — the indirect memory prefetcher the paper
 * compares against in Figs. 17 and 20.
 *
 * Both observe the demand load stream of one core at its L2 and emit
 * candidate prefetch line addresses. They are mechanisms from the
 * literature, not oracles: IMP must *learn* the A[B[i]] coefficient
 * from (index value, subsequent address) samples before it can issue,
 * and needs several constant-stride observations to detect a stream.
 * Reading the index array ahead of the demand stream uses a value
 * oracle supplied by the memory system, which stands in for the
 * hardware's ability to inspect returned fill data.
 *
 * Per the paper's re-tuning (Section 6.3.3) tables are sized 4x the
 * original publication and the prefetch distance is 4.
 */

#ifndef MINNOW_MEM_PREFETCHER_HH
#define MINNOW_MEM_PREFETCHER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hh"

namespace minnow::mem
{

/**
 * Reads functional memory at a simulated address, as prefetch
 * hardware does with fill data. Returns false if the address is not
 * backed by a registered array.
 */
using ValueOracle = std::function<bool(Addr addr, std::uint64_t &value)>;

/** One demand-load observation handed to a prefetcher. */
struct LoadObservation
{
    Addr addr = 0;           //!< byte address of the demand load.
    std::uint16_t site = 0;  //!< load-site tag (PC proxy).
    std::uint64_t value = 0; //!< value loaded (for index detection).
    bool hasValue = false;
};

/** Interface for table-based L2 prefetchers. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one demand load; append prefetch *line* addresses to
     * @p out (deduplication is the caller's problem).
     */
    virtual void observe(const LoadObservation &obs,
                         std::vector<Addr> &out) = 0;

    /** Drop learned state (between benchmark runs). */
    virtual void reset() = 0;
};

/** Classic per-site stride prefetcher with confidence counters. */
class StridePrefetcher : public Prefetcher
{
  public:
    /**
     * @param distance How many strides ahead to prefetch.
     * @param degree   Prefetches issued per triggering access.
     */
    explicit StridePrefetcher(std::uint32_t distance = 4,
                              std::uint32_t degree = 2);

    void observe(const LoadObservation &obs,
                 std::vector<Addr> &out) override;
    void reset() override;

  private:
    struct Entry
    {
        bool valid = false;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
    };

    static constexpr std::uint32_t kEntries = 256;

    Entry &entryFor(std::uint16_t site);

    std::uint32_t distance_;
    std::uint32_t degree_;
    std::vector<Entry> table_;
};

/**
 * IMP: stride-detects an index stream B[i], learns the linear map
 * addr = base + (B[i] << shift) between index values and the
 * addresses of a dependent load A[B[i]], then prefetches
 * A[B[i + distance]] by reading B ahead of the demand stream.
 */
class ImpPrefetcher : public Prefetcher
{
  public:
    explicit ImpPrefetcher(ValueOracle oracle,
                           std::uint32_t distance = 4);

    void observe(const LoadObservation &obs,
                 std::vector<Addr> &out) override;
    void reset() override;

    /** Learned-pattern count (tests / debugging). */
    std::uint32_t patternsLearned() const { return patterns_; }

  private:
    /** Stride/stream tracking per load site (4x original sizing). */
    struct StreamEntry
    {
        bool valid = false;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastValue = 0;
        bool hasLastValue = false;
    };

    /** Index->indirect correlation state. */
    struct IndirectEntry
    {
        bool valid = false;          //!< pattern confirmed.
        bool training = false;       //!< one sample captured.
        std::uint16_t indexSite = 0; //!< site of the index stream.
        std::uint64_t sampleValue = 0;
        Addr sampleAddr = 0;
        Addr base = 0;
        std::uint32_t shift = 0;
        std::uint32_t confidence = 0;
    };

    static constexpr std::uint32_t kStreams = 64;   // 16 x4 per paper.
    static constexpr std::uint32_t kIndirects = 64;

    StreamEntry &streamFor(std::uint16_t site);
    IndirectEntry &indirectFor(std::uint16_t site);

    ValueOracle oracle_;
    std::uint32_t distance_;
    std::vector<StreamEntry> streams_;
    std::vector<IndirectEntry> indirects_;
    std::uint16_t lastIndexSite_ = 0;
    std::uint64_t lastIndexValue_ = 0;
    bool haveLastIndex_ = false;
    std::uint32_t patterns_ = 0;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_PREFETCHER_HH
