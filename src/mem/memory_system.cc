#include "mem/memory_system.hh"

#include <algorithm>

#include "base/bits.hh"
#include "base/logging.hh"
#include "base/trace.hh"
#include "mem/attribution.hh"
#include "sim/fault.hh"
#include "sim/hostprof.hh"

namespace minnow::mem
{

namespace
{

/** Extra latency of a locked RMW beyond the plain store path. */
constexpr Cycle kAtomicOpLatency = 15;

} // anonymous namespace

MemorySystem::MemorySystem(const MachineConfig &cfg)
    : cfg_(cfg),
      noc_(cfg.noc),
      dram_(cfg.dram),
      stats_(cfg.numCores)
{
    fatal_if(cfg.numCores > 64,
             "directory sharer mask limits the model to 64 cores");
    l1_.reserve(cfg.numCores);
    l2_.reserve(cfg.numCores);
    l3_.reserve(cfg.numCores);
    for (std::uint32_t i = 0; i < cfg.numCores; ++i) {
        l1_.emplace_back(cfg.l1d);
        l2_.emplace_back(cfg.l2);
        l3_.emplace_back(cfg.l3Bank);
    }
    if (cfg.prefetcher != PrefetcherKind::None) {
        hwPrefetchers_.resize(cfg.numCores);
        for (std::uint32_t i = 0; i < cfg.numCores; ++i) {
            if (cfg.prefetcher == PrefetcherKind::Stride) {
                hwPrefetchers_[i] =
                    std::make_unique<StridePrefetcher>();
            } else {
                hwPrefetchers_[i] = std::make_unique<ImpPrefetcher>(
                    [this](Addr a, std::uint64_t &v) {
                        return oracle_ ? oracle_(a, v) : false;
                    });
            }
        }
    }
}

void
MemorySystem::setValueOracle(ValueOracle oracle)
{
    oracle_ = std::move(oracle);
}

std::uint32_t
MemorySystem::bankOf(Addr lnum) const
{
    return std::uint32_t(hashMix(lnum) % cfg_.numCores);
}

void
MemorySystem::invalidatePrivate(CoreId core, Addr lnum)
{
    CacheLine *line = l2_[core].lookup(lnum);
    if (line) {
        if (line->prefetch) {
            stats_[core].prefetchInvalidated += 1;
            if (attr_)
                attr_->prefetchEvicted(core, lnum);
            if (!line->prefetchHw) {
                if (pfLinesTracked_)
                    --pfLinesTracked_;
                if (creditHook_)
                    creditHook_(core, false);
            }
        }
        if (line->dirty)
            stats_[core].writebacks += 1;
        // The lookup above already found the frame; invalidate in
        // place instead of paying a second set walk.
        line->valid = false;
    }
    l1_[core].invalidate(lnum);
    stats_[core].invalidationsTaken += 1;
}

void
MemorySystem::handleL2Eviction(CoreId core, const Eviction &ev)
{
    if (!ev.valid)
        return;
    // L2 is inclusive of L1: the L1 copy must go too.
    l1_[core].invalidate(ev.lineNum);
    if (ev.prefetch) {
        stats_[core].prefetchEvictedUnused += 1;
        if (attr_)
            attr_->prefetchEvicted(core, ev.lineNum);
        if (!ev.prefetchHw) {
            if (pfLinesTracked_)
                --pfLinesTracked_;
            if (creditHook_)
                creditHook_(core, false);
        }
    }
    auto it = directory_.find(ev.lineNum);
    if (it != directory_.end()) {
        it->second.sharers &= ~(std::uint64_t(1) << core);
        if (it->second.owner == std::int32_t(core))
            it->second.owner = -1;
        if (it->second.sharers == 0 && it->second.owner < 0)
            directory_.erase(it); // snoop filter entry retires.
    }
    if (ev.dirty) {
        stats_[core].writebacks += 1;
        // Victim-fill the (non-inclusive) L3 with the dirty line.
        std::uint32_t bank = bankOf(ev.lineNum);
        CacheLine *l3line = l3_[bank].lookup(ev.lineNum);
        if (!l3line) {
            Eviction l3ev;
            l3line = l3_[bank].fill(ev.lineNum, false, l3ev);
            if (l3ev.valid && l3ev.dirty)
                dram_.access(l3ev.lineNum, 0); // writeback traffic.
        }
        l3line->dirty = true;
    }
}

CacheLine *
MemorySystem::fillL3(std::uint32_t bank, Addr lnum)
{
    // Non-inclusive (Skylake-like) L3: victims do not back-
    // invalidate private copies; the directory is a standalone
    // snoop filter.
    Eviction ev;
    CacheLine *line = l3_[bank].fill(lnum, false, ev);
    if (ev.valid && ev.dirty)
        dram_.access(ev.lineNum, 0); // book writeback bandwidth.
    return line;
}

AccessResult
MemorySystem::access(const MemAccess &req)
{
    HostProfScope hp(HostClass::Memory);
    panic_if(req.core >= cfg_.numCores, "access from bogus core %u",
             req.core);
    MemStats &st = stats_[req.core];
    const bool isWrite = req.type != AccessType::Load;
    const Addr lnum = lineNum(req.addr);
    Cycle t = req.when;
    AccessResult res;

    if (req.engine) {
        st.engineAccesses += 1;
    } else {
        switch (req.type) {
          case AccessType::Load: st.loads += 1; break;
          case AccessType::Store: st.stores += 1; break;
          case AccessType::Atomic: st.atomics += 1; break;
        }
    }

    const Cycle extra =
        req.type == AccessType::Atomic ? kAtomicOpLatency : 0;
    // Serialize same-line RMWs: the earliest this atomic may begin
    // its locked phase is when the previous one on the line ends.
    auto serializeAtomic = [&](Cycle done) {
        if (req.type != AccessType::Atomic)
            return done;
        Cycle &busy = atomicBusy_[lnum];
        Cycle start = std::max(done - extra, busy);
        done = start + extra;
        busy = done;
        return done;
    };

    // ---- L1 (cores only; engines attach at L2) ----
    if (!req.engine) {
        CacheLine *line = l1_[req.core].lookup(lnum);
        if (line && (!isWrite || line->exclusive)) {
            if (isWrite) {
                line->dirty = true;
                if (CacheLine *l2line = l2_[req.core].lookup(lnum))
                    l2line->dirty = true;
            }
            st.l1Hits += 1;
            res.done = serializeAtomic(t + cfg_.l1d.latency + extra);
            res.level = HitLevel::L1;
            if (!isWrite)
                runHwPrefetcher(req, t);
            return res;
        }
        t += cfg_.l1d.latency;
    }

    // ---- L2 ----
    CacheLine *l2line = l2_[req.core].lookup(lnum);
    if (l2line && (!isWrite || l2line->exclusive)) {
        Cycle done = t + cfg_.l2.latency;
        const Cycle demandAt = done;
        const bool underFill = l2line->readyAt > done;
        if (underFill) {
            // Fill still in flight (late prefetch): wait for it.
            done = l2line->readyAt;
            st.l2HitsUnderFill += 1;
            if (l2line->prefetch && !req.prefetch)
                st.prefetchUsedLate += 1;
        }
        if (l2line->prefetch && !req.prefetch) {
            bool hw = l2line->prefetchHw;
            l2line->prefetch = false;
            l2line->prefetchHw = false;
            st.prefetchUsed += 1;
            res.hitPrefetched = true;
            if (attr_) {
                attr_->prefetchDemandUse(req.core, lnum, demandAt,
                                         underFill);
            }
            if (!hw) {
                if (pfLinesTracked_)
                    --pfLinesTracked_;
                if (creditHook_)
                    creditHook_(req.core, true);
            }
        } else if (req.prefetch) {
            if (l2line->prefetch)
                st.prefetchRedundant += 1;
            if (attr_)
                attr_->prefetchRedundant(req.core);
        }
        if (isWrite)
            l2line->dirty = true;
        if (!req.engine && !req.prefetch) {
            // Refill L1 under inclusion. A single walk serves both
            // the refill check and the write-dirty update (hoisted
            // from a probe + a second lookup): nothing between the
            // two steps can displace the line.
            CacheLine *f = l1_[req.core].lookup(lnum);
            if (!f) {
                Eviction ev;
                f = l1_[req.core].fill(lnum, false, ev);
                f->exclusive = l2line->exclusive;
                // L1 victims stay in L2 (dirty already propagated).
            }
            if (isWrite)
                f->dirty = true;
        }
        st.l2Hits += 1;
        res.done = serializeAtomic(done + extra);
        res.level = HitLevel::L2;
        if (!isWrite && !req.engine)
            runHwPrefetcher(req, t);
        return res;
    }

    // ---- Miss in the private hierarchy: consult the directory ----
    DPRINTF(Cache, "cache", "[%u] L2 miss %s addr=%#llx%s%s",
            req.core, isWrite ? "store" : "load",
            (unsigned long long)req.addr,
            req.engine ? " (engine)" : "",
            req.prefetch ? " (prefetch)" : "");
    if (!req.engine && !req.prefetch) {
        st.l2DemandMisses += 1;
        if (attr_)
            attr_->demandMiss(req.core, lnum, req.when);
    }
    t += cfg_.l2.latency;

    const std::uint32_t bank = bankOf(lnum);
    t = noc_.traverse(tileOf(req.core), tileOf(bank), t);
    if (faults_)
        t += faults_->nocExtraDelay();

    // Directory (snoop filter) and L3 are consulted together; a
    // dirty remote copy is forwarded cache-to-cache even when the
    // non-inclusive L3 no longer holds the line.
    CacheLine *l3line = l3_[bank].lookup(lnum);
    auto [dirIt, dirInserted] = directory_.try_emplace(lnum);
    DirEntry *dir = &dirIt->second;
    bool remoteDirty = dir->owner >= 0 &&
                       dir->owner != std::int32_t(req.core);
    if (l3line || remoteDirty) {
        t += cfg_.l3Bank.latency;
        st.l3Hits += 1;
        res.level = HitLevel::L3;
    } else {
        t += cfg_.l3Bank.latency; // tag + filter miss detection.
        t = dram_.access(lnum, t);
        if (faults_)
            t += faults_->dramExtraDelay();
        st.memAccesses += 1;
        // l3line must be re-established after dram_.access(): the
        // frame only exists once fillL3() installs it, and the fill
        // may displace a dirty victim whose writeback has to be
        // booked against DRAM after the demand access above. The
        // pre-directory lookup result (a miss) cannot be hoisted
        // over that; fillL3 hands back the new frame so no second
        // set walk is paid.
        l3line = fillL3(bank, lnum);
        res.level = HitLevel::Mem;
    }

    // Coherence actions against other private copies.
    const std::uint64_t self = std::uint64_t(1) << req.core;
    if (isWrite) {
        std::uint64_t others = dir->sharers & ~self;
        if (others) {
            Cycle worst = 0;
            std::uint64_t scan = others;
            while (scan) {
                CoreId c = CoreId(std::countr_zero(scan));
                scan &= scan - 1;
                invalidatePrivate(c, lnum);
                worst = std::max(worst,
                                 noc_.idleLatency(tileOf(bank),
                                                  tileOf(c)));
                st.invalidationsSent += 1;
            }
            t += 2 * worst; // round trip to the furthest sharer.
        }
        if (dir->owner >= 0 && dir->owner != std::int32_t(req.core)
            && l3line) {
            l3line->dirty = true; // dirty data was pulled back.
        }
        dir->sharers = self;
        dir->owner = std::int32_t(req.core);
    } else {
        if (dir->owner >= 0 && dir->owner != std::int32_t(req.core)) {
            // Dirty intervention: fetch from the owning core.
            CoreId owner = CoreId(dir->owner);
            t += 2 * noc_.idleLatency(tileOf(bank), tileOf(owner));
            if (CacheLine *oline = l2_[owner].lookup(lnum)) {
                oline->dirty = false;
                oline->exclusive = false;
            }
            if (CacheLine *o1 = l1_[owner].lookup(lnum)) {
                o1->dirty = false;
                o1->exclusive = false;
            }
            if (l3line) {
                l3line->dirty = true;
            } else {
                // Fold the forwarded dirty data into the L3.
                Eviction l3ev;
                CacheLine *nl = l3_[bank].fill(lnum, false, l3ev);
                nl->dirty = true;
                if (l3ev.valid && l3ev.dirty)
                    dram_.access(l3ev.lineNum, 0);
            }
            stats_[owner].writebacks += 1;
            dir->owner = -1;
        }
        dir->sharers |= self;
    }
    const bool sole = dir->sharers == self;

    // ---- Response and private fills ----
    t = noc_.traverse(tileOf(bank), tileOf(req.core), t);
    if (faults_)
        t += faults_->nocExtraDelay();
    Cycle done = t;

    Eviction ev;
    CacheLine *fill2 = l2_[req.core].fill(lnum, req.prefetch, ev);
    handleL2Eviction(req.core, ev);
    fill2->exclusive = isWrite || sole;
    fill2->dirty = isWrite;
    if (req.prefetch) {
        fill2->readyAt = done;
        fill2->prefetchHw = req.hwPrefetch;
        st.prefetchFills += 1;
        res.prefetchFilled = true;
        if (!req.hwPrefetch)
            ++pfLinesTracked_;
        if (attr_) {
            if (ev.valid)
                attr_->fillVictim(req.core, ev.lineNum, done);
            attr_->prefetchFilled(req.core, lnum, req.when, done,
                                  req.lineage, req.hwPrefetch);
        }
    } else if (!req.engine) {
        Eviction ev1;
        CacheLine *fill1 = l1_[req.core].fill(lnum, false, ev1);
        fill1->exclusive = fill2->exclusive;
        fill1->dirty = isWrite;
        // L1 victim remains in L2; dirty state was kept in sync.
    }

    res.done = serializeAtomic(done + extra);
    if (!isWrite && !req.engine)
        runHwPrefetcher(req, req.when);
    return res;
}

void
MemorySystem::runHwPrefetcher(const MemAccess &req, Cycle when)
{
    if (hwPrefetchers_.empty() || req.engine || inPrefetchIssue_ ||
        req.type != AccessType::Load || req.prefetch) {
        return;
    }
    pfScratch_.clear();
    LoadObservation obs{req.addr, req.site, req.value, req.hasValue};
    hwPrefetchers_[req.core]->observe(obs, pfScratch_);
    if (pfScratch_.empty())
        return;
    inPrefetchIssue_ = true;
    for (Addr target : pfScratch_) {
        Addr lnum = lineNum(target);
        if (l2_[req.core].probe(lnum)) {
            stats_[req.core].prefetchRedundant += 1;
            if (attr_)
                attr_->prefetchRedundant(req.core);
            continue;
        }
        // Injected fault: the prefetch request is lost in flight.
        if (faults_ && faults_->dropPrefetch(req.core))
            continue;
        MemAccess pf;
        pf.addr = target;
        pf.type = AccessType::Load;
        pf.core = req.core;
        pf.when = when;
        pf.engine = true;
        pf.prefetch = true;
        pf.hwPrefetch = true;
        access(pf);
    }
    inPrefetchIssue_ = false;
}

void
MemorySystem::flushAll()
{
    for (auto &c : l1_)
        c.flushAll();
    for (auto &c : l2_)
        c.flushAll();
    for (auto &c : l3_)
        c.flushAll();
    directory_.clear();
    atomicBusy_.clear();
    pfLinesTracked_ = 0;
    for (auto &pf : hwPrefetchers_) {
        if (pf)
            pf->reset();
    }
}

void
MemorySystem::resetStats()
{
    for (auto &s : stats_)
        s = MemStats{};
    noc_.resetStats();
    dram_.resetStats();
}

MemStats
MemorySystem::totals() const
{
    MemStats t;
    for (const auto &s : stats_) {
        t.loads += s.loads;
        t.stores += s.stores;
        t.atomics += s.atomics;
        t.engineAccesses += s.engineAccesses;
        t.l1Hits += s.l1Hits;
        t.l2Hits += s.l2Hits;
        t.l2HitsUnderFill += s.l2HitsUnderFill;
        t.l2DemandMisses += s.l2DemandMisses;
        t.l3Hits += s.l3Hits;
        t.memAccesses += s.memAccesses;
        t.invalidationsSent += s.invalidationsSent;
        t.invalidationsTaken += s.invalidationsTaken;
        t.writebacks += s.writebacks;
        t.prefetchFills += s.prefetchFills;
        t.prefetchUsed += s.prefetchUsed;
        t.prefetchUsedLate += s.prefetchUsedLate;
        t.prefetchEvictedUnused += s.prefetchEvictedUnused;
        t.prefetchInvalidated += s.prefetchInvalidated;
        t.prefetchRedundant += s.prefetchRedundant;
    }
    return t;
}

void
MemorySystem::report(StatsReport &out, const std::string &prefix) const
{
    MemStats t = totals();
    out.add(prefix + ".loads", double(t.loads));
    out.add(prefix + ".stores", double(t.stores));
    out.add(prefix + ".atomics", double(t.atomics));
    out.add(prefix + ".engineAccesses", double(t.engineAccesses));
    out.add(prefix + ".l1Hits", double(t.l1Hits));
    out.add(prefix + ".l2Hits", double(t.l2Hits));
    out.add(prefix + ".l2DemandMisses", double(t.l2DemandMisses));
    out.add(prefix + ".l3Hits", double(t.l3Hits));
    out.add(prefix + ".memAccesses", double(t.memAccesses));
    out.add(prefix + ".writebacks", double(t.writebacks));
    out.add(prefix + ".invalidationsSent",
            double(t.invalidationsSent));
    out.add(prefix + ".prefetchFills", double(t.prefetchFills));
    out.add(prefix + ".prefetchUsed", double(t.prefetchUsed));
    out.add(prefix + ".prefetchUsedLate", double(t.prefetchUsedLate));
    out.add(prefix + ".prefetchEvictedUnused",
            double(t.prefetchEvictedUnused));
    out.add(prefix + ".nocMessages", double(noc_.messages()));
    out.add(prefix + ".nocContention",
            double(noc_.contentionCycles()));
    out.add(prefix + ".dramAccesses", double(dram_.accesses()));
    out.add(prefix + ".dramQueueCycles", double(dram_.queueCycles()));
}

namespace
{

/**
 * Register every MemStats field of @p s into @p g as dump-time
 * formulas, plus the derived prefetch metrics: accuracy (used fills
 * over all fills) and coverage (demand misses absorbed by prefetched
 * lines over all would-be misses).
 */
void
registerMemStats(StatsGroup &g, const MemStats *s)
{
    auto count = [&](const char *name, const char *desc,
                     const std::uint64_t *field) {
        g.formula(name, desc, [field] { return double(*field); });
    };
    count("loads", "demand loads observed", &s->loads);
    count("stores", "stores observed", &s->stores);
    count("atomics", "atomic RMWs observed", &s->atomics);
    count("engineAccesses", "Minnow engine L2 accesses",
          &s->engineAccesses);
    count("l1Hits", "hits in the private L1D", &s->l1Hits);
    count("l2Hits", "hits in the private L2", &s->l2Hits);
    count("l2HitsUnderFill", "demand hits on in-flight prefetches",
          &s->l2HitsUnderFill);
    count("l2DemandMisses", "core demand misses past the L2",
          &s->l2DemandMisses);
    count("l3Hits", "hits in the shared L3", &s->l3Hits);
    count("memAccesses", "accesses served by DRAM", &s->memAccesses);
    count("invalidationsSent", "invalidations issued by the directory",
          &s->invalidationsSent);
    count("invalidationsTaken", "invalidations absorbed",
          &s->invalidationsTaken);
    count("writebacks", "dirty evictions written back",
          &s->writebacks);
    count("prefetchFills", "prefetch-marked L2 fills",
          &s->prefetchFills);
    count("prefetchUsed", "prefetched lines consumed by demand",
          &s->prefetchUsed);
    count("prefetchUsedLate", "prefetches consumed while in flight",
          &s->prefetchUsedLate);
    count("prefetchEvictedUnused", "prefetched lines evicted unused",
          &s->prefetchEvictedUnused);
    count("prefetchInvalidated", "prefetched lines invalidated",
          &s->prefetchInvalidated);
    count("prefetchRedundant", "prefetches to already-present lines",
          &s->prefetchRedundant);
    g.formula("prefetchAccuracy",
              "fraction of prefetch fills consumed by demand", [s] {
                  return s->prefetchFills
                             ? double(s->prefetchUsed) /
                                   double(s->prefetchFills)
                             : 0.0;
              });
    g.formula("prefetchCoverage",
              "demand misses absorbed by prefetched lines", [s] {
                  std::uint64_t wouldMiss =
                      s->prefetchUsed + s->l2DemandMisses;
                  return wouldMiss ? double(s->prefetchUsed) /
                                         double(wouldMiss)
                                   : 0.0;
              });
}

} // anonymous namespace

void
MemorySystem::registerCoreStats(StatsGroup &g, CoreId i)
{
    registerMemStats(g, &stats_[i]);
}

void
MemorySystem::registerStats(StatsRegistry &reg)
{
    statsReg_ = &reg;
    StatsGroup &g = reg.group("mem");
    // Totals are recomputed per formula evaluation; that is O(cores)
    // work paid only at dump/sample time.
    auto total = [&](const char *name, const char *desc,
                     std::uint64_t MemStats::*field) {
        g.formula(name, desc, [this, field] {
            return double(totals().*field);
        });
    };
    total("loads", "demand loads observed", &MemStats::loads);
    total("stores", "stores observed", &MemStats::stores);
    total("atomics", "atomic RMWs observed", &MemStats::atomics);
    total("engineAccesses", "Minnow engine L2 accesses",
          &MemStats::engineAccesses);
    total("l1Hits", "hits in private L1Ds", &MemStats::l1Hits);
    total("l2Hits", "hits in private L2s", &MemStats::l2Hits);
    total("l2DemandMisses", "core demand misses past the L2",
          &MemStats::l2DemandMisses);
    total("l3Hits", "hits in the shared L3", &MemStats::l3Hits);
    total("memAccesses", "accesses served by DRAM",
          &MemStats::memAccesses);
    total("writebacks", "dirty evictions written back",
          &MemStats::writebacks);
    total("invalidationsSent",
          "invalidations issued by the directory",
          &MemStats::invalidationsSent);
    total("prefetchFills", "prefetch-marked L2 fills",
          &MemStats::prefetchFills);
    total("prefetchUsed", "prefetched lines consumed by demand",
          &MemStats::prefetchUsed);
    total("prefetchUsedLate", "prefetches consumed while in flight",
          &MemStats::prefetchUsedLate);
    total("prefetchEvictedUnused",
          "prefetched lines evicted unused",
          &MemStats::prefetchEvictedUnused);
    g.formula("prefetchAccuracy",
              "fraction of prefetch fills consumed by demand",
              [this] {
                  MemStats t = totals();
                  return t.prefetchFills
                             ? double(t.prefetchUsed) /
                                   double(t.prefetchFills)
                             : 0.0;
              });
    g.formula("prefetchCoverage",
              "demand misses absorbed by prefetched lines", [this] {
                  MemStats t = totals();
                  std::uint64_t wouldMiss =
                      t.prefetchUsed + t.l2DemandMisses;
                  return wouldMiss ? double(t.prefetchUsed) /
                                         double(wouldMiss)
                                   : 0.0;
              });
    g.formula("nocMessages", "NoC messages routed",
              [this] { return double(noc_.messages()); });
    g.formula("nocContention", "NoC cycles lost to link contention",
              [this] { return double(noc_.contentionCycles()); });
    g.formula("dramAccesses", "DRAM line transfers",
              [this] { return double(dram_.accesses()); });
    g.formula("dramQueueCycles", "DRAM channel queueing cycles",
              [this] { return double(dram_.queueCycles()); });
}

void
MemorySystem::checkpoint(ckpt::Ckpt &ck)
{
    auto ioArrays = [&ck](std::vector<CacheArray> &v) {
        std::uint64_t n = v.size();
        ck.io(n);
        if (ck.loading() && n != v.size()) {
            ck.fail("cache array count mismatch");
            return;
        }
        for (CacheArray &a : v)
            a.checkpoint(ck);
    };
    ioArrays(l1_);
    ioArrays(l2_);
    ioArrays(l3_);

    auto ioAddrMap = [&ck](auto &m) {
        using Mapped = typename std::decay_t<decltype(m)>::mapped_type;
        std::uint64_t n = m.size();
        ck.io(n);
        if (ck.saving()) {
            std::vector<Addr> keys;
            keys.reserve(m.size());
            for (const auto &[k, v] : m)
                keys.push_back(k);
            std::sort(keys.begin(), keys.end());
            for (Addr k : keys) {
                ck.io(k);
                ck.io(m.at(k));
            }
        } else {
            m.clear();
            for (std::uint64_t i = 0; i < n && ck.ok(); ++i) {
                Addr k = 0;
                ck.io(k);
                Mapped v{};
                ck.io(v);
                m.emplace(k, v);
            }
        }
    };
    ioAddrMap(directory_);
    ioAddrMap(atomicBusy_);

    noc_.checkpoint(ck);
    dram_.checkpoint(ck);
    ck.io(stats_);
    ck.io(pfLinesTracked_);
    ck.transient("cfg_ creditHook_ attr_ faults_ hwPrefetchers_"
                 " oracle_ pfScratch_ inPrefetchIssue_ statsReg_");
}

bool
MemorySystem::inL1(CoreId core, Addr addr) const
{
    return l1_[core].probe(lineNum(addr)) != nullptr;
}

bool
MemorySystem::inL2(CoreId core, Addr addr) const
{
    return l2_[core].probe(lineNum(addr)) != nullptr;
}

bool
MemorySystem::inL3(Addr addr) const
{
    Addr lnum = lineNum(addr);
    return l3_[bankOf(lnum)].probe(lnum) != nullptr;
}

} // namespace minnow::mem
