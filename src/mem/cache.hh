/**
 * @file
 * Set-associative cache array with LRU replacement.
 *
 * This class is pure mechanism: lookup, fill, invalidate. Policy
 * (coherence, inclusion, prefetch-credit accounting) lives in
 * MemorySystem. Each line carries the 1-bit prefetch metadata from
 * Section 5.3.1 of the paper, plus dirty/exclusive state used by the
 * MESI-lite directory.
 */

#ifndef MINNOW_MEM_CACHE_HH
#define MINNOW_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/bits.hh"
#include "base/ckpt.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "sim/config.hh"

namespace minnow::mem
{

/** State of one cache line frame. */
struct CacheLine
{
    Addr tag = 0;            //!< full line address (addr >> 6).
    bool valid = false;
    bool dirty = false;
    bool exclusive = false;  //!< holder may write without an upgrade.
    bool prefetch = false;   //!< prefetched, not yet used.
    bool prefetchHw = false; //!< by a HW prefetcher (no credit).
    std::uint64_t lru = 0;   //!< last-touch stamp for replacement.
    Cycle readyAt = 0;       //!< fill-in-flight until this cycle.

    // Per-member (the bool run leaves padding before lru, and
    // padding bytes must never reach a checkpoint stream).
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(tag);
        ck.io(valid);
        ck.io(dirty);
        ck.io(exclusive);
        ck.io(prefetch);
        ck.io(prefetchHw);
        ck.io(lru);
        ck.io(readyAt);
    }
};

/** Result of a fill: which line (if any) was evicted. */
struct Eviction
{
    bool valid = false;      //!< a victim was displaced.
    Addr lineNum = 0;        //!< victim line number.
    bool dirty = false;
    bool prefetch = false;   //!< victim was an unused prefetch.
    bool prefetchHw = false; //!< victim was a HW-prefetched line.
};

/** A single cache structure (one level, one bank). */
class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params)
        : assoc_(params.assoc),
          sets_(params.sets()),
          setMask_(params.sets() - 1),
          lines_(std::size_t(params.sets()) * params.assoc)
    {
        panic_if(!isPow2(sets_), "set count must be a power of two");
    }

    /** Look up a line; returns the frame or nullptr, touching LRU. */
    CacheLine *
    lookup(Addr lnum)
    {
        CacheLine *set = setFor(lnum);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].valid && set[w].tag == lnum) {
                set[w].lru = ++stamp_;
                return &set[w];
            }
        }
        return nullptr;
    }

    /** Look up without disturbing LRU (for probes and stats). */
    const CacheLine *
    probe(Addr lnum) const
    {
        const CacheLine *set = setFor(lnum);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].valid && set[w].tag == lnum)
                return &set[w];
        }
        return nullptr;
    }

    /**
     * Insert a line, evicting the LRU frame of its set if needed.
     *
     * @param lnum      Line number to insert.
     * @param isPrefetch Mark the line with the prefetch bit.
     * @param[out] ev   Describes the displaced victim, if any.
     * @return The filled frame.
     */
    CacheLine *
    fill(Addr lnum, bool isPrefetch, Eviction &ev)
    {
        CacheLine *set = setFor(lnum);
        CacheLine *victim = &set[0];
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
            if (set[w].lru < victim->lru)
                victim = &set[w];
        }
        ev = Eviction{};
        if (victim->valid) {
            ev.valid = true;
            ev.lineNum = victim->tag;
            ev.dirty = victim->dirty;
            ev.prefetch = victim->prefetch;
            ev.prefetchHw = victim->prefetchHw;
        }
        victim->tag = lnum;
        victim->valid = true;
        victim->dirty = false;
        victim->exclusive = false;
        victim->prefetch = isPrefetch;
        victim->prefetchHw = false;
        victim->lru = ++stamp_;
        victim->readyAt = 0;
        return victim;
    }

    /** Drop a line if present; returns true if it was there. */
    bool
    invalidate(Addr lnum)
    {
        CacheLine *set = setFor(lnum);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].valid && set[w].tag == lnum) {
                set[w].valid = false;
                return true;
            }
        }
        return false;
    }

    /** Invalidate everything (context-switch / between-run reset). */
    void
    flushAll()
    {
        for (auto &line : lines_)
            line.valid = false;
    }

    /** Count of currently valid lines (tests and occupancy stats). */
    std::uint64_t
    validLines() const
    {
        std::uint64_t n = 0;
        for (const auto &line : lines_)
            n += line.valid;
        return n;
    }

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return assoc_; }

    /**
     * Serialize the full array state. CacheLine is a trivially
     * copyable POD, so the whole frame vector goes through in one
     * bulk transfer; symmetric (loads as well as saves).
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(assoc_);
        ck.io(sets_);
        ck.io(setMask_);
        ck.io(stamp_);
        ck.io(lines_);
    }

  private:
    CacheLine *
    setFor(Addr lnum)
    {
        return &lines_[std::size_t(lnum & setMask_) * assoc_];
    }

    const CacheLine *
    setFor(Addr lnum) const
    {
        return &lines_[std::size_t(lnum & setMask_) * assoc_];
    }

    std::uint32_t assoc_;
    std::uint32_t sets_;
    Addr setMask_;
    std::uint64_t stamp_ = 0;
    std::vector<CacheLine> lines_;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_CACHE_HH
