/**
 * @file
 * Multi-channel DRAM timing model.
 *
 * Each channel is a bandwidth-limited server metered over fixed time
 * windows (see BandwidthMeter): a line transfer books one unit of its
 * channel's per-window capacity and sees the fixed access latency
 * plus any wait for a window with spare capacity. Lines are spread
 * across channels by address hash. This is deliberately simple —
 * Fig. 21 only needs the latency-vs-bandwidth transition to emerge
 * as channels are removed.
 */

#ifndef MINNOW_MEM_DRAM_HH
#define MINNOW_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "base/bits.hh"
#include "base/ckpt.hh"
#include "base/types.hh"
#include "mem/bandwidth.hh"
#include "sim/config.hh"

namespace minnow::mem
{

/** Channel-interleaved DRAM model. */
class Dram
{
  public:
    explicit Dram(const DramParams &params)
        : params_(params),
          serviceCycles_((params.serviceFp128 + 127) / 128)
    {
        // Transfers per 128-cycle window at this channel rate.
        std::uint32_t perWindow = std::uint32_t(
            (Meter::kWindow * 128) / params.serviceFp128);
        if (perWindow == 0)
            perWindow = 1;
        channels_.assign(params.channels, Meter(perWindow));
    }

    /** Channel for a line (hash-interleaved). */
    std::uint32_t
    channelOf(Addr lnum) const
    {
        return std::uint32_t(hashMix(lnum) % params_.channels);
    }

    /**
     * Service one line read/write arriving at @p arrival.
     * @return Completion cycle of the data transfer.
     */
    Cycle
    access(Addr lnum, Cycle arrival)
    {
        ++accesses_;
        std::uint32_t chan = channelOf(lnum);
        Cycle start = channels_[chan].reserve(arrival);
        if (start > arrival)
            queueCycles_ += start - arrival;
        return start + serviceCycles_ + params_.accessLatency;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t queueCycles() const { return queueCycles_; }

    void
    resetStats()
    {
        accesses_ = 0;
        queueCycles_ = 0;
    }

    /**
     * Serialize counters and per-channel meter occupancy in bulk.
     * params_/serviceCycles_ are construction-time config, covered by
     * the machine-level config fingerprint.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(accesses_);
        ck.io(queueCycles_);
        ck.io(channels_);
        ck.transient("params_ serviceCycles_");
    }

  private:
    using Meter = BandwidthMeter<7, 32>;

    DramParams params_;
    Cycle serviceCycles_;
    std::vector<Meter> channels_;

    std::uint64_t accesses_ = 0;
    std::uint64_t queueCycles_ = 0;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_DRAM_HH
