/**
 * @file
 * Windowed bandwidth meter.
 *
 * Timing requests arrive out of order in simulated time (cores and
 * engines run ahead of the global clock by bounded and occasionally
 * large skews, e.g. dependent-load chains). A single next-free cursor
 * mis-serializes such streams catastrophically: one far-future
 * reservation blocks every later near-term request. Instead, each
 * resource (DRAM channel, NoC link) meters capacity per fixed time
 * window over a small ring: a request books the first window at or
 * after its arrival with spare capacity, independent of the order
 * requests are presented in.
 */

#ifndef MINNOW_MEM_BANDWIDTH_HH
#define MINNOW_MEM_BANDWIDTH_HH

#include <array>
#include <cstdint>

#include "base/ckpt.hh"
#include "base/types.hh"

namespace minnow::mem
{

/**
 * Capacity meter over fixed windows with a ring buffer.
 *
 * @tparam WindowBits log2 of the window width in cycles.
 * @tparam RingSize   Number of windows tracked around each request.
 */
template <unsigned WindowBits = 7, unsigned RingSize = 32>
class BandwidthMeter
{
  public:
    explicit BandwidthMeter(std::uint32_t capacityPerWindow = 1)
        : capacity_(capacityPerWindow)
    {
        slots_.fill(Slot{});
    }

    void setCapacity(std::uint32_t c) { capacity_ = c; }

    static constexpr Cycle kWindow = Cycle(1) << WindowBits;

    /**
     * Book one transfer arriving at @p t.
     * @return Start cycle of service (>= t); t + RingSize windows if
     *         everything in range is saturated (overload penalty).
     */
    Cycle
    reserve(Cycle t)
    {
        std::uint64_t w = t >> WindowBits;
        for (unsigned i = 0; i < RingSize; ++i) {
            std::uint64_t idx = w + i;
            Slot &s = slots_[idx % RingSize];
            if (s.epoch != idx) {
                // A stale (or never-used) slot: recycle it for this
                // window. Slots behind the booking frontier cannot
                // be revisited because arrival skew is bounded.
                s.epoch = idx;
                s.used = 0;
            }
            if (s.used < capacity_) {
                s.used += 1;
                Cycle windowStart = Cycle(idx) << WindowBits;
                return t > windowStart ? t : windowStart;
            }
        }
        return t + (Cycle(RingSize) << WindowBits);
    }

    /** Capacity check without booking (tests). */
    std::uint32_t
    usedInWindow(Cycle t) const
    {
        std::uint64_t idx = t >> WindowBits;
        const Slot &s = slots_[idx % RingSize];
        return s.epoch == idx ? s.used : 0;
    }

    // Per-member: Slot carries 4 padding bytes after `used`, which
    // must not leak into a checkpoint stream.
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(capacity_);
        for (Slot &s : slots_) {
            ck.io(s.epoch);
            ck.io(s.used);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t epoch = ~std::uint64_t(0);
        std::uint32_t used = 0;
    };

    std::uint32_t capacity_;
    std::array<Slot, RingSize> slots_;
};

} // namespace minnow::mem

#endif // MINNOW_MEM_BANDWIDTH_HH
