/**
 * @file
 * Machine-level Minnow wiring and the Minnow executor.
 *
 * MinnowSystem owns the shared software global queue and one engine
 * per core, registers the L2 credit hook and the termination hooks,
 * and seeds initial work. runMinnow() drives application workers
 * whose scheduling is fully offloaded: workers only issue
 * minnow_enqueue / minnow_dequeue accelerator calls, so scheduling
 * leaves their critical path — the paper's headline mechanism.
 */

#ifndef MINNOW_MINNOW_MINNOW_SYSTEM_HH
#define MINNOW_MINNOW_MINNOW_SYSTEM_HH

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "galois/executor.hh"
#include "minnow/engine.hh"
#include "minnow/global_queue.hh"
#include "runtime/machine.hh"

namespace minnow::minnowengine
{

/** All Minnow hardware attached to one machine. */
class MinnowSystem
{
  public:
    /**
     * @param machine Host machine (cfg.minnow.enabled must be set).
     * @param lgBucketInterval Bucket interval of the offloaded OBIM.
     * @param program Prefetch program description for the engines.
     * @param engines Number of engines to attach (= worker count).
     */
    MinnowSystem(runtime::Machine *machine,
                 std::uint32_t lgBucketInterval,
                 const PrefetchProgram &program,
                 std::uint32_t engines);

    /** Drops the "worklist" stats group (formulas capture this). */
    ~MinnowSystem();

    MinnowEngine &engine(CoreId core)
    {
        return *engines_[core / coresPerEngine_];
    }
    MinnowGlobalQueue &globalQueue() { return global_; }
    std::uint32_t numEngines() const
    {
        return std::uint32_t(engines_.size());
    }

    /**
     * Seed initial tasks: scatter across engine local queues round-
     * robin (half-filling them), overflow into the global queue.
     */
    void seedInitial(const std::vector<worklist::WorkItem> &items);

    /** Start every engine's fill daemon (call once, before run). */
    void startDaemons();

    /** Aggregate engine statistics. */
    EngineStats totals() const;

  private:
    runtime::Machine *machine_;
    MinnowGlobalQueue global_;
    std::uint32_t coresPerEngine_ = 1;
    std::vector<std::unique_ptr<MinnowEngine>> engines_;
};

/** TaskSink that issues minnow_enqueue accelerator calls. */
class EngineSink : public apps::TaskSink
{
  public:
    explicit EngineSink(MinnowSystem *sys) : sys_(sys) {}

    runtime::CoTask<void>
    put(runtime::SimContext &ctx, worklist::WorkItem item) override
    {
        timeline::Timeline *tl = ctx.machine().timeline.get();
        mem::Attribution *attr = ctx.machine().attribution.get();
        Cycle pushStart = ctx.machine().eq.now();
        if (attr)
            item.lineage = attr->pushTask(ctx.id(), pushStart);
        co_await sys_->engine(ctx.id()).enqueue(ctx, item);
        if (tl) {
            Cycle now = ctx.machine().eq.now();
            tl->span(tl->coreTaskTrack(ctx.id()),
                     timeline::Name::Push, pushStart, now);
            tl->taskSample(timeline::TaskPhase::Push,
                           now - pushStart);
        }
    }

  private:
    MinnowSystem *sys_;
};

/**
 * Execute @p app under Minnow offload with cfg.threads workers.
 * Prefetching follows machine.cfg.minnow.prefetchEnabled.
 *
 * @param lgBucketInterval Bucket interval for the offloaded global
 *                         priority worklist.
 */
galois::RunResult runMinnow(runtime::Machine &machine,
                            apps::App &app,
                            std::uint32_t lgBucketInterval,
                            const galois::RunConfig &cfg,
                            EngineStats *engineTotals = nullptr);

/** Build the PrefetchProgram matching an application. */
PrefetchProgram programFor(const apps::App &app);

} // namespace minnow::minnowengine

#endif // MINNOW_MINNOW_MINNOW_SYSTEM_HH
