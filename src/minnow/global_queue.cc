#include "minnow/global_queue.hh"

#include <algorithm>

#include "base/logging.hh"
#include "minnow/engine.hh"
#include "sim/hostprof.hh"

namespace minnow::minnowengine
{

using runtime::CoTask;

MinnowGlobalQueue::MinnowGlobalQueue(SimAlloc *alloc,
                                     std::uint32_t lgBucketInterval,
                                     std::uint32_t packages)
    : alloc_(alloc), lg_(lgBucketInterval),
      packages_(std::max(1u, packages))
{
    mapLine_ = alloc->alloc("minnow.globalq.map", 64);
}

MinnowGlobalQueue::Bucket &
MinnowGlobalQueue::ensureBucket(std::int64_t b)
{
    HostProfScope hp(HostClass::Worklist);
    auto it = buckets_.find(b);
    if (it == buckets_.end()) {
        Bucket bkt;
        bkt.sub.resize(packages_);
        for (auto &sl : bkt.sub) {
            sl.base = alloc_->allocAnon(64);
            sl.itemsBase = alloc_->allocAnon(
                kBucketRingSlots * worklist::kItemBytes);
        }
        it = buckets_.emplace(b, std::move(bkt)).first;
    }
    return it->second;
}

std::int64_t
MinnowGlobalQueue::minBucket() const
{
    HostProfScope hp(HostClass::Worklist);
    for (const auto &[b, bkt] : buckets_) {
        if (bkt.total() > 0)
            return b;
    }
    return kNoBucket;
}

void
MinnowGlobalQueue::pushInitial(WorkItem item)
{
    Bucket &bkt = ensureBucket(bucketOf(item));
    // Scatter seeds round-robin over the sublists.
    bkt.sub[size_ % packages_].items.push_back(item);
    size_ += 1;
}

void
MinnowGlobalQueue::pushInitialBatch(const std::vector<WorkItem> &items)
{
    for (const WorkItem &item : items)
        pushInitial(item);
}

CoTask<void>
MinnowGlobalQueue::spill(ThreadletCtx &tc, WorkItem item)
{
    std::vector<WorkItem> one{item};
    co_await spillBatch(tc, one, bucketOf(item),
                        tc.engine().coreId() % packages_);
}

CoTask<void>
MinnowGlobalQueue::spillBatch(ThreadletCtx &tc,
                              const std::vector<WorkItem> &items,
                              std::int64_t bucket, std::uint32_t pkg)
{
    // NOTE: concurrent fills may erase empty buckets during any
    // suspension; never hold a Bucket reference across a co_await.
    pkg %= packages_;
    tc.exec(6);
    // Ordered-map probe, then lock our package's sublist head.
    co_await tc.load(mapLine_);
    tc.exec(4);
    Addr head = ensureBucket(bucket).sub[pkg].base;
    co_await tc.atomic(head);
    // Touch one line per four task records written.
    std::size_t i = 0;
    while (i < items.size()) {
        Addr slotAddr;
        {
            SubList &sl = ensureBucket(bucket).sub[pkg];
            slotAddr = itemAddr(sl, sl.items.size() + i);
        }
        co_await tc.load(slotAddr);
        i += 4;
        tc.exec(3);
    }
    SubList &sl = ensureBucket(bucket).sub[pkg];
    for (const WorkItem &item : items)
        sl.items.push_back(item);
    size_ += items.size();
    spillCount_ += items.size();
}

CoTask<std::uint32_t>
MinnowGlobalQueue::fill(
    ThreadletCtx &tc, std::uint32_t max,
    // LINT-OK(coro-suspend-safety): every caller co_awaits fill()
    std::vector<WorkItem> &out, std::int64_t &bucket,
    std::uint32_t pkg)
{
    pkg %= packages_;
    tc.exec(6);
    co_await tc.load(mapLine_);

    bucket = kNoBucket;
    std::uint32_t got = 0;
    // Stream the globally best tasks: drain ascending buckets until
    // the burst is filled (a fill crossing a thin bucket boundary
    // costs one more scan step, not a round trip). Bounded so a
    // single fill cannot monopolize the engine.
    for (int rounds = 0; rounds < 8 && got < max; ++rounds) {
        // Find the lowest non-empty bucket, erasing drained ones.
        std::int64_t found = kNoBucket;
        for (auto it = buckets_.begin(); it != buckets_.end();) {
            tc.exec(3);
            if (it->second.total() > 0) {
                found = it->first;
                break;
            }
            it = buckets_.erase(it);
        }
        if (found == kNoBucket)
            break;
        if (bucket == kNoBucket)
            bucket = found;

        // Drain its sublists: own package first, then round-robin.
        // Re-find everything by key after each suspension.
        for (std::uint32_t i = 0; i < packages_ && got < max; ++i) {
            std::uint32_t p = (pkg + i) % packages_;
            {
                auto it = buckets_.find(found);
                if (it == buckets_.end())
                    break; // vanished; rescan in the next round.
                if (it->second.sub[p].items.empty())
                    continue;
                co_await tc.atomic(it->second.sub[p].base);
            }
            while (got < max) {
                auto it = buckets_.find(found);
                if (it == buckets_.end() ||
                    it->second.sub[p].items.empty()) {
                    break; // drained (possibly by a racing engine).
                }
                // One line covers several task records.
                Addr slotAddr =
                    itemAddr(it->second.sub[p],
                             it->second.sub[p].items.size());
                co_await tc.load(slotAddr);
                it = buckets_.find(found);
                if (it == buckets_.end() ||
                    it->second.sub[p].items.empty()) {
                    break;
                }
                out.push_back(it->second.sub[p].items.front());
                it->second.sub[p].items.pop_front();
                size_ -= 1;
                got += 1;
                tc.exec(2);
            }
        }
    }
    if (got > 0)
        fillCount_ += 1;
    co_return got;
}

CoTask<bool>
MinnowGlobalQueue::popSoftware(runtime::SimContext &ctx,
                               WorkItem &out, std::uint32_t pkg)
{
    runtime::PhaseGuard guard(ctx, cpu::Phase::Worklist);
    pkg %= packages_;
    co_await ctx.sync();
    ctx.compute(6);
    Cycle t = ctx.load(mapLine_);

    // Same bucket-scan shape as fill(), but issued from the worker
    // core itself: a faulted engine's core pays full software
    // scheduling cost. One item per call keeps the baseline path's
    // pop granularity.
    for (int rounds = 0; rounds < 8; ++rounds) {
        std::int64_t found = kNoBucket;
        for (auto it = buckets_.begin(); it != buckets_.end();) {
            ctx.compute(3, t);
            if (it->second.total() > 0) {
                found = it->first;
                break;
            }
            it = buckets_.erase(it);
        }
        if (found == kNoBucket)
            co_return false;

        for (std::uint32_t i = 0; i < packages_; ++i) {
            std::uint32_t p = (pkg + i) % packages_;
            {
                auto it = buckets_.find(found);
                if (it == buckets_.end())
                    break; // vanished; rescan in the next round.
                if (it->second.sub[p].items.empty())
                    continue;
                co_await ctx.atomicAccess(it->second.sub[p].base);
            }
            // Re-find after the suspension: a racing engine may have
            // drained the sublist or erased the bucket entirely.
            auto it = buckets_.find(found);
            if (it == buckets_.end() || it->second.sub[p].items.empty())
                continue;
            ctx.load(itemAddr(it->second.sub[p],
                              it->second.sub[p].items.size()));
            ctx.compute(2);
            out = it->second.sub[p].items.front();
            it->second.sub[p].items.pop_front();
            size_ -= 1;
            softwarePops_ += 1;
            co_return true;
        }
    }
    co_return false;
}

} // namespace minnow::minnowengine
