#include "minnow/minnow_system.hh"

#include "base/logging.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"

namespace minnow::minnowengine
{

using runtime::CoTask;
using runtime::Machine;
using runtime::SimContext;

MinnowSystem::MinnowSystem(Machine *machine,
                           std::uint32_t lgBucketInterval,
                           const PrefetchProgram &program,
                           std::uint32_t engines)
    : machine_(machine),
      global_(&machine->alloc, lgBucketInterval)
{
    fatal_if(!machine->cfg.minnow.enabled,
             "MinnowSystem on a machine without minnow.enabled");
    fatal_if(engines == 0 || engines > machine->cfg.numCores,
             "bad engine count %u", engines);
    coresPerEngine_ =
        std::max(1u, machine->cfg.minnow.coresPerEngine);
    std::uint32_t numEngines =
        (engines + coresPerEngine_ - 1) / coresPerEngine_;
    engines_.reserve(numEngines);
    for (std::uint32_t e = 0; e < numEngines; ++e) {
        // A shared engine attaches to its first core's L2.
        engines_.push_back(std::make_unique<MinnowEngine>(
            machine, CoreId(e * coresPerEngine_), &global_,
            program));
        // Spec-slot deposits may only target cores that run workers
        // (the last shared engine can be partial).
        std::uint32_t lo = e * coresPerEngine_;
        std::uint32_t hi = std::min(engines, lo + coresPerEngine_);
        engines_.back()->setActiveCores(hi - lo);
    }
    // Route L2 prefetch-bit credit returns to the owning engine.
    machine->memory.setCreditHook(
        [this](CoreId core, bool used) {
            std::size_t e = core / coresPerEngine_;
            if (e < engines_.size())
                engines_[e]->creditReturn(used);
        });
    // Release blocked cores / parked daemons at termination.
    for (auto &eng : engines_) {
        MinnowEngine *raw = eng.get();
        machine->monitor.subscribeTermination(
            [raw] { raw->onTerminate(); });
    }
    // Schedule any engine_kill/engine_stall/credit_starve clauses
    // aimed at our engines.
    if (machine->faults) {
        for (auto &eng : engines_)
            eng->armFaults(*machine->faults);
    }
    // Global-queue visibility in stats dumps and watchdog
    // diagnostics (fresh per run; removed again in the destructor).
    StatsGroup &wg = machine->stats.freshGroup("worklist");
    wg.formula("size", "tasks in the software global queue",
               [this] { return double(global_.size()); });
    wg.formula("spills", "tasks spilled by engines",
               [this] { return double(global_.spills()); });
    wg.formula("fills", "engine fill batches served",
               [this] { return double(global_.fills()); });
    wg.formula("softwarePops",
               "degraded-mode pops by workers of faulted engines",
               [this] { return double(global_.softwarePops()); });
    if (machine->timeline) {
        machine->timeline->addCounterProvider(
            timeline::Cat::Worklist, "worklist.globalDepth", this,
            [this] { return double(global_.size()); });
    }
    // Checkpoint sections for the run-scoped scheduler state: the
    // software global queue (symmetric) and each engine (save-only
    // witness; see DESIGN.md section 5i).
    machine->addCkptHook("globalq", [this](ckpt::Ckpt &ck) {
        global_.checkpoint(ck);
    });
    for (std::size_t e = 0; e < engines_.size(); ++e) {
        MinnowEngine *raw = engines_[e].get();
        machine->addCkptHook("minnow" + std::to_string(e),
                             [raw](ckpt::Ckpt &ck) {
                                 raw->checkpoint(ck);
                             });
    }
}

MinnowSystem::~MinnowSystem()
{
    machine_->removeCkptHook("globalq");
    for (std::size_t e = 0; e < engines_.size(); ++e)
        machine_->removeCkptHook("minnow" + std::to_string(e));
    machine_->stats.removeGroup("worklist");
    // Providers capture this (stack-local) system; the timeline
    // outlives it.
    if (machine_->timeline)
        machine_->timeline->removeProviders(this);
}

void
MinnowSystem::seedInitial(const std::vector<worklist::WorkItem> &items)
{
    // Half-fill local queues round-robin (mirrors Galois's initial
    // range distribution), spill the rest to the global queue.
    std::uint32_t capPerEngine =
        machine_->cfg.minnow.localQueueEntries / 2;
    if (capPerEngine == 0)
        capPerEngine = 1;
    std::size_t i = 0;
    for (std::uint32_t round = 0;
         round < capPerEngine && i < items.size(); ++round) {
        for (auto &eng : engines_) {
            if (i >= items.size())
                break;
            // Private localQ insert: pending but not stealable.
            machine_->monitor.addWork(1, false);
            eng->seedLocal(items[i++]);
        }
    }
    std::uint64_t spilled = 0;
    for (; i < items.size(); ++i) {
        global_.pushInitial(items[i]);
        ++spilled;
    }
    if (spilled)
        machine_->monitor.addWork(spilled, true);
}

void
MinnowSystem::startDaemons()
{
    for (auto &eng : engines_)
        eng->startDaemon();
}

EngineStats
MinnowSystem::totals() const
{
    EngineStats t;
    for (const auto &eng : engines_) {
        const EngineStats &s = eng->stats();
        t.enqueues += s.enqueues;
        t.dequeues += s.dequeues;
        t.dequeueLocalHits += s.dequeueLocalHits;
        t.dequeueBlocks += s.dequeueBlocks;
        t.spillsSpawned += s.spillsSpawned;
        t.fillBatches += s.fillBatches;
        t.itemsFilled += s.itemsFilled;
        t.prefetchTasks += s.prefetchTasks;
        t.prefetchEdges += s.prefetchEdges;
        t.prefetchLoads += s.prefetchLoads;
        t.creditStalls += s.creditStalls;
        t.loadBufStalls += s.loadBufStalls;
        t.threadletsSpawned += s.threadletsSpawned;
        t.prefetchDeferred += s.prefetchDeferred;
        t.prefetchPendingPeak =
            std::max(t.prefetchPendingPeak, s.prefetchPendingPeak);
        t.prefetchCancelled += s.prefetchCancelled;
        t.cuBusyCycles += s.cuBusyCycles;
        t.faultKills += s.faultKills;
        t.faultStalls += s.faultStalls;
        t.tasksRescued += s.tasksRescued;
        t.fallbackPops += s.fallbackPops;
        t.prefetchDropped += s.prefetchDropped;
        t.creditsLost += s.creditsLost;
        t.dequeueBundleTasks += s.dequeueBundleTasks;
        t.pushFlushes += s.pushFlushes;
        t.pushedBatched += s.pushedBatched;
        t.creditFlushes += s.creditFlushes;
        t.creditsBatched += s.creditsBatched;
        t.creditHandoffs += s.creditHandoffs;
        t.specDeposits += s.specDeposits;
        t.specHits += s.specHits;
        t.specReclaims += s.specReclaims;
        t.dqDoorbellCycles += s.dqDoorbellCycles;
        t.dqWaitCycles += s.dqWaitCycles;
        t.dqDeliverCycles += s.dqDeliverCycles;
    }
    return t;
}

PrefetchProgram
programFor(const apps::App &app)
{
    PrefetchProgram p;
    p.graph = &app.graph();
    p.splitThreshold = app.splitThreshold();
    p.chaseAdjacency = app.prefetchChasesAdjacency();
    p.taskStale = app.staleTaskPredicate();
    return p;
}

namespace
{

struct WorkerState
{
    std::uint64_t pops = 0;
};

CoTask<void>
minnowWorker(SimContext &ctx, MinnowEngine &eng, apps::App &app,
             EngineSink &sink, WorkerState &state)
{
    timeline::Timeline *tl = ctx.machine().timeline.get();
    timeline::TrackId taskTrack = tl
        ? tl->coreTaskTrack(ctx.id())
        : timeline::kNoTrack;
    // Dequeue bundling (--dequeue-batch): one engine round-trip
    // returns up to k tasks; the rest of the bundle is consumed with
    // a couple of local instructions per pop. k == 1 takes exactly
    // the single-task accelerator-call path.
    const std::uint32_t batch =
        std::max(1u, ctx.machine().cfg.minnow.dequeueBatch);
    std::vector<worklist::WorkItem> bundle;
    std::size_t bundleNext = 0;
    for (;;) {
        ctx.core().setPhase(cpu::Phase::Worklist);
        Cycle dqStart = ctx.machine().eq.now();
        std::optional<worklist::WorkItem> item;
        if (bundleNext < bundle.size()) {
            item = bundle[bundleNext++];
            ctx.compute(2);
            co_await ctx.sync();
        } else if (batch > 1) {
            bundle.clear();
            bundleNext = 0;
            std::uint32_t got =
                co_await eng.dequeueBatch(ctx, bundle, batch);
            if (got > 0)
                item = bundle[bundleNext++];
        } else {
            item = co_await eng.dequeue(ctx);
        }
        if (!item)
            break;
        if (mem::Attribution *attr =
                ctx.machine().attribution.get()) {
            attr->taskDequeued(ctx.id(), item->lineage,
                               ctx.machine().eq.now());
        }
        if (tl) {
            Cycle now = ctx.machine().eq.now();
            tl->span(taskTrack, timeline::Name::Dequeue, dqStart,
                     now);
            tl->taskSample(timeline::TaskPhase::Dequeue,
                           now - dqStart);
            // Per-pop wait-for-task latency: ~0 for bundle-local
            // and spec-slot pops, a round-trip (plus any park time)
            // for engine calls — the batching scoreboard.
            tl->taskSample(timeline::TaskPhase::PopWait,
                           now - dqStart);
        }
        state.pops += 1;
        ctx.core().setPhase(cpu::Phase::App);
        Cycle execStart = ctx.machine().eq.now();
        co_await app.process(ctx, *item, sink);
        co_await ctx.sync();
        if (tl) {
            Cycle now = ctx.machine().eq.now();
            tl->span(taskTrack, timeline::Name::Task, execStart,
                     now);
            tl->taskSample(timeline::TaskPhase::Execute,
                           now - execStart);
        }
    }
    ctx.core().setPhase(cpu::Phase::Idle);
}

} // anonymous namespace

galois::RunResult
runMinnow(Machine &machine, apps::App &app,
          std::uint32_t lgBucketInterval,
          const galois::RunConfig &cfg, EngineStats *engineTotals)
{
    fatal_if(cfg.threads == 0, "need at least one worker");
    fatal_if(cfg.threads > machine.cfg.numCores,
             "%u workers > %u cores", cfg.threads,
             machine.cfg.numCores);
    fatal_if(cfg.serialRelaxed,
             "the relaxed serial baseline does not use Minnow");

    machine.monitor.reset(cfg.threads);
    app.resetCounters();

    MinnowSystem sys(&machine, lgBucketInterval, programFor(app),
                     cfg.threads);
    sys.seedInitial(app.initialWork());
    sys.startDaemons();

    std::vector<std::unique_ptr<SimContext>> contexts;
    std::vector<WorkerState> states(cfg.threads);
    std::vector<CoTask<void>> workers;
    EngineSink sink(&sys);
    contexts.reserve(cfg.threads);
    workers.reserve(cfg.threads);
    for (std::uint32_t i = 0; i < cfg.threads; ++i) {
        contexts.push_back(
            std::make_unique<SimContext>(&machine, i));
        contexts.back()->engine = &sys.engine(i);
        workers.push_back(minnowWorker(*contexts[i], sys.engine(i),
                                       app, sink, states[i]));
    }
    for (auto &w : workers)
        w.start();

    bool interrupted = galois::runEventLoop(machine, cfg);

    // The credit hook captures the (stack-local) MinnowSystem;
    // detach it before the system goes out of scope.
    machine.memory.setCreditHook(nullptr);

    bool timedOut = !interrupted && !machine.monitor.terminated();
    if (timedOut) {
        warn("minnow run of %s timed out after %llu events",
             app.name().c_str(),
             (unsigned long long)cfg.maxEvents);
    }
    std::uint64_t pops = 0;
    for (const auto &s : states)
        pops += s.pops;
    galois::RunResult r = galois::collectResult(
        machine, app, cfg.threads, timedOut, pops);
    r.interrupted = interrupted;
    if (engineTotals)
        *engineTotals = sys.totals();
    if (cfg.verify && !timedOut && !interrupted)
        r.verified = app.verify();
    return r;
}

} // namespace minnow::minnowengine
