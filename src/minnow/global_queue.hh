/**
 * @file
 * The global priority worklist that Minnow engines run in software
 * (Section 5.2 / Fig. 13).
 *
 * It is a simplified OBIM: a concurrent ordered map from bucket
 * number to an unordered task list. All timed accesses are made by
 * engine threadlets through their core's L2 (the EngineContext),
 * which is what decentralizes the design: spilled tasks live in the
 * ordinary cache hierarchy, not in dedicated buffers.
 */

#ifndef MINNOW_MINNOW_GLOBAL_QUEUE_HH
#define MINNOW_MINNOW_GLOBAL_QUEUE_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "base/ckpt.hh"
#include "base/sim_alloc.hh"
#include "runtime/task.hh"
#include "worklist/worklist.hh"

namespace minnow::minnowengine
{

class ThreadletCtx;

using worklist::WorkItem;

/** Software global priority worklist shared by all Minnow engines. */
class MinnowGlobalQueue
{
  public:
    static constexpr std::int64_t kNoBucket =
        std::numeric_limits<std::int64_t>::max();

    /**
     * @param alloc Simulated address allocator.
     * @param lgBucketInterval OBIM bucket = priority >> this.
     * @param packages Per-bucket sublist count: engines spill/fill
     *        their own package's sublist first (the same topology
     *        trick Galois OBIM uses), so bucket-head atomics from
     *        different packages proceed in parallel.
     */
    MinnowGlobalQueue(SimAlloc *alloc,
                      std::uint32_t lgBucketInterval,
                      std::uint32_t packages = 8);

    std::int64_t bucketOf(const WorkItem &item) const
    {
        return item.priority >> lg_;
    }

    /** Functional: total queued items. */
    std::uint64_t size() const { return size_; }

    /** Functional: lowest non-empty bucket (kNoBucket if empty). */
    std::int64_t minBucket() const;

    /** Functional-only seeding before simulated time starts. */
    void pushInitial(WorkItem item);

    /** Functional batch variant of pushInitial (rescue paths). */
    void pushInitialBatch(const std::vector<WorkItem> &items);

    /**
     * Timed spill of one task, executed by an engine threadlet.
     * The monitor transfer to "stealable" is the caller's job.
     */
    runtime::CoTask<void> spill(ThreadletCtx &tc, WorkItem item);

    /**
     * Timed spill of a batch of same-bucket tasks: one map probe and
     * one head atomic amortized over the whole batch (the grouped
     * operations of Section 5.2).
     */
    runtime::CoTask<void> spillBatch(ThreadletCtx &tc,
                                     const std::vector<WorkItem> &items,
                                     std::int64_t bucket,
                                     std::uint32_t pkg);

    /**
     * Timed fill: take up to @p max tasks from the lowest bucket.
     * Items are appended to @p out; returns the bucket they came
     * from via @p bucket. Accounting is the caller's job.
     */
    runtime::CoTask<std::uint32_t> fill(ThreadletCtx &tc,
                                        std::uint32_t max,
                                        std::vector<WorkItem> &out,
                                        std::int64_t &bucket,
                                        std::uint32_t pkg);

    /**
     * Timed software pop executed directly by a worker core — the
     * degraded-mode path used when the core's engine has been killed
     * or stalled by fault injection. Takes one task from the lowest
     * non-empty bucket; returns false when nothing is obtainable
     * right now. Monitor accounting is the caller's job.
     */
    runtime::CoTask<bool> popSoftware(runtime::SimContext &ctx,
                                      WorkItem &out,
                                      std::uint32_t pkg);

    std::uint64_t spills() const { return spillCount_; }
    std::uint64_t fills() const { return fillCount_; }
    std::uint64_t softwarePops() const { return softwarePops_; }

    /**
     * Serialize the full logical content (sorted bucket order, items
     * in queue order) plus counters. Symmetric: the deques hold
     * values, not pointers, so this section loads as well as saves.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(lg_);
        ck.io(packages_);
        ck.io(mapLine_);
        ck.io(size_);
        ck.io(spillCount_);
        ck.io(fillCount_);
        ck.io(softwarePops_);
        std::uint64_t nb = buckets_.size();
        ck.io(nb);
        if (ck.saving()) {
            for (auto &[key, b] : buckets_) {
                std::int64_t k = key;
                ck.io(k);
                std::uint64_t ns = b.sub.size();
                ck.io(ns);
                for (SubList &sl : b.sub) {
                    ck.io(sl.base);
                    ck.io(sl.itemsBase);
                    ck.io(sl.items);
                }
            }
        } else {
            buckets_.clear();
            for (std::uint64_t i = 0; i < nb && ck.ok(); ++i) {
                std::int64_t k = 0;
                ck.io(k);
                Bucket &b = buckets_[k];
                std::uint64_t ns = 0;
                ck.io(ns);
                b.sub.resize(std::size_t(ns));
                for (SubList &sl : b.sub) {
                    ck.io(sl.base);
                    ck.io(sl.itemsBase);
                    ck.io(sl.items);
                }
            }
        }
        ck.transient("alloc_");
    }

  private:
    struct SubList
    {
        std::deque<WorkItem> items;
        Addr base = 0;      //!< line for head/lock.
        Addr itemsBase = 0; //!< simulated backing for item slots.
    };

    struct Bucket
    {
        std::vector<SubList> sub;

        std::uint64_t
        total() const
        {
            std::uint64_t n = 0;
            for (const auto &s : sub)
                n += s.items.size();
            return n;
        }
    };

    Bucket &ensureBucket(std::int64_t b);

    /** Simulated address of a sublist item slot (ring-indexed). */
    Addr
    itemAddr(const SubList &sl, std::uint64_t idx) const
    {
        return sl.itemsBase +
               (idx % kBucketRingSlots) * worklist::kItemBytes;
    }

    static constexpr std::uint64_t kBucketRingSlots = 4096;

    SimAlloc *alloc_;
    std::uint32_t lg_;
    std::uint32_t packages_;
    std::map<std::int64_t, Bucket> buckets_;
    Addr mapLine_ = 0;
    std::uint64_t size_ = 0;
    std::uint64_t spillCount_ = 0;
    std::uint64_t fillCount_ = 0;
    std::uint64_t softwarePops_ = 0;
};

} // namespace minnow::minnowengine

#endif // MINNOW_MINNOW_GLOBAL_QUEUE_HH
