#include "minnow/engine.hh"

#include <algorithm>
#include <string>

#include "base/logging.hh"
#include "base/trace.hh"
#include "sim/hostprof.hh"

namespace minnow::minnowengine
{

using runtime::CoTask;
using runtime::PhaseGuard;
using runtime::SimContext;

/** Spawn-reservation gate for one parent threadlet (§5.3.2). */
struct MinnowEngine::SpawnGate
{
    std::uint32_t reservedFree = 1; //!< reserved child slots free.
    std::uint32_t active = 0;       //!< children in flight.
    struct ChildWaiter;
    RingQueue<ChildWaiter *> spawnWaiters;
    std::coroutine_handle<> joinWaiter;

    struct ChildWaiter
    {
        std::coroutine_handle<> handle;
        bool viaReserved = false;
    };
};

namespace
{

/** Suspend until an absolute cycle (clamped to "now"). */
struct WaitAt
{
    EventQueue *eq;
    Cycle when;

    bool await_ready() const { return when <= eq->now(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq->schedule(when, h);
    }

    void await_resume() const {}
};

/** Take one unit from a counted pool or park in its waiter queue. */
struct PoolAcquire
{
    std::uint32_t *free;
    RingQueue<std::coroutine_handle<>> *waiters;
    std::uint64_t *stallStat;

    bool
    await_ready()
    {
        if (*free > 0) {
            --*free;
            return true;
        }
        return false;
    }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        if (stallStat)
            ++*stallStat;
        waiters->push_back(h);
    }

    void await_resume() const {}
};

} // anonymous namespace

//
// ThreadletCtx
//

void
ThreadletCtx::exec(std::uint32_t instrs)
{
    ready_ = eng_->cuExec(ready_, instrs);
}

CoTask<Cycle>
ThreadletCtx::load(Addr addr, bool prefetch)
{
    return eng_->threadletAccess(*this, addr, prefetch, false);
}

CoTask<Cycle>
ThreadletCtx::atomic(Addr addr)
{
    return eng_->threadletAccess(*this, addr, false, true);
}

//
// MinnowEngine
//

MinnowEngine::MinnowEngine(runtime::Machine *machine, CoreId core,
                           MinnowGlobalQueue *globalQueue,
                           const PrefetchProgram &program)
    : machine_(machine),
      eq_(machine->wheelFor(core)),
      core_(core),
      global_(globalQueue),
      program_(program),
      params_(machine->cfg.minnow),
      creditsFree_(machine->cfg.minnow.prefetchCredits)
{
    // Virtual-queue split of the threadlet queue and load buffer
    // (Section 5.3.2): worklist threadlets (spills/fills) keep
    // reserved entries so prefetch threadlets can never starve the
    // task-delivery path.
    std::uint32_t total = params_.threadletQueueEntries;
    std::uint32_t worklistShare = std::max(8u, total / 8);
    if (worklistShare >= total)
        worklistShare = total > 1 ? total / 2 : total;
    threadletSlotsFree_ = worklistShare;
    prefetchSlotsFree_ = total - worklistShare;

    std::uint32_t lb = params_.loadBufferEntries;
    std::uint32_t lbWl = std::max(4u, lb / 4);
    if (lbWl >= lb)
        lbWl = lb > 1 ? lb / 2 : lb;
    loadBufWlFree_ = lbWl;
    loadBufPfFree_ = lb - lbWl;
    prefetchWindow_ = params_.prefetchWindow
        ? params_.prefetchWindow
        : std::max(4u, params_.prefetchCredits / 4);

    // Pre-size the hot-path waiter rings to their structural bounds
    // so steady-state park/wake cycles never touch the allocator.
    threadletSlotWaiters_.reserve(total);
    loadBufWlWaiters_.reserve(lb);
    loadBufPfWaiters_.reserve(lb);
    creditWaiters_.reserve(params_.prefetchCredits);
    pendingPrefetch_.reserve(params_.localQueueEntries);
    blockedWorkers_.reserve(8);
    pushBufs_.resize(std::max(1u, params_.coresPerEngine));

    registerStats();

    if (auto *tl = machine_->timeline.get()) {
        std::string tag = "engine" + std::to_string(core_);
        tlEngine_ = tl->addTrack(timeline::Cat::Engine,
                                 timeline::Pid::Engines, core_, tag);
        tlCreditTrack_ = tl->addCounterTrack(
            timeline::Cat::Credit,
            "minnow" + std::to_string(core_) + ".credits");
        // Seed the counter so the full budget shows before the
        // first prefetch consumes anything.
        tlLastCredits_ = creditsFree_;
        tl->counter(tlCreditTrack_, eq_.now(),
                    double(creditsFree_));
        tl->addCounterProvider(
            timeline::Cat::Worklist,
            "minnow" + std::to_string(core_) + ".localQ", this,
            [this] { return double(localQ_.size()); });
    }
}

MinnowEngine::~MinnowEngine()
{
    // Formulas registered below point into this object; drop the
    // group so a later dump cannot chase dangling pointers.
    machine_->stats.removeGroup(statsGroupName_);
    if (machine_->timeline)
        machine_->timeline->removeProviders(this);
}

// ---- Timeline instrumentation ----

MinnowEngine::TlSpan::TlSpan(MinnowEngine *eng, timeline::Name name)
    : eng_(eng), name_(name)
{
    auto *tl = eng->machine_->timeline.get();
    if (!tl || !tl->wants(timeline::Cat::Threadlet))
        return;
    active_ = true;
    begin_ = eng->eq_.now();
    lane_ = eng->tlAcquireLane();
}

MinnowEngine::TlSpan::~TlSpan()
{
    if (!active_)
        return;
    eng_->machine_->timeline->span(eng_->tlLaneTracks_[lane_], name_,
                                   begin_,
                                   eng_->eq_.now());
    eng_->tlReleaseLane(lane_);
}

std::uint32_t
MinnowEngine::tlAcquireLane()
{
    if (!tlFreeLanes_.empty()) {
        std::uint32_t lane = tlFreeLanes_.top();
        tlFreeLanes_.pop();
        return lane;
    }
    std::uint32_t lane = std::uint32_t(tlLaneTracks_.size());
    // Lane tids pack per engine: engine N owns [N*1024, N*1024+...).
    tlLaneTracks_.push_back(machine_->timeline->addTrack(
        timeline::Cat::Threadlet, timeline::Pid::Threadlets,
        core_ * 1024 + lane,
        "engine" + std::to_string(core_) + ".t" +
            std::to_string(lane)));
    return lane;
}

void
MinnowEngine::tlReleaseLane(std::uint32_t lane)
{
    tlFreeLanes_.push(lane);
}

void
MinnowEngine::tlCredits()
{
    if (tlCreditTrack_ == timeline::kNoTrack ||
        creditsFree_ == tlLastCredits_)
        return;
    tlLastCredits_ = creditsFree_;
    machine_->timeline->counter(tlCreditTrack_, eq_.now(),
                                double(creditsFree_));
}

void
MinnowEngine::registerStats()
{
    statsGroupName_ = "minnow" + std::to_string(core_);
    // freshGroup: a machine reused across runs rebuilds its engines,
    // and the new engine's stats must replace the old ones.
    StatsGroup &g = machine_->stats.freshGroup(statsGroupName_);

    auto count = [&g, this](const char *name, const char *desc,
                            std::uint64_t EngineStats::*field) {
        g.formula(name, desc,
                  [this, field] { return double(stats_.*field); });
    };
    count("enqueues", "accelerator enqueue calls",
          &EngineStats::enqueues);
    count("dequeues", "accelerator dequeue calls",
          &EngineStats::dequeues);
    count("dequeueLocalHits", "dequeues served from the local queue",
          &EngineStats::dequeueLocalHits);
    count("dequeueBlocks", "dequeues that blocked the core",
          &EngineStats::dequeueBlocks);
    count("spillsSpawned", "spill threadlets spawned",
          &EngineStats::spillsSpawned);
    count("fillBatches", "fill-daemon batches pulled",
          &EngineStats::fillBatches);
    count("itemsFilled", "tasks pulled from the global queue",
          &EngineStats::itemsFilled);
    count("prefetchTasks", "prefetchTask threadlets started",
          &EngineStats::prefetchTasks);
    count("prefetchEdges", "edges visited by prefetch threadlets",
          &EngineStats::prefetchEdges);
    count("prefetchLoads", "prefetch loads issued to the L2",
          &EngineStats::prefetchLoads);
    count("creditStalls", "prefetch loads that waited for a credit",
          &EngineStats::creditStalls);
    count("loadBufStalls", "threadlet waits for a load-buffer slot",
          &EngineStats::loadBufStalls);
    count("threadletsSpawned", "threadlets started",
          &EngineStats::threadletsSpawned);
    count("prefetchDeferred", "prefetch tasks queued for lack of slots",
          &EngineStats::prefetchDeferred);
    count("prefetchPendingPeak", "peak deferred-prefetch queue depth",
          &EngineStats::prefetchPendingPeak);
    count("prefetchCancelled", "prefetch threadlets aborted as stale",
          &EngineStats::prefetchCancelled);
    count("faultKills", "engine_kill fault injections taken",
          &EngineStats::faultKills);
    count("faultStalls", "engine_stall fault injections taken",
          &EngineStats::faultStalls);
    count("tasksRescued", "tasks flushed to the global queue on"
          " faults", &EngineStats::tasksRescued);
    count("fallbackPops", "software-path dequeues while faulted",
          &EngineStats::fallbackPops);
    count("prefetchDropped", "prefetch issues lost to fault"
          " injection", &EngineStats::prefetchDropped);
    count("creditsLost", "credit returns lost to fault injection",
          &EngineStats::creditsLost);
    count("dequeueBundleTasks", "tasks returned in dequeue bundles",
          &EngineStats::dequeueBundleTasks);
    count("pushFlushes", "buffered push-batch flushes",
          &EngineStats::pushFlushes);
    count("pushedBatched", "tasks moved by buffered push flushes",
          &EngineStats::pushedBatched);
    count("creditFlushes", "buffered credit-return flushes",
          &EngineStats::creditFlushes);
    count("creditsBatched", "credit returns coalesced into batches",
          &EngineStats::creditsBatched);
    count("creditHandoffs", "credit returns handed straight to a"
          " waiter", &EngineStats::creditHandoffs);
    count("specDeposits", "speculative task deliveries launched"
          " (each ends as a specHit or a specReclaim)",
          &EngineStats::specDeposits);
    count("specHits", "dequeues served by the core-side spec slot",
          &EngineStats::specHits);
    count("specReclaims", "spec-slot tasks reclaimed to the global"
          " queue", &EngineStats::specReclaims);
    g.formula("cuBusyCycles", "control-unit busy cycles",
              [this] { return double(stats_.cuBusyCycles); });
    g.formula("dqDoorbellCycles",
              "dequeue core->engine doorbell cycles",
              [this] { return double(stats_.dqDoorbellCycles); });
    g.formula("dqWaitCycles",
              "dequeue cycles parked waiting for a task",
              [this] { return double(stats_.dqWaitCycles); });
    g.formula("dqDeliverCycles",
              "dequeue engine->core delivery cycles",
              [this] { return double(stats_.dqDeliverCycles); });
    g.formula("dequeueLocalHitRate",
              "fraction of dequeues served without blocking",
              [this] {
                  return stats_.dequeues
                      ? double(stats_.dequeueLocalHits) /
                            double(stats_.dequeues)
                      : 0.0;
              });
    g.formula("creditsFree", "prefetch credits free right now",
              [this] { return double(creditsFree_); });
    g.formula("localQueueSize", "local-queue depth right now",
              [this] { return double(localQ_.size()); });

    dequeueLatencyHist_ = &g.histogram(
        "dequeueLatency", "cycles from dequeue call to task delivery",
        16, 32);
    g.formula("dequeueLatencyP50", "median dequeue latency",
              [this] {
                  return double(dequeueLatencyHist_->percentile(0.50));
              });
    g.formula("dequeueLatencyP95", "95th-percentile dequeue latency",
              [this] {
                  return double(dequeueLatencyHist_->percentile(0.95));
              });
    g.formula("dequeueLatencyP99", "99th-percentile dequeue latency",
              [this] {
                  return double(dequeueLatencyHist_->percentile(0.99));
              });
    std::uint32_t occWidth =
        std::max(1u, params_.threadletQueueEntries / 16);
    threadletOccupancyHist_ = &g.histogram(
        "threadletOccupancy",
        "threadlet-queue slots in use at each spawn", occWidth, 20);
}

Cycle
MinnowEngine::cuExec(Cycle ready, std::uint32_t instrs)
{
    Cycle start = std::max(ready, cuBusyUntil_);
    cuBusyUntil_ = start + instrs;
    stats_.cuBusyCycles += instrs;
    return cuBusyUntil_;
}

CoTask<Cycle>
MinnowEngine::threadletAccess(ThreadletCtx &tc, Addr addr,
                              bool prefetch, bool atomic)
{
    tc.exec(1);
    if (prefetch) {
        // Injected fault: the request is lost before it reaches the
        // L2 — no credit is consumed and no line will be tracked.
        if (machine_->faults &&
            machine_->faults->dropPrefetch(core_)) {
            stats_.prefetchDropped += 1;
            tc.exec(1);
            co_return std::max(tc.ready(), eq_.now());
        }
        // Local L2 tag probe: a line already present needs no
        // prefetch, no credit and no load-buffer entry.
        if (machine_->memory.inL2(core_, addr)) {
            if (machine_->attribution)
                machine_->attribution->prefetchRedundant(core_);
            tc.exec(1);
            co_return std::max(tc.ready(), eq_.now());
        }
        // Credits are consumed before issue; without one the
        // threadlet pauses until a prefetched line is consumed or
        // evicted (Section 5.3.1). Acquired *before* the load
        // buffer slot so stalled prefetches cannot starve demand
        // traffic (spills/fills) of load-buffer entries.
        co_await PoolAcquire{&creditsFree_, &creditWaiters_,
                             &stats_.creditStalls};
        tlCredits();
        if (machine_->memory.inL2(core_, addr)) {
            // Filled by someone while we waited; recycle the credit.
            if (machine_->attribution)
                machine_->attribution->prefetchRedundant(core_);
            creditReturn(false);
            tc.exec(1);
            co_return std::max(tc.ready(), eq_.now());
        }
    }
    if (prefetch) {
        co_await PoolAcquire{&loadBufPfFree_, &loadBufPfWaiters_,
                             &stats_.loadBufStalls};
    } else {
        co_await PoolAcquire{&loadBufWlFree_, &loadBufWlWaiters_,
                             &stats_.loadBufStalls};
    }
    EventQueue &eq = eq_;
    Cycle issue = std::max(tc.ready(), eq.now());
    mem::MemAccess req;
    req.addr = addr;
    req.type = atomic ? mem::AccessType::Atomic
                      : mem::AccessType::Load;
    req.core = core_;
    req.when = issue;
    req.engine = true;
    req.prefetch = prefetch;
    req.lineage = tc.lineage();
    mem::AccessResult res = machine_->memory.access(req);
    if (prefetch) {
        stats_.prefetchLoads += 1;
        if (!res.prefetchFilled) {
            // The line was already cached: nothing to track, the
            // credit returns immediately.
            creditReturn(false);
        }
    }
    Cycle ready = std::max(res.done + params_.loadBufferWakeup,
                           eq.now());
    co_await WaitAt{&eq, ready};
    releaseLoadBufSlot(prefetch);
    tc.setReady(ready);
    co_return ready;
}

void
MinnowEngine::creditReturn(bool used)
{
    HostProfScope hp(HostClass::Engine);
    // Injected credit starvation: the return message is lost and the
    // pool shrinks until the fault window closes. Waiting threadlets
    // stay parked; prefetching degrades, the worklist path (its own
    // virtual-queue share) is untouched. The fault draw stays here,
    // per return and before batching, so the injector's RNG stream
    // is identical at every --push-batch setting.
    if (machine_->faults &&
        machine_->faults->swallowCreditReturn(core_)) {
        stats_.creditsLost += 1;
        return;
    }
    if (params_.pushBatch > 1) {
        creditPending_ += 1;
        stats_.creditsBatched += 1;
        if (creditPending_ >= params_.pushBatch) {
            flushCredits();
        } else if (!creditDeadlineArmed_) {
            creditDeadlineArmed_ = true;
            adoptThreadlet(creditDeadline(
                creditSeq_, eq_.now() + pushFlushCycles()));
        }
        return;
    }
    creditDeliver(used);
}

void
MinnowEngine::creditDeliver(bool used)
{
    DPRINTF(Credit, "credit", "[%u] return (%s), free=%u waiters=%zu",
            core_, used ? "used" : "unused", creditsFree_,
            creditWaiters_.size());
    (void)used; // use/evict split is counted by the MemorySystem.
    if (!creditWaiters_.empty()) {
        std::coroutine_handle<> h = creditWaiters_.front();
        creditWaiters_.pop_front();
        eq_.schedule(eq_.now(), h);
        stats_.creditHandoffs += 1;
        // A direct handoff never touches creditsFree_, so the
        // credits counter track's change detection (tlCredits)
        // cannot see it; emit an explicit spike plus an instant so
        // handoffs show up in the Perfetto credits track.
        if (machine_->timeline) {
            Cycle now = eq_.now();
            machine_->timeline->counter(tlCreditTrack_, now,
                                        double(creditsFree_) + 1.0);
            machine_->timeline->counter(tlCreditTrack_, now,
                                        double(creditsFree_));
            machine_->timeline->instant(
                tlEngine_, timeline::Name::CreditHandoff, now);
        }
    } else {
        creditsFree_ += 1;
        panic_if(creditsFree_ > params_.prefetchCredits,
                 "credit pool overflow");
    }
    tlCredits();
}

void
MinnowEngine::flushCredits()
{
    creditSeq_ += 1; // cancels any armed deadline flush.
    creditDeadlineArmed_ = false;
    stats_.creditFlushes += 1;
    std::uint32_t n = creditPending_;
    creditPending_ = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        creditDeliver(false);
}

CoTask<void>
MinnowEngine::creditDeadline(std::uint64_t seq, Cycle when)
{
    co_await WaitAt{&eq_, when};
    if (creditSeq_ != seq)
        co_return; // a size-triggered flush beat us.
    flushCredits();
}

void
MinnowEngine::releaseLoadBufSlot(bool prefetchPool)
{
    auto &waiters =
        prefetchPool ? loadBufPfWaiters_ : loadBufWlWaiters_;
    auto &free = prefetchPool ? loadBufPfFree_ : loadBufWlFree_;
    if (!waiters.empty()) {
        std::coroutine_handle<> h = waiters.front();
        waiters.pop_front();
        eq_.schedule(eq_.now(), h);
    } else {
        free += 1;
        panic_if(free > params_.loadBufferEntries,
                 "load buffer pool overflow");
    }
}

void
MinnowEngine::releaseThreadletSlot()
{
    if (!threadletSlotWaiters_.empty()) {
        std::coroutine_handle<> h = threadletSlotWaiters_.front();
        threadletSlotWaiters_.pop_front();
        eq_.schedule(eq_.now(), h);
        return;
    }
    threadletSlotsFree_ += 1;
    panic_if(threadletSlotsFree_ > params_.threadletQueueEntries,
             "threadlet queue pool overflow");
}

void
MinnowEngine::releasePrefetchSlot()
{
    prefetchSlotsFree_ += 1;
    panic_if(prefetchSlotsFree_ > params_.threadletQueueEntries,
             "prefetch slot pool overflow");
    tryPendingPrefetch();
}

void
MinnowEngine::tryPendingPrefetch()
{
    while (!pendingPrefetch_.empty() && prefetchSlotsFree_ >= 2 &&
           activePrefetchTasks_ < prefetchWindow_) {
        auto [item, seq] = pendingPrefetch_.front();
        pendingPrefetch_.pop_front();
        if (prefetchStale(seq)) {
            stats_.prefetchCancelled += 1;
            continue;
        }
        prefetchSlotsFree_ -= 2;
        startPrefetchTask(item, seq);
    }
}

void
MinnowEngine::adoptThreadlet(CoTask<void> body)
{
    // Covers the synchronous prefix of the threadlet body (it runs
    // to its first suspension inside start()); time it spends in the
    // memory system is re-attributed by the nested scope there.
    HostProfScope hp(HostClass::Engine);
    stats_.threadletsSpawned += 1;
    threadletOccupancyHist_->sample(params_.threadletQueueEntries -
                                    threadletSlotsFree_ -
                                    prefetchSlotsFree_);
    sweepThreadlets();
    body.start();
    threadlets_.push_back(std::move(body));
}

void
MinnowEngine::sweepThreadlets()
{
    if (threadlets_.size() < 256)
        return;
    std::erase_if(threadlets_, [](const CoTask<void> &t) {
        return t.done();
    });
}

void
MinnowEngine::startPrefetchTask(WorkItem item, std::uint64_t seq)
{
    DPRINTF(Threadlet, "threadlet", "[%u] prefetchTask payload=%llu"
            " seq=%llu", core_, (unsigned long long)item.payload,
            (unsigned long long)seq);
    stats_.prefetchTasks += 1;
    activePrefetchTasks_ += 1;
    adoptThreadlet(prefetchTaskThreadlet(item, seq));
}

void
MinnowEngine::insertLocal(WorkItem item)
{
    HostProfScope hp(HostClass::Engine);
    panic_if(localQ_.size() >= params_.localQueueEntries,
             "local queue overflow");
    if (machine_->attribution)
        machine_->attribution->taskEnqueued(item.lineage, eq_.now());
    localQ_.push_back(item);
    std::uint64_t seq = insertSeq_++;
    if (params_.prefetchEnabled && program_.graph) {
        if (prefetchSlotsFree_ >= 2 &&
            activePrefetchTasks_ < prefetchWindow_) {
            prefetchSlotsFree_ -= 2;
            startPrefetchTask(item, seq);
        } else {
            pendingPrefetch_.push_back({item, seq});
            stats_.prefetchDeferred += 1;
            stats_.prefetchPendingPeak =
                std::max<std::uint64_t>(stats_.prefetchPendingPeak,
                                        pendingPrefetch_.size());
        }
    }
}

WorkItem
MinnowEngine::popLocalRaw()
{
    HostProfScope hp(HostClass::Engine);
    panic_if(localQ_.empty(), "pop from empty local queue");
    WorkItem item = localQ_.front();
    localQ_.pop_front();
    consumedSeq_ += 1;
    if (!pendingPrefetch_.empty() &&
        pendingPrefetch_.front().first == item) {
        // Too late to prefetch this task; drop the stale request.
        pendingPrefetch_.pop_front();
        stats_.prefetchCancelled += 1;
    }
    tryPendingPrefetch();
    if (localQ_.empty())
        localBucket_ = MinnowGlobalQueue::kNoBucket;
    // Always nudge: besides refills, the daemon also reevaluates
    // its work-sharing condition on every pop.
    nudgeDaemon();
    return item;
}

WorkItem
MinnowEngine::popLocal()
{
    WorkItem item = popLocalRaw();
    machine_->monitor.takeWork(1, false);
    return item;
}

void
MinnowEngine::deliverToBlocked()
{
    while (!blockedWorkers_.empty() && !localQ_.empty()) {
        BlockedWorker w = blockedWorkers_.front();
        blockedWorkers_.pop_front();
        *w.slot = popLocal();
        machine_->monitor.exitIdle();
        eq_.schedule(
            eq_.now() + params_.localQueueLatency,
            w.handle);
    }
    // Any local-queue surplus beyond the blocked workers can ride
    // ahead into free core-side slots (no-op unless --spec-slot).
    trySpecDeposit();
}

void
MinnowEngine::nudgeDaemon()
{
    if (parkedDaemon_) {
        std::coroutine_handle<> h =
            std::exchange(parkedDaemon_, nullptr);
        eq_.schedule(eq_.now(), h);
    }
}

// ---- Speculative next-task delivery (--spec-slot) ----

void
MinnowEngine::trySpecDeposit()
{
    if (!params_.specSlot || spec_.empty() || faulted() ||
        !blockedWorkers_.empty())
        return;
    std::uint32_t n = std::uint32_t(spec_.size());
    for (std::uint32_t i = 0; i < n && !localQ_.empty(); ++i) {
        std::uint32_t idx = (specNext_ + i) % n;
        if (spec_[idx].inFlight ||
            machine_->cores[core_ + idx]->specSlot().valid)
            continue;
        // The task stays pending (non-stealable) in the monitor
        // until the slot is consumed, so termination cannot fire
        // while it is in flight.
        WorkItem item = popLocalRaw();
        spec_[idx].inFlight = true;
        std::uint64_t seq = ++spec_[idx].seq;
        specNext_ = (idx + 1) % n;
        // Counted at launch so the conservation invariant
        // (specDeposits == specHits + specReclaims) covers deposits
        // invalidated mid-flight too.
        stats_.specDeposits += 1;
        adoptThreadlet(specDepositTask(idx, item, seq));
    }
}

CoTask<void>
MinnowEngine::specDepositTask(std::uint32_t idx, WorkItem item,
                              std::uint64_t seq)
{
    co_await WaitAt{&eq_,
                    eq_.now() + params_.localQueueLatency};
    spec_[idx].inFlight = false;
    if (faulted() || spec_[idx].seq != seq) {
        // Rescue/kill invalidated us mid-flight: the task goes to
        // the global queue with the rest of the rescued work.
        global_->pushInitial(item);
        stats_.specReclaims += 1;
        machine_->monitor.transferWork(1, true);
        if (machine_->timeline) {
            machine_->timeline->instant(tlEngine_,
                                        timeline::Name::SpecReclaim,
                                        eq_.now());
        }
        co_return;
    }
    if (!blockedWorkers_.empty()) {
        // A worker parked while the deposit was in flight. Landing
        // in the slot now would strand both (the worker blocks
        // engine-side, the task sits core-side); deliver directly,
        // like deliverToBlocked does. The delivery did its job, so
        // it counts as a hit.
        BlockedWorker w = blockedWorkers_.front();
        blockedWorkers_.pop_front();
        *w.slot = item;
        stats_.specHits += 1;
        machine_->monitor.takeWork(1, false);
        machine_->monitor.exitIdle();
        eq_.schedule(
            eq_.now() + params_.localQueueLatency,
            w.handle);
        co_return;
    }
    machine_->cores[core_ + idx]->specDeposit(seq, item.priority,
                                              item.payload,
                                              item.lineage);
    if (machine_->timeline) {
        machine_->timeline->instant(tlEngine_,
                                    timeline::Name::SpecDeposit,
                                    eq_.now());
    }
}

CoTask<void>
MinnowEngine::specConsumedTask(Cycle when)
{
    co_await WaitAt{&eq_, when};
    trySpecDeposit();
}

void
MinnowEngine::onTerminate()
{
    nudgeDaemon();
    while (!blockedWorkers_.empty()) {
        // Slots stay nullopt: the cores see termination.
        BlockedWorker w = blockedWorkers_.front();
        blockedWorkers_.pop_front();
        eq_.schedule(eq_.now(), w.handle);
    }
}

// ---- Fault injection ----

void
MinnowEngine::armFaults(const FaultInjector &faults)
{
    std::uint32_t cpe = std::max(1u, params_.coresPerEngine);
    for (const FaultClause &c : faults.clauses()) {
        if (c.kind != FaultClause::Kind::EngineKill &&
            c.kind != FaultClause::Kind::EngineStall)
            continue;
        if (c.core / cpe != core_ / cpe)
            continue;
        CoTask<void> t = faultTask(c);
        t.start();
        faultTasks_.push_back(std::move(t));
    }
}

CoTask<void>
MinnowEngine::faultTask(FaultClause clause)
{
    EventQueue &eq = eq_;
    co_await WaitAt{&eq, clause.at};
    if (clause.kind == FaultClause::Kind::EngineKill) {
        injectKill();
        co_return;
    }
    injectStall(clause.dur);
    co_await WaitAt{&eq, clause.at + clause.dur};
    // Another overlapping stall may still be holding the engine
    // down; only the last one ending performs the recovery.
    if (!dead_ && !stalled())
        recoverFromStall();
}

void
MinnowEngine::injectKill()
{
    if (dead_)
        return;
    dead_ = true;
    stats_.faultKills += 1;
    if (machine_->timeline) {
        machine_->timeline->instant(tlEngine_,
                                    timeline::Name::EngineKill,
                                    eq_.now());
    }
    warn("minnow engine %u killed by fault injection at cycle %llu",
         core_, (unsigned long long)eq_.now());
    rescueLocalTasks();
    // Release blocked workers through the same path termination
    // uses; their slots stay empty and dequeue() sends them to the
    // software worklist.
    onTerminate();
}

void
MinnowEngine::injectStall(Cycle dur)
{
    if (dead_)
        return;
    stats_.faultStalls += 1;
    if (machine_->timeline) {
        machine_->timeline->instant(tlEngine_,
                                    timeline::Name::EngineStall,
                                    eq_.now());
    }
    Cycle until = eq_.now() + dur;
    stallUntil_ = std::max(stallUntil_, until);
    cuBusyUntil_ = std::max(cuBusyUntil_, until);
    warn("minnow engine %u stalled by fault injection until cycle"
         " %llu", core_, (unsigned long long)stallUntil_);
    rescueLocalTasks();
    onTerminate(); // release blocked workers to the software path.
}

void
MinnowEngine::rescueLocalTasks()
{
    // Drain-to-empty on every source makes this idempotent: a
    // second invocation (overlapping stall + kill) finds everything
    // empty and touches neither stats nor monitor accounting.
    std::uint64_t n = 0;
    while (!localQ_.empty()) {
        global_->pushInitial(localQ_.front());
        localQ_.pop_front();
        ++n;
    }
    while (!spillBuf_.empty()) {
        global_->pushInitial(spillBuf_.front());
        spillBuf_.pop_front();
        ++n;
    }
    // Buffered pushes (--push-batch) were booked pending-private at
    // their call sites; route them with the rest of the queue.
    for (PushBuf &pb : pushBufs_) {
        pb.seq += 1; // cancels any armed deadline flush.
        pb.deadlineArmed = false;
        for (const WorkItem &item : pb.items) {
            global_->pushInitial(item);
            ++n;
        }
        pb.items.clear();
    }
    // Spec slots (--spec-slot): reclaim deposited tasks and
    // invalidate in-flight deposits (those reclaim themselves on
    // arrival when they see the bumped sequence).
    for (std::uint32_t i = 0; i < std::uint32_t(spec_.size()); ++i) {
        spec_[i].seq += 1;
        cpu::OooCore &oc = *machine_->cores[core_ + i];
        if (oc.specSlot().valid) {
            const cpu::SpecTaskSlot &s = oc.specSlot();
            global_->pushInitial(
                WorkItem{s.priority, s.payload, s.lineage});
            oc.specInvalidate();
            stats_.specReclaims += 1;
            ++n;
            if (machine_->timeline) {
                machine_->timeline->instant(
                    tlEngine_, timeline::Name::SpecReclaim,
                    eq_.now());
            }
        }
    }
    localBucket_ = MinnowGlobalQueue::kNoBucket;
    // Queued prefetch requests refer to tasks this engine no longer
    // owns; prefetching them would be pure pollution.
    stats_.prefetchCancelled += pendingPrefetch_.size();
    pendingPrefetch_.clear();
    if (n) {
        stats_.tasksRescued += n;
        // The tasks were core-private (pending, non-stealable); in
        // the global queue any worker can take them.
        machine_->monitor.transferWork(n, true);
        if (machine_->timeline) {
            machine_->timeline->instant(tlEngine_,
                                        timeline::Name::TasksRescued,
                                        eq_.now());
        }
    }
}

void
MinnowEngine::recoverFromStall()
{
    if (machine_->timeline) {
        machine_->timeline->instant(tlEngine_,
                                    timeline::Name::EngineRecover,
                                    eq_.now());
    }
    // Flush whatever arrived while frozen (a fill that completed
    // right at the window edge) so software-parked workers get
    // their wakeup, then resume normal service.
    rescueLocalTasks();
    nudgeDaemon();
}

void
MinnowEngine::startDaemon()
{
    panic_if(daemonRunning_, "fill daemon already running");
    panic_if(threadletSlotsFree_ == 0,
             "no threadlet slot for the fill daemon");
    threadletSlotsFree_ -= 1;
    daemonRunning_ = true;
    adoptThreadlet(fillDaemon());
}

// ---- Core-side accelerator interface ----

CoTask<void>
MinnowEngine::enqueue(SimContext &ctx, WorkItem item)
{
    // Fire-and-forget accelerator call: the core hands the task off
    // in a couple of instructions and keeps running — this is what
    // takes scheduling off the critical path. The front-end FSM
    // processes the arrival localQueueLatency cycles later.
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    stats_.enqueues += 1;
    ctx.compute(2);
    machine_->monitor.addWork(1, false);
    if (params_.pushBatch > 1) {
        // Coalesce into the per-core buffer; the flush (on size or
        // deadline) moves the whole batch in one engine message.
        bufferPush(ctx.id(), item);
        co_await ctx.sync();
        co_return;
    }
    Cycle arrive = std::max(ctx.now() + params_.localQueueLatency,
                            eq_.now());
    adoptThreadlet(enqueueArrival(item, arrive));
    co_await ctx.sync();
}

void
MinnowEngine::bufferPush(CoreId c, WorkItem item)
{
    PushBuf &pb = pushBufs_[pushIdx(c)];
    pb.items.push_back(item);
    if (pb.items.size() >= params_.pushBatch) {
        flushPushBuf(c);
        return;
    }
    if (!pb.deadlineArmed) {
        pb.deadlineArmed = true;
        adoptThreadlet(pushDeadline(
            pushIdx(c), pb.seq,
            eq_.now() + pushFlushCycles()));
    }
}

void
MinnowEngine::flushPushBuf(CoreId c)
{
    if (pushBufs_.empty())
        return;
    PushBuf &pb = pushBufs_[pushIdx(c)];
    if (pb.items.empty())
        return;
    pb.seq += 1; // cancels any armed deadline flush.
    pb.deadlineArmed = false;
    stats_.pushFlushes += 1;
    stats_.pushedBatched += pb.items.size();
    Cycle arrive = eq_.now() + params_.localQueueLatency;
    std::vector<WorkItem> items;
    items.swap(pb.items);
    adoptThreadlet(enqueueArrivalBatch(std::move(items), arrive));
}

CoTask<void>
MinnowEngine::pushDeadline(std::uint32_t idx, std::uint64_t seq,
                           Cycle when)
{
    co_await WaitAt{&eq_, when};
    if (pushBufs_[idx].seq != seq)
        co_return; // a size-triggered flush beat us.
    flushPushBuf(core_ + idx);
}

CoTask<void>
MinnowEngine::enqueueArrivalBatch(std::vector<WorkItem> items,
                                  Cycle when)
{
    co_await WaitAt{&eq_, when};
    if (faulted()) {
        // Same routing as the single-item arrival: the tasks were
        // booked pending-private; making them stealable in the
        // global queue keeps the accounting exact.
        global_->pushInitialBatch(items);
        stats_.tasksRescued += items.size();
        machine_->monitor.transferWork(items.size(), true);
        co_return;
    }
    bool spilled = false;
    for (const WorkItem &item : items) {
        std::int64_t bucket = global_->bucketOf(item);
        bool acceptLocal =
            localQ_.size() + localReserved_ <
                params_.localQueueEntries &&
            (localQ_.empty() || bucket <= localBucket_);
        if (acceptLocal) {
            if (localQ_.empty() || bucket < localBucket_)
                localBucket_ = bucket;
            insertLocal(item);
        } else {
            stats_.spillsSpawned += 1;
            spillBuf_.push_back(item);
            spilled = true;
        }
    }
    deliverToBlocked();
    if (spilled && !spillDrainActive_) {
        spillDrainActive_ = true;
        co_await PoolAcquire{&threadletSlotsFree_,
                             &threadletSlotWaiters_, nullptr};
        adoptThreadlet(spillDrainThreadlet());
    }
}

CoTask<void>
MinnowEngine::enqueueArrival(WorkItem item, Cycle when)
{
    co_await WaitAt{&eq_, when};
    if (faulted()) {
        // The engine cannot accept the call: the task is routed
        // straight to the software global queue, where any worker
        // (including software-fallback ones) can take it. It was
        // booked addWork(1, false) at the call site; making it
        // stealable keeps the monitor accounting exact.
        global_->pushInitial(item);
        stats_.tasksRescued += 1;
        machine_->monitor.transferWork(1, true);
        co_return;
    }
    DPRINTF(Engine, "engine", "[%u] enqueue arrival prio=%lld"
            " payload=%llu localQ=%zu",
            core_, (long long)item.priority,
            (unsigned long long)item.payload, localQ_.size());
    std::int64_t bucket = global_->bucketOf(item);
    bool acceptLocal =
        localQ_.size() + localReserved_ <
            params_.localQueueEntries &&
        (localQ_.empty() || bucket <= localBucket_);
    if (acceptLocal) {
        if (localQ_.empty() || bucket < localBucket_)
            localBucket_ = bucket;
        insertLocal(item);
        deliverToBlocked();
        co_return;
    }
    // Spill to the global worklist via a threadlet (Fig. 12). The
    // buffer lets one threadlet drain bursts with amortized atomics.
    stats_.spillsSpawned += 1;
    spillBuf_.push_back(item);
    if (!spillDrainActive_) {
        spillDrainActive_ = true;
        co_await PoolAcquire{&threadletSlotsFree_,
                             &threadletSlotWaiters_, nullptr};
        adoptThreadlet(spillDrainThreadlet());
    }
}

CoTask<void>
MinnowEngine::spillDrainThreadlet()
{
    TlSpan tlspan(this, timeline::Name::SpillDrain);
    ThreadletCtx tc(this, eq_.now());
    std::vector<WorkItem> batch;
    while (!spillBuf_.empty()) {
        // Gather up to 64 items of the front item's bucket.
        std::int64_t bucket = global_->bucketOf(spillBuf_.front());
        batch.clear();
        for (auto it = spillBuf_.begin();
             it != spillBuf_.end() && batch.size() < 64;) {
            if (global_->bucketOf(*it) == bucket) {
                batch.push_back(*it);
                it = spillBuf_.erase(it);
            } else {
                ++it;
            }
        }
        tc.exec(2 * std::uint32_t(batch.size()));
        co_await global_->spillBatch(tc, batch, bucket, core_);
        machine_->monitor.transferWork(batch.size(), true);
    }
    spillDrainActive_ = false;
    releaseThreadletSlot();
}

namespace
{

/** Park a worker in the engine's blocked queue until delivery. */
struct BlockAwait
{
    MinnowEngine *eng;
    std::optional<WorkItem> *slot;
    void (*park)(MinnowEngine *, std::coroutine_handle<>,
                 std::optional<WorkItem> *);

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        park(eng, h, slot);
    }

    void await_resume() const {}
};

} // anonymous namespace

CoTask<std::optional<WorkItem>>
MinnowEngine::dequeue(SimContext &ctx)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    // Fence: buffered pushes must reach the engine before the pop
    // doorbell, or a core's own just-pushed task could be invisible
    // to its dequeue (no-op unless --push-batch buffered anything).
    flushPushBuf(ctx.id());
    // Speculative slot (--spec-slot): the engine may have deposited
    // the next task core-side already — then the pop is a handful
    // of local instructions, no engine round-trip at all.
    if (params_.specSlot && ctx.core().specSlot().valid) {
        const cpu::SpecTaskSlot &s = ctx.core().specSlot();
        WorkItem item{s.priority, s.payload, s.lineage};
        ctx.core().specInvalidate();
        stats_.dequeues += 1;
        stats_.specHits += 1;
        machine_->monitor.takeWork(1, false);
        ctx.compute(2);
        Cycle specStart = ctx.now();
        co_await ctx.sync();
        dequeueLatencyHist_->sample(ctx.now() - specStart);
        // Slot-free notification travels back off the critical path;
        // the engine refills the slot when it lands.
        adoptThreadlet(specConsumedTask(
            eq_.now() + params_.localQueueLatency));
        co_return item;
    }
    stats_.dequeues += 1;
    ctx.compute(1);
    Cycle dqStart = ctx.now();
    Cycle t = ctx.now() + params_.localQueueLatency;
    co_await ctx.waitUntil(t);
    ctx.core().idleUntil(eq_.now());
    stats_.dqDoorbellCycles += params_.localQueueLatency;

    if (faulted()) {
        // Killed or stalled engine: degrade to the software
        // worklist path (the baseline scheduler).
        co_return co_await dequeueFallback(ctx, dqStart);
    }

    if (!localQ_.empty()) {
        stats_.dequeueLocalHits += 1;
        WorkItem item = popLocal();
        DPRINTF(Engine, "engine", "[%u] dequeue hit payload=%llu",
                core_, (unsigned long long)item.payload);
        dequeueLatencyHist_->sample(eq_.now() - dqStart);
        trySpecDeposit();
        co_return item;
    }
    if (params_.specSlot && ctx.core().specSlot().valid) {
        // A deposit landed while our pop doorbell was in flight (the
        // core checked the slot before sending it). Consume it here
        // instead of parking — parking would strand both the task
        // (core-side, valid) and the worker (engine-side, blocked).
        const cpu::SpecTaskSlot &s = ctx.core().specSlot();
        WorkItem item{s.priority, s.payload, s.lineage};
        ctx.core().specInvalidate();
        stats_.specHits += 1;
        machine_->monitor.takeWork(1, false);
        co_await ctx.waitUntil(eq_.now() +
                               params_.localQueueLatency);
        ctx.core().idleUntil(eq_.now());
        dequeueLatencyHist_->sample(eq_.now() - dqStart);
        stats_.dqDeliverCycles += params_.localQueueLatency;
        co_return item;
    }
    DPRINTF(Engine, "engine", "[%u] dequeue blocks", core_);
    if (machine_->monitor.terminated())
        co_return std::nullopt;

    // Block until the engine delivers a task or the run terminates.
    stats_.dequeueBlocks += 1;
    ctx.core().setPhase(cpu::Phase::Idle);
    machine_->monitor.enterIdle();
    if (machine_->monitor.terminated())
        co_return std::nullopt;
    nudgeDaemon();

    std::optional<WorkItem> slot;
    co_await BlockAwait{this, &slot,
                        [](MinnowEngine *eng,
                           std::coroutine_handle<> h,
                           std::optional<WorkItem> *s) {
                            eng->blockedWorkers_.push_back({h, s});
                        }};
    ctx.core().idleUntil(eq_.now());
    if (!slot && !machine_->monitor.terminated()) {
        // Released by fault injection, not termination: this worker
        // rejoins the run on the software worklist path.
        machine_->monitor.exitIdle();
        co_return co_await dequeueFallback(ctx, dqStart);
    }
    if (slot) {
        Cycle total = eq_.now() - dqStart;
        dequeueLatencyHist_->sample(total);
        stats_.dqDeliverCycles += params_.localQueueLatency;
        if (total >= 2 * Cycle(params_.localQueueLatency))
            stats_.dqWaitCycles +=
                total - 2 * Cycle(params_.localQueueLatency);
    }
    co_return slot;
}

CoTask<std::uint32_t>
MinnowEngine::dequeueBatch(SimContext &ctx,
                           std::vector<WorkItem> &out,
                           std::uint32_t max)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    if (max == 0)
        max = 1;
    flushPushBuf(ctx.id()); // same fence as dequeue().
    if (params_.specSlot && ctx.core().specSlot().valid) {
        const cpu::SpecTaskSlot &s = ctx.core().specSlot();
        WorkItem item{s.priority, s.payload, s.lineage};
        ctx.core().specInvalidate();
        stats_.dequeues += 1;
        stats_.specHits += 1;
        machine_->monitor.takeWork(1, false);
        ctx.compute(2);
        Cycle specStart = ctx.now();
        co_await ctx.sync();
        dequeueLatencyHist_->sample(ctx.now() - specStart);
        adoptThreadlet(specConsumedTask(
            eq_.now() + params_.localQueueLatency));
        out.push_back(item);
        co_return 1;
    }
    stats_.dequeues += 1;
    ctx.compute(1);
    Cycle dqStart = ctx.now();
    co_await ctx.waitUntil(dqStart + params_.localQueueLatency);
    ctx.core().idleUntil(eq_.now());
    stats_.dqDoorbellCycles += params_.localQueueLatency;

    if (faulted()) {
        std::optional<WorkItem> one =
            co_await dequeueFallback(ctx, dqStart);
        if (!one)
            co_return 0;
        out.push_back(*one);
        co_return 1;
    }

    if (!localQ_.empty()) {
        // One round-trip, up to max tasks off the local-queue head.
        stats_.dequeueLocalHits += 1;
        std::uint32_t got = 0;
        while (got < max && !localQ_.empty()) {
            out.push_back(popLocal());
            ++got;
        }
        stats_.dequeueBundleTasks += got;
        DPRINTF(Engine, "engine", "[%u] dequeue bundle n=%u",
                core_, got);
        dequeueLatencyHist_->sample(eq_.now() - dqStart);
        trySpecDeposit();
        co_return got;
    }
    if (params_.specSlot && ctx.core().specSlot().valid) {
        // Same doorbell/deposit race as dequeue(): consume the slot
        // rather than parking under a valid deposit.
        const cpu::SpecTaskSlot &s = ctx.core().specSlot();
        WorkItem item{s.priority, s.payload, s.lineage};
        ctx.core().specInvalidate();
        stats_.specHits += 1;
        machine_->monitor.takeWork(1, false);
        co_await ctx.waitUntil(eq_.now() +
                               params_.localQueueLatency);
        ctx.core().idleUntil(eq_.now());
        dequeueLatencyHist_->sample(eq_.now() - dqStart);
        stats_.dqDeliverCycles += params_.localQueueLatency;
        out.push_back(item);
        stats_.dequeueBundleTasks += 1;
        co_return 1;
    }
    DPRINTF(Engine, "engine", "[%u] dequeue blocks", core_);
    if (machine_->monitor.terminated())
        co_return 0;

    stats_.dequeueBlocks += 1;
    ctx.core().setPhase(cpu::Phase::Idle);
    machine_->monitor.enterIdle();
    if (machine_->monitor.terminated())
        co_return 0;
    nudgeDaemon();

    std::optional<WorkItem> slot;
    co_await BlockAwait{this, &slot,
                        [](MinnowEngine *eng,
                           std::coroutine_handle<> h,
                           std::optional<WorkItem> *s) {
                            eng->blockedWorkers_.push_back({h, s});
                        }};
    ctx.core().idleUntil(eq_.now());
    if (!slot && !machine_->monitor.terminated()) {
        machine_->monitor.exitIdle();
        std::optional<WorkItem> one =
            co_await dequeueFallback(ctx, dqStart);
        if (!one)
            co_return 0;
        out.push_back(*one);
        co_return 1;
    }
    if (!slot)
        co_return 0;
    Cycle total = eq_.now() - dqStart;
    dequeueLatencyHist_->sample(total);
    stats_.dqDeliverCycles += params_.localQueueLatency;
    if (total >= 2 * Cycle(params_.localQueueLatency))
        stats_.dqWaitCycles +=
            total - 2 * Cycle(params_.localQueueLatency);
    out.push_back(*slot);
    stats_.dequeueBundleTasks += 1;
    co_return 1;
}

CoTask<std::optional<WorkItem>>
MinnowEngine::dequeueFallback(SimContext &ctx, Cycle dqStart)
{
    runtime::WorkMonitor &mon = machine_->monitor;
    for (;;) {
        if (mon.terminated())
            co_return std::nullopt;
        if (!faulted()) {
            // The engine recovered while we were on the software
            // path: go back through the accelerator interface (it
            // may hold freshly filled tasks for us).
            co_return co_await dequeue(ctx);
        }
        if (global_->size() > 0) {
            WorkItem item;
            bool got =
                co_await global_->popSoftware(ctx, item, core_);
            if (got) {
                mon.takeWork(1, true);
                stats_.fallbackPops += 1;
                dequeueLatencyHist_->sample(eq_.now() -
                                            dqStart);
                co_return item;
            }
            continue;
        }
        if (mon.stealable() > 0) {
            // Accounting is ahead of the functional queue (a racing
            // spill is in flight): bounded back-off, then recheck.
            co_await ctx.waitUntil(eq_.now() + 200);
            ctx.core().idleUntil(eq_.now());
            continue;
        }
        ctx.core().setPhase(cpu::Phase::Idle);
        bool more = co_await mon.waitForWork();
        ctx.core().idleUntil(eq_.now());
        ctx.core().setPhase(cpu::Phase::Worklist);
        if (!more)
            co_return std::nullopt;
    }
}

CoTask<void>
MinnowEngine::flush(SimContext &ctx)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    flushPushBuf(ctx.id()); // buffered pushes spill with the rest.
    co_await ctx.waitUntil(ctx.now() + params_.localQueueLatency);
    ctx.core().idleUntil(eq_.now());
    while (!localQ_.empty()) {
        WorkItem item = localQ_.front();
        localQ_.pop_front();
        co_await PoolAcquire{&threadletSlotsFree_,
                             &threadletSlotWaiters_, nullptr};
        adoptThreadlet(spillThreadlet(item));
    }
    localBucket_ = MinnowGlobalQueue::kNoBucket;
}

// ---- Threadlet programs ----

CoTask<void>
MinnowEngine::spillThreadlet(WorkItem item)
{
    TlSpan tlspan(this, timeline::Name::Spill);
    ThreadletCtx tc(this, eq_.now());
    tc.exec(4);
    co_await global_->spill(tc, item);
    machine_->monitor.transferWork(1, true);
    releaseThreadletSlot();
}

CoTask<void>
MinnowEngine::fillDaemon()
{
    TlSpan tlspan(this, timeline::Name::FillDaemon);
    ThreadletCtx tc(this, eq_.now());
    runtime::WorkMonitor &mon = machine_->monitor;

    struct Park
    {
        MinnowEngine *eng;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            panic_if(eng->parkedDaemon_, "daemon double-parked");
            eng->parkedDaemon_ = h;
        }

        void await_resume() const {}
    };

    std::vector<WorkItem> batch;
    for (;;) {
        if (mon.terminated())
            break;
        if (dead_) {
            // Killed: the rescue flushed the local queue already;
            // the daemon just retires.
            break;
        }
        if (stalled()) {
            // Control unit frozen: sleep through the stall window
            // (no fills — workers are on the software path and a
            // hoarded local queue would strand tasks).
            co_await WaitAt{&eq_, stallUntil_};
            continue;
        }
        bool localLow =
            localQ_.size() < params_.refillThreshold;
        // Stream when the global head outprioritizes (or matches)
        // the local queue — or when the local queue is about to
        // starve: the filled tasks are the globally best anyway, so
        // appending them early only reorders across one bucket
        // boundary (the same slack a chunked OBIM has).
        bool priorityOk =
            localQ_.size() < params_.refillThreshold / 2 ||
            global_->minBucket() <= localBucket_;
        std::uint32_t space = 0;
        {
            std::uint32_t used =
                std::uint32_t(localQ_.size()) + localReserved_;
            if (used < params_.localQueueEntries)
                space = params_.localQueueEntries - used;
        }
        if (localLow && priorityOk && global_->size() > 0 &&
            space > 0) {
            Cycle fbStart = eq_.now();
            tc.exec(4);
            batch.clear();
            std::uint32_t burst =
                std::min(space, params_.refillThreshold);
            // Reserve the landing slots: concurrent enqueues from
            // our core must not overflow the queue under us.
            localReserved_ += burst;
            std::int64_t bucket = MinnowGlobalQueue::kNoBucket;
            std::uint32_t got = co_await global_->fill(
                tc, burst, batch, bucket, core_);
            localReserved_ -= burst;
            if (got > 0 && faulted()) {
                // Killed or stalled mid-fill: push the batch
                // straight back. The monitor was not told about the
                // transfer yet, so accounting stays exact.
                for (const WorkItem &item : batch)
                    global_->pushInitial(item);
                continue;
            }
            if (got > 0) {
                mon.transferWork(got, false);
                stats_.fillBatches += 1;
                stats_.itemsFilled += got;
                if (localQ_.empty() || bucket < localBucket_)
                    localBucket_ = bucket;
                for (const WorkItem &item : batch)
                    insertLocal(item);
                deliverToBlocked();
                if (machine_->timeline) {
                    machine_->timeline->span(
                        tlEngine_, timeline::Name::FillBatch,
                        fbStart, eq_.now());
                }
            }
            continue;
        }
        if (!localLow) {
            // Work sharing: with idle workers and nothing stealable
            // anywhere, a hoarded local queue serializes the tail of
            // the computation. Flush our excess back to the global
            // worklist (a partial minnow_flush the programmable
            // engine issues on its own).
            if (params_.workSharing && mon.stealable() == 0 &&
                mon.idleWorkers() > 0 &&
                localQ_.size() > params_.refillThreshold) {
                std::uint32_t excess =
                    std::uint32_t(localQ_.size()) -
                    params_.refillThreshold;
                for (std::uint32_t i = 0; i < excess; ++i) {
                    spillBuf_.push_back(localQ_.back());
                    localQ_.pop_back();
                }
                stats_.spillsSpawned += excess;
                if (!spillDrainActive_) {
                    spillDrainActive_ = true;
                    co_await PoolAcquire{&threadletSlotsFree_,
                                         &threadletSlotWaiters_,
                                         nullptr};
                    adoptThreadlet(spillDrainThreadlet());
                }
                continue;
            }
            // Local queue is healthy: hand any monitor wakeup we
            // consumed to someone needier and park engine-locally
            // until our core drains the queue.
            if (mon.stealable() > 0)
                mon.rewake(1);
            co_await Park{this};
            continue;
        }
        if (mon.stealable() == 0 && global_->size() == 0) {
            // Nothing to pull anywhere: park on the monitor until
            // stealable work appears (or the run ends).
            bool more = co_await mon.waitForStealable();
            if (!more)
                break;
            continue;
        }
        // Transient (a racing fill's accounting is in flight) or
        // priority-gated (global head is lower priority than our
        // queue): bounded back-off, then recheck.
        co_await WaitAt{&eq_, eq_.now() + 200};
    }
    daemonRunning_ = false;
    releaseThreadletSlot();
}

CoTask<void>
MinnowEngine::prefetchTaskThreadlet(WorkItem item, std::uint64_t seq)
{
    TlSpan tlspan(this, timeline::Name::PrefetchTask);
    ThreadletCtx tc(this, eq_.now());
    tc.setLineage(item.lineage);
    const graph::CsrGraph &g = *program_.graph;
    NodeId v = NodeId(item.payload & 0xffffffffu);
    std::uint32_t part = std::uint32_t(item.payload >> 32);

    // Fig. 14 prefetchTask(): fetch the source node record, then
    // spawn a prefetchEdge threadlet per edge of the task's range.
    tc.exec(4);
    co_await tc.load(g.nodeAddr(v), true);
    tc.exec(2);

    // With the node record in hand, a superseded task (the worker
    // would drop it at its stale cutoff) is not worth prefetching:
    // its lines would pin credits until eviction. A dead engine's
    // tasks were rescued elsewhere, same conclusion.
    if (dead_ || (program_.taskStale && program_.taskStale(item))) {
        stats_.prefetchCancelled += 1;
        panic_if(activePrefetchTasks_ == 0,
                 "prefetch window underflow");
        activePrefetchTasks_ -= 1;
        releasePrefetchSlot();
        releasePrefetchSlot();
        co_return;
    }

    EdgeId begin = g.edgeBegin(v) +
                   EdgeId(part) * program_.splitThreshold;
    EdgeId end = std::min(g.edgeEnd(v),
                          begin + program_.splitThreshold);
    if (begin > g.edgeEnd(v))
        begin = g.edgeEnd(v);

    SpawnGate gate;

    struct ChildSlot
    {
        MinnowEngine *eng;
        SpawnGate *gate;
        SpawnGate::ChildWaiter waiter;
        bool granted = false;

        bool
        await_ready()
        {
            if (eng->prefetchSlotsFree_ > 0) {
                eng->prefetchSlotsFree_ -= 1;
                waiter.viaReserved = false;
                return true;
            }
            if (gate->reservedFree > 0) {
                gate->reservedFree -= 1;
                waiter.viaReserved = true;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            waiter.handle = h;
            gate->spawnWaiters.push_back(&waiter);
        }

        bool await_resume() const { return waiter.viaReserved; }
    };

    // One child per cache line of edge records; each child fetches
    // its line once and then the destination nodes of the edges in
    // it (the same coverage as Fig. 14's per-edge threadlets, with
    // line-granular fetches).
    constexpr EdgeId kEdgesPerLine =
        kLineBytes / graph::CsrGraph::kEdgeBytes;
    for (EdgeId e = begin; e < end;
         e = (e / kEdgesPerLine + 1) * kEdgesPerLine) {
        if (dead_ || prefetchStale(seq)) {
            stats_.prefetchCancelled += 1;
            break; // the worker is already past this task.
        }
        stats_.prefetchEdges += 1;
        tc.exec(2);
        bool viaReserved = co_await ChildSlot{this, &gate, {}, false};
        gate.active += 1;
        adoptThreadlet(
            // LINT-OK(coro-suspend-safety): gate is joined below
            prefetchEdgeThreadlet(e, end, seq, &gate, viaReserved,
                                  item.lineage));
    }

    // Join the children: the gate (and our reserved slot) must
    // outlive them (Section 5.3.2 reservation rules).
    struct Join
    {
        SpawnGate *gate;

        bool await_ready() const { return gate->active == 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            gate->joinWaiter = h;
        }

        void await_resume() const {}
    };
    co_await Join{&gate};

    panic_if(activePrefetchTasks_ == 0, "prefetch window underflow");
    activePrefetchTasks_ -= 1;
    releasePrefetchSlot(); // the reserved child slot.
    releasePrefetchSlot(); // our own slot.
}

void
MinnowEngine::finishChild(SpawnGate *gate, bool usedReserved)
{
    if (usedReserved) {
        if (!gate->spawnWaiters.empty()) {
            SpawnGate::ChildWaiter *w = gate->spawnWaiters.front();
            gate->spawnWaiters.pop_front();
            w->viaReserved = true; // token passes directly on.
            eq_.schedule(eq_.now(), w->handle);
        } else {
            gate->reservedFree += 1;
        }
    } else {
        releasePrefetchSlot();
    }
    gate->active -= 1;
    if (gate->active == 0 && gate->joinWaiter) {
        std::coroutine_handle<> h =
            std::exchange(gate->joinWaiter, nullptr);
        eq_.schedule(eq_.now(), h);
    }
}

CoTask<void>
MinnowEngine::prefetchEdgeThreadlet(EdgeId e, EdgeId endEdge,
                                    std::uint64_t seq,
                                    SpawnGate *gate,
                                    bool usedReserved,
                                    std::uint64_t lineage)
{
    TlSpan tlspan(this, timeline::Name::PrefetchEdge);
    ThreadletCtx tc(this, eq_.now());
    tc.setLineage(lineage);
    const graph::CsrGraph &g = *program_.graph;

    // Fig. 14 prefetchEdge(), line-granular: fetch the edge line,
    // then every destination node it references within this task.
    tc.exec(2);
    co_await tc.load(g.edgeAddr(e), true);
    constexpr EdgeId kEdgesPerLine =
        kLineBytes / graph::CsrGraph::kEdgeBytes;
    EdgeId lineEnd = (e / kEdgesPerLine + 1) * kEdgesPerLine;
    EdgeId stop = std::min(lineEnd, endEdge);
    for (EdgeId i = e; i < stop; ++i) {
        if (dead_ || prefetchStale(seq)) {
            stats_.prefetchCancelled += 1;
            finishChild(gate, usedReserved);
            co_return;
        }
        NodeId dst = g.edgeDst(i);
        tc.exec(2);
        co_await tc.load(g.nodeAddr(dst), true);

        if (program_.chaseAdjacency && g.degree(dst) > 0) {
            // Custom TC program: prefetch the destination's
            // adjacency array in bisection order (the order its
            // binary searches probe it), capped to bound the
            // footprint.
            EdgeId b = g.edgeBegin(dst);
            std::uint64_t bytes = std::uint64_t(g.degree(dst)) *
                                  graph::CsrGraph::kEdgeBytes;
            std::uint64_t lines =
                (bytes + kLineBytes - 1) / kLineBytes;
            std::uint32_t issued = 0;
            for (std::uint64_t denom = 2;
                 denom <= lines &&
                 issued < program_.adjacencyLineCap;
                 denom *= 2) {
                for (std::uint64_t k = 1; k < denom; k += 2) {
                    if (issued >= program_.adjacencyLineCap ||
                        prefetchStale(seq)) {
                        break;
                    }
                    std::uint64_t line = lines * k / denom;
                    Addr addr = lineAddr(g.edgeAddr(b)) +
                                line * kLineBytes;
                    tc.exec(2);
                    co_await tc.load(addr, true);
                    ++issued;
                }
            }
        }
    }
    finishChild(gate, usedReserved);
}

void
MinnowEngine::checkpoint(ckpt::Ckpt &ck)
{
    if (ck.loading()) {
        ck.fail("minnow engine sections are replay-validated, not"
                " loadable");
        return;
    }
    ck.io(core_);
    ck.io(localQ_);
    ck.io(localBucket_);
    ck.io(localReserved_);
    ck.io(threadletSlotsFree_);
    ck.io(prefetchSlotsFree_);
    ck.io(loadBufWlFree_);
    ck.io(loadBufPfFree_);
    ck.io(creditsFree_);
    ck.io(cuBusyUntil_);
    ck.io(daemonRunning_);
    std::uint64_t npf = pendingPrefetch_.size();
    ck.io(npf);
    for (std::uint64_t i = 0; i < npf; ++i) {
        auto entry = pendingPrefetch_.at(std::size_t(i));
        ck.io(entry.first);
        ck.io(entry.second);
    }
    ck.io(insertSeq_);
    ck.io(consumedSeq_);
    ck.io(activePrefetchTasks_);
    ck.io(prefetchWindow_);
    ck.io(spillBuf_);
    ck.io(spillDrainActive_);
    std::uint64_t npb = pushBufs_.size();
    ck.io(npb);
    for (PushBuf &pb : pushBufs_) {
        ck.io(pb.items);
        ck.io(pb.seq);
        ck.io(pb.deadlineArmed);
    }
    ck.io(creditPending_);
    ck.io(creditSeq_);
    ck.io(creditDeadlineArmed_);
    ck.io(spec_);
    ck.io(specNext_);
    ck.io(stats_);
    ck.io(dead_);
    ck.io(stallUntil_);
    // Pointers into the machine, coroutine frames/handles, waiter
    // queues and timeline/stat bookkeeping are rebuilt by replay.
    ck.transient("machine_ eq_ global_ program_ params_"
                 " blockedWorkers_"
                 " threadletSlotWaiters_ loadBufWlWaiters_"
                 " loadBufPfWaiters_ creditWaiters_ parkedDaemon_"
                 " tlEngine_ tlCreditTrack_ tlLastCredits_"
                 " tlLaneTracks_ tlFreeLanes_ dequeueLatencyHist_"
                 " threadletOccupancyHist_ statsGroupName_"
                 " threadlets_ faultTasks_");
}

} // namespace minnow::minnowengine
