#include "minnow/area.hh"

#include <cstdio>

namespace minnow::minnowengine
{

namespace
{

// Calibration constants (see header). The paper's configuration
// (64-entry local queue, 128-entry threadlet queue, 2 KB + 2 KB
// memories, 32-entry load buffer) must land on ~0.03 mm^2 at 28 nm.
// That configuration holds 61,440 SRAM bits, giving ~0.49 um^2/bit
// with peripheral overhead — a plausible 28 nm figure.
constexpr double kUm2PerBit28 = 0.03e6 / 61440.0;

/** 28 nm -> 14 nm area scale used by the paper (0.03 -> 0.008). */
constexpr double kScale28To14 = 0.008 / 0.03;

/** Quark-like in-order control unit, already scaled to 14 nm. */
constexpr double kControlUnitMm2At14 = 0.1;

/** Skylake-K core + router + L3 slice (die-photo estimate). */
constexpr double kSliceMm2 = 12.1;

/** Task record size in queue SRAM (two 64-bit words). */
constexpr double kTaskBits = 128.0;

/** CAM-ish load buffer entry: address + tag + state. */
constexpr double kLoadBufBits = 128.0;

/** Instruction and data memory, 2 KB each. */
constexpr double kMemoryBits = 2.0 * 2048.0 * 8.0;

} // anonymous namespace

AreaEstimate
estimateArea(const MachineConfig &cfg)
{
    const MinnowParams &m = cfg.minnow;
    double bits = m.localQueueEntries * kTaskBits +
                  m.threadletQueueEntries * kTaskBits +
                  m.loadBufferEntries * kLoadBufBits + kMemoryBits;

    AreaEstimate a;
    a.sramMm2At28 = bits * kUm2PerBit28 / 1e6;
    a.sramMm2At14 = a.sramMm2At28 * kScale28To14;
    a.controlMm2At14 = kControlUnitMm2At14;
    // One prefetch bit per L2 line, in its own SRAM arrays.
    double metaBits = double(cfg.l2.sizeBytes) / kLineBytes;
    a.metadataMm2At14 = metaBits * kUm2PerBit28 * kScale28To14 / 1e6;
    a.totalMm2At14 =
        a.sramMm2At14 + a.controlMm2At14 + a.metadataMm2At14;
    a.sliceMm2 = kSliceMm2;
    a.overheadPercent = 100.0 * a.totalMm2At14 / kSliceMm2;
    return a;
}

std::string
AreaEstimate::describe() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
        "Minnow engine area estimate\n"
        "  SRAM structures      %.4f mm^2 @28nm (%.4f mm^2 @14nm)\n"
        "  control unit         %.4f mm^2 @14nm (Quark-like)\n"
        "  L2 prefetch bits     %.4f mm^2 @14nm\n"
        "  total per core       %.4f mm^2 @14nm\n"
        "  Skylake slice        %.1f mm^2\n"
        "  overhead per slice   %.2f%%",
        sramMm2At28, sramMm2At14, controlMm2At14, metadataMm2At14,
        totalMm2At14, sliceMm2, overheadPercent);
    return buf;
}

} // namespace minnow::minnowengine
