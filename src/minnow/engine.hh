/**
 * @file
 * The Minnow engine (Section 5): a per-core offload accelerator with
 * a hardened front-end (the local task queue with its accelerator
 * interface) and a programmable multithreaded back-end (threadlets,
 * an in-order control unit that context-switches on every L2 access,
 * and a CAM load buffer).
 *
 * Timing model:
 *  - Core <-> engine accelerator calls cost localQueueLatency.
 *  - The control unit is a single-issue resource: threadlet
 *    instruction runs reserve engine-time segments (cuExec).
 *  - Every threadlet L2 access occupies one of loadBufferEntries
 *    slots and wakes its threadlet loadBufferWakeup cycles after the
 *    data returns; with the slot pool exhausted threadlets queue.
 *  - Prefetch loads consume a credit before issue and stall without
 *    one; credits return via the MemorySystem credit hook when the
 *    prefetched line is consumed or evicted (Section 5.3.1).
 *  - Threadlet-queue occupancy is capped; per Section 5.3.2 a
 *    prefetchTask reserves a slot for its children so spawning can
 *    never deadlock.
 *
 * Functional model: worklist state (local queue + software global
 * queue) mutates only at threadlet suspension points, in simulated-
 * time order, exactly like the worker-core worklists.
 */

#ifndef MINNOW_MINNOW_ENGINE_HH
#define MINNOW_MINNOW_ENGINE_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "base/ring_queue.hh"
#include "graph/csr.hh"
#include "minnow/global_queue.hh"
#include "runtime/machine.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"
#include "worklist/worklist.hh"

namespace minnow::minnowengine
{

class MinnowEngine;

/** What the worklist-directed prefetcher should chase per task. */
struct PrefetchProgram
{
    const graph::CsrGraph *graph = nullptr;
    std::uint32_t splitThreshold = ~0u;
    /** TC's custom program: also prefetch destination adjacency. */
    bool chaseAdjacency = false;
    /** Cap on adjacency lines prefetched per destination (TC). */
    std::uint32_t adjacencyLineCap = 8;
    /** App-supplied superseded-task test (see App). */
    std::function<bool(const worklist::WorkItem &)> taskStale;
};

/** Per-threadlet execution context (engine-side mirror of
 *  SimContext). */
class ThreadletCtx
{
  public:
    ThreadletCtx(MinnowEngine *eng, Cycle ready)
        : eng_(eng), ready_(ready)
    {
    }

    /** Run @p instrs control-unit instructions. */
    void exec(std::uint32_t instrs);

    /** Timed L2 read (context-switching); returns data-ready time. */
    runtime::CoTask<Cycle> load(Addr addr, bool prefetch = false);

    /** Timed L2 read-modify-write (global-queue synchronization). */
    runtime::CoTask<Cycle> atomic(Addr addr);

    Cycle ready() const { return ready_; }
    void setReady(Cycle t) { ready_ = t; }
    MinnowEngine &engine() { return *eng_; }

    /** Trigger-task lineage id carried into prefetch accesses
     *  (--attribution; 0 = untracked). */
    std::uint64_t lineage() const { return lineage_; }
    void setLineage(std::uint64_t id) { lineage_ = id; }

  private:
    MinnowEngine *eng_;
    Cycle ready_; //!< data-ready time of this threadlet.
    std::uint64_t lineage_ = 0;
};

/** Aggregate engine statistics. */
struct EngineStats
{
    std::uint64_t enqueues = 0;
    std::uint64_t dequeues = 0;
    std::uint64_t dequeueLocalHits = 0; //!< served from local queue.
    std::uint64_t dequeueBlocks = 0;    //!< core had to wait.
    std::uint64_t spillsSpawned = 0;
    std::uint64_t fillBatches = 0;
    std::uint64_t itemsFilled = 0;
    std::uint64_t prefetchTasks = 0;
    std::uint64_t prefetchEdges = 0;
    std::uint64_t prefetchLoads = 0;
    std::uint64_t creditStalls = 0;   //!< prefetch waited for credit.
    std::uint64_t loadBufStalls = 0;  //!< threadlet waited for slot.
    std::uint64_t threadletsSpawned = 0;
    std::uint64_t prefetchDeferred = 0; //!< queued for lack of slots.
    std::uint64_t prefetchPendingPeak = 0;
    std::uint64_t prefetchCancelled = 0; //!< stale, aborted early.
    Cycle cuBusyCycles = 0;

    // Fault injection (sim/fault.hh).
    std::uint64_t faultKills = 0;      //!< engine_kill fired here.
    std::uint64_t faultStalls = 0;     //!< engine_stall fired here.
    std::uint64_t tasksRescued = 0;    //!< flushed to global on faults.
    std::uint64_t fallbackPops = 0;    //!< software-path dequeues.
    std::uint64_t prefetchDropped = 0; //!< injected prefetch drops.
    std::uint64_t creditsLost = 0;     //!< injected lost returns.

    // Round-trip batching (--dequeue-batch / --push-batch) and the
    // speculative core-side slot (--spec-slot).
    std::uint64_t dequeueBundleTasks = 0; //!< tasks in pop bundles.
    std::uint64_t pushFlushes = 0;    //!< buffered push flushes.
    std::uint64_t pushedBatched = 0;  //!< tasks those flushes moved.
    std::uint64_t creditFlushes = 0;  //!< buffered credit flushes.
    std::uint64_t creditsBatched = 0; //!< credit returns coalesced.
    std::uint64_t creditHandoffs = 0; //!< returns given to a waiter.
    std::uint64_t specDeposits = 0;   //!< spec deliveries launched.
    std::uint64_t specHits = 0;       //!< pops served by deliveries.
    std::uint64_t specReclaims = 0;   //!< deliveries reclaimed.

    // Dequeue round-trip cycle split (bench/offload_breakdown). No
    // separate NoC hop is modeled on the core<->engine path; the
    // doorbell/delivery legs are the localQueueLatency hops.
    Cycle dqDoorbellCycles = 0; //!< core->engine call legs.
    Cycle dqWaitCycles = 0;     //!< parked waiting for a task.
    Cycle dqDeliverCycles = 0;  //!< engine->core delivery legs.
};

/** One per-core Minnow engine. */
class MinnowEngine
{
  public:
    MinnowEngine(runtime::Machine *machine, CoreId core,
                 MinnowGlobalQueue *globalQueue,
                 const PrefetchProgram &program);

    /** Deregisters the engine's "minnow<N>" stats group. */
    ~MinnowEngine();

    MinnowEngine(const MinnowEngine &) = delete;
    MinnowEngine &operator=(const MinnowEngine &) = delete;

    // ---- Core-side accelerator interface (Section 4.1) ----

    /** minnow_enqueue: accept or spill one task. */
    runtime::CoTask<void> enqueue(runtime::SimContext &ctx,
                                  WorkItem item);

    /**
     * minnow_dequeue: pop the next task; blocks until one arrives
     * or global termination, which yields nullopt.
     */
    runtime::CoTask<std::optional<WorkItem>>
    dequeue(runtime::SimContext &ctx);

    /**
     * minnow_dequeue with bundling (--dequeue-batch): pop up to
     * @p max tasks in one core<->engine round-trip, appended to
     * @p out. The bundle is drawn from the local-queue head, so it
     * carries the same one-bucket priority slack a chunked OBIM
     * has. Returns the bundle size; 0 means global termination.
     */
    runtime::CoTask<std::uint32_t>
    dequeueBatch(runtime::SimContext &ctx, std::vector<WorkItem> &out,
                 std::uint32_t max);

    /** minnow_flush: spill the whole local queue (context switch). */
    runtime::CoTask<void> flush(runtime::SimContext &ctx);

    /** Untimed pre-run seeding into the local queue. */
    void
    seedLocal(WorkItem item)
    {
        std::int64_t bucket = global_->bucketOf(item);
        if (localQ_.empty() || bucket < localBucket_)
            localBucket_ = bucket;
        insertLocal(item);
    }

    /** Start the background fill daemon threadlet. */
    void startDaemon();

    /**
     * Tell the engine how many of its attached cores actually run
     * workers (the last shared engine may be partial). This enables
     * the --spec-slot deposit path: without it the engine never
     * deposits, so a task cannot land in the slot of a core no
     * worker will ever pop. Called by MinnowSystem before the run.
     */
    void
    setActiveCores(std::uint32_t n)
    {
        spec_.assign(n, SpecState{});
        specNext_ = 0;
    }

    /** Termination hook: release a blocked core with nullopt. */
    void onTerminate();

    /** Credit return from the L2 (via MemorySystem hook). */
    void creditReturn(bool used);

    // ---- Fault injection (sim/fault.hh) ----

    /**
     * Spawn one fault coroutine per engine_kill/engine_stall clause
     * targeting this engine (called by MinnowSystem after the
     * termination hook is wired up).
     */
    void armFaults(const FaultInjector &faults);

    /**
     * Kill the engine permanently: rescue local tasks to the global
     * queue and release blocked workers through the termination
     * callback so they fall back to the software worklist path.
     */
    void injectKill();

    /** Freeze the engine for @p dur cycles (same degradation). */
    void injectStall(Cycle dur);

    bool dead() const { return dead_; }
    bool stalled() const
    {
        return eq_.now() < stallUntil_;
    }
    /** True while the engine cannot serve its cores. */
    bool faulted() const { return dead_ || stalled(); }

    /**
     * Witness serialization of the engine's deterministic state:
     * local queue, resource pools, batching buffers, spec slots and
     * counters, in a fixed order. Save-only (coroutine state is
     * rebuilt by deterministic replay; restore validates by
     * re-serializing and comparing CRCs — DESIGN.md section 5i).
     */
    void checkpoint(ckpt::Ckpt &ck);

    const EngineStats &stats() const { return stats_; }
    std::uint32_t localQueueSize() const
    {
        return std::uint32_t(localQ_.size());
    }
    std::int64_t localBucket() const { return localBucket_; }
    std::uint32_t creditsFree() const { return creditsFree_; }
    std::uint32_t prefetchSlotsFreeNow() const
    {
        return prefetchSlotsFree_;
    }
    std::size_t pendingPrefetchSize() const
    {
        return pendingPrefetch_.size();
    }
    std::size_t creditWaitersNow() const
    {
        return creditWaiters_.size();
    }

    // ---- Threadlet services (used by ThreadletCtx/programs) ----

    /** Reserve control-unit time; returns segment end. */
    Cycle cuExec(Cycle ready, std::uint32_t instrs);

    /**
     * Timed threadlet L2 access: load-buffer slot, optional prefetch
     * credit, the access, and the CAM wakeup. Returns the data-ready
     * time and updates @p tc.
     */
    runtime::CoTask<Cycle> threadletAccess(ThreadletCtx &tc,
                                           Addr addr, bool prefetch,
                                           bool atomic);

    runtime::Machine &machine() { return *machine_; }
    CoreId coreId() const { return core_; }
    MinnowGlobalQueue &globalQueue() { return *global_; }

    /**
     * Spawn-reservation gate (Section 5.3.2): a parent threadlet
     * reserves one queue slot for its children, guaranteeing
     * deadlock-free spawning; extra children use free global slots
     * opportunistically. Defined in the .cc.
     */
    struct SpawnGate;

  private:
    friend class ThreadletCtx;
    friend struct EngineAwaiters;

    /** Insert into the local queue; triggers prefetching. */
    void insertLocal(WorkItem item);

    /** Pop the local queue head (front-end FSM). */
    WorkItem popLocal();

    /**
     * popLocal without the monitor take: spec-slot deposits keep
     * their task pending (non-stealable) until a core consumes it,
     * so a deposit in flight can never let the run terminate under
     * it.
     */
    WorkItem popLocalRaw();

    /** Hand a task to a core blocked in dequeue. */
    void deliverToBlocked();

    /** Wake the fill daemon if it is parked engine-locally. */
    void nudgeDaemon();

    /** Return one worklist-type threadlet slot. */
    void releaseThreadletSlot();

    /** Return one prefetch-type threadlet slot. */
    void releasePrefetchSlot();

    /** Return one load-buffer slot to its share's pool. */
    void releaseLoadBufSlot(bool prefetchPool);

    /** Spawn prefetchTask threadlets queued for lack of slots. */
    void tryPendingPrefetch();

    /** Start a prefetchTask whose two slots are already taken. */
    void startPrefetchTask(WorkItem item, std::uint64_t seq);

    /** True once the task with insert-sequence @p seq is stale. */
    bool
    prefetchStale(std::uint64_t seq) const
    {
        return consumedSeq_ > seq + 2;
    }

    /** Child-threadlet epilogue: slot + gate accounting. */
    void finishChild(SpawnGate *gate, bool usedReserved);

    /** Garbage-collect finished threadlet frames. */
    void sweepThreadlets();

    /** Register and start a threadlet body. */
    void adoptThreadlet(runtime::CoTask<void> body);

    /** Front-end FSM: enqueue decision at accelerator-call arrival. */
    runtime::CoTask<void> enqueueArrival(WorkItem item, Cycle when);

    // ---- Push/credit-return coalescing (--push-batch > 1) ----

    /** Cycles a partially-filled push buffer may age before flush. */
    Cycle
    pushFlushCycles() const
    {
        return Cycle(4) * params_.localQueueLatency;
    }

    /** Push-buffer index of worker core @p c (shared engines). */
    std::uint32_t pushIdx(CoreId c) const { return c - core_; }

    /** Buffer one push; flush on size, else arm the deadline. */
    void bufferPush(CoreId c, WorkItem item);

    /** Flush core @p c's push buffer to the engine front-end. */
    void flushPushBuf(CoreId c);

    /** One-shot deadline flush for an aging push buffer. */
    runtime::CoTask<void> pushDeadline(std::uint32_t idx,
                                       std::uint64_t seq, Cycle when);

    /** Batched front-end arrival: the whole buffer in one message. */
    runtime::CoTask<void>
    enqueueArrivalBatch(std::vector<WorkItem> items, Cycle when);

    /** Deliver all batched credit returns to the pool/waiters. */
    void flushCredits();

    /** One-shot deadline flush for aging batched credits. */
    runtime::CoTask<void> creditDeadline(std::uint64_t seq,
                                         Cycle when);

    /**
     * Deliver one credit: hand it to a parked waiter or return it
     * to the pool, emitting the counter/handoff instrumentation.
     */
    void creditDeliver(bool used);

    // ---- Speculative next-task delivery (--spec-slot) ----

    /** Deposit local-queue heads into free attached-core slots. */
    void trySpecDeposit();

    /** In-flight deposit: lands in the slot after a latency hop. */
    runtime::CoTask<void> specDepositTask(std::uint32_t idx,
                                          WorkItem item,
                                          std::uint64_t seq);

    /** Slot-consumed notification arriving back at the engine. */
    runtime::CoTask<void> specConsumedTask(Cycle when);

    // ---- Fault machinery ----

    /** Waits until the clause fires, then kills/stalls the engine. */
    runtime::CoTask<void> faultTask(FaultClause clause);

    /**
     * Degraded-mode dequeue: pop the software global queue directly,
     * re-entering the accelerator path if the engine recovers.
     */
    runtime::CoTask<std::optional<WorkItem>>
    dequeueFallback(runtime::SimContext &ctx, Cycle dqStart);

    /**
     * Flush local + spill-buffered tasks to the global queue (they
     * become stealable; monitor accounting moves with them).
     */
    void rescueLocalTasks();

    /** Stall-window end: flush anything that leaked in, wake up. */
    void recoverFromStall();

    // Threadlet programs.
    runtime::CoTask<void> spillThreadlet(WorkItem item);
    runtime::CoTask<void> spillDrainThreadlet();
    runtime::CoTask<void> fillDaemon();
    runtime::CoTask<void> prefetchTaskThreadlet(WorkItem item,
                                                std::uint64_t seq);
    runtime::CoTask<void> prefetchEdgeThreadlet(EdgeId e,
                                                EdgeId endEdge,
                                                std::uint64_t seq,
                                                SpawnGate *gate,
                                                bool usedReserved,
                                                std::uint64_t lineage);

    runtime::Machine *machine_;
    /** This engine's shard timing wheel (the machine's single queue
     *  at --shards=1); all wheels advance in lockstep. */
    EventQueue &eq_;
    CoreId core_;
    MinnowGlobalQueue *global_;
    PrefetchProgram program_;
    const MinnowParams &params_;

    // Front-end state.
    std::deque<WorkItem> localQ_;
    std::int64_t localBucket_ = MinnowGlobalQueue::kNoBucket;
    /** Local-queue slots reserved by an in-flight daemon fill. */
    std::uint32_t localReserved_ = 0;

    // Blocked-core handshake (possibly several cores when the
    // engine is shared).
    struct BlockedWorker
    {
        std::coroutine_handle<> handle;
        std::optional<WorkItem> *slot;
    };
    RingQueue<BlockedWorker> blockedWorkers_;

    // Back-end resource pools. The threadlet queue is partitioned
    // into virtual queues per threadlet type (Section 5.3.2):
    // worklist threadlets (daemon, spills) have a reserved share so
    // credit-blocked prefetch threadlets can never starve them.
    std::uint32_t threadletSlotsFree_;  //!< worklist share.
    std::uint32_t prefetchSlotsFree_;   //!< prefetch share.
    std::uint32_t loadBufWlFree_;       //!< worklist share.
    std::uint32_t loadBufPfFree_;       //!< prefetch share.
    std::uint32_t creditsFree_;
    // Waiter queues churn every few cycles in steady state; they are
    // RingQueues (storage-recycling) so waking/parking threadlets
    // never touches the allocator once warm.
    RingQueue<std::coroutine_handle<>> threadletSlotWaiters_;
    RingQueue<std::coroutine_handle<>> loadBufWlWaiters_;
    RingQueue<std::coroutine_handle<>> loadBufPfWaiters_;
    RingQueue<std::coroutine_handle<>> creditWaiters_;

    Cycle cuBusyUntil_ = 0;

    // Daemon parking.
    std::coroutine_handle<> parkedDaemon_;
    bool daemonRunning_ = false;

    // Prefetch requests waiting for threadlet-queue slots, in
    // local-queue order; entries whose task is consumed first are
    // dropped (prefetching them would be pure pollution).
    RingQueue<std::pair<WorkItem, std::uint64_t>> pendingPrefetch_;

    // Insert/consume sequence numbers driving prefetch-staleness
    // cancellation: a threadlet whose task was consumed a while ago
    // aborts instead of fetching dead data that would pin credits.
    std::uint64_t insertSeq_ = 0;
    std::uint64_t consumedSeq_ = 0;
    std::uint32_t activePrefetchTasks_ = 0;
    std::uint32_t prefetchWindow_ = 8;

    // Spill coalescing: enqueue overflow accumulates here and one
    // drain threadlet pushes it to the global queue in same-bucket
    // batches.
    std::deque<WorkItem> spillBuf_;
    bool spillDrainActive_ = false;

    // Push coalescing (--push-batch > 1): one buffer per attached
    // core; seq cancels a stale deadline flush after a size-
    // triggered one already ran. Credits batch engine-wide (the
    // credit pool is per-engine, not per-core).
    struct PushBuf
    {
        std::vector<WorkItem> items;
        std::uint64_t seq = 0;
        bool deadlineArmed = false;
    };
    std::vector<PushBuf> pushBufs_;
    std::uint32_t creditPending_ = 0;
    std::uint64_t creditSeq_ = 0;
    bool creditDeadlineArmed_ = false;

    // Speculative delivery (--spec-slot): per active attached core,
    // whether a deposit is in flight and the invalidation sequence
    // that rescue/kill bumps to cancel it mid-flight. Sized by
    // setActiveCores(); empty disables deposits entirely.
    struct SpecState
    {
        bool inFlight = false;
        std::uint64_t seq = 0;

        // Per-member: 7 padding bytes after the bool must not leak
        // into a checkpoint stream.
        void
        checkpoint(ckpt::Ckpt &ck)
        {
            ck.io(inFlight);
            ck.io(seq);
        }
    };
    std::vector<SpecState> spec_;
    std::uint32_t specNext_ = 0; //!< round-robin deposit cursor.

    // Timeline track and stat bookkeeping. Declared before
    // threadlets_/faultTasks_ on purpose (enforced by the
    // coroutine-order lint rule): destroying a suspended threadlet
    // coroutine runs its TlSpan destructor, which touches the lane
    // bookkeeping and histograms below — so these members must
    // outlive the coroutine containers.
    timeline::TrackId tlEngine_ = timeline::kNoTrack;
    timeline::TrackId tlCreditTrack_ = timeline::kNoTrack;
    std::uint32_t tlLastCredits_ = 0; //!< last emitted credit value.
    std::vector<timeline::TrackId> tlLaneTracks_;
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<>>
        tlFreeLanes_;

    // Registry-owned distribution stats (point into the group).
    HistogramStat *dequeueLatencyHist_ = nullptr;
    HistogramStat *threadletOccupancyHist_ = nullptr;
    std::string statsGroupName_;

    std::vector<runtime::CoTask<void>> threadlets_;
    EngineStats stats_;

    // Fault state. Fault coroutines live outside threadlets_ so the
    // threadlet occupancy accounting stays clean.
    bool dead_ = false;
    Cycle stallUntil_ = 0;
    std::vector<runtime::CoTask<void>> faultTasks_;

    /** Register counters/formulas/histograms as "minnow<core>". */
    void registerStats();

    // ---- Timeline instrumentation (sim/timeline.hh) ----

    /**
     * RAII threadlet-lifetime span: the constructor grabs the lowest
     * free display lane, the destructor emits [spawn, retire] on that
     * lane's track. Placed at the top of a threadlet coroutine body
     * it covers the whole lifetime (coroutine locals are destroyed
     * at co_return). No-op when tracing is off.
     */
    class TlSpan
    {
      public:
        TlSpan(MinnowEngine *eng, timeline::Name name);
        ~TlSpan();
        TlSpan(const TlSpan &) = delete;
        TlSpan &operator=(const TlSpan &) = delete;

      private:
        MinnowEngine *eng_;
        timeline::Name name_;
        Cycle begin_ = 0;
        std::uint32_t lane_ = 0;
        bool active_ = false;
    };

    /** Lowest free threadlet lane (registers its track on demand). */
    std::uint32_t tlAcquireLane();
    void tlReleaseLane(std::uint32_t lane);

    /** Sample the credit counter track after a change. */
    void tlCredits();
};

} // namespace minnow::minnowengine

#endif // MINNOW_MINNOW_ENGINE_HH
