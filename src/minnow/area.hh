/**
 * @file
 * Analytic area model reproducing Section 5.4.
 *
 * The paper reports: engine SRAM structures (local queue, threadlet
 * queue, instruction/data memories, load buffer) total ~0.03 mm^2 on
 * 28 nm (0.008 mm^2 scaled to 14 nm); the control unit is estimated
 * from the P54C-based Intel Quark at 0.5 mm^2 on 32 nm (0.1 mm^2 on
 * 14 nm); a Skylake core+router+L3 slice is 12.1 mm^2; and the total
 * overhead is <1% per slice. The SRAM bit density below is
 * calibrated so the paper's configuration lands on the published
 * 0.03 mm^2 point; the model then generalizes to other configs
 * (used by the ablation benches).
 */

#ifndef MINNOW_MINNOW_AREA_HH
#define MINNOW_MINNOW_AREA_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"

namespace minnow::minnowengine
{

/** Area breakdown of one Minnow engine, in mm^2. */
struct AreaEstimate
{
    double sramMm2At28 = 0;   //!< all engine SRAM, 28 nm.
    double sramMm2At14 = 0;   //!< same, scaled to 14 nm.
    double controlMm2At14 = 0; //!< Quark-like control unit, 14 nm.
    double metadataMm2At14 = 0; //!< 1 bit/L2 line prefetch metadata.
    double totalMm2At14 = 0;
    double sliceMm2 = 0;      //!< Skylake core+router+L3 slice.
    double overheadPercent = 0;

    std::string describe() const;
};

/**
 * Estimate engine area for a machine configuration.
 *
 * SRAM sizing: local queue and threadlet queue hold 16 B tasks;
 * the load buffer holds ~16 B CAM entries; instruction and data
 * memories are 2 KB each (Section 5.4).
 */
AreaEstimate estimateArea(const MachineConfig &cfg);

} // namespace minnow::minnowengine

#endif // MINNOW_MINNOW_AREA_HH
