#include "cpu/ooo_core.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/hostprof.hh"
#include "sim/timeline.hh"

namespace minnow::cpu
{

namespace
{

/** L1D hit latency used for cheap (always-hit) loads. */
constexpr Cycle kCheapLoadLatency = 4;

/** Single-cycle ALU latency. */
constexpr Cycle kAluLatency = 1;

} // anonymous namespace

OooCore::OooCore(CoreId id, const CoreParams &params,
                 mem::MemorySystem *memory, std::uint64_t seed)
    : id_(id), params_(params), memory_(memory),
      rng_(seed ^ (0xabcdef1234567890ull + id))
{
}

void
OooCore::registerStats(StatsGroup &g)
{
    const CoreStats *s = &stats_;
    auto count = [&](const char *name, const char *desc,
                     const std::uint64_t *field) {
        g.formula(name, desc, [field] { return double(*field); });
    };
    count("uops", "micro-ops dispatched", &s->uops);
    count("loads", "loads issued (incl. cheap)", &s->loads);
    count("cheapLoads", "always-L1-hit loads", &s->cheapLoads);
    count("delinquentLoads", "first-touch node/edge loads",
          &s->delinquentLoads);
    count("stores", "stores issued", &s->stores);
    count("atomics", "atomic RMWs issued", &s->atomics);
    count("branches", "conditional branches resolved", &s->branches);
    count("mispredicts", "branches mispredicted", &s->mispredicts);
    g.formula("branchStallCycles", "frontend cycles lost to redirects",
              [s] { return double(s->branchStallCycles); });
    g.formula("fenceStallCycles", "cycles atomics waited on TSO fences",
              [s] { return double(s->fenceStallCycles); });
    g.formula("robStallCycles", "dispatch cycles lost to a full ROB",
              [s] { return double(s->robStallCycles); });
    g.formula("mispredictRate", "mispredicts per branch", [s] {
        return s->branches
                   ? double(s->mispredicts) / double(s->branches)
                   : 0.0;
    });
    static const char *phaseNames[3] = {"app", "worklist", "idle"};
    for (int p = 0; p < 3; ++p) {
        const PhaseStats *ps = &s->phases[p];
        std::string base = phaseNames[p];
        g.formula(base + "Cycles",
                  "frontier cycles accrued in this phase",
                  [ps] { return double(ps->cycles); });
        g.formula(base + "Uops", "uops accrued in this phase",
                  [ps] { return double(ps->uops); });
    }
}

Cycle
OooCore::frontier() const
{
    Cycle fe = Cycle(dispatchSlots_ / params_.dispatchWidth);
    return std::max(fe, minIssue_);
}

Cycle
OooCore::drain() const
{
    return std::max({frontier(), maxMemComplete_, retireCursor_});
}

void
OooCore::idleUntil(Cycle t)
{
    Cycle before = frontier();
    std::uint64_t slots = t * params_.dispatchWidth;
    if (slots > dispatchSlots_)
        dispatchSlots_ = slots;
    if (t > minIssue_)
        minIssue_ = t;
    accrue(before, 0);
}

void
OooCore::setPhase(Phase p)
{
    if (tl_ && p != phase_) {
        // Close the outgoing phase's residency span at the current
        // frontier; zero-length windows (phase flips with no uops in
        // between) emit nothing.
        static constexpr timeline::Name kPhaseName[] = {
            timeline::Name::PhaseApp,
            timeline::Name::PhaseWorklist,
            timeline::Name::PhaseIdle,
        };
        Cycle f = frontier();
        if (f > tlPhaseStart_) {
            tl_->span(tlTrack_, kPhaseName[int(phase_)],
                      tlPhaseStart_, f);
            tlPhaseStart_ = f;
        }
    }
    phase_ = p;
}

void
OooCore::bindTimeline(timeline::Timeline *tl, std::uint32_t track)
{
    tl_ = tl;
    tlTrack_ = track;
    tlPhaseStart_ = tl ? frontier() : 0;
}

void
OooCore::accrue(Cycle before, std::uint32_t uops)
{
    Cycle after = frontier();
    PhaseStats &ps = stats_.phases[int(phase_)];
    if (after > before)
        ps.cycles += after - before;
    ps.uops += uops;
}

Cycle
OooCore::dispatch(std::uint32_t n, Cycle dep)
{
    // In-order allocation constraints: the ROB entry for the last uop
    // of this run must have retired out of the window, and its RS
    // entry must have completed out of the scheduler.
    Cycle structural = 0;
    std::uint64_t last = uopIndex_ + n - 1;
    if (last >= params_.robEntries) {
        Cycle t = robWindow_.timeAt(last - params_.robEntries);
        if (t > structural) {
            Cycle fe = frontier();
            if (t > fe)
                stats_.robStallCycles += t - fe;
            structural = t;
        }
    }
    if (last >= params_.rsEntries) {
        Cycle t = rsWindow_.timeAt(last - params_.rsEntries);
        structural = std::max(structural, t);
    }

    Cycle feCycle = Cycle(dispatchSlots_ / params_.dispatchWidth);
    Cycle dispatchCycle = std::max({feCycle, minIssue_, structural});
    std::uint64_t base = dispatchCycle * params_.dispatchWidth;
    if (base > dispatchSlots_)
        dispatchSlots_ = base;
    dispatchSlots_ += n;
    uopIndex_ += n;
    stats_.uops += n;

    return std::max(dispatchCycle, dep);
}

void
OooCore::complete(std::uint32_t n, Cycle t)
{
    retireCursor_ = std::max(retireCursor_, t);
    robWindow_.push(n, retireCursor_);
    rsWindow_.push(n, t);
}

Cycle
OooCore::lqConstraint()
{
    if (loadIndex_ >= params_.lqEntries)
        return lqWindow_.timeAt(loadIndex_ - params_.lqEntries);
    return 0;
}

Cycle
OooCore::sqConstraint()
{
    if (storeIndex_ >= params_.sqEntries)
        return sqWindow_.timeAt(storeIndex_ - params_.sqEntries);
    return 0;
}

Cycle
OooCore::load(Addr addr, Cycle dep, const LoadInfo &info)
{
    HostProfScope hp(HostClass::Core);
    Cycle before = frontier();
    Cycle lq = lqConstraint();
    if (lq > minIssue_)
        minIssue_ = lq; // allocation stalls the frontend.
    Cycle issue = dispatch(1, dep);

    mem::MemAccess req;
    req.addr = addr;
    req.type = mem::AccessType::Load;
    req.core = id_;
    req.when = issue;
    req.site = info.site;
    req.value = info.value;
    req.hasValue = info.hasValue;
    mem::AccessResult res = memory_->access(req);

    complete(1, res.done);
    lqWindow_.push(1, res.done);
    ++loadIndex_;
    maxMemComplete_ = std::max(maxMemComplete_, res.done);

    stats_.loads += 1;
    if (info.delinquent)
        stats_.delinquentLoads += 1;
    accrue(before, 1);
    return res.done;
}

void
OooCore::cheapLoads(std::uint32_t n)
{
    while (n) {
        std::uint32_t m = std::min(n, params_.lqEntries / 2 + 1);
        Cycle before = frontier();
        Cycle lq = lqConstraint();
        if (lq > minIssue_)
            minIssue_ = lq;
        Cycle issue = dispatch(m, 0);
        Cycle done = issue + kCheapLoadLatency;
        complete(m, done);
        lqWindow_.push(m, done);
        loadIndex_ += m;
        stats_.cheapLoads += m;
        stats_.loads += m;
        accrue(before, m);
        n -= m;
    }
}

Cycle
OooCore::store(Addr addr, Cycle dep)
{
    HostProfScope hp(HostClass::Core);
    Cycle before = frontier();
    Cycle sq = sqConstraint();
    if (sq > minIssue_)
        minIssue_ = sq;
    Cycle issue = dispatch(1, dep);

    mem::MemAccess req;
    req.addr = addr;
    req.type = mem::AccessType::Store;
    req.core = id_;
    req.when = issue;
    mem::AccessResult res = memory_->access(req);

    // Stores commit from the SQ post-retirement; the core does not
    // wait, but the entry is busy until the write completes.
    complete(1, issue + kAluLatency);
    sqWindow_.push(1, res.done);
    ++storeIndex_;
    maxMemComplete_ = std::max(maxMemComplete_, res.done);

    stats_.stores += 1;
    accrue(before, 1);
    return res.done;
}

Cycle
OooCore::atomic(Addr addr, Cycle dep)
{
    HostProfScope hp(HostClass::Core);
    Cycle before = frontier();
    Cycle lq = std::max(lqConstraint(), sqConstraint());
    if (lq > minIssue_)
        minIssue_ = lq;

    Cycle issue = dispatch(1, dep);
    Cycle fenceFloor = issue;
    if (params_.atomicFences) {
        // x86-TSO: all older loads and stores must have completed.
        fenceFloor = std::max(issue, maxMemComplete_);
        if (fenceFloor > issue)
            stats_.fenceStallCycles += fenceFloor - issue;
    }

    mem::MemAccess req;
    req.addr = addr;
    req.type = mem::AccessType::Atomic;
    req.core = id_;
    req.when = fenceFloor;
    mem::AccessResult res = memory_->access(req);

    complete(1, res.done);
    lqWindow_.push(1, res.done);
    sqWindow_.push(1, res.done);
    ++loadIndex_;
    ++storeIndex_;
    maxMemComplete_ = std::max(maxMemComplete_, res.done);

    if (params_.atomicFences) {
        // Full barrier: younger ops wait for the RMW to complete.
        minIssue_ = std::max(minIssue_, res.done);
    }

    stats_.atomics += 1;
    accrue(before, 1);
    return res.done;
}

void
OooCore::compute(std::uint32_t n, Cycle dep)
{
    while (n) {
        std::uint32_t m =
            std::min(n, std::max(params_.robEntries / 2, 1u));
        Cycle before = frontier();
        Cycle issue = dispatch(m, dep);
        complete(m, issue + kAluLatency);
        accrue(before, m);
        n -= m;
        dep = 0;
    }
}

Cycle
OooCore::branch(BranchKind kind, Cycle dep)
{
    Cycle before = frontier();
    Cycle issue = dispatch(1, dep);
    Cycle resolve = issue + kAluLatency;
    complete(1, resolve);
    stats_.branches += 1;

    if (!params_.perfectBranches) {
        double rate = kind == BranchKind::Loop
                    ? params_.loopMispredictRate
                    : params_.dataMispredictRate;
        if (rng_.chance(rate)) {
            stats_.mispredicts += 1;
            Cycle redirect = resolve + params_.mispredictPenalty;
            if (redirect > minIssue_) {
                Cycle fe = frontier();
                if (redirect > fe)
                    stats_.branchStallCycles += redirect - fe;
                minIssue_ = redirect;
            }
        }
    }
    accrue(before, 1);
    return resolve;
}

void
OooCore::specDeposit(std::uint64_t seq, std::int64_t priority,
                     std::uint64_t payload, std::uint64_t lineage)
{
    panic_if(specSlot_.valid,
             "core %u: spec-slot double deposit (seq %llu over %llu)",
             id_, (unsigned long long)seq,
             (unsigned long long)specSlot_.seq);
    specSlot_.valid = true;
    specSlot_.seq = seq;
    specSlot_.priority = priority;
    specSlot_.payload = payload;
    specSlot_.lineage = lineage;
}

} // namespace minnow::cpu
