/**
 * @file
 * Out-of-order core timing model.
 *
 * This is a limit-study model in the ZSim tradition: instead of
 * simulating a pipeline structurally, it tracks the analytic
 * constraints that bound how far an OOO core can run ahead:
 *
 *  - frontend dispatch width (uops per cycle),
 *  - ROB occupancy with in-order retirement,
 *  - unified reservation-station occupancy (frees at completion),
 *  - load-queue and store-queue occupancy,
 *  - x86-TSO fences: an atomic cannot issue until every older load
 *    and store has completed, and younger memory ops wait for it,
 *  - branch mispredictions: issue of younger ops is gated until the
 *    mispredicted branch's input operand is ready plus the redirect
 *    penalty.
 *
 * Every constraint is O(1) amortized per micro-op via segmented ring
 * windows, so the model adds little to simulation cost. Workloads
 * feed it a stream of micro-ops (load / store / atomic / compute /
 * branch) with explicit data dependencies; loads return their
 * completion cycle so dependent ops can be chained.
 *
 * These are precisely the mechanisms Sections 3.3-3.4 of the paper
 * reason about, so Fig. 4 (ROB sweep, perfect-branch / no-fence
 * modes), Fig. 5 (cycle breakdown), and Fig. 6 (delinquent load
 * density) all fall out of this model.
 */

#ifndef MINNOW_CPU_OOO_CORE_HH
#define MINNOW_CPU_OOO_CORE_HH

#include <cstdint>
#include <deque>

#include "base/ckpt.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"

namespace minnow::timeline
{
class Timeline;
}

namespace minnow::cpu
{

/** Classes of conditional branches with distinct predictability. */
enum class BranchKind
{
    Loop,           //!< loop back-edges; TAGE nearly always right.
    DataDependent,  //!< compares on freshly loaded graph data.
};

/** Execution phase for cycle attribution (Fig. 5). */
enum class Phase
{
    App,       //!< user operator work.
    Worklist,  //!< scheduler enqueue/dequeue/steal work.
    Idle,      //!< blocked waiting for work.
};

/** Extra metadata attached to a load micro-op. */
struct LoadInfo
{
    std::uint16_t site = 0;    //!< load-site tag (PC proxy).
    std::uint64_t value = 0;   //!< functional value (IMP training).
    bool hasValue = false;
    bool delinquent = false;   //!< first access to a node/edge.
};

/** Per-phase cycle/uop accounting. */
struct PhaseStats
{
    Cycle cycles = 0;
    std::uint64_t uops = 0;
};

/** Aggregated core statistics. */
struct CoreStats
{
    std::uint64_t uops = 0;
    std::uint64_t loads = 0;
    std::uint64_t cheapLoads = 0;
    std::uint64_t delinquentLoads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    Cycle branchStallCycles = 0;
    Cycle fenceStallCycles = 0;
    Cycle robStallCycles = 0;
    PhaseStats phases[3];
};

/**
 * Sliding window of (index -> time) used to model a fixed-capacity
 * in-order-allocated structure (ROB, RS, LQ, SQ). Entries are pushed
 * in index order as (count, time) segments; timeAt() queries are
 * monotonically nondecreasing in index, so lookups pop from the
 * front and the whole structure is O(1) amortized.
 */
class SegmentedWindow
{
  public:
    /** Record @p count consecutive entries carrying time @p t. */
    void
    push(std::uint64_t count, Cycle t)
    {
        if (count == 0)
            return;
        std::uint64_t end = tail_ + count;
        if (!segs_.empty() && segs_.back().time == t)
            segs_.back().end = end;
        else
            segs_.push_back({end, t});
        tail_ = end;
    }

    /**
     * Time recorded for entry @p idx. Queries must be monotonic.
     * Entries below the window (already consumed) report 0.
     */
    Cycle
    timeAt(std::uint64_t idx)
    {
        while (!segs_.empty() && segs_.front().end <= idx) {
            head_ = segs_.front().end;
            segs_.pop_front();
        }
        if (segs_.empty() || idx < head_)
            return 0;
        return segs_.front().time;
    }

    std::uint64_t tail() const { return tail_; }

    /** Serialize segments and cursors; symmetric (Segment is POD). */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(segs_);
        ck.io(head_);
        ck.io(tail_);
    }

  private:
    struct Segment
    {
        std::uint64_t end; //!< one past the last entry of the run.
        Cycle time;
    };

    std::deque<Segment> segs_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

/**
 * Core-side slot for speculative next-task delivery (--spec-slot).
 * The Minnow engine deposits the predicted next task here so the
 * common-case pop is a local hit instead of an engine round-trip.
 * Plain POD fields (not worklist::WorkItem) keep the cpu layer free
 * of worklist dependencies; seq tags the deposit so rescue/kill can
 * invalidate in-flight deliveries.
 */
struct SpecTaskSlot
{
    bool valid = false;
    std::uint64_t seq = 0;
    std::int64_t priority = 0;
    std::uint64_t payload = 0;
    std::uint64_t lineage = 0; //!< attribution id (0 = untracked).

    // Per-member: the bool is followed by padding, which must not
    // leak into a checkpoint stream.
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(valid);
        ck.io(seq);
        ck.io(priority);
        ck.io(payload);
        ck.io(lineage);
    }
};

/** The per-core OOO timing model. */
class OooCore
{
  public:
    OooCore(CoreId id, const CoreParams &params,
            mem::MemorySystem *memory, std::uint64_t seed);

    /**
     * Issue a load. @p dep is the ready cycle of its address operand
     * (0 if none). Returns the cycle the value is available.
     */
    Cycle load(Addr addr, Cycle dep = 0, const LoadInfo &info = {});

    /**
     * Account @p n always-L1-hit loads (stack traffic, register
     * spills, secondary structure fields). They consume frontend
     * bandwidth, ROB and LQ entries but do not access the hierarchy.
     */
    void cheapLoads(std::uint32_t n);

    /** Issue a store; returns its completion (visibility) cycle. */
    Cycle store(Addr addr, Cycle dep = 0);

    /**
     * Issue an atomic read-modify-write. Applies fence semantics when
     * enabled. Returns the cycle the old value is available; younger
     * ops are gated behind it.
     */
    Cycle atomic(Addr addr, Cycle dep = 0);

    /** Account @p n single-cycle ALU micro-ops. */
    void compute(std::uint32_t n, Cycle dep = 0);

    /**
     * Resolve a conditional branch whose input is ready at @p dep.
     * Draws a deterministic misprediction by kind; on mispredict the
     * frontend restarts at resolve + penalty. Returns resolve cycle.
     */
    Cycle branch(BranchKind kind, Cycle dep);

    /** Frontend position: earliest cycle the next uop can dispatch. */
    Cycle frontier() const;

    /** Cycle by which everything issued so far has completed. */
    Cycle drain() const;

    /** Jump the frontend forward (core sat idle until @p t). */
    void idleUntil(Cycle t);

    /** Switch attribution phase; deltas accrue to the current one. */
    void setPhase(Phase p);
    Phase phase() const { return phase_; }

    /**
     * Attach the machine's timeline: every phase switch then emits a
     * residency span on @p track covering the frontier window spent
     * in the outgoing phase (the frontier only moves forward, so it
     * is a valid span clock). Null detaches.
     */
    void bindTimeline(timeline::Timeline *tl, std::uint32_t track);

    /**
     * Deposit a speculative next task (engine side). Panics if the
     * slot is already valid — the engine must keep at most one
     * deposit outstanding per core.
     */
    void specDeposit(std::uint64_t seq, std::int64_t priority,
                     std::uint64_t payload, std::uint64_t lineage);

    /** Drop any deposited task (rescue/kill reclaim path). */
    void specInvalidate() { specSlot_.valid = false; }

    const SpecTaskSlot &specSlot() const { return specSlot_; }

    CoreId id() const { return id_; }
    const CoreStats &stats() const { return stats_; }
    void resetStats() { stats_ = CoreStats{}; }

    /**
     * Register this core's counters into @p g as dump-time formulas
     * over the live CoreStats (no hot-path cost).
     */
    void registerStats(StatsGroup &g);

    /**
     * Serialize the analytic pipeline state: RNG, frontend cursors,
     * occupancy windows, phase accounting, stats, and the spec slot.
     * Symmetric — everything here is value state.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        rng_.checkpoint(ck);
        ck.io(dispatchSlots_);
        ck.io(minIssue_);
        ck.io(maxMemComplete_);
        ck.io(retireCursor_);
        ck.io(uopIndex_);
        ck.io(loadIndex_);
        ck.io(storeIndex_);
        robWindow_.checkpoint(ck);
        rsWindow_.checkpoint(ck);
        lqWindow_.checkpoint(ck);
        sqWindow_.checkpoint(ck);
        ck.io(phase_);
        ck.io(stats_);
        ck.io(tlPhaseStart_);
        ck.io(specSlot_);
        ck.transient("id_ params_ memory_ tl_ tlTrack_");
    }

  private:
    /**
     * Common dispatch bookkeeping for a run of @p n uops whose
     * issue also depends on @p dep. Returns the issue cycle.
     */
    Cycle dispatch(std::uint32_t n, Cycle dep);

    /** Record completion of the current uop run. */
    void complete(std::uint32_t n, Cycle t);

    /** Track a load/store entry in its queue window. */
    Cycle lqConstraint();
    Cycle sqConstraint();

    /** Charge elapsed frontier time to the current phase. */
    void accrue(Cycle before, std::uint32_t uops);

    CoreId id_;
    CoreParams params_;
    mem::MemorySystem *memory_;
    Rng rng_;

    /** Frontend position in uop slots (width slots per cycle). */
    std::uint64_t dispatchSlots_ = 0;
    Cycle minIssue_ = 0;        //!< serialization floor.
    Cycle maxMemComplete_ = 0;  //!< latest load/store completion.
    Cycle retireCursor_ = 0;    //!< in-order retirement clock.

    std::uint64_t uopIndex_ = 0;
    std::uint64_t loadIndex_ = 0;
    std::uint64_t storeIndex_ = 0;

    SegmentedWindow robWindow_;  //!< uop idx -> retire time.
    SegmentedWindow rsWindow_;   //!< uop idx -> completion time.
    SegmentedWindow lqWindow_;   //!< load idx -> completion time.
    SegmentedWindow sqWindow_;   //!< store idx -> completion time.

    Phase phase_ = Phase::App;
    CoreStats stats_;

    timeline::Timeline *tl_ = nullptr; //!< phase-span sink (or null).
    std::uint32_t tlTrack_ = 0;
    Cycle tlPhaseStart_ = 0; //!< frontier when phase_ was entered.

    SpecTaskSlot specSlot_; //!< engine-deposited next task.
};

} // namespace minnow::cpu

#endif // MINNOW_CPU_OOO_CORE_HH
