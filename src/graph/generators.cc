#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "base/bits.hh"
#include "base/rng.hh"
#include "graph/builder.hh"

namespace minnow::graph
{

namespace
{

/**
 * Sampler for a Zipf(alpha) distribution over [0, n) using the
 * inverse-CDF over precomputed cumulative weights. O(log n) per
 * draw, fully deterministic.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double alpha)
    {
        cdf_.resize(n);
        double acc = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            acc += 1.0 / std::pow(double(i + 1), alpha);
            cdf_[i] = acc;
        }
        total_ = acc;
    }

    std::uint64_t
    sample(Rng &rng) const
    {
        double u = rng.real() * total_;
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        if (it == cdf_.end())
            return cdf_.size() - 1;
        return std::uint64_t(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
    double total_ = 0;
};

} // anonymous namespace

CsrGraph
gridGraph(std::uint32_t width, std::uint32_t height,
          std::uint32_t maxWeight, std::uint64_t seed)
{
    fatal_if(width == 0 || height == 0, "grid must be non-empty");
    Rng rng(seed);
    NodeId n = width * height;
    GraphBuilder b(n);
    auto id = [&](std::uint32_t x, std::uint32_t y) {
        return NodeId(y * width + x);
    };
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            if (x + 1 < width) {
                auto w = std::uint32_t(rng.range(1, maxWeight));
                b.addEdge(id(x, y), id(x + 1, y), w);
            }
            if (y + 1 < height) {
                auto w = std::uint32_t(rng.range(1, maxWeight));
                b.addEdge(id(x, y), id(x, y + 1), w);
            }
        }
    }
    return b.symmetrize().build(true);
}

CsrGraph
randomGraph(NodeId n, double avgDegree, std::uint64_t seed)
{
    fatal_if(n < 2, "random graph needs at least two nodes");
    Rng rng(seed);
    auto undirected =
        std::uint64_t(std::llround(double(n) * avgDegree / 2.0));
    GraphBuilder b(n);
    for (std::uint64_t i = 0; i < undirected; ++i) {
        NodeId u = NodeId(rng.below(n));
        NodeId v = NodeId(rng.below(n));
        auto w = std::uint32_t(rng.range(1, 255));
        b.addEdge(u, v, w);
    }
    return b.removeSelfLoops().symmetrize().dedup().build(true);
}

CsrGraph
rmatGraph(std::uint32_t scale, std::uint32_t edgeFactor,
          std::uint64_t seed, double a, double b, double c)
{
    fatal_if(scale == 0 || scale > 28, "unreasonable RMAT scale %u",
             scale);
    Rng rng(seed);
    NodeId n = NodeId(1) << scale;
    std::uint64_t m = std::uint64_t(edgeFactor) << scale;
    GraphBuilder builder(n);
    for (std::uint64_t i = 0; i < m; ++i) {
        NodeId u = 0, v = 0;
        for (std::uint32_t bit = 0; bit < scale; ++bit) {
            double r = rng.real();
            // Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
            std::uint32_t ubit = 0, vbit = 0;
            if (r < a) {
                // top-left.
            } else if (r < a + b) {
                vbit = 1;
            } else if (r < a + b + c) {
                ubit = 1;
            } else {
                ubit = 1;
                vbit = 1;
            }
            u = (u << 1) | ubit;
            v = (v << 1) | vbit;
        }
        builder.addEdge(u, v, std::uint32_t(rng.range(1, 255)));
    }
    return builder.removeSelfLoops().symmetrize().dedup().build(true);
}

CsrGraph
powerLawGraph(NodeId n, double avgDegree, double alpha,
              std::uint64_t seed, bool symmetric)
{
    fatal_if(n < 2, "power-law graph needs at least two nodes");
    Rng rng(seed);
    ZipfSampler popularity(n, alpha);
    GraphBuilder b(n);

    // Out-degrees follow a (discrete) Pareto distribution with tail
    // exponent 1 + alpha, rescaled to the requested mean and capped
    // at n/8 so a single node cannot absorb the whole edge budget.
    const double tail = 1.0 + alpha;
    const double rawMean = 1.0 / (tail - 1.0);
    const double scale = avgDegree / (1.0 + rawMean);
    const double cap = double(n) / 8.0;
    // Scramble node ids so hubs are not clustered at low ids.
    auto scramble = [n](std::uint64_t x) {
        return NodeId(hashMix(x) % n);
    };
    for (NodeId v = 0; v < n; ++v) {
        double u01 = rng.real();
        double raw = std::pow(1.0 - u01, -1.0 / tail) - 1.0;
        double want = std::min(cap, (1.0 + raw) * scale);
        auto deg = std::uint32_t(want);
        if (rng.real() < want - deg)
            ++deg;
        for (std::uint32_t e = 0; e < deg; ++e) {
            NodeId u = scramble(popularity.sample(rng));
            if (u != v)
                b.addEdge(v, u, std::uint32_t(rng.range(1, 255)));
        }
    }
    if (symmetric)
        b.symmetrize().dedup();
    return b.build(true);
}

CsrGraph
wattsStrogatz(NodeId n, std::uint32_t k, double beta,
              std::uint64_t seed)
{
    fatal_if(k % 2 != 0, "Watts-Strogatz k must be even");
    fatal_if(n <= k, "Watts-Strogatz needs n > k");
    Rng rng(seed);
    GraphBuilder b(n);
    for (NodeId v = 0; v < n; ++v) {
        for (std::uint32_t j = 1; j <= k / 2; ++j) {
            NodeId u = NodeId((v + j) % n);
            if (rng.real() < beta) {
                // Rewire to a uniform random target.
                u = NodeId(rng.below(n));
                if (u == v)
                    u = NodeId((v + 1) % n);
            }
            b.addEdge(v, u);
        }
    }
    return b.removeSelfLoops().symmetrize().dedup().build(false);
}

CsrGraph
bipartiteGraph(NodeId nLeft, NodeId nRight, double avgLeftDegree,
               double alpha, std::uint64_t seed)
{
    fatal_if(nLeft == 0 || nRight == 0, "bipartite parts must be"
             " non-empty");
    Rng rng(seed);
    ZipfSampler popularity(nRight, alpha);
    NodeId n = nLeft + nRight;
    GraphBuilder b(n);
    auto scramble = [nRight](std::uint64_t x) {
        return NodeId(hashMix(x) % nRight);
    };
    for (NodeId v = 0; v < nLeft; ++v) {
        double want = avgLeftDegree;
        auto deg = std::uint32_t(want);
        if (rng.real() < want - deg)
            ++deg;
        if (deg == 0)
            deg = 1; // keep the graph connected-ish.
        for (std::uint32_t e = 0; e < deg; ++e) {
            NodeId u = nLeft + scramble(popularity.sample(rng));
            b.addEdge(v, u);
        }
    }
    return b.symmetrize().dedup().build(false);
}

} // namespace minnow::graph
