#include "graph/gstats.hh"

#include <deque>
#include <vector>

namespace minnow::graph
{

namespace
{

/** Host-side BFS; returns (furthest node, its hop distance, reach). */
struct BfsResult
{
    NodeId furthest;
    std::uint32_t dist;
    NodeId reached;
};

BfsResult
hostBfs(const CsrGraph &g, NodeId src)
{
    std::vector<std::uint32_t> dist(g.numNodes(), ~0u);
    std::deque<NodeId> queue;
    dist[src] = 0;
    queue.push_back(src);
    BfsResult r{src, 0, 0};
    while (!queue.empty()) {
        NodeId v = queue.front();
        queue.pop_front();
        r.reached += 1;
        if (dist[v] > r.dist) {
            r.dist = dist[v];
            r.furthest = v;
        }
        for (NodeId u : g.neighbors(v)) {
            if (dist[u] == ~0u) {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    return r;
}

} // anonymous namespace

GraphStats
analyzeGraph(const CsrGraph &g, std::uint32_t sweeps)
{
    GraphStats s;
    s.nodes = g.numNodes();
    s.edges = g.numEdges();
    for (NodeId v = 0; v < g.numNodes(); ++v)
        s.maxDegree = std::max(s.maxDegree, g.degree(v));
    s.avgDegree =
        s.nodes ? double(s.edges) / double(s.nodes) : 0.0;

    if (s.nodes == 0)
        return s;
    BfsResult r = hostBfs(g, 0);
    s.reachableFrom0 = r.reached;
    s.estDiameter = r.dist;
    NodeId probe = r.furthest;
    for (std::uint32_t i = 0; i < sweeps; ++i) {
        BfsResult next = hostBfs(g, probe);
        if (next.dist <= s.estDiameter && i > 0)
            break;
        s.estDiameter = std::max(s.estDiameter, next.dist);
        probe = next.furthest;
    }
    return s;
}

} // namespace minnow::graph
