/**
 * @file
 * Graph statistics used by Table 1: node/edge counts, maximum
 * degree, estimated diameter (double-sweep BFS pseudo-diameter), and
 * the simulated footprint.
 */

#ifndef MINNOW_GRAPH_GSTATS_HH
#define MINNOW_GRAPH_GSTATS_HH

#include <cstdint>

#include "graph/csr.hh"

namespace minnow::graph
{

/** Summary statistics of one graph. */
struct GraphStats
{
    NodeId nodes = 0;
    EdgeId edges = 0;
    std::uint32_t maxDegree = 0;
    double avgDegree = 0;
    std::uint32_t estDiameter = 0; //!< pseudo-diameter lower bound.
    NodeId reachableFrom0 = 0;     //!< BFS reach from node 0.
};

/**
 * Compute stats. Diameter estimation runs @p sweeps double-BFS
 * iterations from alternating extremes.
 */
GraphStats analyzeGraph(const CsrGraph &g, std::uint32_t sweeps = 2);

} // namespace minnow::graph

#endif // MINNOW_GRAPH_GSTATS_HH
