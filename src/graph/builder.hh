/**
 * @file
 * Edge-list to CSR conversion with the transformations the
 * benchmark inputs need: symmetrization, deduplication, self-loop
 * removal, and per-node adjacency sorting (required by TC's binary
 * searches).
 */

#ifndef MINNOW_GRAPH_BUILDER_HH
#define MINNOW_GRAPH_BUILDER_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "graph/csr.hh"

namespace minnow::graph
{

/** One input edge. */
struct RawEdge
{
    NodeId src;
    NodeId dst;
    std::uint32_t weight = 1;
};

/** Accumulates edges and finalizes them into a CsrGraph. */
class GraphBuilder
{
  public:
    explicit GraphBuilder(NodeId numNodes) : numNodes_(numNodes) {}

    void
    addEdge(NodeId src, NodeId dst, std::uint32_t weight = 1)
    {
        edges_.push_back({src, dst, weight});
    }

    std::size_t edgeCount() const { return edges_.size(); }
    NodeId numNodes() const { return numNodes_; }

    /** Add the reverse of every edge (undirected graphs). */
    GraphBuilder &symmetrize();

    /** Drop (u, u) edges. */
    GraphBuilder &removeSelfLoops();

    /** Keep one copy of each (u, v), lowest weight wins. */
    GraphBuilder &dedup();

    /**
     * Produce the CSR graph (sorted adjacency).
     * @param keepWeights Store the weight array; otherwise the graph
     *                    is unweighted (all weights read as 1).
     */
    CsrGraph build(bool keepWeights = true);

  private:
    NodeId numNodes_;
    std::vector<RawEdge> edges_;
};

} // namespace minnow::graph

#endif // MINNOW_GRAPH_BUILDER_HH
