#include "graph/csr.hh"

#include <algorithm>

namespace minnow::graph
{

bool
CsrGraph::hasEdge(NodeId u, NodeId v) const
{
    auto nbrs = neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::function<bool(Addr, std::uint64_t &)>
CsrGraph::makeEdgeOracle() const
{
    Addr base = edgeBase_;
    Addr end = edgeBase_ + numEdges() * kEdgeBytes;
    const std::vector<NodeId> *dst = &dst_;
    return [base, end, dst](Addr a, std::uint64_t &value) {
        if (a < base || a >= end)
            return false;
        value = (*dst)[(a - base) / kEdgeBytes];
        return true;
    };
}

} // namespace minnow::graph
