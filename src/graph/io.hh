/**
 * @file
 * Graph file I/O: DIMACS shortest-path format (.gr, the format of
 * the USA-road inputs), SNAP-style whitespace edge lists (the
 * wiki/dblp/amazon inputs), and a fast binary CSR container for
 * caching generated graphs between runs.
 */

#ifndef MINNOW_GRAPH_IO_HH
#define MINNOW_GRAPH_IO_HH

#include <string>

#include "graph/csr.hh"

namespace minnow::graph
{

/** Read a DIMACS .gr file ("p sp N M" header, "a u v w" arcs). */
CsrGraph readDimacs(const std::string &path);

/** Write a weighted graph in DIMACS .gr format. */
void writeDimacs(const CsrGraph &g, const std::string &path);

/**
 * Read a SNAP-style edge list: '#' comments, "u v [w]" lines,
 * 0-based or arbitrary ids (compacted).
 * @param symmetrize Add reverse edges.
 */
CsrGraph readEdgeList(const std::string &path,
                      bool symmetrize = false);

/** Binary CSR container (magic + counts + raw arrays). */
void writeBinary(const CsrGraph &g, const std::string &path);
CsrGraph readBinary(const std::string &path);

} // namespace minnow::graph

#endif // MINNOW_GRAPH_IO_HH
