#include "graph/builder.hh"

#include <algorithm>

#include "base/logging.hh"

namespace minnow::graph
{

GraphBuilder &
GraphBuilder::symmetrize()
{
    std::size_t n = edges_.size();
    edges_.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const RawEdge &e = edges_[i];
        edges_.push_back({e.dst, e.src, e.weight});
    }
    return *this;
}

GraphBuilder &
GraphBuilder::removeSelfLoops()
{
    std::erase_if(edges_,
                  [](const RawEdge &e) { return e.src == e.dst; });
    return *this;
}

GraphBuilder &
GraphBuilder::dedup()
{
    std::sort(edges_.begin(), edges_.end(),
              [](const RawEdge &a, const RawEdge &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  return a.weight < b.weight;
              });
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const RawEdge &a, const RawEdge &b) {
                                 return a.src == b.src &&
                                        a.dst == b.dst;
                             }),
                 edges_.end());
    return *this;
}

CsrGraph
GraphBuilder::build(bool keepWeights)
{
    for (const RawEdge &e : edges_) {
        panic_if(e.src >= numNodes_ || e.dst >= numNodes_,
                 "edge (%u,%u) out of range for %u nodes", e.src,
                 e.dst, numNodes_);
    }
    std::sort(edges_.begin(), edges_.end(),
              [](const RawEdge &a, const RawEdge &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });

    std::vector<std::uint64_t> rowPtr(numNodes_ + 1, 0);
    for (const RawEdge &e : edges_)
        rowPtr[e.src + 1] += 1;
    for (NodeId v = 0; v < numNodes_; ++v)
        rowPtr[v + 1] += rowPtr[v];

    std::vector<NodeId> dst(edges_.size());
    std::vector<std::uint32_t> weight;
    if (keepWeights)
        weight.resize(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        dst[i] = edges_[i].dst;
        if (keepWeights)
            weight[i] = edges_[i].weight;
    }
    return CsrGraph(std::move(rowPtr), std::move(dst),
                    std::move(weight));
}

} // namespace minnow::graph
