/**
 * @file
 * Compressed sparse row graph.
 *
 * Functional topology lives in host vectors; the *simulated* memory
 * layout follows the paper's Section 6.2: node records of 32 bytes
 * (64 for triangle counting) holding algorithm data plus edge
 * metadata, and edge records of 16 bytes (destination + weight), both
 * in flat arrays. Algorithms compute simulated addresses with
 * nodeAddr()/edgeAddr(), so a load of node v's distance and of its
 * edge pointer naturally share a cache line, exactly as in the real
 * layout.
 */

#ifndef MINNOW_GRAPH_CSR_HH
#define MINNOW_GRAPH_CSR_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "base/ckpt.hh"
#include "base/logging.hh"
#include "base/sim_alloc.hh"
#include "base/types.hh"

namespace minnow::graph
{

/** CSR graph with a declared simulated layout. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /** Construct from prebuilt CSR arrays (see GraphBuilder). */
    CsrGraph(std::vector<std::uint64_t> rowPtr,
             std::vector<NodeId> dst,
             std::vector<std::uint32_t> weight)
        : rowPtr_(std::move(rowPtr)),
          dst_(std::move(dst)),
          weight_(std::move(weight))
    {
        panic_if(rowPtr_.empty(), "CSR needs at least the sentinel");
        panic_if(rowPtr_.back() != dst_.size(),
                 "rowPtr sentinel disagrees with edge count");
        panic_if(!weight_.empty() && weight_.size() != dst_.size(),
                 "weight array size mismatch");
    }

    NodeId numNodes() const { return NodeId(rowPtr_.size() - 1); }
    EdgeId numEdges() const { return dst_.size(); }
    bool weighted() const { return !weight_.empty(); }

    EdgeId edgeBegin(NodeId v) const { return rowPtr_[v]; }
    EdgeId edgeEnd(NodeId v) const { return rowPtr_[v + 1]; }

    std::uint32_t degree(NodeId v) const
    {
        return std::uint32_t(rowPtr_[v + 1] - rowPtr_[v]);
    }

    NodeId edgeDst(EdgeId e) const { return dst_[e]; }

    std::uint32_t edgeWeight(EdgeId e) const
    {
        return weight_.empty() ? 1u : weight_[e];
    }

    std::span<const NodeId> neighbors(NodeId v) const
    {
        return {dst_.data() + rowPtr_[v],
                dst_.data() + rowPtr_[v + 1]};
    }

    /** True if (u, v) exists; binary search (adjacency is sorted). */
    bool hasEdge(NodeId u, NodeId v) const;

    // ---- Simulated layout ----

    /**
     * Reserve simulated address ranges for the node and edge arrays.
     * @param nodeBytes 32 normally, 64 for TC (paper Section 6.2).
     */
    void
    assignAddresses(SimAlloc &alloc, std::uint32_t nodeBytes = 32)
    {
        nodeBytes_ = nodeBytes;
        nodeBase_ = alloc.alloc(
            "graph.nodes",
            std::uint64_t(numNodes()) * nodeBytes_);
        edgeBase_ = alloc.alloc("graph.edges",
                                numEdges() * kEdgeBytes);
    }

    bool hasAddresses() const { return nodeBase_ != 0; }

    Addr nodeAddr(NodeId v) const
    {
        return nodeBase_ + Addr(v) * nodeBytes_;
    }

    Addr edgeAddr(EdgeId e) const
    {
        return edgeBase_ + e * kEdgeBytes;
    }

    Addr nodeBase() const { return nodeBase_; }
    Addr edgeBase() const { return edgeBase_; }
    std::uint32_t nodeBytes() const { return nodeBytes_; }

    /** Simulated footprint in bytes (Table 1 "Size" column). */
    std::uint64_t
    simBytes() const
    {
        return std::uint64_t(numNodes()) * nodeBytes_ +
               numEdges() * kEdgeBytes;
    }

    /**
     * Functional-read oracle over the edge array for the IMP
     * prefetcher: resolves an edge-record address to its destination
     * node id (what the hardware would see in the fill data).
     */
    std::function<bool(Addr, std::uint64_t &)> makeEdgeOracle() const;

    /** Edge record size per the paper (16 B). */
    static constexpr std::uint32_t kEdgeBytes = 16;

    /**
     * Serialize topology and simulated layout *materially*: a warm
     * restore loads these arrays instead of regenerating the graph,
     * which is the bulk of a cold start's setup time. Generators are
     * deterministic, so a cold-generated graph CRC-matches the
     * checkpoint's section byte for byte.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(rowPtr_);
        ck.io(dst_);
        ck.io(weight_);
        ck.io(nodeBase_);
        ck.io(edgeBase_);
        ck.io(nodeBytes_);
    }

  private:
    std::vector<std::uint64_t> rowPtr_;
    std::vector<NodeId> dst_;
    std::vector<std::uint32_t> weight_;

    Addr nodeBase_ = 0;
    Addr edgeBase_ = 0;
    std::uint32_t nodeBytes_ = 32;
};

} // namespace minnow::graph

#endif // MINNOW_GRAPH_CSR_HH
