/**
 * @file
 * Deterministic graph generators covering the input classes of
 * Table 1. Real datasets are unavailable offline, so each paper
 * input is replaced by a generator of the same class (DESIGN.md §2):
 *
 *  - gridGraph:          USA-road-d.W (high diameter, degree <= 4,
 *                        weighted) — SSSP.
 *  - randomGraph:        r4-2e23 (random "mesh", avg degree 4, low
 *                        max degree, log diameter) — BFS.
 *  - rmatGraph:          rmat16-2e22 Kronecker (scale-free, one node
 *                        holding a large share of edges) — G500.
 *  - powerLawGraph:      wikipedia / wiki-Talk (directed, skewed in-
 *                        and out-degree) — CC, PR.
 *  - wattsStrogatz:      com-dblp (clustered; rich in triangles) —
 *                        TC.
 *  - bipartiteGraph:     amazon-ratings (bipartite, skewed) — BC.
 *
 * All generators are seeded and bit-reproducible.
 */

#ifndef MINNOW_GRAPH_GENERATORS_HH
#define MINNOW_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/csr.hh"

namespace minnow::graph
{

/**
 * 4-connected W x H grid with uniform random weights in
 * [1, maxWeight]; undirected. Diameter = W + H - 2.
 */
CsrGraph gridGraph(std::uint32_t width, std::uint32_t height,
                   std::uint32_t maxWeight, std::uint64_t seed);

/**
 * Erdős–Rényi-style random undirected graph: n nodes and
 * round(n * avgDegree / 2) undirected edges placed uniformly.
 */
CsrGraph randomGraph(NodeId n, double avgDegree, std::uint64_t seed);

/**
 * RMAT / Kronecker generator (Graph500 parameters by default):
 * 2^scale nodes, edgeFactor * 2^scale undirected edges recursively
 * placed with quadrant probabilities (a, b, c, d).
 */
CsrGraph rmatGraph(std::uint32_t scale, std::uint32_t edgeFactor,
                   std::uint64_t seed, double a = 0.57,
                   double b = 0.19, double c = 0.19);

/**
 * Directed power-law graph: out-degrees and target popularity both
 * Zipf(alpha) distributed — web/wiki-like hubs.
 */
CsrGraph powerLawGraph(NodeId n, double avgDegree, double alpha,
                       std::uint64_t seed, bool symmetric = false);

/**
 * Watts–Strogatz small world: ring lattice with k nearest
 * neighbours, each edge rewired with probability beta. High
 * clustering coefficient (many triangles) at small beta.
 */
CsrGraph wattsStrogatz(NodeId n, std::uint32_t k, double beta,
                       std::uint64_t seed);

/**
 * Bipartite undirected graph: left part [0, nLeft) connects only to
 * right part [nLeft, nLeft+nRight), with Zipf-skewed right-side
 * popularity (user-item ratings shape). Always 2-colourable.
 */
CsrGraph bipartiteGraph(NodeId nLeft, NodeId nRight,
                        double avgLeftDegree, double alpha,
                        std::uint64_t seed);

} // namespace minnow::graph

#endif // MINNOW_GRAPH_GENERATORS_HH
