#include "apps/cc.hh"

#include <numeric>

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
CcApp::reset()
{
    label_.resize(graph_->numNodes());
    std::iota(label_.begin(), label_.end(), NodeId(0));
    resetCounters();
}

std::vector<WorkItem>
CcApp::initialWork()
{
    // Every node starts active with its own id as label/priority.
    std::vector<WorkItem> out;
    out.reserve(graph_->numNodes());
    for (NodeId v = 0; v < graph_->numNodes(); ++v)
        seedNode(out, v, std::int64_t(v));
    return out;
}

CoTask<void>
CcApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5);
    ctx.compute(4);
    NodeId mine = label_[v];

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        Cycle dstReady = ctx.loadDelinquent(g.nodeAddr(u), edgeReady,
                                            kSiteDstNode);
        ctx.cheapLoads(7);
        ctx.compute(3);

        ctx.branch(cpu::BranchKind::DataDependent, dstReady);
        if (mine < label_[u]) {
            co_await ctx.atomicAccess(g.nodeAddr(u), dstReady);
            if (mine < label_[u]) {
                label_[u] = mine;
                counters_.updates += 1;
                co_await pushNode(ctx, sink, u, std::int64_t(mine));
            }
        }
        ctx.branch(cpu::BranchKind::Loop, 0);
        co_await ctx.sync();
    }
}

std::vector<NodeId>
CcApp::referenceLabels() const
{
    const graph::CsrGraph &g = *graph_;
    std::vector<NodeId> parent(g.numNodes());
    std::iota(parent.begin(), parent.end(), NodeId(0));
    auto find = [&](NodeId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (NodeId u : g.neighbors(v)) {
            NodeId a = find(v), b = find(u);
            if (a != b)
                parent[std::max(a, b)] = std::min(a, b);
        }
    }
    std::vector<NodeId> out(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        out[v] = find(v);
    return out;
}

bool
CcApp::verify() const
{
    return label_ == referenceLabels();
}

} // namespace minnow::apps
