/**
 * @file
 * Single-source shortest path (delta-stepping, Fig. 1 of the paper)
 * and BFS (the unit-weight special case, covering the BFS and G500
 * workloads).
 *
 * The operator mirrors the paper's Fig. 1 pseudocode: load the
 * node, walk its edges, relax each destination with an atomic
 * minimum, and enqueue improved destinations with their new distance
 * as priority. Work efficiency therefore depends on the worklist's
 * priority order — the Section 3.1 story.
 */

#ifndef MINNOW_APPS_SSSP_HH
#define MINNOW_APPS_SSSP_HH

#include <limits>
#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Delta-stepping SSSP / push-based BFS operator. */
class SsspApp : public App
{
  public:
    static constexpr std::uint32_t kInf =
        std::numeric_limits<std::uint32_t>::max();

    /**
     * @param g           Input graph.
     * @param source      Source node.
     * @param unitWeights Ignore edge weights (BFS/G500 mode).
     * @param split       Task-splitting threshold in edges.
     * @param label       Workload name for reports.
     */
    SsspApp(const graph::CsrGraph *g, NodeId source,
            bool unitWeights, std::uint32_t split,
            std::string label)
        : App(g, split),
          source_(source),
          unitWeights_(unitWeights),
          label_(std::move(label))
    {
        reset();
    }

    std::string name() const override { return label_; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;

    const std::vector<std::uint32_t> &distances() const
    {
        return dist_;
    }

    /** Host-side Dijkstra for verification and tests. */
    std::vector<std::uint32_t> referenceDistances() const;

    std::function<bool(const WorkItem &)>
    staleTaskPredicate() const override
    {
        const std::vector<std::uint32_t> *dist = &dist_;
        return [dist](const WorkItem &item) {
            std::uint32_t d = (*dist)[taskNode(item.payload)];
            return d != kInf && std::uint64_t(item.priority) > d;
        };
    }

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(source_);
        ck.io(unitWeights_);
        ck.io(label_);
        ck.io(dist_);
    }

  private:
    NodeId source_;
    bool unitWeights_;
    std::string label_;
    std::vector<std::uint32_t> dist_;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_SSSP_HH
