#include "apps/kcore.hh"

#include <deque>

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
KcoreApp::reset()
{
    const graph::CsrGraph &g = *graph_;
    alive_.assign(g.numNodes(), 1);
    degree_.resize(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        degree_[v] = g.degree(v);
    resetCounters();
}

std::vector<WorkItem>
KcoreApp::initialWork()
{
    // Seed with every node already below k: removing them starts
    // the peeling cascade. Mark them dead up front so each node is
    // removed exactly once.
    std::vector<WorkItem> out;
    for (NodeId v = 0; v < graph_->numNodes(); ++v) {
        if (degree_[v] < k_) {
            alive_[v] = 0;
            seedNode(out, v, std::int64_t(degree_[v]));
        }
    }
    return out;
}

CoTask<void>
KcoreApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    // v is being removed: decrement every alive neighbour; those
    // that drop below k are removed (marked dead at the decrement,
    // processed by their own task).
    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5);
    ctx.compute(4);

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        Cycle dstReady = ctx.loadDelinquent(g.nodeAddr(u), edgeReady,
                                            kSiteDstNode);
        ctx.cheapLoads(7);
        ctx.compute(3);
        ctx.branch(cpu::BranchKind::DataDependent, dstReady);
        if (!alive_[u])
            continue;
        co_await ctx.atomicAccess(g.nodeAddr(u), dstReady);
        if (!alive_[u])
            continue; // raced with another removal.
        degree_[u] -= 1;
        counters_.updates += 1;
        ctx.branch(cpu::BranchKind::DataDependent, 0);
        if (degree_[u] < k_) {
            alive_[u] = 0;
            co_await pushNode(ctx, sink, u,
                              std::int64_t(degree_[u]));
        }
        ctx.branch(cpu::BranchKind::Loop, 0);
        co_await ctx.sync();
    }
}

std::vector<std::uint8_t>
KcoreApp::referenceCore() const
{
    const graph::CsrGraph &g = *graph_;
    std::vector<std::uint8_t> alive(g.numNodes(), 1);
    std::vector<std::uint32_t> deg(g.numNodes());
    std::deque<NodeId> queue;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        deg[v] = g.degree(v);
        if (deg[v] < k_) {
            alive[v] = 0;
            queue.push_back(v);
        }
    }
    while (!queue.empty()) {
        NodeId v = queue.front();
        queue.pop_front();
        for (NodeId u : g.neighbors(v)) {
            if (!alive[u])
                continue;
            if (--deg[u] < k_) {
                alive[u] = 0;
                queue.push_back(u);
            }
        }
    }
    return alive;
}

std::uint64_t
KcoreApp::coreSize() const
{
    std::uint64_t n = 0;
    for (std::uint8_t b : alive_)
        n += b;
    return n;
}

bool
KcoreApp::verify() const
{
    return alive_ == referenceCore();
}

} // namespace minnow::apps
