#include "apps/mis.hh"

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
MisApp::reset()
{
    const graph::CsrGraph &g = *graph_;
    in_.assign(g.numNodes(), 0);
    blocked_.assign(g.numNodes(), 0);
    waits_.resize(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        std::uint32_t w = 0;
        for (NodeId u : g.neighbors(v))
            w += (u < v);
        waits_[v] = w;
    }
    resetCounters();
}

std::vector<WorkItem>
MisApp::initialWork()
{
    // Nodes with no lower-id neighbours can decide immediately.
    std::vector<WorkItem> out;
    for (NodeId v = 0; v < graph_->numNodes(); ++v) {
        if (waits_[v] == 0)
            seedNode(out, v, std::int64_t(v));
    }
    return out;
}

CoTask<void>
MisApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    // A task for v fires only when all lower neighbours decided:
    // decide v, then release higher neighbours.
    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5);
    ctx.compute(4);
    bool joins = !blocked_[v];
    if (taskPart(item.payload) == 0) {
        // Only the first part performs the decision itself.
        in_[v] = joins ? 1 : 0;
        counters_.updates += 1;
        ctx.store(g.nodeAddr(v), nodeReady);
    }

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        ctx.branch(cpu::BranchKind::DataDependent, edgeReady);
        if (u <= v)
            continue; // lower neighbours already decided.
        Cycle dstReady = ctx.loadDelinquent(g.nodeAddr(u), edgeReady,
                                            kSiteDstNode);
        ctx.cheapLoads(7);
        ctx.compute(4);
        // Mark and release: blocked bit (if we joined) and the
        // wait-count decrement are one RMW on u's node record.
        co_await ctx.atomicAccess(g.nodeAddr(u), dstReady);
        if (joins)
            blocked_[u] = 1;
        waits_[u] -= 1;
        ctx.branch(cpu::BranchKind::DataDependent, 0);
        if (waits_[u] == 0)
            co_await pushNode(ctx, sink, u, std::int64_t(u));
        ctx.branch(cpu::BranchKind::Loop, 0);
        co_await ctx.sync();
    }
}

std::vector<std::uint8_t>
MisApp::referenceSet() const
{
    const graph::CsrGraph &g = *graph_;
    std::vector<std::uint8_t> in(g.numNodes(), 0);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        bool ok = true;
        for (NodeId u : g.neighbors(v)) {
            if (u < v && in[u]) {
                ok = false;
                break;
            }
        }
        in[v] = ok ? 1 : 0;
    }
    return in;
}

std::uint64_t
MisApp::setSize() const
{
    std::uint64_t n = 0;
    for (std::uint8_t b : in_)
        n += b;
    return n;
}

bool
MisApp::verify() const
{
    return in_ == referenceSet();
}

} // namespace minnow::apps
