/**
 * @file
 * Application (benchmark workload) interface.
 *
 * Each paper workload (SSSP, BFS, G500, CC, PR, TC, BC) implements
 * App: it owns its functional state (distances, labels, residuals),
 * describes its per-task operator as a coroutine over the simulated
 * machine API, declares its initial work, and can verify its final
 * state against a serial host reference.
 *
 * Operators push generated tasks through a TaskSink, so the same
 * operator code runs under a software Galois worklist and under
 * Minnow offload.
 *
 * Task splitting (paper Section 6.2.1): tasks carry a part index in
 * the payload's upper 32 bits; nodes whose degree exceeds the app's
 * split threshold are enqueued as multiple parts, each covering a
 * contiguous slice of the edge array.
 */

#ifndef MINNOW_APPS_APP_HH
#define MINNOW_APPS_APP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/ckpt.hh"
#include "graph/csr.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"
#include "worklist/worklist.hh"

namespace minnow::apps
{

using worklist::WorkItem;

/** Destination for tasks generated inside an operator. */
class TaskSink
{
  public:
    virtual ~TaskSink() = default;

    /** Timed enqueue of one generated task. */
    virtual runtime::CoTask<void> put(runtime::SimContext &ctx,
                                      WorkItem item) = 0;
};

/** Load-site tags (PC proxies) used by application operators. */
enum AppSite : std::uint16_t
{
    kSiteTask = 1,
    kSiteNode = 2,
    kSiteEdge = 3,
    kSiteDstNode = 4,
    kSiteAux = 5,
};

/** Pack a (node, part) pair into a task payload. */
constexpr std::uint64_t
makeTaskPayload(NodeId node, std::uint32_t part = 0)
{
    return (std::uint64_t(part) << 32) | node;
}

constexpr NodeId
taskNode(std::uint64_t payload)
{
    return NodeId(payload & 0xffffffffu);
}

constexpr std::uint32_t
taskPart(std::uint64_t payload)
{
    return std::uint32_t(payload >> 32);
}

/** Per-run workload counters shared by all apps. */
struct AppCounters
{
    std::uint64_t tasks = 0;       //!< operator invocations.
    std::uint64_t edgesVisited = 0;
    std::uint64_t updates = 0;     //!< successful relax/label/etc.
    std::uint64_t pushes = 0;      //!< tasks generated.
};

/** A benchmark workload over one graph. */
class App
{
  public:
    /**
     * @param g     Input graph (addresses must be assigned).
     * @param split Task-splitting threshold in edges; parts beyond
     *              the first reuse the same node with a part index.
     */
    App(const graph::CsrGraph *g, std::uint32_t split)
        : graph_(g), splitThreshold_(split)
    {
    }

    virtual ~App() = default;

    virtual std::string name() const = 0;

    /** Reset functional state for a fresh run. */
    virtual void reset() = 0;

    /** Initial work items (already split if needed). */
    virtual std::vector<WorkItem> initialWork() = 0;

    /** The per-task operator. */
    virtual runtime::CoTask<void> process(runtime::SimContext &ctx,
                                          WorkItem item,
                                          TaskSink &sink) = 0;

    /** Check the final state against a serial host reference. */
    virtual bool verify() const = 0;

    /**
     * Whether the Minnow prefetch program should also chase the
     * destination nodes' own adjacency lists (TC's custom program,
     * Section 5.3).
     */
    virtual bool prefetchChasesAdjacency() const { return false; }

    /**
     * Optional predicate telling the Minnow prefetch program that a
     * queued task has been superseded (its node was already improved
     * past the task's priority). The engine evaluates it right after
     * fetching the task's node record — data it has in hand — and
     * skips the task's edge/destination prefetches, exactly like the
     * worker's own stale-task cutoff. Null when the app has no such
     * cutoff.
     */
    virtual std::function<bool(const WorkItem &)>
    staleTaskPredicate() const
    {
        return nullptr;
    }

    const graph::CsrGraph &graph() const { return *graph_; }
    std::uint32_t splitThreshold() const { return splitThreshold_; }
    const AppCounters &counters() const { return counters_; }
    void resetCounters() { counters_ = AppCounters{}; }

    /**
     * Serialize functional state plus counters; subclasses call the
     * base then add their own arrays. The graph pointer and split
     * threshold are configuration, rebuilt at machine build (the
     * graph has its own checkpoint section).
     */
    virtual void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(counters_);
        ck.transient("graph_ splitThreshold_");
    }

    /** Edge sub-range of a (possibly split) task. */
    void
    taskEdgeRange(std::uint64_t payload, EdgeId &begin,
                  EdgeId &end) const
    {
        NodeId v = taskNode(payload);
        std::uint32_t part = taskPart(payload);
        EdgeId b = graph_->edgeBegin(v);
        EdgeId e = graph_->edgeEnd(v);
        begin = b + EdgeId(part) * splitThreshold_;
        end = std::min(e, begin + splitThreshold_);
        if (begin > e)
            begin = e;
    }

    /** Number of parts a node's task splits into. */
    std::uint32_t
    partsFor(NodeId v) const
    {
        std::uint32_t deg = graph_->degree(v);
        if (deg <= splitThreshold_)
            return 1;
        return (deg + splitThreshold_ - 1) / splitThreshold_;
    }

    /** Split-aware initial seeding helper. */
    void
    seedNode(std::vector<WorkItem> &out, NodeId v,
             std::int64_t priority)
    {
        std::uint32_t parts = partsFor(v);
        for (std::uint32_t p = 0; p < parts; ++p)
            out.push_back({priority, makeTaskPayload(v, p)});
    }

    /** Split-aware timed enqueue helper. */
    runtime::CoTask<void>
    pushNode(runtime::SimContext &ctx, TaskSink &sink, NodeId v,
             std::int64_t priority)
    {
        std::uint32_t parts = partsFor(v);
        for (std::uint32_t p = 0; p < parts; ++p) {
            counters_.pushes += 1;
            co_await sink.put(ctx,
                              {priority, makeTaskPayload(v, p)});
        }
    }

  protected:
    const graph::CsrGraph *graph_;
    std::uint32_t splitThreshold_;
    AppCounters counters_;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_APP_HH
