#include "apps/bc.hh"

#include <deque>
#include <numeric>

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
BcApp::reset()
{
    color_.assign(graph_->numNodes(), kUncolored);
    conflict_ = false;
    resetCounters();
}

std::vector<WorkItem>
BcApp::initialWork()
{
    // One seed per connected component (host union-find pre-pass);
    // the seed takes colour 0.
    const graph::CsrGraph &g = *graph_;
    std::vector<NodeId> parent(g.numNodes());
    std::iota(parent.begin(), parent.end(), NodeId(0));
    auto find = [&](NodeId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (NodeId u : g.neighbors(v)) {
            NodeId a = find(v), b = find(u);
            if (a != b)
                parent[std::max(a, b)] = std::min(a, b);
        }
    }
    std::vector<WorkItem> out;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (find(v) == v) {
            color_[v] = 0;
            seedNode(out, v, 0);
        }
    }
    return out;
}

CoTask<void>
BcApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5);
    ctx.compute(4);
    std::uint8_t mine = color_[v];
    std::uint8_t want = std::uint8_t(1 - mine);

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        Cycle dstReady = ctx.loadDelinquent(g.nodeAddr(u), edgeReady,
                                            kSiteDstNode);
        ctx.cheapLoads(7);
        ctx.compute(3);

        ctx.branch(cpu::BranchKind::DataDependent, dstReady);
        if (color_[u] == kUncolored) {
            // CAS the neighbour's colour; only the winner pushes.
            co_await ctx.atomicAccess(g.nodeAddr(u), dstReady);
            if (color_[u] == kUncolored) {
                color_[u] = want;
                counters_.updates += 1;
                co_await pushNode(ctx, sink, u, 0);
            } else if (color_[u] != want) {
                conflict_ = true;
            }
        } else if (color_[u] != want) {
            conflict_ = true;
        }
        ctx.branch(cpu::BranchKind::Loop, 0);
        co_await ctx.sync();
    }
}

bool
BcApp::referenceIsBipartite() const
{
    const graph::CsrGraph &g = *graph_;
    std::vector<std::uint8_t> color(g.numNodes(), kUncolored);
    std::deque<NodeId> queue;
    for (NodeId s = 0; s < g.numNodes(); ++s) {
        if (color[s] != kUncolored)
            continue;
        color[s] = 0;
        queue.push_back(s);
        while (!queue.empty()) {
            NodeId v = queue.front();
            queue.pop_front();
            for (NodeId u : g.neighbors(v)) {
                if (color[u] == kUncolored) {
                    color[u] = std::uint8_t(1 - color[v]);
                    queue.push_back(u);
                } else if (color[u] == color[v]) {
                    return false;
                }
            }
        }
    }
    return true;
}

bool
BcApp::verify() const
{
    bool bipartite = referenceIsBipartite();
    if (!bipartite)
        return conflict_; // we must have noticed the odd cycle.
    if (conflict_)
        return false; // false positive.
    // Every node coloured, and the colouring must be proper.
    const graph::CsrGraph &g = *graph_;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (color_[v] == kUncolored)
            return false;
        for (NodeId u : g.neighbors(v)) {
            if (color_[u] == color_[v])
                return false;
        }
    }
    return true;
}

} // namespace minnow::apps
