#include "apps/sssp.hh"

#include <queue>

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
SsspApp::reset()
{
    dist_.assign(graph_->numNodes(), kInf);
    dist_[source_] = 0;
    resetCounters();
}

std::vector<WorkItem>
SsspApp::initialWork()
{
    std::vector<WorkItem> out;
    seedNode(out, source_, 0);
    return out;
}

CoTask<void>
SsspApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    // Load the node record: current distance + edge metadata.
    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5); // task bookkeeping, stack traffic.
    ctx.compute(6);
    std::uint32_t dist = dist_[v];

    // Stale-task cutoff: if our scheduled priority is already worse
    // than the node's distance, the work was superseded.
    ctx.branch(cpu::BranchKind::DataDependent, nodeReady);
    if (std::uint64_t(item.priority) > dist && dist != kInf) {
        co_await ctx.sync();
        co_return;
    }

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        // Edge record: destination id + weight. Carries the value
        // the IMP prefetcher trains on.
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        std::uint32_t w = unitWeights_ ? 1 : g.edgeWeight(e);
        // Destination node record (distance lives inside it).
        Cycle dstReady = ctx.loadDelinquent(g.nodeAddr(u), edgeReady,
                                            kSiteDstNode);
        ctx.cheapLoads(8); // induction, spills, two-operand temps.
        ctx.compute(5);
        std::uint32_t nd = dist + w;

        ctx.branch(cpu::BranchKind::DataDependent, dstReady);
        if (nd < dist_[u]) {
            // Atomic min on the destination's node record. The
            // functional update happens at the linearization point
            // (resume at RMW completion) and must be re-checked.
            co_await ctx.atomicAccess(g.nodeAddr(u), dstReady);
            if (nd < dist_[u]) {
                dist_[u] = nd;
                counters_.updates += 1;
                co_await pushNode(ctx, sink, u, std::int64_t(nd));
            }
        }
        ctx.branch(cpu::BranchKind::Loop, 0);
        co_await ctx.sync();
    }
}

std::vector<std::uint32_t>
SsspApp::referenceDistances() const
{
    const graph::CsrGraph &g = *graph_;
    std::vector<std::uint32_t> dist(g.numNodes(), kInf);
    using Entry = std::pair<std::uint32_t, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<>> pq;
    dist[source_] = 0;
    pq.push({0, source_});
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            NodeId u = g.edgeDst(e);
            std::uint32_t w = unitWeights_ ? 1 : g.edgeWeight(e);
            if (dist[v] + w < dist[u]) {
                dist[u] = dist[v] + w;
                pq.push({dist[u], u});
            }
        }
    }
    return dist;
}

bool
SsspApp::verify() const
{
    return dist_ == referenceDistances();
}

} // namespace minnow::apps
