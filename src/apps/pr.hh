/**
 * @file
 * Data-driven, push-based PageRank (Whang et al., Euro-Par'15), the
 * paper's PR workload. Each task drains a node's residual into its
 * out-neighbours with one atomic add per edge — the unconditional
 * atomic stream that makes PR fence-bound in Figs. 4-5. Work is
 * prioritized by descending residual.
 */

#ifndef MINNOW_APPS_PR_HH
#define MINNOW_APPS_PR_HH

#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Push-based data-driven PageRank. */
class PrApp : public App
{
  public:
    /**
     * @param g       Input (directed) graph.
     * @param alpha   Damping factor (0.85 in the literature).
     * @param epsilon Residual threshold for generating work.
     * @param split   Task-splitting threshold.
     */
    PrApp(const graph::CsrGraph *g, double alpha, double epsilon,
          std::uint32_t split)
        : App(g, split), alpha_(alpha), epsilon_(epsilon)
    {
        reset();
    }

    std::string name() const override { return "pr"; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;

    const std::vector<double> &ranks() const { return rank_; }

    /** Host-side serial push PageRank to the same epsilon. */
    std::vector<double> referenceRanks() const;

    std::function<bool(const WorkItem &)>
    staleTaskPredicate() const override
    {
        const std::vector<double> *residual = &residual_;
        double eps = epsilon_;
        return [residual, eps](const WorkItem &item) {
            return (*residual)[taskNode(item.payload)] < eps;
        };
    }

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(alpha_);
        ck.io(epsilon_);
        ck.io(rank_);
        ck.io(residual_);
    }

  private:
    /** Priority: descending residual, discretized. */
    std::int64_t priorityOf(double residual) const;

    double alpha_;
    double epsilon_;
    std::vector<double> rank_;
    std::vector<double> residual_;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_PR_HH
