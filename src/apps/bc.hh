/**
 * @file
 * Bipartite coloring: decide 2-colourability by non-blocking colour
 * propagation — each task colours a node's uncoloured neighbours
 * with the opposite colour and flags conflicts. No useful priority
 * order (per the paper). Seeds are one node per connected component,
 * found by a host union-find pass over the input.
 */

#ifndef MINNOW_APPS_BC_HH
#define MINNOW_APPS_BC_HH

#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Two-coloring / bipartiteness check by colour propagation. */
class BcApp : public App
{
  public:
    static constexpr std::uint8_t kUncolored = 2;

    BcApp(const graph::CsrGraph *g, std::uint32_t split)
        : App(g, split)
    {
        reset();
    }

    std::string name() const override { return "bc"; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;

    bool conflictFound() const { return conflict_; }
    const std::vector<std::uint8_t> &colors() const
    {
        return color_;
    }

    /** Host-side bipartiteness test (BFS 2-coloring). */
    bool referenceIsBipartite() const;

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(color_);
        ck.io(conflict_);
    }

  private:
    std::vector<std::uint8_t> color_;
    bool conflict_ = false;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_BC_HH
