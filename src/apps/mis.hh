/**
 * @file
 * Maximal independent set — one of the "other classes of irregular
 * workloads" the paper's conclusion targets for Minnow.
 *
 * Deterministic dataflow formulation of the greedy lexicographic
 * MIS: a node may decide once every lower-id neighbour has decided;
 * it joins the set iff none of those neighbours joined. Each
 * decision releases the node's higher-id neighbours by decrementing
 * their wait counts (an atomic per edge to a higher neighbour), so
 * tasks flow through the worklist exactly like the paper's
 * benchmark operators — and the result equals the serial greedy MIS
 * bit for bit under any schedule.
 */

#ifndef MINNOW_APPS_MIS_HH
#define MINNOW_APPS_MIS_HH

#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Greedy lexicographic maximal independent set (dataflow). */
class MisApp : public App
{
  public:
    MisApp(const graph::CsrGraph *g, std::uint32_t split)
        : App(g, split)
    {
        reset();
    }

    std::string name() const override { return "mis"; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;

    const std::vector<std::uint8_t> &inSet() const { return in_; }
    std::uint64_t setSize() const;

    /** Serial greedy reference (identical by construction). */
    std::vector<std::uint8_t> referenceSet() const;

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(in_);
        ck.io(blocked_);
        ck.io(waits_);
    }

  private:
    std::vector<std::uint8_t> in_;       //!< 1 if in the MIS.
    std::vector<std::uint8_t> blocked_;  //!< lower neighbour joined.
    std::vector<std::uint32_t> waits_;   //!< undecided lower nbrs.
};

} // namespace minnow::apps

#endif // MINNOW_APPS_MIS_HH
