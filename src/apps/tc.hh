/**
 * @file
 * Triangle counting with the node-iterator-hashed algorithm (Schank):
 * for every node v and ordered neighbour pair u < w, test edge (u, w)
 * by binary search in u's (sorted) adjacency list. No atomics, no
 * dynamically generated work, no useful priority order — the paper's
 * least worklist-bound workload, and the one with a custom Minnow
 * prefetch function that also chases neighbour adjacency lists.
 *
 * Per Section 6.2 the TC node record is 64 bytes (all others are 32).
 */

#ifndef MINNOW_APPS_TC_HH
#define MINNOW_APPS_TC_HH

#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Node-iterator-hashed triangle counting. */
class TcApp : public App
{
  public:
    TcApp(const graph::CsrGraph *g, std::uint32_t split)
        : App(g, split)
    {
        reset();
    }

    std::string name() const override { return "tc"; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;
    bool prefetchChasesAdjacency() const override { return true; }

    std::uint64_t triangles() const { return triangles_; }

    /** Host-side count (same algorithm, serial). */
    std::uint64_t referenceTriangles() const;

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(triangles_);
    }

  private:
    std::uint64_t triangles_ = 0;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_TC_HH
