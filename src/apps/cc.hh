/**
 * @file
 * Connected components via non-blocking minimum-label propagation
 * (Nguyen et al., SOSP'13), prioritized by ascending component id as
 * in the paper. Tasks are tiny — one label compare per edge — which
 * is what makes CC the most worklist-bound workload in Fig. 5.
 */

#ifndef MINNOW_APPS_CC_HH
#define MINNOW_APPS_CC_HH

#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Min-label propagation connected components. */
class CcApp : public App
{
  public:
    CcApp(const graph::CsrGraph *g, std::uint32_t split)
        : App(g, split)
    {
        reset();
    }

    std::string name() const override { return "cc"; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;

    const std::vector<NodeId> &labels() const { return label_; }

    /** Host union-find reference labels (min node id per set). */
    std::vector<NodeId> referenceLabels() const;

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(label_);
    }

  private:
    std::vector<NodeId> label_;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_CC_HH
