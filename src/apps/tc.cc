#include "apps/tc.hh"

#include <algorithm>

#include "base/bits.hh"

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
TcApp::reset()
{
    triangles_ = 0;
    resetCounters();
}

std::vector<WorkItem>
TcApp::initialWork()
{
    std::vector<WorkItem> out;
    out.reserve(graph_->numNodes());
    for (NodeId v = 0; v < graph_->numNodes(); ++v)
        seedNode(out, v, 0);
    return out;
}

CoTask<void>
TcApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    (void)sink; // TC never generates new work.
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5);
    ctx.compute(4);

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    auto vNbrs = g.neighbors(v);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        ctx.branch(cpu::BranchKind::DataDependent, edgeReady);
        if (u <= v)
            continue; // count each triangle once: v < u < w.

        // Load u's node record for its adjacency bounds.
        Cycle uReady = ctx.loadDelinquent(g.nodeAddr(u), edgeReady,
                                          kSiteDstNode);
        std::uint32_t uDeg = g.degree(u);
        std::uint32_t searchSteps =
            uDeg ? ceilLog2(std::uint64_t(uDeg) + 1) : 0;

        // For every later neighbour w of v, binary-search (u, w) in
        // u's sorted adjacency.
        for (EdgeId e2 = e + 1; e2 < g.edgeEnd(v); ++e2) {
            NodeId w = g.edgeDst(e2);
            Cycle e2Ready = ctx.loadDelinquent(
                g.edgeAddr(e2), nodeReady, kSiteEdge, w, true);
            ctx.branch(cpu::BranchKind::DataDependent, e2Ready);
            if (w <= u)
                continue;
            // Binary search: a chain of dependent probe loads into
            // u's edge array.
            EdgeId lo = g.edgeBegin(u), hi = g.edgeEnd(u);
            Cycle probeReady = uReady;
            for (std::uint32_t s = 0; s < searchSteps && lo < hi;
                 ++s) {
                EdgeId mid = lo + (hi - lo) / 2;
                probeReady = ctx.loadDelinquent(
                    g.edgeAddr(mid), probeReady, kSiteAux);
                ctx.compute(3);
                ctx.branch(cpu::BranchKind::DataDependent,
                           probeReady);
                if (g.edgeDst(mid) < w)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            ctx.cheapLoads(3);
            ctx.compute(2);
            if (lo < g.edgeEnd(u) && g.edgeDst(lo) == w) {
                triangles_ += 1;
                counters_.updates += 1;
            }
            co_await ctx.sync();
        }
        (void)vNbrs;
        co_await ctx.sync();
    }
}

std::uint64_t
TcApp::referenceTriangles() const
{
    const graph::CsrGraph &g = *graph_;
    std::uint64_t count = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            NodeId u = nbrs[i];
            if (u <= v)
                continue;
            for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
                NodeId w = nbrs[j];
                if (w <= u)
                    continue;
                if (g.hasEdge(u, w))
                    count += 1;
            }
        }
    }
    return count;
}

bool
TcApp::verify() const
{
    return triangles_ == referenceTriangles();
}

} // namespace minnow::apps
