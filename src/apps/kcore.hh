/**
 * @file
 * k-core decomposition by parallel peeling — a second "other
 * irregular workload" extension.
 *
 * Every node starts alive with its degree; nodes whose alive-degree
 * drops below k are removed, decrementing their neighbours (one
 * atomic per edge), which may cascade. The surviving set (the
 * k-core) is schedule-independent, so any worklist order verifies
 * against serial peeling.
 */

#ifndef MINNOW_APPS_KCORE_HH
#define MINNOW_APPS_KCORE_HH

#include <vector>

#include "apps/app.hh"

namespace minnow::apps
{

/** Parallel k-core peeling. */
class KcoreApp : public App
{
  public:
    KcoreApp(const graph::CsrGraph *g, std::uint32_t k,
             std::uint32_t split)
        : App(g, split), k_(k)
    {
        reset();
    }

    std::string name() const override { return "kcore"; }
    void reset() override;
    std::vector<WorkItem> initialWork() override;
    runtime::CoTask<void> process(runtime::SimContext &ctx,
                                  WorkItem item,
                                  TaskSink &sink) override;
    bool verify() const override;

    const std::vector<std::uint8_t> &inCore() const
    {
        return alive_;
    }
    std::uint64_t coreSize() const;

    /** Serial peeling reference. */
    std::vector<std::uint8_t> referenceCore() const;

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        App::checkpoint(ck);
        ck.io(k_);
        ck.io(alive_);
        ck.io(degree_);
    }

  private:
    std::uint32_t k_;
    std::vector<std::uint8_t> alive_;
    std::vector<std::uint32_t> degree_;
};

} // namespace minnow::apps

#endif // MINNOW_APPS_KCORE_HH
