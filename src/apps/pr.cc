#include "apps/pr.hh"

#include <cmath>
#include <deque>

namespace minnow::apps
{

using runtime::CoTask;
using runtime::SimContext;

void
PrApp::reset()
{
    rank_.assign(graph_->numNodes(), 0.0);
    residual_.assign(graph_->numNodes(), 1.0 - alpha_);
    resetCounters();
}

std::int64_t
PrApp::priorityOf(double residual) const
{
    // Descending residual: bigger residual -> smaller priority value.
    return -std::int64_t(std::llround(residual * 4096.0));
}

std::vector<WorkItem>
PrApp::initialWork()
{
    std::vector<WorkItem> out;
    out.reserve(graph_->numNodes());
    for (NodeId v = 0; v < graph_->numNodes(); ++v)
        seedNode(out, v, priorityOf(residual_[v]));
    return out;
}

CoTask<void>
PrApp::process(SimContext &ctx, WorkItem item, TaskSink &sink)
{
    const graph::CsrGraph &g = *graph_;
    NodeId v = taskNode(item.payload);
    counters_.tasks += 1;

    Cycle nodeReady =
        ctx.loadDelinquent(g.nodeAddr(v), 0, kSiteNode);
    ctx.cheapLoads(5);
    ctx.compute(6);

    ctx.branch(cpu::BranchKind::DataDependent, nodeReady);
    if (residual_[v] < epsilon_) {
        co_await ctx.sync();
        co_return; // superseded: someone already drained us.
    }

    // Atomically exchange the residual to zero and fold it into the
    // rank (both live in the node record).
    co_await ctx.atomicAccess(g.nodeAddr(v), nodeReady);
    double r = residual_[v];
    residual_[v] = 0.0;
    rank_[v] += r;
    counters_.updates += 1;
    if (r == 0.0) {
        co_return; // raced with another drain.
    }

    std::uint32_t deg = g.degree(v);
    if (deg == 0) {
        co_await ctx.sync();
        co_return;
    }
    double delta = alpha_ * r / double(deg);
    ctx.compute(10);

    EdgeId begin, end;
    taskEdgeRange(item.payload, begin, end);
    for (EdgeId e = begin; e < end; ++e) {
        counters_.edgesVisited += 1;
        NodeId u = g.edgeDst(e);
        Cycle edgeReady = ctx.loadDelinquent(
            g.edgeAddr(e), nodeReady, kSiteEdge, u, true);
        // Unconditional atomic add of the residual share: PR's
        // fence-bound atomic stream (Sections 3.2-3.3).
        co_await ctx.atomicAccess(g.nodeAddr(u), edgeReady);
        double old = residual_[u];
        residual_[u] = old + delta;
        ctx.cheapLoads(7);
        ctx.compute(6);
        ctx.branch(cpu::BranchKind::DataDependent, 0);
        if (old < epsilon_ && old + delta >= epsilon_) {
            co_await pushNode(ctx, sink, u,
                              priorityOf(old + delta));
        }
        ctx.branch(cpu::BranchKind::Loop, 0);
        co_await ctx.sync();
    }
}

std::vector<double>
PrApp::referenceRanks() const
{
    const graph::CsrGraph &g = *graph_;
    std::vector<double> rank(g.numNodes(), 0.0);
    std::vector<double> residual(g.numNodes(), 1.0 - alpha_);
    std::vector<bool> queued(g.numNodes(), true);
    std::deque<NodeId> queue;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        queue.push_back(v);
    while (!queue.empty()) {
        NodeId v = queue.front();
        queue.pop_front();
        queued[v] = false;
        double r = residual[v];
        if (r < epsilon_)
            continue;
        residual[v] = 0.0;
        rank[v] += r;
        std::uint32_t deg = g.degree(v);
        if (deg == 0)
            continue;
        double delta = alpha_ * r / double(deg);
        for (NodeId u : g.neighbors(v)) {
            double old = residual[u];
            residual[u] = old + delta;
            if (!queued[u] && old + delta >= epsilon_) {
                queued[u] = true;
                queue.push_back(u);
            }
        }
    }
    return rank;
}

bool
PrApp::verify() const
{
    std::vector<double> ref = referenceRanks();
    // Both runs stop pushing below epsilon; residual left behind
    // bounds the error at ~eps/(1-alpha) per node, plus a relative
    // term for hubs, whose rank accumulates the sub-epsilon
    // cutoff noise of thousands of in-neighbours.
    double base = 4.0 * epsilon_ / (1.0 - alpha_) + 1e-9;
    for (NodeId v = 0; v < graph_->numNodes(); ++v) {
        double tolerance =
            base + 1e-4 * std::max(std::abs(ref[v]),
                                   std::abs(rank_[v]));
        if (std::abs(rank_[v] - ref[v]) > tolerance)
            return false;
    }
    return true;
}

} // namespace minnow::apps
