/**
 * @file
 * Strict priority worklist: one global lock-protected binary heap.
 *
 * This is the "priority queues are not good concurrent priority
 * schedulers" baseline (Lenharth et al., cited in Section 2.1): it
 * delivers Dijkstra-quality ordering, but every operation serializes
 * on a single lock line and walks log(n) heap levels, so it collapses
 * at scale. Used by the Fig. 3 scheduler zoo.
 */

#ifndef MINNOW_WORKLIST_STRICT_PRIORITY_HH
#define MINNOW_WORKLIST_STRICT_PRIORITY_HH

#include <vector>

#include "runtime/machine.hh"
#include "worklist/worklist.hh"

namespace minnow::worklist
{

/** Centralized lock-protected binary min-heap worklist. */
class StrictPriorityWorklist : public Worklist
{
  public:
    explicit StrictPriorityWorklist(runtime::Machine *machine);

    runtime::CoTask<void> push(runtime::SimContext &ctx,
                               WorkItem item) override;
    runtime::CoTask<bool> pop(runtime::SimContext &ctx,
                              WorkItem &out) override;
    void pushInitial(WorkItem item) override;
    std::uint64_t size() const override { return heap_.size(); }
    std::string name() const override { return "strict"; }

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        ck.io(heap_);
        ck.io(lockLine_);
        ck.io(heapBase_);
        ck.io(heapCapacity_);
        ck.transient("machine_");
    }

  private:
    /** Sift the last element up; returns levels touched. */
    std::uint32_t siftUp();

    /** Pop the min element into @p out; returns levels touched. */
    std::uint32_t popMin(WorkItem &out);

    /** Simulated address of heap slot @p i. */
    Addr slotAddr(std::size_t i) const
    {
        return heapBase_ + Addr(i) * kItemBytes;
    }

    runtime::Machine *machine_;
    std::vector<WorkItem> heap_;
    Addr lockLine_ = 0;
    Addr heapBase_ = 0;
    std::uint64_t heapCapacity_;
};

} // namespace minnow::worklist

#endif // MINNOW_WORKLIST_STRICT_PRIORITY_HH
