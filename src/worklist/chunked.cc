#include "worklist/chunked.hh"

#include <algorithm>

#include "base/logging.hh"

namespace minnow::worklist
{

using runtime::CoTask;
using runtime::PhaseGuard;
using runtime::SimContext;

ChunkedWorklist::ChunkedWorklist(runtime::Machine *machine,
                                 Policy policy,
                                 std::uint32_t chunkSize,
                                 std::uint32_t packages)
    : machine_(machine),
      policy_(policy),
      pool_(&machine->alloc, chunkSize),
      packages_(std::min(packages, machine->cfg.numCores)),
      coresPerPkg_((machine->cfg.numCores + packages_ - 1) /
                   packages_),
      pkgs_(packages_),
      workers_(machine->cfg.numCores)
{
    for (std::uint32_t p = 0; p < packages_; ++p) {
        pkgs_[p].headLine =
            machine->alloc.alloc("cwl.pkg" + std::to_string(p), 64);
    }
}

std::uint64_t
ChunkedWorklist::size() const
{
    std::uint64_t n = 0;
    for (const auto &p : pkgs_) {
        for (const Chunk *c : p.list)
            n += c->remaining();
    }
    for (const auto &w : workers_) {
        if (w.pushChunk)
            n += w.pushChunk->remaining();
        if (w.popChunk)
            n += w.popChunk->remaining();
    }
    return n;
}

void
ChunkedWorklist::pushInitial(WorkItem item)
{
    std::uint32_t pkg = seedRotor_++ % packages_;
    auto &list = pkgs_[pkg].list;
    if (list.empty() || list.back()->items.size() >=
                            pool_.chunkSize()) {
        list.push_back(pool_.acquire());
    }
    list.back()->items.push_back(item);
    machine_->monitor.addWork(1, true);
}

CoTask<void>
ChunkedWorklist::publish(SimContext &ctx, std::uint32_t pkg,
                         Chunk *chunk)
{
    // CAS on the shared package list head, then link the chunk.
    Cycle locked = co_await ctx.atomicAccess(pkgs_[pkg].headLine);
    ctx.store(chunk->base, locked);
    ctx.compute(4);
    pkgs_[pkg].list.push_back(chunk);
    ctx.monitor().transferWork(chunk->remaining(), true);
}

CoTask<void>
ChunkedWorklist::push(SimContext &ctx, WorkItem item)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    // Galois per-op overhead: TLS lookup, iterator/wrapper layers,
    // conflict-detection hooks (the "hundreds of instructions" the
    // paper attributes to software scheduling).
    ctx.compute(48);
    ctx.cheapLoads(10);
    PerWorker &w = workers_[ctx.id()];
    if (!w.pushChunk) {
        w.pushChunk = pool_.acquire();
        ctx.compute(24); // allocator path.
        ctx.store(w.pushChunk->base, 0);
    }
    Chunk *c = w.pushChunk;
    ctx.store(c->itemAddr(std::uint32_t(c->items.size())), 0);
    c->items.push_back(item);
    ctx.monitor().addWork(1, false);
    if (c->items.size() >= pool_.chunkSize()) {
        w.pushChunk = nullptr;
        co_await publish(ctx, pkgOf(ctx.id()), c);
    }
    co_await ctx.sync();
}

void
ChunkedWorklist::deliver(SimContext &ctx, PerWorker &w, WorkItem &out)
{
    Chunk *c = w.popChunk;
    if (policy_ == Policy::Lifo) {
        std::uint32_t idx = std::uint32_t(c->items.size()) - 1;
        ctx.load(c->itemAddr(idx), 0, {kSiteWlItem, 0, false, false});
        out = c->items.back();
        c->items.pop_back();
    } else {
        ctx.load(c->itemAddr(c->head), 0,
                 {kSiteWlItem, 0, false, false});
        out = c->items[c->head];
        c->head += 1;
    }
    ctx.monitor().takeWork(1, false);
    if (c->empty()) {
        pool_.release(c);
        w.popChunk = nullptr;
        ctx.compute(4);
    }
}

CoTask<bool>
ChunkedWorklist::pop(SimContext &ctx, WorkItem &out)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    ctx.compute(40);
    ctx.cheapLoads(10);
    // LINT-OK(coro-suspend-safety): workers_ is fixed-size after ctor
    PerWorker &w = workers_[ctx.id()];

    for (;;) {
        if (w.popChunk && !w.popChunk->empty()) {
            deliver(ctx, w, out);
            co_await ctx.sync();
            co_return true;
        }
        if (w.popChunk) {
            pool_.release(w.popChunk);
            w.popChunk = nullptr;
        }
        if (w.pushChunk && !w.pushChunk->empty()) {
            // Drain our own unpublished chunk first: these items are
            // already accounted non-stealable.
            w.popChunk = w.pushChunk;
            w.pushChunk = nullptr;
            ctx.compute(4);
            continue;
        }

        // Acquire a chunk: own package first, then steal.
        const std::uint32_t myPkg = pkgOf(ctx.id());
        Chunk *got = nullptr;
        for (std::uint32_t i = 0; i < packages_; ++i) {
            std::uint32_t pkg = (myPkg + i) % packages_;
            // Peek at the (shared, frequently invalidated) head.
            ctx.load(pkgs_[pkg].headLine, 0,
                     {kSiteWlHead, 0, false, false});
            ctx.compute(3);
            if (pkgs_[pkg].list.empty())
                continue;
            co_await ctx.atomicAccess(pkgs_[pkg].headLine);
            if (pkgs_[pkg].list.empty())
                continue; // lost the race while acquiring.
            if (policy_ == Policy::Lifo) {
                got = pkgs_[pkg].list.back();
                pkgs_[pkg].list.pop_back();
            } else {
                got = pkgs_[pkg].list.front();
                pkgs_[pkg].list.pop_front();
            }
            ctx.load(got->base, 0, {kSiteWlChunkHdr, 0, false, false});
            ctx.monitor().transferWork(got->remaining(), false);
            break;
        }
        if (!got) {
            co_await ctx.sync();
            co_return false;
        }
        w.popChunk = got;
    }
}

void
ChunkedWorklist::checkpoint(ckpt::Ckpt &ck)
{
    if (ck.loading()) {
        ck.fail("chunked worklist sections are replay-validated, not"
                " loadable");
        return;
    }
    Worklist::checkpoint(ck);
    std::uint8_t pol = policy_ == Policy::Lifo;
    ck.io(pol);
    ck.io(packages_);
    ck.io(coresPerPkg_);
    pool_.checkpoint(ck);
    ck.io(seedRotor_);
    std::uint64_t np = pkgs_.size();
    ck.io(np);
    for (PerPackage &p : pkgs_) {
        ck.io(p.headLine);
        std::uint64_t nc = p.list.size();
        ck.io(nc);
        for (Chunk *c : p.list)
            c->checkpoint(ck);
    }
    std::uint64_t nw = workers_.size();
    ck.io(nw);
    for (PerWorker &w : workers_) {
        checkpointChunkPtr(ck, w.pushChunk);
        checkpointChunkPtr(ck, w.popChunk);
    }
    ck.transient("machine_");
}

} // namespace minnow::worklist
