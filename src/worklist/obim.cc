#include "worklist/obim.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/hostprof.hh"
#include "sim/timeline.hh"

namespace minnow::worklist
{

using runtime::CoTask;
using runtime::PhaseGuard;
using runtime::SimContext;

ObimWorklist::ObimWorklist(runtime::Machine *machine,
                           std::uint32_t lgBucketInterval,
                           std::uint32_t chunkSize,
                           std::uint32_t packages)
    : machine_(machine),
      lg_(lgBucketInterval),
      pool_(&machine->alloc, chunkSize),
      packages_(std::min(packages, machine->cfg.numCores)),
      coresPerPkg_((machine->cfg.numCores + packages_ - 1) /
                   packages_),
      workers_(machine->cfg.numCores)
{
    minLine_ = machine->alloc.alloc("obim.minHint", 64);
    mapLock_ = machine->alloc.alloc("obim.mapLock", 64);
}

std::uint64_t
ObimWorklist::size() const
{
    std::uint64_t n = 0;
    for (const auto &[b, gb] : buckets_) {
        for (const auto &list : gb.perPkg) {
            for (const Chunk *c : list)
                n += c->remaining();
        }
    }
    for (const auto &w : workers_) {
        for (const auto &[b, c] : w.pushChunks)
            n += c->remaining();
        if (w.popChunk)
            n += w.popChunk->remaining();
    }
    return n;
}

void
ObimWorklist::registerTimeline(timeline::Timeline &tl)
{
    // The shared minimum-bucket hint: the line whose ping-pong is
    // OBIM's scaling problem. -1 renders the "no bucket" sentinel.
    tl.addCounterProvider(
        timeline::Cat::Worklist, "worklist.obimMinBucket", this,
        [this] {
            return minHint_ == kNoBucket ? -1.0 : double(minHint_);
        });
}

ObimWorklist::GlobalBucket &
ObimWorklist::ensureBucket(SimContext &ctx, std::int64_t bucket,
                           bool &created)
{
    HostProfScope hp(HostClass::Worklist);
    auto it = buckets_.find(bucket);
    created = it == buckets_.end();
    if (created) {
        GlobalBucket gb;
        gb.perPkg.resize(packages_);
        gb.descBase = machine_->alloc.allocAnon(
            std::uint64_t(packages_) * kLineBytes);
        it = buckets_.emplace(bucket, std::move(gb)).first;
        // Concurrent ordered-map insert: lock + rebalance-ish cost.
        ctx.compute(24);
        ctx.store(mapLock_, 0);
    } else {
        // Map probe cost: a couple of pointer-chase levels.
        ctx.compute(6);
        ctx.cheapLoads(2);
    }
    return it->second;
}

void
ObimWorklist::pushInitial(WorkItem item)
{
    std::int64_t bucket = bucketOf(item);
    auto it = buckets_.find(bucket);
    if (it == buckets_.end()) {
        GlobalBucket gb;
        gb.perPkg.resize(packages_);
        gb.descBase = machine_->alloc.allocAnon(
            std::uint64_t(packages_) * kLineBytes);
        it = buckets_.emplace(bucket, std::move(gb)).first;
    }
    auto &list = it->second.perPkg[seedRotorForInitial_++ % packages_];
    if (list.empty() ||
        list.back()->items.size() >= pool_.chunkSize()) {
        Chunk *c = pool_.acquire();
        c->bucket = bucket;
        list.push_back(c);
    }
    list.back()->items.push_back(item);
    minHint_ = std::min(minHint_, bucket);
    machine_->monitor.addWork(1, true);
}

CoTask<void>
ObimWorklist::raiseMinHint(SimContext &ctx, std::int64_t bucket)
{
    // Shared hint line: read, and CAS down if we hold a lower bucket.
    ctx.load(minLine_, 0, {kSiteWlBucketMap, 0, false, false});
    ctx.compute(2);
    if (bucket < minHint_) {
        co_await ctx.atomicAccess(minLine_);
        if (bucket < minHint_)
            minHint_ = bucket;
    }
}

CoTask<void>
ObimWorklist::publishChunk(SimContext &ctx, std::int64_t bucket,
                           std::uint32_t pkg, Chunk *c)
{
    // NOTE: other workers run during every co_await, and they may
    // erase or create buckets; never hold a GlobalBucket reference
    // across a suspension — re-find by key instead.
    bool created = false;
    Addr head = ensureBucket(ctx, bucket, created).headLine(pkg);
    Cycle locked = co_await ctx.atomicAccess(head);
    ctx.store(c->base, locked);
    bool recreated = false;
    GlobalBucket &gb = ensureBucket(ctx, bucket, recreated);
    gb.perPkg[pkg].push_back(c);
    ctx.monitor().transferWork(c->remaining(), true);
    co_await raiseMinHint(ctx, bucket);
}

CoTask<void>
ObimWorklist::push(SimContext &ctx, WorkItem item)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    std::int64_t bucket = bucketOf(item);
    // Galois OBIM push: TLS + wrapper layers + bucket-map walk.
    ctx.compute(60);
    ctx.cheapLoads(12);
    PerWorker &w = workers_[ctx.id()];

    auto [it, fresh] = w.pushChunks.try_emplace(bucket, nullptr);
    ctx.compute(4);
    if (fresh || !it->second) {
        it->second = pool_.acquire();
        it->second->bucket = bucket;
        ctx.compute(12);
    }
    Chunk *c = it->second;
    ctx.store(c->itemAddr(std::uint32_t(c->items.size())), 0);
    c->items.push_back(item);
    ctx.monitor().addWork(1, false);

    // Publish when full, or eagerly when this is higher priority
    // than what we are processing (so others can see it).
    bool urgent = bucket < w.curBucket;
    if (c->items.size() >= pool_.chunkSize() || urgent) {
        w.pushChunks.erase(bucket);
        co_await publishChunk(ctx, bucket, pkgOf(ctx.id()), c);
    }
    co_await ctx.sync();
}

CoTask<bool>
ObimWorklist::pop(SimContext &ctx, WorkItem &out)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    ctx.compute(48);
    ctx.cheapLoads(12);
    // LINT-OK(coro-suspend-safety): workers_ is fixed-size after ctor
    PerWorker &w = workers_[ctx.id()];
    const std::uint32_t myPkg = pkgOf(ctx.id());

    // Check the shared hint: did higher-priority work appear?
    ctx.load(minLine_, 0, {kSiteWlBucketMap, 0, false, false});
    ctx.compute(2);
    if (minHint_ < w.curBucket)
        w.curBucket = minHint_;

    for (;;) {
        if (w.popChunk && !w.popChunk->empty() &&
            w.popChunk->bucket <= w.curBucket) {
            Chunk *c = w.popChunk;
            ctx.load(c->itemAddr(c->head), 0,
                     {kSiteWlItem, 0, false, false});
            out = c->items[c->head];
            c->head += 1;
            ctx.monitor().takeWork(1, false);
            if (c->empty()) {
                pool_.release(c);
                w.popChunk = nullptr;
                ctx.compute(4);
            }
            co_await ctx.sync();
            co_return true;
        }
        if (w.popChunk && !w.popChunk->empty()) {
            // Our chunk got outprioritized: hand it back to its
            // bucket so it is processed in order.
            Chunk *c = w.popChunk;
            w.popChunk = nullptr;
            co_await publishChunk(ctx, c->bucket, myPkg, c);
            continue;
        }
        if (w.popChunk) {
            pool_.release(w.popChunk);
            w.popChunk = nullptr;
        }

        // Drain our own unpublished chunk when it is at least as
        // good as the current bucket (Galois consumes local work
        // first; leaving it would invert priorities).
        if (!w.pushChunks.empty()) {
            auto best = w.pushChunks.begin();
            if (best->first <= w.curBucket) {
                w.popChunk = best->second;
                w.curBucket = best->first;
                w.pushChunks.erase(best);
                ctx.compute(4);
                continue;
            }
        }

        // Phase 1 (no suspensions): find the lowest bucket with any
        // published chunk, garbage-collecting drained buckets.
        std::int64_t candidate = kNoBucket;
        for (auto it = buckets_.begin(); it != buckets_.end();) {
            GlobalBucket &gb = it->second;
            ctx.compute(4);
            ctx.load(gb.descBase, 0,
                     {kSiteWlBucketMap, 0, false, false});
            bool any = false;
            for (std::uint32_t p = 0; p < packages_; ++p) {
                if (!gb.perPkg[p].empty()) {
                    any = true;
                    break;
                }
            }
            if (any) {
                candidate = it->first;
                break;
            }
            ctx.compute(6);
            it = buckets_.erase(it);
        }

        // Phase 2 (suspends): acquire a chunk from the candidate,
        // re-finding the bucket by key after every await.
        Chunk *got = nullptr;
        if (candidate != kNoBucket) {
            for (std::uint32_t i = 0; i < packages_ && !got; ++i) {
                std::uint32_t pkg = (myPkg + i) % packages_;
                auto it = buckets_.find(candidate);
                if (it == buckets_.end())
                    break; // drained and GC'd while we were away.
                if (it->second.perPkg[pkg].empty())
                    continue;
                co_await ctx.atomicAccess(
                    it->second.headLine(pkg));
                it = buckets_.find(candidate);
                if (it == buckets_.end())
                    break;
                if (it->second.perPkg[pkg].empty())
                    continue; // lost the race while acquiring.
                got = it->second.perPkg[pkg].front();
                it->second.perPkg[pkg].pop_front();
                ctx.load(got->base, 0,
                         {kSiteWlChunkHdr, 0, false, false});
                ctx.monitor().transferWork(got->remaining(), false);
            }
        }
        if (got) {
            w.popChunk = got;
            w.curBucket = candidate;
            if (candidate != minHint_) {
                co_await ctx.atomicAccess(minLine_);
                minHint_ = candidate;
            }
            continue;
        }
        if (candidate != kNoBucket) {
            // The candidate evaporated under us; rescan.
            continue;
        }

        // Global structure empty: flush our private push chunks and
        // rescan; if we had none, report failure.
        if (!w.pushChunks.empty()) {
            std::map<std::int64_t, Chunk *> mine;
            mine.swap(w.pushChunks);
            for (auto &[bucket, chunk] : mine)
                co_await publishChunk(ctx, bucket, myPkg, chunk);
            continue;
        }
        co_await ctx.sync();
        co_return false;
    }
}

void
ObimWorklist::checkpoint(ckpt::Ckpt &ck)
{
    if (ck.loading()) {
        ck.fail("obim worklist sections are replay-validated, not"
                " loadable");
        return;
    }
    Worklist::checkpoint(ck);
    ck.io(lg_);
    ck.io(packages_);
    ck.io(coresPerPkg_);
    pool_.checkpoint(ck);
    ck.io(minHint_);
    ck.io(minLine_);
    ck.io(mapLock_);
    ck.io(seedRotorForInitial_);
    std::uint64_t nb = buckets_.size();
    ck.io(nb);
    for (auto &[key, gb] : buckets_) {
        std::int64_t k = key;
        ck.io(k);
        ck.io(gb.descBase);
        std::uint64_t np = gb.perPkg.size();
        ck.io(np);
        for (auto &dq : gb.perPkg) {
            std::uint64_t nc = dq.size();
            ck.io(nc);
            for (Chunk *c : dq)
                c->checkpoint(ck);
        }
    }
    std::uint64_t nw = workers_.size();
    ck.io(nw);
    for (PerWorker &w : workers_) {
        ck.io(w.curBucket);
        std::uint64_t npc = w.pushChunks.size();
        ck.io(npc);
        for (auto &[b, c] : w.pushChunks) {
            std::int64_t bk = b;
            ck.io(bk);
            checkpointChunkPtr(ck, c);
        }
        checkpointChunkPtr(ck, w.popChunk);
    }
    ck.transient("machine_");
}

} // namespace minnow::worklist
