#include "worklist/strict_priority.hh"

#include "worklist/chunked.hh"

#include <algorithm>

namespace minnow::worklist
{

using runtime::CoTask;
using runtime::PhaseGuard;
using runtime::SimContext;

namespace
{

bool
heapLess(const WorkItem &a, const WorkItem &b)
{
    return a.priority < b.priority;
}

} // anonymous namespace

StrictPriorityWorklist::StrictPriorityWorklist(
    runtime::Machine *machine)
    : machine_(machine),
      heapCapacity_(1 << 20)
{
    lockLine_ = machine->alloc.alloc("strict.lock", 64);
    heapBase_ = machine->alloc.alloc("strict.heap",
                                     heapCapacity_ * kItemBytes);
}

std::uint32_t
StrictPriorityWorklist::siftUp()
{
    std::size_t i = heap_.size() - 1;
    std::uint32_t levels = 0;
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!heapLess(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
        ++levels;
    }
    return levels;
}

std::uint32_t
StrictPriorityWorklist::popMin(WorkItem &out)
{
    out = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    std::uint32_t levels = 0;
    while (true) {
        std::size_t l = 2 * i + 1, r = 2 * i + 2, best = i;
        if (l < heap_.size() && heapLess(heap_[l], heap_[best]))
            best = l;
        if (r < heap_.size() && heapLess(heap_[r], heap_[best]))
            best = r;
        if (best == i)
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
        ++levels;
    }
    return levels;
}

void
StrictPriorityWorklist::pushInitial(WorkItem item)
{
    heap_.push_back(item);
    siftUp();
    machine_->monitor.addWork(1, true);
}

CoTask<void>
StrictPriorityWorklist::push(SimContext &ctx, WorkItem item)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    ctx.compute(24);
    ctx.cheapLoads(4);
    // Acquire the global lock (the scalability killer).
    co_await ctx.atomicAccess(lockLine_);
    heap_.push_back(item);
    ctx.store(slotAddr(heap_.size() - 1), 0);
    std::uint32_t levels = siftUp();
    // Each sift level reads a parent slot and writes two.
    for (std::uint32_t l = 0; l < levels; ++l) {
        ctx.load(slotAddr((heap_.size() - 1) >> (l + 1)), 0,
                 {kSiteWlItem, 0, false, false});
        ctx.compute(4);
    }
    ctx.monitor().addWork(1, true);
    ctx.store(lockLine_, 0); // release.
    co_await ctx.sync();
}

CoTask<bool>
// LINT-OK(coro-suspend-safety): every caller co_awaits pop()
StrictPriorityWorklist::pop(SimContext &ctx, WorkItem &out)
{
    PhaseGuard guard(ctx, cpu::Phase::Worklist);
    ctx.compute(20);
    ctx.cheapLoads(4);
    co_await ctx.atomicAccess(lockLine_);
    if (heap_.empty()) {
        ctx.store(lockLine_, 0);
        co_await ctx.sync();
        co_return false;
    }
    ctx.load(slotAddr(0), 0, {kSiteWlItem, 0, false, false});
    std::uint32_t levels = popMin(out);
    for (std::uint32_t l = 0; l < levels; ++l) {
        ctx.load(slotAddr(std::size_t(1) << (l + 1)), 0,
                 {kSiteWlItem, 0, false, false});
        ctx.compute(4);
    }
    ctx.monitor().takeWork(1, true);
    ctx.store(lockLine_, 0); // release.
    co_await ctx.sync();
    co_return true;
}

} // namespace minnow::worklist
