/**
 * @file
 * Worklist abstraction.
 *
 * A worklist stores WorkItems — the paper's task representation of
 * two 64-bit words: an integer priority and a payload pointer
 * (Section 4.1). Software worklist implementations are *simulated*:
 * their push/pop coroutines perform the same instruction mix, memory
 * touches (on arena-shadowed chunk storage) and atomic operations the
 * real scheduler code would, so scheduling overhead, contention and
 * cache pollution all emerge from the machine model rather than from
 * hard-coded constants.
 */

#ifndef MINNOW_WORKLIST_WORKLIST_HH
#define MINNOW_WORKLIST_WORKLIST_HH

#include <cstdint>
#include <string>

#include "base/ckpt.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "runtime/sim_context.hh"
#include "runtime/task.hh"

namespace minnow::timeline
{
class Timeline;
} // namespace minnow::timeline

namespace minnow::worklist
{

/** A scheduled task: integer priority + payload (Section 4.1). */
struct WorkItem
{
    std::int64_t priority = 0;
    std::uint64_t payload = 0;

    /**
     * Causal-attribution lineage id (--attribution): the id assigned
     * to this task at push time, 0 for seeds or when attribution is
     * off. Host-side bookkeeping only — it occupies no simulated
     * bytes (kItemBytes stays 16) and does not affect identity, so
     * stale-task comparisons ignore it.
     */
    std::uint64_t lineage = 0;

    bool
    operator==(const WorkItem &o) const
    {
        return priority == o.priority && payload == o.payload;
    }
};

/** Bytes one item occupies in simulated chunk storage. */
constexpr std::uint32_t kItemBytes = 16;

/** Abstract simulated software worklist. */
class Worklist
{
  public:
    virtual ~Worklist()
    {
        if (statsReg_)
            statsReg_->removeGroup("worklist");
    }

    /**
     * Attach this worklist's observability group ("worklist") to the
     * machine's registry: a live size formula, plus whatever run
     * counters the executor adds to the returned group. The group is
     * removed when the worklist dies, so formulas capturing `this`
     * cannot dangle in a registry that outlives the run.
     */
    StatsGroup &
    attachStats(StatsRegistry &reg)
    {
        statsReg_ = &reg;
        StatsGroup &g = reg.freshGroup("worklist");
        g.formula("size", "tasks currently queued",
                  [this] { return double(size()); });
        return g;
    }

    /** Timed enqueue executed on the calling worker's core. */
    virtual runtime::CoTask<void> push(runtime::SimContext &ctx,
                                       WorkItem item) = 0;

    /**
     * Timed try-pop. Returns false when no work is obtainable right
     * now (the caller should park on the WorkMonitor).
     */
    virtual runtime::CoTask<bool> pop(runtime::SimContext &ctx,
                                      WorkItem &out) = 0;

    /**
     * Functional-only seeding before simulated time starts; must
     * account the items with the machine's WorkMonitor.
     */
    virtual void pushInitial(WorkItem item) = 0;

    /** Total queued items (functional; for tests and debugging). */
    virtual std::uint64_t size() const = 0;

    /** Scheduler name for reports ("obim", "cfifo", ...). */
    virtual std::string name() const = 0;

    /**
     * Register implementation-specific counter tracks with a run's
     * timeline, owner-tagged `this`. The executor removes every
     * provider owned by this worklist when the run ends, so
     * overrides need no matching teardown.
     */
    virtual void registerTimeline(timeline::Timeline &) {}

    /**
     * Witness serialization of the worklist's logical content, in
     * deterministic order. Save-only for chunk-based lists (their
     * pointer structure is rebuilt by deterministic replay; a
     * restore validates by re-serializing and comparing CRCs —
     * DESIGN.md section 5i).
     */
    virtual void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.transient("statsReg_");
    }

  private:
    StatsRegistry *statsReg_ = nullptr;
};

} // namespace minnow::worklist

#endif // MINNOW_WORKLIST_WORKLIST_HH
