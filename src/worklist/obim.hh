/**
 * @file
 * OBIM: the ordered-by-integer-metric priority worklist (Lenharth,
 * Nguyen, Pingali) used by Galois and offloaded by Minnow.
 *
 * Priorities are discretized into buckets
 * (bucket = priority >> lgBucketInterval, Section 2.1); work inside a
 * bucket is unordered and flows through per-package chunk lists, and
 * buckets are processed in ascending order. A shared "minimum bucket"
 * hint line lets workers notice when higher-priority work appears —
 * and is also the structure whose cache-line ping-pong makes OBIM
 * expensive at high thread counts, which is exactly the overhead
 * Minnow offloads.
 */

#ifndef MINNOW_WORKLIST_OBIM_HH
#define MINNOW_WORKLIST_OBIM_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "runtime/machine.hh"
#include "worklist/chunk.hh"
#include "worklist/chunked.hh"
#include "worklist/worklist.hh"

namespace minnow::worklist
{

/** Bucketed priority worklist (Galois OBIM). */
class ObimWorklist : public Worklist
{
  public:
    /**
     * @param machine   The machine.
     * @param lgBucketInterval Bucket = priority >> this. 0 is
     *                  near-strict ordering; large values approach an
     *                  unordered worklist.
     * @param chunkSize Items per chunk (smaller than plain chunked
     *                  FIFO for priority responsiveness).
     * @param packages  Package count (the paper's 8x8 topology fix).
     */
    ObimWorklist(runtime::Machine *machine,
                 std::uint32_t lgBucketInterval,
                 std::uint32_t chunkSize = 16,
                 std::uint32_t packages = 8);

    runtime::CoTask<void> push(runtime::SimContext &ctx,
                               WorkItem item) override;
    runtime::CoTask<bool> pop(runtime::SimContext &ctx,
                              WorkItem &out) override;
    void pushInitial(WorkItem item) override;
    std::uint64_t size() const override;
    std::string name() const override
    {
        return "obim" + std::to_string(lg_);
    }

    std::uint32_t lgBucketInterval() const { return lg_; }

    /** Adds the live minimum-bucket hint as a counter track. */
    void registerTimeline(timeline::Timeline &tl) override;

    void checkpoint(ckpt::Ckpt &ck) override;

  private:
    static constexpr std::int64_t kNoBucket =
        std::numeric_limits<std::int64_t>::max();

    struct GlobalBucket
    {
        std::vector<std::deque<Chunk *>> perPkg;
        Addr descBase = 0; //!< one line per package head pointer.

        Addr headLine(std::uint32_t pkg) const
        {
            return descBase + Addr(pkg) * kLineBytes;
        }
    };

    struct PerWorker
    {
        std::int64_t curBucket = kNoBucket;
        std::map<std::int64_t, Chunk *> pushChunks;
        Chunk *popChunk = nullptr;
    };

    std::uint32_t pkgOf(CoreId core) const
    {
        return core / coresPerPkg_;
    }

    std::int64_t bucketOf(const WorkItem &item) const
    {
        return item.priority >> lg_;
    }

    /** Find or create the global structure for a bucket (timed). */
    GlobalBucket &ensureBucket(runtime::SimContext &ctx,
                               std::int64_t bucket, bool &created);

    /** Timed publish of a chunk into its bucket's package list. */
    runtime::CoTask<void> publishChunk(runtime::SimContext &ctx,
                                       std::int64_t bucket,
                                       std::uint32_t pkg, Chunk *c);

    /** Timed update of the shared minimum-bucket hint. */
    runtime::CoTask<void> raiseMinHint(runtime::SimContext &ctx,
                                       std::int64_t bucket);

    runtime::Machine *machine_;
    std::uint32_t lg_;
    ChunkPool pool_;
    std::uint32_t packages_;
    std::uint32_t coresPerPkg_;
    std::map<std::int64_t, GlobalBucket> buckets_;
    std::int64_t minHint_ = kNoBucket;
    Addr minLine_ = 0;
    Addr mapLock_ = 0;
    std::vector<PerWorker> workers_;
    std::uint32_t seedRotorForInitial_ = 0;
};

} // namespace minnow::worklist

#endif // MINNOW_WORKLIST_OBIM_HH
