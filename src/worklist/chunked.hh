/**
 * @file
 * Chunked FIFO/LIFO worklist, modelled on Galois dChunkedFIFO/LIFO.
 *
 * Topology-aware: chunks are published to per-package lists; workers
 * drain their own package first and steal from others in round-robin
 * order. This implements the paper's Section 6.2.1 scalability fix of
 * treating the 64-core machine as 8 packages x 8 cores.
 *
 * The LIFO policy with a shared list is what the paper uses to model
 * Carbon's scheduling behaviour in Fig. 3.
 */

#ifndef MINNOW_WORKLIST_CHUNKED_HH
#define MINNOW_WORKLIST_CHUNKED_HH

#include <deque>
#include <vector>

#include "runtime/machine.hh"
#include "worklist/chunk.hh"
#include "worklist/worklist.hh"

namespace minnow::worklist
{

/** Load-site tags used by worklist code (PC proxies). */
enum WorklistSite : std::uint16_t
{
    kSiteWlHead = 200,   //!< shared list-head lines.
    kSiteWlItem = 201,   //!< chunk item slots.
    kSiteWlChunkHdr = 202,
    kSiteWlBucketMap = 203,
};

/** Chunked worklist with FIFO or LIFO chunk ordering. */
class ChunkedWorklist : public Worklist
{
  public:
    enum class Policy
    {
        Fifo,
        Lifo,
    };

    /**
     * @param machine   The machine (for chunk addresses + monitor).
     * @param policy    Chunk scheduling order.
     * @param chunkSize Items per chunk (Galois default 32).
     * @param packages  Package count for the per-package lists.
     */
    ChunkedWorklist(runtime::Machine *machine, Policy policy,
                    std::uint32_t chunkSize = 32,
                    std::uint32_t packages = 8);

    runtime::CoTask<void> push(runtime::SimContext &ctx,
                               WorkItem item) override;
    runtime::CoTask<bool> pop(runtime::SimContext &ctx,
                              WorkItem &out) override;
    void pushInitial(WorkItem item) override;
    std::uint64_t size() const override;
    std::string name() const override
    {
        return policy_ == Policy::Fifo ? "cfifo" : "clifo";
    }

    void checkpoint(ckpt::Ckpt &ck) override;

  private:
    struct PerPackage
    {
        std::deque<Chunk *> list;
        Addr headLine = 0; //!< simulated address of the list head.
    };

    struct PerWorker
    {
        Chunk *pushChunk = nullptr;
        Chunk *popChunk = nullptr;
    };

    std::uint32_t pkgOf(CoreId core) const
    {
        return core / coresPerPkg_;
    }

    /** Timed publish of a full push chunk to a package list. */
    runtime::CoTask<void> publish(runtime::SimContext &ctx,
                                  std::uint32_t pkg, Chunk *chunk);

    /** Hand one item from the worker's pop chunk to @p out. */
    void deliver(runtime::SimContext &ctx, PerWorker &w,
                 WorkItem &out);

    runtime::Machine *machine_;
    Policy policy_;
    ChunkPool pool_;
    std::uint32_t packages_;
    std::uint32_t coresPerPkg_;
    std::vector<PerPackage> pkgs_;
    std::vector<PerWorker> workers_;
    std::uint32_t seedRotor_ = 0;
};

} // namespace minnow::worklist

#endif // MINNOW_WORKLIST_CHUNKED_HH
