/**
 * @file
 * Chunk storage shared by the chunked worklist implementations.
 *
 * Following Galois's dChunked* worklists, items move in fixed-size
 * chunks: workers fill a private push chunk and publish it whole;
 * consumers grab whole chunks and drain them privately. Only the
 * publish/acquire steps touch shared state, amortizing atomics over
 * chunkSize items.
 *
 * Each chunk has a simulated address so item reads/writes and chunk
 * headers generate real cache traffic. Chunks are recycled through a
 * free list to keep the simulated address space bounded.
 */

#ifndef MINNOW_WORKLIST_CHUNK_HH
#define MINNOW_WORKLIST_CHUNK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/ckpt.hh"
#include "base/logging.hh"
#include "base/sim_alloc.hh"
#include "worklist/worklist.hh"

namespace minnow::worklist
{

/** A fixed-capacity run of work items with a simulated address. */
struct Chunk
{
    Addr base = 0;                //!< simulated address of item 0.
    std::int64_t bucket = 0;      //!< OBIM bucket tag (0 otherwise).
    std::uint32_t head = 0;       //!< items consumed so far.
    std::vector<WorkItem> items;  //!< appended in push order.

    std::uint32_t remaining() const
    {
        return std::uint32_t(items.size()) - head;
    }

    bool empty() const { return head == items.size(); }

    /** Simulated address of the item at index @p i. */
    Addr itemAddr(std::uint32_t i) const
    {
        return base + Addr(i) * kItemBytes;
    }

    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(base);
        ck.io(bucket);
        ck.io(head);
        ck.io(items);
    }
};

/** Allocator/recycler for chunks of one fixed capacity. */
class ChunkPool
{
  public:
    ChunkPool(SimAlloc *alloc, std::uint32_t chunkSize)
        : alloc_(alloc), chunkSize_(chunkSize)
    {
    }

    std::uint32_t chunkSize() const { return chunkSize_; }

    /** Get an empty chunk (recycled or freshly addressed). */
    Chunk *
    acquire()
    {
        if (!freeList_.empty()) {
            Chunk *c = freeList_.back();
            freeList_.pop_back();
            c->head = 0;
            c->bucket = 0;
            c->items.clear();
            return c;
        }
        auto owned = std::make_unique<Chunk>();
        owned->base =
            alloc_->allocAnon(std::uint64_t(chunkSize_) * kItemBytes);
        owned->items.reserve(chunkSize_);
        Chunk *raw = owned.get();
        chunks_.push_back(std::move(owned));
        return raw;
    }

    /** Return a drained chunk for reuse. */
    void
    release(Chunk *c)
    {
        panic_if(!c->empty(), "releasing a chunk with live items");
        freeList_.push_back(c);
    }

    std::size_t liveChunks() const
    {
        return chunks_.size() - freeList_.size();
    }

    /**
     * Witness serialization: pool shape only. Chunk *contents* are
     * serialized by the worklist that owns the live chunks; the
     * pool's pointers are rebuilt by deterministic replay.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(chunkSize_);
        std::uint64_t total = chunks_.size();
        std::uint64_t freed = freeList_.size();
        ck.io(total);
        ck.io(freed);
        ck.transient("alloc_");
    }

  private:
    SimAlloc *alloc_;
    std::uint32_t chunkSize_;
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::vector<Chunk *> freeList_;
};

/** Serialize a maybe-null live chunk (witness helper). */
inline void
checkpointChunkPtr(ckpt::Ckpt &ck, Chunk *c)
{
    std::uint8_t present = c != nullptr;
    ck.io(present);
    if (c)
        c->checkpoint(ck);
}

} // namespace minnow::worklist

#endif // MINNOW_WORKLIST_CHUNK_HH
