/**
 * @file
 * Tiny command-line option parser shared by benches and examples.
 *
 * Syntax: --key=value or --flag (boolean true). Unknown keys are a
 * fatal error so typos in sweep scripts fail loudly. Positional
 * arguments are collected in order.
 */

#ifndef MINNOW_BASE_OPTIONS_HH
#define MINNOW_BASE_OPTIONS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace minnow
{

/** Parsed command line with typed accessors and usage tracking. */
class Options
{
  public:
    /** Parse argv; fatal() on malformed arguments. */
    Options(int argc, const char *const *argv);

    /** Construct from pre-split "key=value" strings (for tests). */
    explicit Options(const std::vector<std::string> &args);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /**
     * fatal() if any provided --key was never read by a getter; call
     * after all options are consumed to catch typos.
     */
    void rejectUnused() const;

  private:
    void addArg(const std::string &arg);

    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    mutable std::set<std::string> used_;
};

} // namespace minnow

#endif // MINNOW_BASE_OPTIONS_HH
