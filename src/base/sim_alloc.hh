/**
 * @file
 * Simulated address-space allocator.
 *
 * Functional data (graph arrays, worklist chunks, per-thread stacks)
 * lives in ordinary host containers, but every structure that the
 * timing model touches is also assigned a *simulated* address range so
 * that cache indexing, line sharing, and bank/channel interleaving are
 * deterministic and independent of the host heap layout.
 *
 * SimAlloc is a simple bump allocator over a fixed virtual region. It
 * never frees; the simulator's structures are allocated once per run.
 * Named regions are recorded so tools can print a memory map.
 */

#ifndef MINNOW_BASE_SIM_ALLOC_HH
#define MINNOW_BASE_SIM_ALLOC_HH

#include <string>
#include <vector>

#include "base/ckpt.hh"
#include "base/types.hh"

namespace minnow
{

/** One named simulated allocation, for memory-map dumps. */
struct SimRegion
{
    std::string name;
    Addr base;
    std::uint64_t bytes;
};

/** Bump allocator for simulated addresses (no host backing). */
class SimAlloc
{
  public:
    /** Simulated allocations start above the null page. */
    static constexpr Addr kBase = 0x10000;

    SimAlloc() : cursor_(kBase) {}

    /**
     * Reserve a named, line-aligned simulated range.
     *
     * @param name  Human-readable tag for the memory map.
     * @param bytes Size in bytes; rounded up to a whole line.
     * @return Base simulated address of the range.
     */
    Addr
    alloc(const std::string &name, std::uint64_t bytes)
    {
        Addr base = cursor_;
        std::uint64_t rounded = (bytes + kLineBytes - 1)
                              & ~std::uint64_t(kLineBytes - 1);
        if (rounded == 0)
            rounded = kLineBytes;
        cursor_ += rounded;
        regions_.push_back({name, base, rounded});
        return base;
    }

    /**
     * Reserve an unnamed range; cheaper bookkeeping for per-chunk
     * allocations that would flood the memory map.
     */
    Addr
    allocAnon(std::uint64_t bytes)
    {
        Addr base = cursor_;
        std::uint64_t rounded = (bytes + kLineBytes - 1)
                              & ~std::uint64_t(kLineBytes - 1);
        if (rounded == 0)
            rounded = kLineBytes;
        cursor_ += rounded;
        return base;
    }

    /** Total simulated bytes handed out so far. */
    std::uint64_t bytesAllocated() const { return cursor_ - kBase; }

    /** Named regions, in allocation order. */
    const std::vector<SimRegion> &regions() const { return regions_; }

    /** Serialize the cursor and the named memory map. */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(cursor_);
        std::uint64_t n = regions_.size();
        ck.io(n);
        if (ck.loading())
            regions_.resize(std::size_t(n));
        for (auto &r : regions_) {
            ck.io(r.name);
            ck.io(r.base);
            ck.io(r.bytes);
        }
    }

  private:
    Addr cursor_;
    std::vector<SimRegion> regions_;
};

} // namespace minnow

#endif // MINNOW_BASE_SIM_ALLOC_HH
