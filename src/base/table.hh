/**
 * @file
 * Fixed-width text table printer used by the bench harness to emit the
 * rows/series of each paper table and figure.
 */

#ifndef MINNOW_BASE_TABLE_HH
#define MINNOW_BASE_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace minnow
{

/** Accumulates rows of strings and prints them column-aligned. */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format an integer with thousands separators. */
    static std::string count(std::uint64_t v);

    /** Print to out with a rule under the header. */
    void print(std::FILE *out = stdout) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace minnow

#endif // MINNOW_BASE_TABLE_HH
