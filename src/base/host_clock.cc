#include "base/host_clock.hh"

#include <chrono>

namespace minnow
{

std::uint64_t
hostNowNs()
{
    // LINT allowlist: the single sanctioned wall-clock read (see
    // host_clock.hh). The allowlist entry in tools/lint names this
    // file and this symbol.
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace minnow
