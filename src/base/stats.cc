#include "base/stats.hh"

#include <cstdio>

namespace minnow
{

void
StatsReport::dump(std::FILE *out) const
{
    for (const auto &[key, value] : values_)
        std::fprintf(out, "%-48s %.6g\n", key.c_str(), value);
}

} // namespace minnow
