#include "base/stats.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"
#include "sim/event_queue.hh"
#include "sim/parallel/spsc_channel.hh"

namespace minnow
{

/**
 * Sharded-host sample fan-out (setSampleExecutor): one SPSC channel
 * per pool lane carrying that lane's slice of an interval sample
 * back to the leader. Capacity 1 — exactly one chunk is in flight
 * per lane per sampling epoch, and the leader drains every channel
 * before the next sample fires. The chunks re-use their storage
 * across epochs via the scratch vectors (moved out, filled, moved
 * in), so steady-state sampling does not allocate channel traffic.
 */
struct StatsRegistry::SampleFanout
{
    using Chunk = std::vector<std::pair<std::string, double>>;

    std::vector<std::unique_ptr<parallel::SpscChannel<Chunk>>> ch;
    std::vector<Chunk> scratch;

    explicit SampleFanout(std::uint32_t lanes) : scratch(lanes)
    {
        ch.reserve(lanes);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            ch.push_back(
                std::make_unique<parallel::SpscChannel<Chunk>>(1));
        }
    }
};

StatsRegistry::StatsRegistry() = default;
StatsRegistry::~StatsRegistry() = default;

void
StatsRegistry::setSampleExecutor(
    std::uint32_t lanes,
    std::function<void(const std::function<void(std::uint32_t)> &)>
        runOnAll)
{
    fatal_if(lanes == 0, "sample executor needs at least one lane");
    sampleLanes_ = lanes;
    sampleRunOnAll_ = std::move(runOnAll);
    fanout_ = lanes > 1 ? std::make_unique<SampleFanout>(lanes)
                        : nullptr;
}

void
StatsReport::dump(std::FILE *out) const
{
    for (const auto &[key, value] : values_)
        std::fprintf(out, "%-48s %.6g\n", key.c_str(), value);
}

double
FormulaStat::value() const
{
    double v = fn_ ? fn_() : 0.0;
    return std::isfinite(v) ? v : 0.0;
}

//
// StatsGroup
//

Stat &
StatsGroup::adopt(std::unique_ptr<Stat> s)
{
    fatal_if(index_.count(s->name()),
             "duplicate stat '%s' in group '%s'", s->name().c_str(),
             name_.c_str());
    Stat &ref = *s;
    index_[s->name()] = s.get();
    stats_.push_back(std::move(s));
    return ref;
}

ScalarStat &
StatsGroup::scalar(const std::string &name, const std::string &desc)
{
    return static_cast<ScalarStat &>(
        adopt(std::make_unique<ScalarStat>(name, desc)));
}

CounterStat &
StatsGroup::counter(const std::string &name, const std::string &desc)
{
    return static_cast<CounterStat &>(
        adopt(std::make_unique<CounterStat>(name, desc)));
}

FormulaStat &
StatsGroup::formula(const std::string &name, const std::string &desc,
                    FormulaStat::Fn fn)
{
    return static_cast<FormulaStat &>(adopt(
        std::make_unique<FormulaStat>(name, desc, std::move(fn))));
}

HistogramStat &
StatsGroup::histogram(const std::string &name, const std::string &desc,
                      std::uint64_t bucketWidth, std::uint32_t buckets)
{
    return static_cast<HistogramStat &>(
        adopt(std::make_unique<HistogramStat>(name, desc, bucketWidth,
                                              buckets)));
}

const Stat *
StatsGroup::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : it->second;
}

void
StatsGroup::checkpoint(ckpt::Ckpt &ck)
{
    // name_ and index_ are identity, recreated at registration time;
    // only values travel, guarded by per-stat names.
    ck.transient("name_ index_");
    std::uint64_t n = stats_.size();
    ck.io(n);
    if (ck.loading() && n != stats_.size()) {
        ck.fail("stats group '" + name_ + "' has " +
                std::to_string(stats_.size()) +
                " stats but the checkpoint holds " + std::to_string(n));
        return;
    }
    for (auto &s : stats_) {
        std::string statName = s->name();
        ck.io(statName);
        if (ck.loading() && statName != s->name()) {
            ck.fail("stats group '" + name_ + "': expected stat '" +
                    s->name() + "' but the checkpoint holds '" +
                    statName + "'");
            return;
        }
        s->checkpoint(ck);
        if (!ck.ok())
            return;
    }
}

//
// StatsRegistry
//

StatsGroup &
StatsRegistry::group(const std::string &name)
{
    auto it = groups_.find(name);
    if (it == groups_.end()) {
        it = groups_
                 .emplace(name, std::make_unique<StatsGroup>(name))
                 .first;
    }
    return *it->second;
}

StatsGroup &
StatsRegistry::freshGroup(const std::string &name)
{
    groups_.erase(name);
    return group(name);
}

const StatsGroup *
StatsRegistry::find(const std::string &name) const
{
    auto it = groups_.find(name);
    return it == groups_.end() ? nullptr : it->second.get();
}

void
StatsRegistry::removeGroup(const std::string &name)
{
    groups_.erase(name);
}

std::vector<const StatsGroup *>
StatsRegistry::groups() const
{
    std::vector<const StatsGroup *> out;
    out.reserve(groups_.size());
    for (const auto &[name, g] : groups_)
        out.push_back(g.get());
    return out;
}

void
StatsRegistry::flatten(StatsReport &out) const
{
    for (const auto &[gname, g] : groups_) {
        for (const auto &s : g->stats()) {
            std::string key = gname + "." + s->name();
            if (s->kind() == StatKind::Histogram) {
                const auto &h =
                    static_cast<const HistogramStat &>(*s);
                out.add(key + ".mean", h.mean());
                out.add(key + ".total", double(h.total()));
            } else {
                out.add(key, s->value());
            }
        }
    }
}

void
StatsRegistry::dumpText(std::FILE *out) const
{
    StatsReport flat;
    flatten(flat);
    flat.dump(out);
}

namespace
{

void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
jsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "0";
        return;
    }
    // Counters dominate; print integers without an exponent so JSON
    // consumers can diff them exactly.
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        out += buf;
    }
}

void
jsonKey(std::string &out, const std::string &key)
{
    out += '"';
    jsonEscape(out, key);
    out += "\":";
}

void
appendStatJson(std::string &out, const Stat &s)
{
    jsonKey(out, s.name());
    if (s.kind() == StatKind::Histogram) {
        const auto &h = static_cast<const HistogramStat &>(s);
        out += "{\"type\":\"histogram\",\"bucketWidth\":";
        jsonNumber(out, double(h.bucketWidth()));
        out += ",\"total\":";
        jsonNumber(out, double(h.total()));
        out += ",\"mean\":";
        jsonNumber(out, h.mean());
        out += ",\"counts\":[";
        for (std::uint32_t i = 0; i < h.numBuckets(); ++i) {
            if (i)
                out += ',';
            jsonNumber(out, double(h.bucketCount(i)));
        }
        out += "]}";
    } else {
        jsonNumber(out, s.value());
    }
}

} // anonymous namespace

std::string
StatsRegistry::toJson() const
{
    std::string out;
    out.reserve(4096);
    out += "{\"schema\":\"minnow-stats-1\",\"groups\":{";
    bool firstGroup = true;
    for (const auto &[gname, g] : groups_) {
        if (!firstGroup)
            out += ',';
        firstGroup = false;
        jsonKey(out, gname);
        out += '{';
        bool firstStat = true;
        for (const auto &s : g->stats()) {
            if (!firstStat)
                out += ',';
            firstStat = false;
            appendStatJson(out, *s);
        }
        out += '}';
    }
    out += '}';
    if (!samples_.empty()) {
        out += ",\"intervals\":[";
        bool firstSample = true;
        for (const IntervalSample &is : samples_) {
            if (!firstSample)
                out += ',';
            firstSample = false;
            out += "{\"cycle\":";
            jsonNumber(out, double(is.cycle));
            out += ",\"values\":{";
            bool firstVal = true;
            for (const auto &[key, v] : is.values) {
                if (!firstVal)
                    out += ',';
                firstVal = false;
                jsonKey(out, key);
                jsonNumber(out, v);
            }
            out += "}}";
        }
        out += ']';
    }
    out += '}';
    return out;
}

bool
StatsRegistry::writeJsonFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
              json.size();
    ok = std::fputc('\n', f) != EOF && ok;
    return std::fclose(f) == 0 && ok;
}

void
StatsRegistry::startSampling(EventQueue &eq, Cycle interval)
{
    fatal_if(interval == 0, "stats sampling interval must be > 0");
    if (sampler_)
        return; // already armed.
    sampler_ = std::make_unique<Sampler>();
    sampler_->registry = this;
    sampler_->eq = &eq;
    sampler_->interval = interval;
    eq.daemonScheduled();
    eq.schedule(eq.now() + interval, &StatsRegistry::sampleEvent,
                sampler_.get());
}

void
StatsRegistry::sampleEvent(void *arg)
{
    auto *s = static_cast<Sampler *>(arg);
    s->eq->daemonFired();
    s->registry->recordSample(s->eq->now());
    // Re-arm only while non-daemon work remains: against empty()
    // alone, this sampler and any other periodic daemon (timeline
    // sampler, watchdog) would keep each other alive forever.
    if (!s->eq->quiescent()) {
        s->eq->daemonScheduled();
        s->eq->schedule(s->eq->now() + s->interval,
                        &StatsRegistry::sampleEvent, s);
    }
}

void
StatsRegistry::checkpoint(ckpt::Ckpt &ck)
{
    // The sampler is an event-queue daemon and is re-armed by the
    // restored run itself; the sample-fanout executor is host-side
    // machinery rebound by the restoring Machine's ctor.
    ck.transient("sampler_ sampleLanes_ sampleRunOnAll_ fanout_");
    std::uint64_t n = 0;
    for (const auto &[gname, g] : groups_) {
        (void)g;
        if (gname != "hostprof")
            ++n;
    }
    std::uint64_t local = n;
    ck.io(n);
    if (ck.loading() && n != local) {
        ck.fail("checkpoint holds " + std::to_string(n) +
                " stats groups but the registry has " +
                std::to_string(local));
        return;
    }
    for (auto &[gname, g] : groups_) {
        if (gname == "hostprof")
            continue;
        std::string name = gname;
        ck.io(name);
        if (ck.loading() && name != gname) {
            ck.fail("expected stats group '" + gname +
                    "' but the checkpoint holds '" + name + "'");
            return;
        }
        g->checkpoint(ck);
        if (!ck.ok())
            return;
    }
    std::uint64_t ns = samples_.size();
    ck.io(ns);
    if (ck.loading())
        samples_.resize(std::size_t(ns));
    for (IntervalSample &is : samples_) {
        ck.io(is.cycle);
        std::uint64_t nv = is.values.size();
        ck.io(nv);
        if (ck.saving()) {
            for (auto &[key, v] : is.values) {
                std::string k = key;
                ck.io(k);
                ck.io(v);
            }
        } else {
            is.values.clear();
            for (std::uint64_t i = 0; i < nv && ck.ok(); ++i) {
                std::string k;
                double v = 0;
                ck.io(k);
                ck.io(v);
                is.values.emplace(std::move(k), v);
            }
        }
        if (!ck.ok())
            return;
    }
}

void
StatsRegistry::recordSample(Cycle now)
{
    IntervalSample is;
    is.cycle = now;
    if (fanout_ && sampleRunOnAll_) {
        // Sharded-host path: lane L evaluates groups L, L+lanes,
        // L+2*lanes, ... (a deterministic partition of the name-
        // ordered group map) into its own channel; the leader then
        // drains the channels in lane order. The merge target is a
        // sorted map, so chunk arrival order cannot change the
        // sample — byte-identical to the serial loop below by
        // construction, which scripts/check_shard_ab.py enforces.
        std::vector<std::pair<const std::string *,
                              const StatsGroup *>>
            gs;
        gs.reserve(groups_.size());
        for (const auto &[gname, g] : groups_)
            gs.emplace_back(&gname, g.get());
        const std::uint32_t lanes = sampleLanes_;
        SampleFanout &fo = *fanout_;
        sampleRunOnAll_([&](std::uint32_t lane) {
            SampleFanout::Chunk chunk =
                std::move(fo.scratch[lane]);
            chunk.clear();
            for (std::size_t i = lane; i < gs.size(); i += lanes) {
                for (const auto &s : gs[i].second->stats()) {
                    if (s->kind() == StatKind::Histogram)
                        continue;
                    chunk.emplace_back(
                        *gs[i].first + "." + s->name(),
                        s->value());
                }
            }
            panic_if(!fo.ch[lane]->push(std::move(chunk)),
                     "stats sample channel %u overflowed", lane);
        });
        for (std::uint32_t lane = 0; lane < lanes; ++lane) {
            parallel::Stamped<SampleFanout::Chunk> msg;
            panic_if(!fo.ch[lane]->pop(msg),
                     "stats sample channel %u lost its chunk",
                     lane);
            for (auto &[key, v] : msg.value)
                is.values.emplace(std::move(key), v);
            fo.scratch[lane] = std::move(msg.value);
        }
    } else {
        for (const auto &[gname, g] : groups_) {
            for (const auto &s : g->stats()) {
                if (s->kind() == StatKind::Histogram)
                    continue;
                is.values[gname + "." + s->name()] = s->value();
            }
        }
    }
    samples_.push_back(std::move(is));
}

} // namespace minnow
