/**
 * @file
 * Small bit-manipulation helpers used by caches and allocators.
 */

#ifndef MINNOW_BASE_BITS_HH
#define MINNOW_BASE_BITS_HH

#include <bit>
#include <cstdint>

namespace minnow
{

/** True if x is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); x must be nonzero. */
constexpr std::uint32_t
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/** Ceiling of log2(x); x must be nonzero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** Round v up to the next multiple of align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round v down to a multiple of align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/**
 * Mix the bits of a 64-bit value (finalizer from MurmurHash3).
 * Used to spread addresses across L3 banks and DRAM channels.
 */
constexpr std::uint64_t
hashMix(std::uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

} // namespace minnow

#endif // MINNOW_BASE_BITS_HH
