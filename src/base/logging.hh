/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad flags, bad
 *            input file); exits with status 1.
 * warn()   - something is modelled approximately; simulation continues.
 * inform() - plain status output.
 */

#ifndef MINNOW_BASE_LOGGING_HH
#define MINNOW_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace minnow
{

/** Severity levels understood by logMessage(). */
enum class LogLevel
{
    Info,
    Warn,
    Fatal,
    Panic,
};

/**
 * Format and emit one log record to stderr (or stdout for Info).
 *
 * @param level Severity; Fatal exits, Panic aborts.
 * @param file  Source file of the call site.
 * @param line  Source line of the call site.
 * @param fmt   printf-style format string.
 */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

/** True once warn() has fired at least once (used by tests). */
bool warningsSeen();

/** Reset the warning-seen flag (used by tests). */
void clearWarnings();

/**
 * Post-mortem hook run by panic() just before abort(), after all
 * streams are flushed. The Machine registers one that writes a
 * best-effort stats JSON snapshot so invariant failures leave
 * inspectable state behind. Hooks must be async-signal-tolerant in
 * spirit: best effort, no throwing, no further panics (a panic from
 * inside a hook aborts immediately instead of recursing).
 *
 * @return Registration id for removePanicHook().
 */
using PanicHook = void (*)(void *);
int addPanicHook(PanicHook hook, void *arg);

/** Deregister a hook by the id addPanicHook() returned. */
void removePanicHook(int id);

/**
 * Run the registered post-mortem hooks and flush every stream
 * without aborting: the graceful SIGINT/SIGTERM exit path reuses
 * the panic registry so an interrupted bench leaves the same
 * diagnostic/stats files as a crashed one. Idempotent per process
 * (hooks run at most once; a later panic() will not rerun them).
 */
void flushPanicHooks();

} // namespace minnow

#define panic(...) \
    ::minnow::logMessage(::minnow::LogLevel::Panic, __FILE__, __LINE__, \
                         __VA_ARGS__)

#define fatal(...) \
    ::minnow::logMessage(::minnow::LogLevel::Fatal, __FILE__, __LINE__, \
                         __VA_ARGS__)

#define warn(...) \
    ::minnow::logMessage(::minnow::LogLevel::Warn, __FILE__, __LINE__, \
                         __VA_ARGS__)

#define inform(...) \
    ::minnow::logMessage(::minnow::LogLevel::Info, __FILE__, __LINE__, \
                         __VA_ARGS__)

/** panic() unless the given condition holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** fatal() unless the given condition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

#endif // MINNOW_BASE_LOGGING_HH
