/**
 * @file
 * The one sanctioned host-time source in the simulator.
 *
 * Simulated time comes from the EventQueue; host wall-clock time is
 * nondeterministic by nature and is banned from simulator code by
 * the `determinism` lint rule (tools/lint). The --host-profile
 * self-profiler measures how fast the *simulator* runs on the host,
 * so it legitimately needs a wall clock — and only it. Every such
 * read goes through hostNowNs() so the lint allowlist covers exactly
 * one symbol in one file (host_clock.cc), not a per-call-site
 * scatter of exemptions.
 *
 * Host time must never influence simulated behavior: no event
 * scheduling, no scheduler decisions, no seeds. Readers of this
 * clock may only feed host-side observability (hostprof stats).
 */

#ifndef MINNOW_BASE_HOST_CLOCK_HH
#define MINNOW_BASE_HOST_CLOCK_HH

#include <cstdint>

namespace minnow
{

/** Monotonic host time in nanoseconds (epoch unspecified). */
std::uint64_t hostNowNs();

} // namespace minnow

#endif // MINNOW_BASE_HOST_CLOCK_HH
