/**
 * @file
 * gem5-style debug tracing.
 *
 * Components emit trace records through DPRINTF(Flag, fmt, ...);
 * records are dropped unless the flag was enabled (via
 * Trace::enable("Flag") or the --debug-flags=A,B CLI option every
 * bench forwards). Each record is prefixed with the current
 * simulated cycle, so interleaved component logs line up.
 *
 * Tracing is global state by design (like gem5): one simulation per
 * process, and threading the tracer through every constructor would
 * bloat every interface for a facility that is off in production.
 */

#ifndef MINNOW_BASE_TRACE_HH
#define MINNOW_BASE_TRACE_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace minnow::trace
{

/** Debug flags, one bit each. */
enum class Flag : std::uint32_t
{
    Exec = 0,     //!< core micro-op streams.
    Cache = 1,    //!< hits/misses/evictions.
    Coherence = 2, //!< invalidations, interventions.
    Worklist = 3, //!< software worklist operations.
    Engine = 4,   //!< Minnow engine front-end protocol.
    Threadlet = 5, //!< threadlet spawn/retire, loads.
    Credit = 6,   //!< prefetch credit flow.
    Monitor = 7,  //!< work accounting + termination.
    Bsp = 8,      //!< superstep barriers.
};

/** Enable one flag by name ("Cache", "Engine", ...); fatal on typo. */
void enable(const std::string &name);

/** Enable a comma-separated list ("Cache,Engine"). */
void enableList(const std::string &csv);

/** Disable everything (tests). */
void clearAll();

/** Is the flag on? Inline fast path for the disabled case. */
bool enabled(Flag f);

/** Set the clock used to stamp records (the machine's event queue
 *  time, registered by Machine's constructor). */
void setCycleSource(const Cycle *now);

/**
 * Route trace records to @p path instead of stderr (--debug-file).
 * An empty path restores stderr; fatal() if the file cannot be
 * opened. The previous file, if any, is closed.
 */
void setOutputFile(const std::string &path);

/** Emit one record (already filtered by the DPRINTF macro). */
[[gnu::format(printf, 3, 4)]]
void print(Flag f, const char *component, const char *fmt, ...);

} // namespace minnow::trace

/** Trace macro: no evaluation of arguments when the flag is off. */
#define DPRINTF(flag, component, ...) \
    do { \
        if (::minnow::trace::enabled( \
                ::minnow::trace::Flag::flag)) { \
            ::minnow::trace::print(::minnow::trace::Flag::flag, \
                                   component, __VA_ARGS__); \
        } \
    } while (0)

#endif // MINNOW_BASE_TRACE_HH
