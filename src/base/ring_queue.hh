/**
 * @file
 * Growable ring-buffer FIFO that recycles its storage.
 *
 * std::deque allocates and frees fixed-size blocks as elements flow
 * through it, so a queue that oscillates around a small size (the
 * engine waiter queues, which fill and drain every few cycles) pays
 * an allocator round-trip in steady state. RingQueue keeps one
 * power-of-two contiguous buffer that only ever grows, giving
 * allocation-free push/pop once the high-water mark is reached.
 *
 * Interface is the std::deque subset the engine hot path uses:
 * push_back / front / back / pop_front / pop_back / size / empty /
 * clear, plus reserve() to pre-size the buffer. Elements must be
 * trivially relocatable in practice (they are moved on growth);
 * everything queued here is a handle, pointer, or small POD pair.
 */

#ifndef MINNOW_BASE_RING_QUEUE_HH
#define MINNOW_BASE_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace minnow
{

template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Grow the buffer to hold at least @p n elements. */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            grow(n);
    }

    void
    push_back(const T &v)
    {
        if (count_ == buf_.size())
            grow(count_ + 1);
        buf_[(head_ + count_) & (buf_.size() - 1)] = v;
        ++count_;
    }

    void
    push_back(T &&v)
    {
        if (count_ == buf_.size())
            grow(count_ + 1);
        buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
        ++count_;
    }

    T &
    front()
    {
        panic_if(count_ == 0, "front() on empty RingQueue");
        return buf_[head_];
    }

    const T &
    front() const
    {
        panic_if(count_ == 0, "front() on empty RingQueue");
        return buf_[head_];
    }

    T &
    back()
    {
        panic_if(count_ == 0, "back() on empty RingQueue");
        return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
    }

    /** Element @p i positions behind the front (0 = front). */
    const T &
    at(std::size_t i) const
    {
        panic_if(i >= count_, "RingQueue::at out of range");
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    pop_front()
    {
        panic_if(count_ == 0, "pop_front() on empty RingQueue");
        buf_[head_] = T{}; // drop references held by the slot
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    void
    pop_back()
    {
        panic_if(count_ == 0, "pop_back() on empty RingQueue");
        buf_[(head_ + count_ - 1) & (buf_.size() - 1)] = T{};
        --count_;
    }

    /** Empty the queue; buffer capacity is retained. */
    void
    clear()
    {
        while (count_ != 0)
            pop_front();
        head_ = 0;
    }

  private:
    void
    grow(std::size_t need)
    {
        std::size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < need)
            cap *= 2;
        std::vector<T> nbuf(cap);
        for (std::size_t i = 0; i < count_; ++i)
            nbuf[i] =
                std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(nbuf);
        head_ = 0;
    }

    std::vector<T> buf_; //!< power-of-two capacity (or empty)
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace minnow

#endif // MINNOW_BASE_RING_QUEUE_HH
