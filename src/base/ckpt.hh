/**
 * @file
 * Direction-tagged serialization visitor for checkpoint/restore.
 *
 * Components expose one `checkpoint(ckpt::Ckpt &ck)` method that
 * both saves and loads: `ck.io(member_)` appends the member's bytes
 * in save mode and reads them back in load mode, so the two
 * directions cannot drift apart. Members that are deliberately NOT
 * serialized (host pointers, caches of derived state, coroutine
 * frames) must be declared with `ck.transient("a_ b_ c_")` — a
 * runtime no-op that exists so the minnow-lint S1 rule
 * (serializer-coverage) can prove every data member of a
 * checkpointed class is either serialized or intentionally skipped.
 *
 * The visitor itself knows nothing about files or sections; the
 * container format (magic, section table, CRCs) lives in
 * sim/checkpoint.hh. This split keeps base/ components (Rng,
 * SimAlloc, StatsRegistry) free of sim/ includes.
 *
 * Load-mode errors (underrun, oversized length prefix) never throw
 * or crash: the first error latches into error() and every
 * subsequent read yields zeroes, so callers check ok() once at the
 * end.
 */

#ifndef MINNOW_BASE_CKPT_HH
#define MINNOW_BASE_CKPT_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

namespace minnow::ckpt
{

/** Serialization visitor; make with Ckpt::saver / Ckpt::loader. */
class Ckpt
{
  public:
    /** Save mode: io() appends to @p out. */
    static Ckpt
    saver(std::vector<std::uint8_t> *out)
    {
        Ckpt ck;
        ck.out_ = out;
        return ck;
    }

    /** Load mode: io() consumes from @p data / @p len. */
    static Ckpt
    loader(const std::uint8_t *data, std::size_t len)
    {
        Ckpt ck;
        ck.in_ = data;
        ck.len_ = len;
        return ck;
    }

    bool saving() const { return out_ != nullptr; }
    bool loading() const { return out_ == nullptr; }

    bool ok() const { return err_.empty(); }
    const std::string &error() const { return err_; }

    /** Latch the first error; later io() calls become no-ops. */
    void
    fail(const std::string &why)
    {
        if (err_.empty())
            err_ = why;
    }

    /** Raw bytes, both directions. Zero-fills @p p on load error. */
    void
    bytes(void *p, std::size_t n)
    {
        if (saving()) {
            const auto *b = static_cast<const std::uint8_t *>(p);
            out_->insert(out_->end(), b, b + n);
            return;
        }
        if (!ok() || pos_ + n > len_) {
            fail("checkpoint payload underrun (need " +
                 std::to_string(n) + " bytes at offset " +
                 std::to_string(pos_) + " of " +
                 std::to_string(len_) + ")");
            std::memset(p, 0, n);
            return;
        }
        std::memcpy(p, in_ + pos_, n);
        pos_ += n;
    }

    /**
     * Padding guard: a type whose object representation includes
     * padding bits would serialize uninitialized bytes and break
     * byte-identical witness comparison across processes. Floating
     * point types are pad-free but report non-unique
     * representations (NaN payloads), so they are admitted
     * explicitly. Types that fail this must serialize per member
     * (or via their own checkpoint() method).
     */
    template <typename T>
    static constexpr bool kPadFree =
        std::has_unique_object_representations_v<T> ||
        std::is_floating_point_v<T>;

    /** Per-element visitor detection (see the vector overload). */
    template <typename T>
    static constexpr bool kHasCheckpoint =
        requires(T &t, Ckpt &ck) { t.checkpoint(ck); };

    /** Scalars, enums and pad-free trivially-copyable PODs. */
    template <typename T>
        requires(std::is_trivially_copyable_v<T> &&
                 !kHasCheckpoint<T>)
    void
    io(T &v)
    {
        static_assert(kPadFree<T>,
                      "type has padding bytes; serialize it per"
                      " member");
        bytes(&v, sizeof v);
    }

    /** Structs with their own checkpoint() visitor nest directly. */
    template <typename T>
        requires kHasCheckpoint<T>
    void
    io(T &v)
    {
        v.checkpoint(*this);
    }

    void
    io(std::string &s)
    {
        std::uint64_t n = s.size();
        io(n);
        if (saving()) {
            bytes(s.data(), s.size());
            return;
        }
        if (!ok() || n > len_ - pos_) {
            fail("checkpoint string length " + std::to_string(n) +
                 " overruns payload");
            s.clear();
            return;
        }
        s.assign(reinterpret_cast<const char *>(in_ + pos_),
                 std::size_t(n));
        pos_ += std::size_t(n);
    }

    /** Contiguous trivially-copyable vectors go as one byte blob. */
    template <typename T>
        requires(std::is_trivially_copyable_v<T> &&
                 !kHasCheckpoint<T>)
    void
    io(std::vector<T> &v)
    {
        static_assert(kPadFree<T>,
                      "element type has padding bytes; give it a"
                      " checkpoint() method");
        std::uint64_t n = v.size();
        io(n);
        if (loading()) {
            // Division form: `pos_ + n * sizeof(T)` wraps for a
            // corrupt length prefix and would defeat the check.
            if (!ok() || n > (len_ - pos_) / sizeof(T)) {
                fail("checkpoint vector length " +
                     std::to_string(n) + " overruns payload");
                v.clear();
                return;
            }
            v.resize(std::size_t(n));
        }
        if (n)
            bytes(v.data(), std::size_t(n) * sizeof(T));
    }

    /**
     * Vectors of element types with their own checkpoint() visitor
     * (used for structs whose layout includes padding: the visitor
     * writes each member, so no uninitialized bytes leak into the
     * stream).
     */
    template <typename T>
        requires kHasCheckpoint<T>
    void
    io(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading()) {
            if (!ok() || n > len_ - pos_) {
                fail("checkpoint vector length " +
                     std::to_string(n) + " overruns payload");
                v.clear();
                return;
            }
            v.resize(std::size_t(n));
        }
        for (T &e : v)
            e.checkpoint(*this);
    }

    template <typename T>
        requires(std::is_trivially_copyable_v<T> &&
                 !kHasCheckpoint<T>)
    void
    io(std::deque<T> &d)
    {
        static_assert(kPadFree<T>,
                      "element type has padding bytes; give it a"
                      " checkpoint() method");
        std::uint64_t n = d.size();
        io(n);
        if (loading()) {
            if (!ok() || n > (len_ - pos_) / sizeof(T)) {
                fail("checkpoint deque length " + std::to_string(n) +
                     " overruns payload");
                d.clear();
                return;
            }
            d.resize(std::size_t(n));
        }
        for (auto &e : d)
            io(e);
    }

    /**
     * Declare members intentionally not serialized. Accepts several
     * space-separated member names per call; the S1 lint rule
     * treats each word as covered. Runtime no-op.
     */
    void transient(const char *) {}

  private:
    Ckpt() = default;

    std::vector<std::uint8_t> *out_ = nullptr;
    const std::uint8_t *in_ = nullptr;
    std::size_t len_ = 0;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace minnow::ckpt

#endif // MINNOW_BASE_CKPT_HH
