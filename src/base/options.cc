#include "base/options.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace minnow
{

Options::Options(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i)
        addArg(argv[i]);
}

Options::Options(const std::vector<std::string> &args)
{
    for (const auto &arg : args)
        addArg(arg);
}

void
Options::addArg(const std::string &arg)
{
    if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        return;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq == std::string::npos) {
        values_[body] = "true";
    } else {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
}

bool
Options::has(const std::string &key) const
{
    if (values_.count(key)) {
        used_.insert(key);
        return true;
    }
    return false;
}

std::string
Options::getString(const std::string &key, const std::string &dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    used_.insert(key);
    return it->second;
}

std::int64_t
Options::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    used_.insert(key);
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "option --%s=%s is not an integer", key.c_str(),
             it->second.c_str());
    return v;
}

std::uint64_t
Options::getUint(const std::string &key, std::uint64_t dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    used_.insert(key);
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "option --%s=%s is not an unsigned integer", key.c_str(),
             it->second.c_str());
    return v;
}

double
Options::getDouble(const std::string &key, double dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    used_.insert(key);
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "option --%s=%s is not a number", key.c_str(),
             it->second.c_str());
    return v;
}

bool
Options::getBool(const std::string &key, bool dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    used_.insert(key);
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("option --%s=%s is not a boolean", key.c_str(), v.c_str());
    return dflt;
}

void
Options::rejectUnused() const
{
    for (const auto &[key, value] : values_) {
        fatal_if(!used_.count(key), "unknown option --%s=%s",
                 key.c_str(), value.c_str());
    }
}

} // namespace minnow
