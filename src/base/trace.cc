#include "base/trace.hh"

#include <cstdarg>
#include <cstdio>
#include <map>

#include "base/logging.hh"

namespace minnow::trace
{

namespace
{

std::uint32_t flags = 0;
/**
 * Thread-local so --host-par point farms work: each farm thread
 * runs its own Machine, whose ctor binds the timestamp source to
 * its own event queue's clock without racing the other points.
 */
thread_local const Cycle *cycleSource = nullptr;
std::FILE *out = nullptr; //!< nullptr = stderr.

const std::map<std::string, Flag> &
flagNames()
{
    static const std::map<std::string, Flag> names = {
        {"Exec", Flag::Exec},         {"Cache", Flag::Cache},
        {"Coherence", Flag::Coherence}, {"Worklist", Flag::Worklist},
        {"Engine", Flag::Engine},     {"Threadlet", Flag::Threadlet},
        {"Credit", Flag::Credit},     {"Monitor", Flag::Monitor},
        {"Bsp", Flag::Bsp},
    };
    return names;
}

} // anonymous namespace

void
enable(const std::string &name)
{
    auto it = flagNames().find(name);
    if (it == flagNames().end()) {
        std::string known;
        for (const auto &[n, f] : flagNames())
            known += n + " ";
        fatal("unknown debug flag '%s' (known: %s)", name.c_str(),
              known.c_str());
    }
    flags |= 1u << std::uint32_t(it->second);
}

void
enableList(const std::string &csv)
{
    std::size_t pos = 0;
    while (pos < csv.size()) {
        std::size_t comma = csv.find(',', pos);
        std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        // Accept "Exec, Cache": whitespace around a token is not
        // part of the flag name.
        std::size_t b = pos, e = end;
        while (b < e && (csv[b] == ' ' || csv[b] == '\t'))
            ++b;
        while (e > b && (csv[e - 1] == ' ' || csv[e - 1] == '\t'))
            --e;
        if (e > b)
            enable(csv.substr(b, e - b));
        pos = end + 1;
    }
}

void
clearAll()
{
    flags = 0;
}

bool
enabled(Flag f)
{
    return flags & (1u << std::uint32_t(f));
}

void
setCycleSource(const Cycle *now)
{
    cycleSource = now;
}

void
setOutputFile(const std::string &path)
{
    if (out) {
        std::fclose(out);
        out = nullptr;
    }
    if (path.empty())
        return;
    out = std::fopen(path.c_str(), "w");
    fatal_if(!out, "cannot open --debug-file %s", path.c_str());
}

void
print(Flag f, const char *component, const char *fmt, ...)
{
    (void)f;
    std::FILE *dst = out ? out : stderr;
    Cycle now = cycleSource ? *cycleSource : 0;
    std::fprintf(dst, "%10llu: %-10s ",
                 (unsigned long long)now, component);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(dst, fmt, args);
    va_end(args);
    std::fputc('\n', dst);
}

} // namespace minnow::trace
