/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef MINNOW_BASE_TYPES_HH
#define MINNOW_BASE_TYPES_HH

#include <cstdint>

namespace minnow
{

/** A simulated physical/virtual address (the model does not page). */
using Addr = std::uint64_t;

/** A point in simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A hardware context (core / worker thread) identifier. */
using CoreId = std::uint32_t;

/** Graph node identifier. */
using NodeId = std::uint32_t;

/** Graph edge index into the CSR edge array. */
using EdgeId = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr kNullAddr = 0;

/** Sentinel for "invalid node". */
constexpr NodeId kInvalidNode = ~NodeId(0);

/** Cache line size, fixed at 64 bytes throughout (paper Table 3). */
constexpr std::uint32_t kLineBytes = 64;

/** log2 of the cache line size. */
constexpr std::uint32_t kLineShift = 6;

/** Round an address down to its cache line base. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~Addr(kLineBytes - 1);
}

/** Line number (address >> 6) for map keys. */
constexpr Addr
lineNum(Addr a)
{
    return a >> kLineShift;
}

} // namespace minnow

#endif // MINNOW_BASE_TYPES_HH
