#include "base/table.hh"

#include <algorithm>
#include <cstdio>

namespace minnow
{

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::count(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int digits = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (digits && digits % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++digits;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

void
TextTable::print(std::FILE *out) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::fprintf(out, "%-*s", int(widths[i]) + 2,
                         cells[i].c_str());
        }
        std::fprintf(out, "\n");
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        std::string rule(total, '-');
        std::fprintf(out, "%s\n", rule.c_str());
    }
    for (const auto &r : rows_)
        emit(r);
    std::fflush(out);
}

} // namespace minnow
