/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-reproducible run to run, so every stochastic
 * decision (branch mispredict draws, graph generation, workload seeds)
 * flows through an explicitly seeded Rng instance. The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period,
 * and passes BigCrush.
 */

#ifndef MINNOW_BASE_RNG_HH
#define MINNOW_BASE_RNG_HH

#include <cstdint>

#include "base/ckpt.hh"

namespace minnow
{

/** Deterministic xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // here: modulo bias at 64 bits is negligible for our bounds.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** Serialize the full generator state. */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(state_);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace minnow

#endif // MINNOW_BASE_RNG_HH
