#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace minnow
{

namespace
{

bool warnSeen = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // anonymous namespace

void
logMessage(LogLevel level, const char *file, int line,
           const char *fmt, ...)
{
    std::FILE *out = (level == LogLevel::Info) ? stdout : stderr;
    if (level != LogLevel::Info)
        std::fprintf(out, "%s: %s:%d: ", levelName(level), file, line);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
    std::fprintf(out, "\n");
    std::fflush(out);

    switch (level) {
      case LogLevel::Warn:
        warnSeen = true;
        break;
      case LogLevel::Fatal:
        std::exit(1);
      case LogLevel::Panic:
        std::abort();
      default:
        break;
    }
}

bool
warningsSeen()
{
    return warnSeen;
}

void
clearWarnings()
{
    warnSeen = false;
}

} // namespace minnow
