#include "base/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace minnow
{

namespace
{

bool warnSeen = false;

struct PanicHookEntry
{
    int id;
    PanicHook fn;
    void *arg;
};

std::vector<PanicHookEntry> &
panicHooks()
{
    static std::vector<PanicHookEntry> hooks;
    return hooks;
}

int nextPanicHookId = 1;
bool inPanicHooks = false;

/**
 * Registry guard: --host-par point farms construct and destroy
 * Machines on several host threads, each registering its panic
 * hook. The critical sections are a few vector operations, so a
 * spinlock suffices; std::mutex is reserved for sim/parallel by
 * minnow-lint rule P1, and a panic inside a hook must not try to
 * re-acquire a poisoned lock anyway (runPanicHooks snapshots the
 * registry and runs hooks outside the lock).
 */
// base/ cannot depend on sim/parallel, and panic paths need an
// async-signal-tolerant guard; this spinlock is the sanctioned
// alternative to std::mutex here (DESIGN.md 5j).
// LINT-OK(host-threading): base-layer spinlock, no sim/parallel dep
std::atomic_flag hooksLock = ATOMIC_FLAG_INIT;

struct HooksGuard
{
    HooksGuard()
    {
        while (hooksLock.test_and_set(std::memory_order_acquire)) {
        }
    }
    ~HooksGuard() { hooksLock.clear(std::memory_order_release); }
};

/**
 * Flush everything and run the post-mortem hooks (most recently
 * registered first, matching teardown order). Reentrant panics skip
 * straight to the flush so a buggy hook cannot recurse.
 */
void
runPanicHooks()
{
    if (!inPanicHooks) {
        inPanicHooks = true;
        std::vector<PanicHookEntry> snapshot;
        {
            HooksGuard g;
            snapshot = panicHooks();
        }
        for (auto it = snapshot.rbegin(); it != snapshot.rend();
             ++it)
            it->fn(it->arg);
    }
    // Flush every open stream (trace output included) so the log up
    // to the failure survives the abort.
    std::fflush(nullptr);
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // anonymous namespace

void
logMessage(LogLevel level, const char *file, int line,
           const char *fmt, ...)
{
    std::FILE *out = (level == LogLevel::Info) ? stdout : stderr;
    if (level != LogLevel::Info)
        std::fprintf(out, "%s: %s:%d: ", levelName(level), file, line);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
    std::fprintf(out, "\n");
    std::fflush(out);

    switch (level) {
      case LogLevel::Warn:
        warnSeen = true;
        break;
      case LogLevel::Fatal:
        std::exit(1);
      case LogLevel::Panic:
        runPanicHooks();
        std::abort();
      default:
        break;
    }
}

bool
warningsSeen()
{
    return warnSeen;
}

void
clearWarnings()
{
    warnSeen = false;
}

int
addPanicHook(PanicHook hook, void *arg)
{
    HooksGuard g;
    int id = nextPanicHookId++;
    panicHooks().push_back(PanicHookEntry{id, hook, arg});
    return id;
}

void
flushPanicHooks()
{
    runPanicHooks();
}

void
removePanicHook(int id)
{
    HooksGuard g;
    auto &hooks = panicHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->id == id) {
            hooks.erase(it);
            return;
        }
    }
}

} // namespace minnow
