/**
 * @file
 * Statistics package: raw aggregate types plus the hierarchical
 * registry used for machine-readable dumps.
 *
 * Two layers coexist:
 *
 *  - Raw aggregates (StatAverage, StatHistogram) and the flat
 *    StatsReport, kept for hot-path counting and legacy text dumps.
 *  - The StatsRegistry: named groups ("sim", "core3", "l2_3",
 *    "minnow0", "worklist") of typed stats — scalars, counters,
 *    formulas evaluated lazily at dump time (MPKI, prefetch
 *    accuracy), and fixed-bucket histograms — with JSON export and an
 *    optional per-interval sampling hook driven off the EventQueue.
 *
 * Components register their stats into a group once at construction;
 * formulas capture references to the component's own counters, so
 * nothing is paid on the hot path beyond the existing struct
 * increments. Dumping walks the registry, evaluates formulas, and
 * emits either "group.stat value" text lines or a JSON document (see
 * DESIGN.md "Statistics & observability" for the schema).
 */

#ifndef MINNOW_BASE_STATS_HH
#define MINNOW_BASE_STATS_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/ckpt.hh"
#include "base/types.hh"

namespace minnow
{

class EventQueue;

/** Running mean/min/max over a stream of samples. */
class StatAverage
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Power-of-two bucketed histogram for latency/size distributions. */
class StatHistogram
{
  public:
    static constexpr int kBuckets = 32;

    void
    sample(std::uint64_t v)
    {
        int b = 0;
        while (b < kBuckets - 1 && (std::uint64_t(1) << b) <= v)
            ++b;
        buckets_[b] += 1;
        total_ += 1;
        sum_ += v;
    }

    std::uint64_t bucket(int i) const { return buckets_[i]; }
    std::uint64_t total() const { return total_; }
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }

    /** Smallest v such that at least frac of samples are <= v. */
    std::uint64_t
    percentile(double frac) const
    {
        std::uint64_t want =
            static_cast<std::uint64_t>(frac * double(total_));
        std::uint64_t seen = 0;
        for (int b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= want)
                return b == 0 ? 0 : (std::uint64_t(1) << b) - 1;
        }
        return ~std::uint64_t(0);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Flat name -> value map that components contribute into when asked to
 * report. Keys use dotted paths, e.g. "core03.l2.missRate".
 */
class StatsReport
{
  public:
    void
    add(const std::string &key, double value)
    {
        values_[key] = value;
    }

    double
    get(const std::string &key, double dflt = 0.0) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? dflt : it->second;
    }

    bool has(const std::string &key) const { return values_.count(key); }

    const std::map<std::string, double> &values() const { return values_; }

    /** Write "key value" lines to the given stream-like file. */
    void dump(std::FILE *out) const;

  private:
    std::map<std::string, double> values_;
};

//
// Hierarchical registry layer.
//

/** What flavour of stat an entry is (drives JSON rendering). */
enum class StatKind
{
    Scalar,    //!< externally-set double.
    Counter,   //!< monotonically increasing integer.
    Formula,   //!< derived; evaluated lazily at dump time.
    Histogram, //!< fixed-width-bucket distribution.
};

/** Base of every registry-owned statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc, StatKind kind)
        : name_(std::move(name)), desc_(std::move(desc)), kind_(kind)
    {
    }
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    StatKind kind() const { return kind_; }

    /** Current (or, for formulas, freshly evaluated) value. */
    virtual double value() const = 0;

    /**
     * Serialize the stat's *value* (not its identity: name, desc
     * and kind are recreated by the registering component, and the
     * registry verifies them against the checkpoint's section).
     */
    virtual void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.transient("name_ desc_ kind_");
    }

  private:
    std::string name_;
    std::string desc_;
    StatKind kind_;
};

/** A plain assignable double. */
class ScalarStat : public Stat
{
  public:
    ScalarStat(std::string name, std::string desc)
        : Stat(std::move(name), std::move(desc), StatKind::Scalar)
    {
    }

    ScalarStat &
    operator=(double v)
    {
        v_ = v;
        return *this;
    }

    ScalarStat &
    operator+=(double v)
    {
        v_ += v;
        return *this;
    }

    double value() const override { return v_; }

    void checkpoint(ckpt::Ckpt &ck) override { ck.io(v_); }

  private:
    double v_ = 0;
};

/** A monotonically increasing event counter. */
class CounterStat : public Stat
{
  public:
    CounterStat(std::string name, std::string desc)
        : Stat(std::move(name), std::move(desc), StatKind::Counter)
    {
    }

    CounterStat &
    operator++()
    {
        v_ += 1;
        return *this;
    }

    CounterStat &
    operator+=(std::uint64_t n)
    {
        v_ += n;
        return *this;
    }

    std::uint64_t count() const { return v_; }
    double value() const override { return double(v_); }

    void checkpoint(ckpt::Ckpt &ck) override { ck.io(v_); }

  private:
    std::uint64_t v_ = 0;
};

/**
 * A derived stat (MPKI, prefetch accuracy, ...) evaluated whenever
 * the registry is dumped or sampled. The callable typically captures
 * pointers to component counters; it must stay valid for the life of
 * the group (components deregister their group on destruction).
 * Non-finite results (0/0 divisions) read as 0.
 */
class FormulaStat : public Stat
{
  public:
    using Fn = std::function<double()>;

    FormulaStat(std::string name, std::string desc, Fn fn)
        : Stat(std::move(name), std::move(desc), StatKind::Formula),
          fn_(std::move(fn))
    {
    }

    double value() const override;

    /** Formulas hold no state: they re-derive from their inputs. */
    void checkpoint(ckpt::Ckpt &ck) override { ck.transient("fn_"); }

  private:
    Fn fn_;
};

/**
 * Fixed-bucket histogram: @p buckets linear buckets of @p bucketWidth
 * each, the last one catching overflow. Used for bounded-range
 * distributions such as worklist-pop latency and threadlet-queue
 * occupancy.
 */
class HistogramStat : public Stat
{
  public:
    HistogramStat(std::string name, std::string desc,
                  std::uint64_t bucketWidth, std::uint32_t buckets)
        : Stat(std::move(name), std::move(desc), StatKind::Histogram),
          width_(bucketWidth ? bucketWidth : 1),
          counts_(buckets ? buckets : 1)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t b = std::size_t(v / width_);
        if (b >= counts_.size())
            b = counts_.size() - 1;
        counts_[b] += 1;
        total_ += 1;
        sum_ += v;
    }

    std::uint64_t bucketWidth() const { return width_; }
    std::uint32_t numBuckets() const
    {
        return std::uint32_t(counts_.size());
    }
    std::uint64_t bucketCount(std::uint32_t i) const
    {
        return counts_[i];
    }
    std::uint64_t total() const { return total_; }
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }

    /**
     * Upper edge of the smallest bucket covering at least frac of
     * the samples (bucket-width granularity); 0 when empty.
     */
    std::uint64_t
    percentile(double frac) const
    {
        if (!total_)
            return 0;
        std::uint64_t want =
            static_cast<std::uint64_t>(frac * double(total_));
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < counts_.size(); ++b) {
            seen += counts_[b];
            if (seen >= want)
                return (b + 1) * width_ - 1;
        }
        return counts_.size() * width_ - 1;
    }

    /** Histograms report their mean as the scalar value. */
    double value() const override { return mean(); }

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        total_ = 0;
        sum_ = 0;
    }

    void
    checkpoint(ckpt::Ckpt &ck) override
    {
        ck.io(width_);
        ck.io(counts_);
        ck.io(total_);
        ck.io(sum_);
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/** One named group of stats ("core7", "minnow0", "worklist"). */
class StatsGroup
{
  public:
    explicit StatsGroup(std::string name) : name_(std::move(name)) {}

    StatsGroup(const StatsGroup &) = delete;
    StatsGroup &operator=(const StatsGroup &) = delete;

    const std::string &name() const { return name_; }

    ScalarStat &scalar(const std::string &name,
                       const std::string &desc = "");
    CounterStat &counter(const std::string &name,
                         const std::string &desc = "");
    FormulaStat &formula(const std::string &name,
                         const std::string &desc, FormulaStat::Fn fn);
    HistogramStat &histogram(const std::string &name,
                             const std::string &desc,
                             std::uint64_t bucketWidth,
                             std::uint32_t buckets);

    /** Lookup; nullptr when absent. */
    const Stat *find(const std::string &name) const;

    /** Stats in registration order. */
    const std::vector<std::unique_ptr<Stat>> &stats() const
    {
        return stats_;
    }

    /**
     * Serialize every stat's value in registration order, guarded by
     * the stat names so a structural mismatch is an error rather
     * than a silent misload.
     */
    void checkpoint(ckpt::Ckpt &ck);

  private:
    /** Register @p s; fatal() on a duplicate name. */
    Stat &adopt(std::unique_ptr<Stat> s);

    std::string name_;
    std::vector<std::unique_ptr<Stat>> stats_;
    std::map<std::string, Stat *> index_;
};

/**
 * The hierarchical registry: a name -> group map with text/JSON
 * export and optional interval sampling.
 *
 * Group naming scheme (see DESIGN.md): "sim" for run-global stats,
 * "core<N>" per core, "l2_<N>" per private cache slice, "minnow<N>"
 * per engine, "worklist" for the software scheduler, "mem" for
 * hierarchy totals.
 */
class StatsRegistry
{
  public:
    /** One flattened snapshot captured by the sampling hook. */
    struct IntervalSample
    {
        Cycle cycle = 0;
        std::map<std::string, double> values;
    };

    StatsRegistry(); // out of line: members use pimpl'd types.
    ~StatsRegistry();
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Get-or-create a group. */
    StatsGroup &group(const std::string &name);

    /**
     * Create a group, discarding any previous one of that name (for
     * components re-attached to a reused machine, e.g. a second
     * MinnowSystem).
     */
    StatsGroup &freshGroup(const std::string &name);

    /** Lookup; nullptr when absent. */
    const StatsGroup *find(const std::string &name) const;

    /** Drop a group (component teardown invalidates its formulas). */
    void removeGroup(const std::string &name);

    /** Groups in name order. */
    std::vector<const StatsGroup *> groups() const;

    /** Flatten every stat into "group.stat" keys of a report. */
    void flatten(StatsReport &out) const;

    /** Text dump: "group.stat value" lines, sorted. */
    void dumpText(std::FILE *out) const;

    /** Serialize groups (+ interval samples) as a JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O error. */
    bool writeJsonFile(const std::string &path) const;

    /**
     * Sample all non-histogram stats every @p interval cycles, driven
     * by events on @p eq. The sampler re-arms only while other events
     * remain pending, so it never keeps a drained simulation alive.
     * The registry must outlive the event queue's run.
     */
    void startSampling(EventQueue &eq, Cycle interval);

    /**
     * Sharded-host mode (--shards=N): evaluate interval samples in
     * parallel on the shard pool. @p runOnAll must invoke its
     * argument once per lane in [0, @p lanes) — with lane 0 on the
     * calling thread — and return after every lane finished (the
     * machine passes ShardPool::runOnAll). Each lane evaluates a
     * deterministic slice of the stats groups into its own SPSC
     * channel; the leader drains the channels in lane order into
     * the sample's sorted map, so the result is byte-identical to
     * the serial path regardless of lane timing. Formulas must be
     * pure reads of simulator state (they are: this runs between
     * events, under the pool's fork/join happens-before edges).
     */
    void setSampleExecutor(
        std::uint32_t lanes,
        std::function<void(const std::function<void(std::uint32_t)>
                               &)>
            runOnAll);

    const std::vector<IntervalSample> &samples() const
    {
        return samples_;
    }

    /**
     * Serialize all counter/scalar/histogram values plus the interval
     * samples, in sorted group order. The host-time "hostprof" group
     * is skipped: its values are nondeterministic by design and would
     * break byte-identical restore comparisons.
     */
    void checkpoint(ckpt::Ckpt &ck);

  private:
    struct Sampler
    {
        StatsRegistry *registry = nullptr;
        EventQueue *eq = nullptr;
        Cycle interval = 0;
    };

    static void sampleEvent(void *arg);
    void recordSample(Cycle now);

    std::map<std::string, std::unique_ptr<StatsGroup>> groups_;
    std::unique_ptr<Sampler> sampler_;
    std::vector<IntervalSample> samples_;

    /** Per-lane sample channels (pimpl; see stats.cc). Null on the
     *  serial path. */
    struct SampleFanout;
    std::uint32_t sampleLanes_ = 1;
    std::function<void(const std::function<void(std::uint32_t)> &)>
        sampleRunOnAll_;
    std::unique_ptr<SampleFanout> fanout_;
};

} // namespace minnow

#endif // MINNOW_BASE_STATS_HH
