/**
 * @file
 * Lightweight statistics package.
 *
 * Counters are plain members of the objects they instrument; this
 * header provides the aggregate types (scalar, average, histogram) and
 * a registry used by the harness to dump a stats report at end of run.
 */

#ifndef MINNOW_BASE_STATS_HH
#define MINNOW_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace minnow
{

/** Running mean/min/max over a stream of samples. */
class StatAverage
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Power-of-two bucketed histogram for latency/size distributions. */
class StatHistogram
{
  public:
    static constexpr int kBuckets = 32;

    void
    sample(std::uint64_t v)
    {
        int b = 0;
        while (b < kBuckets - 1 && (std::uint64_t(1) << b) <= v)
            ++b;
        buckets_[b] += 1;
        total_ += 1;
        sum_ += v;
    }

    std::uint64_t bucket(int i) const { return buckets_[i]; }
    std::uint64_t total() const { return total_; }
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }

    /** Smallest v such that at least frac of samples are <= v. */
    std::uint64_t
    percentile(double frac) const
    {
        std::uint64_t want =
            static_cast<std::uint64_t>(frac * double(total_));
        std::uint64_t seen = 0;
        for (int b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= want)
                return b == 0 ? 0 : (std::uint64_t(1) << b) - 1;
        }
        return ~std::uint64_t(0);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Flat name -> value map that components contribute into when asked to
 * report. Keys use dotted paths, e.g. "core03.l2.missRate".
 */
class StatsReport
{
  public:
    void
    add(const std::string &key, double value)
    {
        values_[key] = value;
    }

    double
    get(const std::string &key, double dflt = 0.0) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? dflt : it->second;
    }

    bool has(const std::string &key) const { return values_.count(key); }

    const std::map<std::string, double> &values() const { return values_; }

    /** Write "key value" lines to the given stream-like file. */
    void dump(std::FILE *out) const;

  private:
    std::map<std::string, double> values_;
};

} // namespace minnow

#endif // MINNOW_BASE_STATS_HH
