/**
 * @file
 * Simulated-time timeline tracing (--timeline=FILE).
 *
 * A ring-buffer-backed event sink recording what every core, engine
 * and threadlet slot was doing at each simulated cycle:
 *
 *  - span events: task execution per core, worklist pop/push
 *    latency, engine front-end ops, threadlet lifetimes, per-core
 *    phase residency,
 *  - instant events: faults injected, watchdog trips, engine
 *    kill/stall/recovery,
 *  - counter tracks: per-engine prefetch credits (event-driven) plus
 *    sampled providers (global/local worklist depth, windowed L2
 *    MPKI, tracked prefetch lines, OBIM minimum bucket) polled every
 *    --timeline-interval cycles off the EventQueue.
 *
 * Every record is stamped with the EventQueue cycle and a stable
 * track id (see DESIGN.md 5f for the pid/tid scheme). The whole
 * buffer exports as Chrome trace_event JSON ("minnow-timeline-1")
 * loadable in Perfetto / chrome://tracing.
 *
 * Memory is bounded: the ring holds --timeline-buffer records (32 B
 * each); on wrap the oldest records are dropped and counted in
 * droppedEvents — never silently. Because a span becomes one record
 * only when it *completes*, dropping whole records can never leave an
 * unbalanced begin/end pair in the export.
 *
 * Overhead contract: with --timeline unset no Timeline exists and
 * every emit site costs one pointer null-check; the sampler arms no
 * events and no stats group is registered.
 *
 * Determinism: records carry only simulated cycles and values derived
 * from simulated state, tracks are registered in construction order,
 * and the JSON writer formats numbers with a fixed grammar — two runs
 * with the same seed produce byte-identical trace files.
 */

#ifndef MINNOW_SIM_TIMELINE_HH
#define MINNOW_SIM_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace minnow
{
class EventQueue;
}

namespace minnow::timeline
{

/** Event categories, selectable via --timeline-tracks=task,credit. */
enum class Cat : std::uint8_t
{
    Task = 0,  //!< core-side task/pop/push spans + phase residency.
    Engine,    //!< engine front-end ops and fault instants.
    Threadlet, //!< threadlet lifetime spans per slot lane.
    Credit,    //!< per-engine prefetch-credit counter tracks.
    Worklist,  //!< worklist depth / OBIM bucket counter tracks.
    Mem,       //!< windowed MPKI and tracked-prefetch-line counters.
    Sim,       //!< watchdog trips, injected faults, diagnostics.
    kNum,
};

/** All categories enabled. */
std::uint32_t allCats();

/**
 * Parse a --timeline-tracks list ("task,engine,credit") into a
 * category bitmask; empty or "all" enables everything, an unknown
 * token is fatal().
 */
std::uint32_t parseTracks(const std::string &csv);

/** Trace processes grouping related tracks in the Perfetto UI. */
enum class Pid : std::uint32_t
{
    Cores = 1,      //!< per-core task/pop/push spans.
    Engines = 2,    //!< per-engine front-end tracks.
    Threadlets = 3, //!< threadlet slot lanes.
    Counters = 4,   //!< all counter tracks.
    Phases = 5,     //!< per-core phase residency spans.
    Sim = 6,        //!< watchdog / fault instants.
};

/** Interned event names (the JSON writer maps them to strings). */
enum class Name : std::uint16_t
{
    Task = 0,    //!< one operator execution on a core.
    Dequeue,     //!< pop/dequeue operation (call to delivery).
    PopWait,     //!< worker parked waiting for work.
    Push,        //!< push/enqueue operation.
    PhaseApp,    //!< core phase residency spans.
    PhaseWorklist,
    PhaseIdle,
    FillBatch,   //!< engine daemon pulled one global-queue batch.
    FillDaemon,  //!< threadlet lifetimes.
    Spill,
    SpillDrain,
    PrefetchTask,
    PrefetchEdge,
    EngineKill,  //!< instants.
    EngineStall,
    EngineRecover,
    TasksRescued,
    FaultPrefetchDrop,
    FaultCreditSwallow,
    WatchdogTrip,
    Diagnostic,
    CreditHandoff, //!< credit returned straight to a waiter.
    SpecDeposit,   //!< engine deposited a task in a core slot.
    SpecReclaim,   //!< spec-slot task reclaimed by rescue/kill.
    LineageFlow,   //!< parent push -> child dequeue flow arrow.
    PrefetchFlow,  //!< prefetch issue -> fill -> demand-use arrow.
    kNum,
};

/** Display string for @p n ("task", "prefetchEdge", ...). */
const char *nameString(Name n);

using TrackId = std::uint32_t;

/** Returned for tracks whose category is filtered out: emitting to
 *  it is a cheap no-op, so emit sites need no mask checks. */
constexpr TrackId kNoTrack = 0xffffffffu;

/** Task-latency attribution phases (the Fig. 5 breakdown). */
enum class TaskPhase : std::uint8_t
{
    PopWait = 0, //!< parked with no work available.
    Dequeue,     //!< inside pop/minnow_dequeue.
    Execute,     //!< running the operator.
    Push,        //!< inside push/minnow_enqueue.
    kNum,
};

/** One simulated-time trace sink (owned by the Machine). */
class Timeline
{
  public:
    /**
     * @param bufferCap ring capacity in records (>= 1).
     * @param catMask   bitmask over Cat (see parseTracks()).
     */
    Timeline(std::size_t bufferCap, std::uint32_t catMask);

    Timeline(const Timeline &) = delete;
    Timeline &operator=(const Timeline &) = delete;

    ~Timeline()
    {
        // The "timeline" formulas capture `this`; drop them before
        // the timeline dies (the registry may outlive us).
        if (statsReg_)
            statsReg_->removeGroup("timeline");
    }

    /** Clock used to stamp counter samples (the EventQueue's now). */
    void bindClock(const Cycle *now) { now_ = now; }

    Cycle now() const { return now_ ? *now_ : 0; }

    bool
    wants(Cat c) const
    {
        return catMask_ & (1u << std::uint32_t(c));
    }

    // ---- track registry ----

    /**
     * Register a track; returns kNoTrack when the category is
     * disabled. @p tid must be unique within @p pid for span tracks
     * (spans on one (pid,tid) must nest); counter tracks are keyed
     * by name and get their tid assigned by the caller for display
     * ordering only.
     */
    TrackId addTrack(Cat cat, Pid pid, std::uint32_t tid,
                     std::string name);

    /** Register a counter track under Pid::Counters; the tid (display
     *  order in the UI) is the registration sequence number. */
    TrackId addCounterTrack(Cat cat, std::string name);

    /** Pre-register "core<N>" task and phase tracks. */
    void registerCoreTracks(std::uint32_t numCores);

    TrackId
    coreTaskTrack(CoreId c) const
    {
        return c < coreTasks_.size() ? coreTasks_[c] : kNoTrack;
    }

    TrackId
    corePhaseTrack(CoreId c) const
    {
        return c < corePhases_.size() ? corePhases_[c] : kNoTrack;
    }

    /** Shared instant track for watchdog/fault/diagnostic events. */
    TrackId simTrack() const { return simTrack_; }

    // ---- emission ----

    /** Record a completed span [begin, end] (end >= begin). */
    void span(TrackId t, Name n, Cycle begin, Cycle end);

    /** Record an instantaneous event. */
    void instant(TrackId t, Name n, Cycle at);

    /** Record a counter value change/sample. */
    void counter(TrackId t, Cycle at, double value);

    // Flow arrows (Chrome ph "s"/"t"/"f"). All legs of one arrow
    // share @p id; the exporter only emits ids with at least one
    // start and one end, so a leg lost to ring wrap can never leave
    // a dangling arrow in the file. Legs bind to the span enclosing
    // (track, at) in Perfetto.

    /** Record the start leg of flow @p id. */
    void flowStart(TrackId t, Name n, Cycle at, std::uint64_t id);

    /** Record an intermediate leg of flow @p id. */
    void flowStep(TrackId t, Name n, Cycle at, std::uint64_t id);

    /** Record the terminating leg of flow @p id. */
    void flowEnd(TrackId t, Name n, Cycle at, std::uint64_t id);

    /** Feed the task-latency attribution histograms. */
    void taskSample(TaskPhase p, Cycle duration);

    // ---- sampled counter providers ----

    /**
     * Register a counter polled by the sampler; @p owner tags the
     * provider for removeProviders() (components whose lifetime ends
     * before the Timeline's must deregister). Values are emitted
     * only when they change. No-op when @p cat is disabled.
     */
    void addCounterProvider(Cat cat, const std::string &name,
                            const void *owner,
                            std::function<double()> fn);

    /** Drop every provider registered with @p owner. */
    void removeProviders(const void *owner);

    /**
     * Poll the providers every @p interval cycles, driven by events
     * on @p eq. Like stats sampling, the sampler re-arms only while
     * other events remain pending, so it never keeps a drained
     * simulation alive.
     */
    void startSampling(EventQueue &eq, Cycle interval);

    /** Register the "timeline" stats group (attribution report). */
    void registerStats(StatsRegistry &reg);

    // ---- export / inspection ----

    /** Chrome trace_event JSON (schema "minnow-timeline-1"). */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O error. */
    bool writeFile(const std::string &path) const;

    /** Records currently held (<= capacity). */
    std::size_t recorded() const;

    std::size_t capacity() const { return ring_.size(); }

    /** Oldest records overwritten by ring wrap. */
    std::uint64_t dropped() const { return dropped_; }

    std::uint64_t spans() const { return spans_; }
    std::uint64_t instants() const { return instants_; }
    std::uint64_t counterSamples() const { return counterRecs_; }
    std::uint64_t flowLegs() const { return flowRecs_; }

  private:
    enum class RecKind : std::uint8_t
    {
        Span = 0,
        Instant,
        Counter,
        FlowStart,
        FlowStep,
        FlowEnd,
    };

    /** One ring slot; 32 bytes. For Counter records `extra` holds
     *  the value's bit pattern instead of an end cycle; for Flow
     *  records it holds the flow id. */
    struct Record
    {
        Cycle begin = 0;
        std::uint64_t extra = 0;
        TrackId track = 0;
        std::uint16_t name = 0;
        std::uint8_t kind = 0;
    };

    struct Track
    {
        Cat cat;
        std::uint32_t pid;
        std::uint32_t tid;
        std::string name;
    };

    struct Provider
    {
        TrackId track;
        const void *owner;
        std::function<double()> fn;
        double last = 0;
        bool hasLast = false;
    };

    struct Sampler
    {
        Timeline *tl = nullptr;
        EventQueue *eq = nullptr;
        Cycle interval = 0;
    };

    static void sampleEvent(void *arg);
    void pollProviders(Cycle at);
    void push(const Record &r);
    void flowRec(TrackId t, Name n, Cycle at, std::uint64_t id,
                 RecKind kind);

    const Cycle *now_ = nullptr;
    std::uint32_t catMask_;

    std::vector<Record> ring_;
    std::size_t head_ = 0;       //!< next write slot.
    std::uint64_t written_ = 0;  //!< total records ever pushed.
    std::uint64_t dropped_ = 0;
    std::uint64_t spans_ = 0;
    std::uint64_t instants_ = 0;
    std::uint64_t counterRecs_ = 0;
    std::uint64_t flowRecs_ = 0;

    std::vector<Track> tracks_;
    std::vector<TrackId> coreTasks_;
    std::vector<TrackId> corePhases_;
    TrackId simTrack_ = kNoTrack;
    std::uint32_t counterTid_ = 0; //!< display order of counters.

    std::vector<Provider> providers_;
    std::unique_ptr<Sampler> sampler_;

    // Attribution histograms (registry-owned; null until
    // registerStats()).
    HistogramStat *taskHist_[std::size_t(TaskPhase::kNum)] = {};

    /** Registry holding our "timeline" group (for dtor removal). */
    StatsRegistry *statsReg_ = nullptr;
};

} // namespace minnow::timeline

#endif // MINNOW_SIM_TIMELINE_HH
