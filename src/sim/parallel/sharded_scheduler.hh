/**
 * @file
 * Canonical-order weave driver for the per-shard timing wheels
 * (--shards=N; DESIGN.md section 5j).
 *
 * Each shard owns a 1024-bucket EventQueue wheel holding the events
 * of its core slice (cores, L2 traffic initiators, Minnow engines);
 * machine-global components (work monitor, samplers, watchdog,
 * fault timers) live on shard 0's wheel. Every schedule on any
 * wheel draws a tag from one machine-global sequence counter, and
 * the scheduler executes events in exact (cycle, seq) order by a
 * k-way merge across the wheels — the same total order the
 * single-wheel path produces, by construction, which is what keeps
 * --shards=1 and --shards=N byte-identical in stats, timeline and
 * checkpoint witnesses.
 *
 * Handler execution is therefore serialized on the weave leader
 * (the simulator's semantics are defined by exact global event
 * order: handlers read shared functional state and the analytic
 * memory system mutates shared L3/directory/NoC state in call
 * order). The shard *host threads* earn their keep in the bound
 * phases between events — per-epoch stats-interval sampling fans
 * out over the ShardPool and returns through SPSC channels drained
 * in source-shard order (base/stats.cc) — and in the --host-par
 * point farm (task_farm.hh).
 *
 * The run()/stop-trigger/interrupt protocol mirrors EventQueue
 * exactly (same budget accounting, same every-1024-events interrupt
 * poll cadence), so the galois executor's resume loop drives either
 * engine through the Machine wrappers without behavioral skew.
 */

#ifndef MINNOW_SIM_PARALLEL_SHARDED_SCHEDULER_HH
#define MINNOW_SIM_PARALLEL_SHARDED_SCHEDULER_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace minnow::parallel
{

/** Drives N seq-tagged shard wheels in global (cycle, seq) order. */
class ShardedScheduler final : public QuiescenceProbe
{
  public:
    /**
     * @param wheels One EventQueue per shard; wheel 0 carries the
     *               canonical clock and the machine-global events.
     *               The scheduler attaches its sequence counter and
     *               quiescence probe to every wheel.
     */
    explicit ShardedScheduler(std::vector<EventQueue *> wheels);

    ShardedScheduler(const ShardedScheduler &) = delete;
    ShardedScheduler &operator=(const ShardedScheduler &) = delete;

    /** Current simulated cycle (all wheels advance in lockstep). */
    Cycle now() const { return wheels_[0]->now(); }

    /** Pending events summed over every wheel. */
    std::size_t pending() const;

    /** Pending daemon events summed over every wheel. */
    std::size_t daemonsPending() const;

    /** Earliest pending event cycle over all wheels (now() when
     *  everything is drained); the sharded headTime(). */
    Cycle headTime() const;

    /** Group-wide "only daemons remain" (wheels delegate here). */
    bool quiescent() const override;

    /** Events fully executed by the weave. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events in global order until all wheels drain, stop() is
     * called, or the budget is exhausted; mirrors EventQueue::run.
     */
    std::uint64_t run(std::uint64_t maxEvents = 0);

    void stop() { stopped_ = true; }
    bool stopped() const { return stopped_; }

    /** One-shot reproducible stop; see EventQueue::setStopTrigger. */
    void
    setStopTrigger(Cycle when, std::uint64_t execCount)
    {
        stopAtCycle_ = when;
        stopAtExec_ = execCount;
        stopTriggerArmed_ = true;
        stopTriggerFired_ = false;
        triggersArmed_ = true;
    }

    bool stopTriggerFired() const { return stopTriggerFired_; }
    void ackStopTrigger() { stopTriggerFired_ = false; }

    void
    setInterruptSource(const volatile std::sig_atomic_t *src)
    {
        interruptSource_ = src;
        triggersArmed_ = true;
    }

    bool interrupted() const { return interrupted_; }

    void
    setDiagnosticHook(std::function<void(const char *)> hook)
    {
        diagHook_ = std::move(hook);
    }

    void setHostProfiler(HostProfiler *p) { prof_ = p; }

  private:
    bool pollTriggers();

    /**
     * All buckets at the current cycle are drained: recycle them,
     * advance every wheel to the globally earliest pending cycle
     * and migrate newly in-horizon overflow events per wheel.
     */
    void advanceAll();

    std::vector<EventQueue *> wheels_;
    std::uint64_t seq_ = 0; //!< machine-global schedule counter.

    std::uint64_t executed_ = 0;
    bool stopped_ = false;
    bool running_ = false;
    bool interrupted_ = false;
    bool triggersArmed_ = false;
    const volatile std::sig_atomic_t *interruptSource_ = nullptr;
    Cycle stopAtCycle_ = 0;
    std::uint64_t stopAtExec_ = 0;
    bool stopTriggerArmed_ = false;
    bool stopTriggerFired_ = false;
    std::function<void(const char *)> diagHook_;
    HostProfiler *prof_ = nullptr;
};

} // namespace minnow::parallel

#endif // MINNOW_SIM_PARALLEL_SHARDED_SCHEDULER_HH
