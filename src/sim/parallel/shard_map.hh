/**
 * @file
 * Shard partition geometry: which contiguous slice of cores (and
 * therefore which L2 slices and Minnow engines) each shard owns.
 *
 * The partition is derived purely from (numCores, coresPerEngine,
 * shards), so every process computes the identical map — it carries
 * no run state and never enters a checkpoint. Shard boundaries are
 * aligned to engine groups: an engine and all the cores it serves
 * always land in the same shard, so an engine's event traffic stays
 * on its owner's timing wheel.
 */

#ifndef MINNOW_SIM_PARALLEL_SHARD_MAP_HH
#define MINNOW_SIM_PARALLEL_SHARD_MAP_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace minnow::parallel
{

/** Contiguous core -> shard partition, engine-group aligned. */
class ShardMap
{
  public:
    /**
     * @param numCores       Simulated cores in the machine.
     * @param coresPerEngine Engine group width (>= 1); boundaries
     *                       are aligned to multiples of it.
     * @param shards         Requested shard count (>= 1). Clamped
     *                       to the number of engine groups so no
     *                       shard is empty.
     */
    ShardMap(std::uint32_t numCores, std::uint32_t coresPerEngine,
             std::uint32_t shards)
    {
        fatal_if(numCores == 0, "shard map needs at least one core");
        fatal_if(shards == 0, "--shards must be at least 1");
        std::uint32_t group = coresPerEngine ? coresPerEngine : 1;
        std::uint32_t groups = (numCores + group - 1) / group;
        std::uint32_t n = shards < groups ? shards : groups;
        first_.reserve(n + 1);
        // Distribute engine groups round-down with remainder spread
        // over the leading shards: deterministic and balanced to
        // within one group.
        std::uint32_t base = groups / n;
        std::uint32_t extra = groups % n;
        std::uint32_t g = 0;
        for (std::uint32_t s = 0; s < n; ++s) {
            first_.push_back(g * group);
            g += base + (s < extra ? 1 : 0);
        }
        first_.push_back(numCores);
        shardOf_.resize(numCores);
        for (std::uint32_t s = 0; s < n; ++s) {
            for (std::uint32_t c = first_[s];
                 c < first_[s + 1] && c < numCores; ++c)
                shardOf_[c] = s;
        }
    }

    std::uint32_t numShards() const
    {
        return std::uint32_t(first_.size() - 1);
    }

    std::uint32_t shardOf(CoreId core) const
    {
        return shardOf_[core];
    }

    /** First core owned by shard @p s. */
    std::uint32_t firstCore(std::uint32_t s) const
    {
        return first_[s];
    }

    /** Cores owned by shard @p s. */
    std::uint32_t
    coresIn(std::uint32_t s) const
    {
        return first_[s + 1] - first_[s];
    }

  private:
    std::vector<std::uint32_t> first_; //!< size numShards()+1.
    std::vector<std::uint32_t> shardOf_;
};

} // namespace minnow::parallel

#endif // MINNOW_SIM_PARALLEL_SHARD_MAP_HH
