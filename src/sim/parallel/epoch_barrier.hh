/**
 * @file
 * Sense-reversing epoch barrier for the shard host-thread pool.
 *
 * All shard threads (the weave leader plus the pool workers) arrive;
 * the last arrival opens the next epoch and wakes the rest. The
 * epoch counter's release/acquire pair is the happens-before edge
 * the sharded simulator leans on: everything a thread wrote before
 * arriving is visible to every thread after the barrier, which is
 * what lets pool workers read simulation state during a bound phase
 * without any per-field synchronization (the leader is parked at the
 * closing barrier and mutates nothing meanwhile).
 *
 * Waiting spins briefly (epochs are short — one sampling interval)
 * and then parks on the futex-backed std::atomic wait. Per-lane wait
 * time is accumulated so shard imbalance is visible in hostprof's
 * barrierWaitNs class.
 */

#ifndef MINNOW_SIM_PARALLEL_EPOCH_BARRIER_HH
#define MINNOW_SIM_PARALLEL_EPOCH_BARRIER_HH

#include <atomic>
#include <cstdint>
#include <vector>

namespace minnow::parallel
{

/** Reusable barrier over a fixed set of participant lanes. */
class EpochBarrier
{
  public:
    explicit EpochBarrier(std::uint32_t lanes);

    EpochBarrier(const EpochBarrier &) = delete;
    EpochBarrier &operator=(const EpochBarrier &) = delete;

    /**
     * Block until every lane has arrived at the current epoch.
     * Time spent waiting is accrued to @p lane.
     */
    void arriveAndWait(std::uint32_t lane);

    /** Epochs completed so far. */
    std::uint64_t
    epoch() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

    /**
     * Host nanoseconds @p lane has spent blocked at this barrier.
     * Relaxed: the hostprof barrierWaitNs formula reads these from
     * a sampling fan-out while other lanes may still be updating
     * their own counters; a momentarily stale value is fine for a
     * profile, a data race is not.
     */
    std::uint64_t
    waitNs(std::uint32_t lane) const
    {
        return waitNs_[lane].ns.load(std::memory_order_relaxed);
    }

  private:
    /** Iterations of busy-polling before parking on the futex. */
    static constexpr std::uint32_t kSpinIters = 4096;

    struct alignas(64) LaneWait
    {
        std::atomic<std::uint64_t> ns{0};
    };

    std::uint32_t lanes_;
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint64_t> epoch_{0};
    std::vector<LaneWait> waitNs_;
};

} // namespace minnow::parallel

#endif // MINNOW_SIM_PARALLEL_EPOCH_BARRIER_HH
