/**
 * @file
 * Typed single-producer/single-consumer channel for cross-shard
 * traffic (DESIGN.md section 5j).
 *
 * Every cross-thread hand-off in the sharded simulator goes through
 * one of these: shard workers publish their per-epoch results into
 * their own channel and the weave leader drains the channels in
 * canonical source-shard order, so host-thread scheduling can never
 * reorder what the simulation observes.
 *
 * Memory model: push() releases, pop() acquires — everything the
 * producer wrote before push() is visible to the consumer after a
 * successful pop(). Each message carries a channel-local sequence
 * number stamped by the producer; consumers can assert contiguity
 * (seq gaps would mean a lost or reordered message, which the ring
 * makes impossible by construction — the assert documents it).
 *
 * The ring is bounded and allocation-free after construction; push
 * on a full ring returns false (callers size channels for their
 * epoch batch and treat overflow as a logic error).
 */

#ifndef MINNOW_SIM_PARALLEL_SPSC_CHANNEL_HH
#define MINNOW_SIM_PARALLEL_SPSC_CHANNEL_HH

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace minnow::parallel
{

/** One message with its producer-stamped channel sequence. */
template <typename T>
struct Stamped
{
    std::uint64_t seq = 0;
    T value{};
};

/** Bounded SPSC ring; exactly one producer and one consumer thread. */
template <typename T>
class SpscChannel
{
  public:
    explicit SpscChannel(std::size_t capacity)
        : ring_(capacity ? capacity : 1)
    {
    }

    SpscChannel(const SpscChannel &) = delete;
    SpscChannel &operator=(const SpscChannel &) = delete;

    /**
     * Producer side: enqueue @p v, stamping it with the next channel
     * sequence. @return false when the ring is full (nothing
     * enqueued, sequence not consumed).
     */
    bool
    push(T v)
    {
        std::uint64_t t = tail_.load(std::memory_order_relaxed);
        std::uint64_t h = head_.load(std::memory_order_acquire);
        if (t - h >= ring_.size())
            return false;
        Stamped<T> &slot = ring_[std::size_t(t % ring_.size())];
        slot.seq = t;
        slot.value = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: dequeue the oldest message into @p out.
     * @return false when the channel is empty.
     */
    bool
    pop(Stamped<T> &out)
    {
        std::uint64_t h = head_.load(std::memory_order_relaxed);
        std::uint64_t t = tail_.load(std::memory_order_acquire);
        if (h == t)
            return false;
        Stamped<T> &slot = ring_[std::size_t(h % ring_.size())];
        panic_if(slot.seq != h,
                 "spsc channel sequence gap (%llu != %llu)",
                 (unsigned long long)slot.seq,
                 (unsigned long long)h);
        out = std::move(slot);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side view; racy from the producer thread. */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Messages ever pushed (producer-side view). */
    std::uint64_t
    pushed() const
    {
        return tail_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<Stamped<T>> ring_;
    // Head and tail on separate cache lines so producer and consumer
    // do not false-share.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace minnow::parallel

#endif // MINNOW_SIM_PARALLEL_SPSC_CHANNEL_HH
