/**
 * @file
 * Fixed pool of shard host threads (--shards=N).
 *
 * Lane 0 is the weave leader (the thread that owns the simulation
 * and calls runOnAll()); lanes 1..N-1 are pool workers parked at an
 * epoch barrier. A bound phase is a fork-join: the leader publishes
 * a job, every lane (leader included) runs its slice, and the
 * closing barrier republishes the workers' results to the leader.
 * The opening barrier's happens-before edge makes all simulation
 * state the leader wrote visible to the workers; the closing
 * barrier's edge makes the workers' scratch output visible to the
 * leader. No other synchronization exists or is needed: between
 * epochs the workers touch nothing.
 *
 * The pool threads are the only std::threads in the simulator
 * (minnow-lint rule P1 enforces this); everything they exchange with
 * the leader rides epoch barriers and SPSC channels from this
 * directory.
 */

#ifndef MINNOW_SIM_PARALLEL_SHARD_POOL_HH
#define MINNOW_SIM_PARALLEL_SHARD_POOL_HH

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/parallel/epoch_barrier.hh"

namespace minnow
{
class HostProfiler;
}

namespace minnow::parallel
{

/** The shard host-thread pool; one per sharded Machine. */
class ShardPool
{
  public:
    /** @param lanes Total lanes including the leader (>= 1). */
    explicit ShardPool(std::uint32_t lanes);

    /** Releases and joins the workers. */
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    std::uint32_t lanes() const { return lanes_; }

    /**
     * Attach the machine's host profiler (null detaches): workers
     * adopt it for the duration of each job so HostProfScope
     * markers on pool threads record into their own lane.
     */
    void setProfiler(HostProfiler *p) { prof_ = p; }

    /**
     * Run @p fn(lane) on every lane; the calling (leader) thread
     * runs lane 0 inline. Returns after all lanes finish. Must only
     * be called from the leader thread, and jobs must not nest.
     */
    void runOnAll(const std::function<void(std::uint32_t)> &fn);

    /** Fork-join epochs completed. */
    std::uint64_t epochs() const { return open_.epoch(); }

    /** Host ns @p lane spent blocked at the fork/join barriers. */
    std::uint64_t
    barrierWaitNs(std::uint32_t lane) const
    {
        return open_.waitNs(lane) + close_.waitNs(lane);
    }

  private:
    void workerLoop(std::uint32_t lane);

    std::uint32_t lanes_;
    EpochBarrier open_;
    EpochBarrier close_;
    /** Job published by the leader before the opening barrier. */
    const std::function<void(std::uint32_t)> *job_ = nullptr;
    bool shutdown_ = false;
    HostProfiler *prof_ = nullptr;
    std::vector<std::thread> threads_;
};

} // namespace minnow::parallel

#endif // MINNOW_SIM_PARALLEL_SHARD_POOL_HH
