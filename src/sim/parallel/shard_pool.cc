#include "sim/parallel/shard_pool.hh"

#include "base/logging.hh"
#include "sim/hostprof.hh"

namespace minnow::parallel
{

ShardPool::ShardPool(std::uint32_t lanes)
    : lanes_(lanes ? lanes : 1), open_(lanes_), close_(lanes_)
{
    threads_.reserve(lanes_ - 1);
    for (std::uint32_t l = 1; l < lanes_; ++l)
        threads_.emplace_back(&ShardPool::workerLoop, this, l);
}

ShardPool::~ShardPool()
{
    if (lanes_ > 1) {
        shutdown_ = true; // published by the opening barrier.
        open_.arriveAndWait(0);
        for (std::thread &t : threads_)
            t.join();
    }
}

void
ShardPool::runOnAll(const std::function<void(std::uint32_t)> &fn)
{
    if (lanes_ == 1) {
        fn(0);
        return;
    }
    job_ = &fn;
    open_.arriveAndWait(0);
    fn(0);
    close_.arriveAndWait(0);
}

void
ShardPool::workerLoop(std::uint32_t lane)
{
    HostProfiler::setThreadLane(lane);
    for (;;) {
        open_.arriveAndWait(lane);
        if (shutdown_)
            return;
        // Adopt the leader's profiler so HostProfScope on this
        // thread records into this lane's counters.
        HostProfiler::setThreadActive(prof_);
        (*job_)(lane);
        HostProfiler::setThreadActive(nullptr);
        close_.arriveAndWait(lane);
    }
}

} // namespace minnow::parallel
