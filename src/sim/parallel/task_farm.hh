/**
 * @file
 * Host-parallel point farm (--host-par=N).
 *
 * Runs independent simulation points — each with its own Machine,
 * workload and stats — on a fixed number of host threads. Points
 * share no simulator state (thread-local trace clock and host
 * profiler, mutex-free panic-hook registry, see DESIGN.md 5j), so
 * each point's result is byte-identical to a serial run of the same
 * point; only wall-clock ordering differs, and callers print/record
 * results in point order after the join.
 *
 * This is the sweep-serving axis of the sharded-host work: a figure
 * sweep of K points on N threads approaches N-fold throughput
 * without touching the determinism contract of any single run.
 */

#ifndef MINNOW_SIM_PARALLEL_TASK_FARM_HH
#define MINNOW_SIM_PARALLEL_TASK_FARM_HH

#include <cstddef>
#include <cstdint>
#include <functional>

namespace minnow::parallel
{

/**
 * Invoke @p fn(i) once for every i in [0, n), using up to
 * @p threads host threads (the calling thread participates; 0 or 1
 * runs everything inline in index order). Returns after every call
 * completed. @p fn must only touch state owned by its own index.
 */
void runTaskFarm(std::size_t n, std::uint32_t threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace minnow::parallel

#endif // MINNOW_SIM_PARALLEL_TASK_FARM_HH
