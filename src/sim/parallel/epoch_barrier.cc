#include "sim/parallel/epoch_barrier.hh"

#include "base/host_clock.hh"
#include "base/logging.hh"

namespace minnow::parallel
{

EpochBarrier::EpochBarrier(std::uint32_t lanes)
    : lanes_(lanes), waitNs_(lanes)
{
    fatal_if(lanes == 0, "barrier needs at least one lane");
}

void
EpochBarrier::arriveAndWait(std::uint32_t lane)
{
    std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    // acq_rel: the last arrival's release publishes every earlier
    // lane's writes (acquired here) onward through the epoch store.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        lanes_) {
        arrived_.store(0, std::memory_order_relaxed);
        epoch_.store(e + 1, std::memory_order_release);
        epoch_.notify_all();
        return;
    }
    std::uint64_t t0 = hostNowNs();
    for (std::uint32_t i = 0; i < kSpinIters; ++i) {
        if (epoch_.load(std::memory_order_acquire) != e) {
            waitNs_[lane].ns.fetch_add(hostNowNs() - t0,
                                       std::memory_order_relaxed);
            return;
        }
    }
    while (epoch_.load(std::memory_order_acquire) == e)
        epoch_.wait(e, std::memory_order_acquire);
    waitNs_[lane].ns.fetch_add(hostNowNs() - t0,
                               std::memory_order_relaxed);
}

} // namespace minnow::parallel
