#include "sim/parallel/sharded_scheduler.hh"

#include <coroutine>

#include "sim/hostprof.hh"

namespace minnow::parallel
{

/*
 * Why the weave reproduces the single-wheel order exactly: every
 * scheduleCompact on any wheel consumes one value from the shared
 * seq_ counter, so the set of (cycle, seq) keys is identical to the
 * keys the single wheel would have assigned (scheduling happens in
 * the same global order — event execution is the only source of
 * schedules and the weave executes events in key order, inductively).
 * Within one wheel, bucket position is seq order (argument at the
 * top of event_queue.cc, unchanged); across wheels the run loop
 * picks the minimum head seq at the current cycle. Minimum over
 * wheels of per-wheel minima == global minimum, so events pop in
 * global (cycle, seq) order.
 */

ShardedScheduler::ShardedScheduler(std::vector<EventQueue *> wheels)
    : wheels_(std::move(wheels))
{
    panic_if(wheels_.empty(), "sharded scheduler needs >= 1 wheel");
    for (EventQueue *w : wheels_) {
        w->setSeqSource(&seq_);
        w->setQuiescenceProbe(this);
    }
}

std::size_t
ShardedScheduler::pending() const
{
    std::size_t n = 0;
    for (const EventQueue *w : wheels_)
        n += w->pending();
    return n;
}

std::size_t
ShardedScheduler::daemonsPending() const
{
    std::size_t n = 0;
    for (const EventQueue *w : wheels_)
        n += w->daemonsPending();
    return n;
}

Cycle
ShardedScheduler::headTime() const
{
    Cycle best = now();
    bool any = false;
    for (const EventQueue *w : wheels_) {
        if (w->pending() == 0)
            continue;
        Cycle t = w->headTime();
        if (!any || t < best) {
            best = t;
            any = true;
        }
    }
    return best;
}

bool
ShardedScheduler::quiescent() const
{
    return pending() <= daemonsPending();
}

std::uint64_t
ShardedScheduler::run(std::uint64_t maxEvents)
{
    panic_if(running_,
             "ShardedScheduler::run() re-entered from inside an"
             " event");
    running_ = true;
    stopped_ = false;
    interrupted_ = false;
    if (prof_)
        prof_->beginRun();

    const std::uint64_t budget0 =
        maxEvents ? maxEvents : ~std::uint64_t(0);
    std::uint64_t budget = budget0;

    std::size_t left = pending();
    while (left != 0 && budget != 0 && !stopped_) {
        if (triggersArmed_ && pollTriggers()) [[unlikely]]
            break;
        // k-way merge step: the wheel holding the globally smallest
        // sequence tag at the current cycle executes next.
        EventQueue *best = nullptr;
        std::uint64_t bestSeq = 0;
        for (EventQueue *w : wheels_) {
            if (!w->shardHasEventNow())
                continue;
            std::uint64_t s = w->shardHeadSeq();
            if (!best || s < bestSeq) {
                best = w;
                bestSeq = s;
            }
        }
        if (!best) {
            // Every wheel drained its bucket for the current cycle:
            // recycle and advance the group clock in lockstep.
            advanceAll();
            continue;
        }
        EventQueue::Compact ev = best->shardPop();
        --left;
        --budget;
        if (prof_)
            prof_->eventTick(left);
        if (ev.fn)
            ev.fn(ev.arg);
        else
            std::coroutine_handle<>::from_address(ev.arg).resume();
        ++executed_;
        // Executing the event may have scheduled onto any wheel.
        left = pending();
    }

    // Normalize exactly like EventQueue::run so the occupancy
    // bitmaps are exact across run() calls.
    for (EventQueue *w : wheels_)
        w->shardRecycleNow();

    running_ = false;
    if (prof_)
        prof_->endRun();

    if (budget == 0 && left != 0 && !stopped_) {
        warn("event budget of %llu exhausted; stopping simulation",
             (unsigned long long)maxEvents);
        if (diagHook_)
            diagHook_("event budget exhausted");
    }
    return budget0 - budget;
}

bool
ShardedScheduler::pollTriggers()
{
    // Same contract as EventQueue::pollTriggers: the stop trigger
    // halts between events and schedules nothing, and the signal
    // flag is polled every 1024 events.
    if (stopTriggerArmed_ && now() >= stopAtCycle_ &&
        executed_ >= stopAtExec_) {
        stopTriggerArmed_ = false;
        stopTriggerFired_ = true;
        triggersArmed_ = interruptSource_ != nullptr;
        return true;
    }
    if (interruptSource_ && (executed_ & 1023) == 0 &&
        *interruptSource_ != 0) {
        interrupted_ = true;
        return true;
    }
    return false;
}

void
ShardedScheduler::advanceAll()
{
    Cycle best = 0;
    bool any = false;
    for (EventQueue *w : wheels_) {
        w->shardRecycleNow();
        if (w->pending() == 0)
            continue;
        Cycle t = w->headTime();
        if (!any || t < best) {
            best = t;
            any = true;
        }
    }
    panic_if(!any, "advanceAll with no pending event on any wheel");
    // All wheels advance in lockstep so cross-wheel schedules (an
    // event on wheel A scheduling work for a core on wheel B) are
    // always relative to one shared clock.
    for (EventQueue *w : wheels_)
        w->shardSyncTo(best);
}

} // namespace minnow::parallel
