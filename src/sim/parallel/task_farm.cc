#include "sim/parallel/task_farm.hh"

#include <atomic>
#include <thread>
#include <vector>

namespace minnow::parallel
{

void
runTaskFarm(std::size_t n, std::uint32_t threads,
            const std::function<void(std::size_t)> &fn)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::uint32_t workers = threads;
    if (std::size_t(workers) > n)
        workers = std::uint32_t(n);
    std::atomic<std::size_t> next{0};
    auto pump = [&] {
        for (;;) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::uint32_t t = 1; t < workers; ++t)
        pool.emplace_back(pump);
    pump();
    for (std::thread &t : pool)
        t.join();
}

} // namespace minnow::parallel
