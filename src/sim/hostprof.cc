#include "sim/hostprof.hh"

#include "base/host_clock.hh"
#include "base/logging.hh"

namespace minnow
{

thread_local HostProfiler *HostProfiler::active_ = nullptr;
thread_local std::uint32_t HostProfiler::threadLane_ = 0;

std::uint64_t
HostProfiler::nowNs()
{
    return hostNowNs();
}

void
HostProfiler::activate()
{
    if (activated_)
        return;
    prev_ = active_;
    active_ = this;
    activated_ = true;
}

void
HostProfiler::deactivate()
{
    if (!activated_)
        return;
    if (active_ == this)
        active_ = prev_;
    prev_ = nullptr;
    activated_ = false;
}

void
HostProfiler::beginRun()
{
    runStart_ = nowNs();
    inRun_ = true;
    ++runs_;
}

void
HostProfiler::endRun()
{
    if (!inRun_)
        return;
    runNs_ += nowNs() - runStart_;
    inRun_ = false;
}

std::uint64_t
HostProfiler::wallNs() const
{
    return runNs_ + (inRun_ ? nowNs() - runStart_ : 0);
}

void
HostProfiler::enter(HostClass c)
{
    Lane &ln = lanes_[threadLane_];
    std::uint64_t t = nowNs();
    if (ln.depth != 0)
        ln.classNs[ln.stack[ln.depth - 1]] += t - ln.sliceStart;
    panic_if(ln.depth >= kMaxDepth, "host-profiler scope stack"
             " overflow (a HostProfScope leaked across a"
             " suspension?)");
    ln.stack[ln.depth++] = std::uint8_t(c);
    ++ln.classCalls[std::size_t(c)];
    ln.sliceStart = t;
}

void
HostProfiler::exit()
{
    Lane &ln = lanes_[threadLane_];
    panic_if(ln.depth == 0, "host-profiler scope underflow");
    std::uint64_t t = nowNs();
    ln.classNs[ln.stack[--ln.depth]] += t - ln.sliceStart;
    ln.sliceStart = t;
}

void
HostProfiler::registerStats(StatsRegistry &reg)
{
    statsReg_ = &reg;
    StatsGroup &g = reg.group("hostprof");
    g.formula("events", "events executed by the event queue",
              [this] { return double(events_); });
    g.formula("runs", "EventQueue::run() invocations",
              [this] { return double(runs_); });
    g.formula("wallNs", "host wall time spent inside run()",
              [this] { return double(wallNs()); });
    g.formula("eventsPerSec", "simulation speed in events/sec",
              [this] {
                  double ns = double(wallNs());
                  return ns > 0 ? double(events_) * 1e9 / ns : 0.0;
              });

    static const char *names[] = {"core", "memory", "engine",
                                  "worklist"};
    for (std::size_t c = 0;
         c < std::size_t(HostClass::kNumClasses); ++c) {
        std::string base = names[c];
        g.formula(base + "Ns",
                  "host ns attributed to the " + base +
                      " component class (exclusive, all lanes)",
                  [this, c] { return double(classNs(HostClass(c))); });
        g.formula(base + "Calls",
                  "instrumented entries into the " + base +
                      " component class (all lanes)",
                  [this, c] {
                      return double(classCalls(HostClass(c)));
                  });
    }
    g.formula("barrierWaitNs",
              "host ns pool lanes spent waiting at shard epoch"
              " barriers (0 when --shards=1)",
              [this] {
                  return barrierWaitFn_ ? double(barrierWaitFn_())
                                        : 0.0;
              });
    g.formula("otherNs",
              "run() wall time not attributed to any component"
              " class (scheduler, coroutine glue)",
              [this] {
                  double sum = 0;
                  for (std::size_t c = 0;
                       c < std::size_t(HostClass::kNumClasses);
                       ++c)
                      sum += double(classNs(HostClass(c)));
                  double w = double(wallNs());
                  return w > sum ? w - sum : 0.0;
              });

    g.formula("occupancySamples",
              "queue-occupancy samples taken (every 64th event)",
              [this] { return double(occupancy_.total()); });
    g.formula("occupancyMean", "mean pending-event count",
              [this] { return occupancy_.mean(); });
    g.formula("occupancyP50", "median pending-event count",
              [this] { return double(occupancy_.percentile(0.50)); });
    g.formula("occupancyP99", "p99 pending-event count",
              [this] { return double(occupancy_.percentile(0.99)); });
}

} // namespace minnow
