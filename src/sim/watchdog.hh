/**
 * @file
 * Hang detection and structured post-mortem dumps.
 *
 * A hung simulation used to spin silently until the event budget ran
 * out; with fault injection in the tree a livelock is now a scenario
 * we deliberately provoke, so it must be diagnosable. The Watchdog
 * rides the EventQueue like the stats sampler does and samples a
 * small progress signature (instruction commits, WorkMonitor
 * pending/stealable movement, memory traffic). When the signature is
 * unchanged for N consecutive checks it dumps a structured
 * diagnostic — event-queue head, per-core pipeline state, monitor
 * accounting, and a full StatsRegistry snapshot (which carries the
 * per-engine queue/credit state and worklist counts) — then panics
 * with an actionable message.
 *
 * The same dump helper backs EventQueue budget exhaustion, so a
 * timed-out run and a hung run leave identical post-mortems.
 */

#ifndef MINNOW_SIM_WATCHDOG_HH
#define MINNOW_SIM_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"

namespace minnow
{

namespace runtime
{
class Machine;
} // namespace runtime

/**
 * Build the "minnow-diag-1" diagnostic document: reason, cycle,
 * event-queue head, per-core pipeline state, monitor accounting, and
 * the machine's full "minnow-stats-1" registry snapshot under
 * "stats".
 */
std::string diagnosticJson(runtime::Machine &machine,
                           const std::string &reason);

/**
 * Emit a human-readable summary of diagnosticJson() to stderr and,
 * when the machine's diagnosticPath is set, write the JSON document
 * there as well.
 */
void dumpDiagnostic(runtime::Machine &machine,
                    const std::string &reason);

/** Periodic no-progress detector on the machine's event queue. */
class Watchdog
{
  public:
    /**
     * @param machine   Machine to monitor (not owned).
     * @param interval  Cycles between progress checks.
     * @param threshold Consecutive stale checks before tripping.
     */
    Watchdog(runtime::Machine *machine, Cycle interval,
             std::uint32_t threshold);

    /** Schedule the first check; idempotent. */
    void arm();

    /**
     * Test hook: replace the dump-and-panic trip action. The
     * callback receives the reason string.
     */
    void setOnStall(std::function<void(const std::string &)> fn)
    {
        onStall_ = std::move(fn);
    }

    bool tripped() const { return tripped_; }
    std::uint64_t checksRun() const { return checksRun_; }

  private:
    /** What must move for the run to count as making progress. */
    struct Snapshot
    {
        std::uint64_t uops = 0;
        std::uint64_t pending = 0;
        std::uint64_t stealable = 0;
        std::uint64_t memTraffic = 0;

        bool operator==(const Snapshot &) const = default;
    };

    static void checkEvent(void *arg);
    void check();
    Snapshot sample() const;

    runtime::Machine *machine_;
    Cycle interval_;
    std::uint32_t threshold_;
    Snapshot last_;
    std::uint32_t stale_ = 0;
    std::uint64_t checksRun_ = 0;
    bool armed_ = false;
    bool tripped_ = false;
    std::function<void(const std::string &)> onStall_;
};

} // namespace minnow

#endif // MINNOW_SIM_WATCHDOG_HH
