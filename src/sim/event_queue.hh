/**
 * @file
 * Deterministic discrete-event engine.
 *
 * The whole simulation is single-host-threaded: simulated cores,
 * Minnow engines, and DRAM callbacks are all events on this queue.
 * Events at equal cycles fire in scheduling order (a monotonically
 * increasing sequence number breaks ties), so runs are bit-exact
 * reproducible.
 *
 * Two event flavours are supported: resuming a suspended C++20
 * coroutine (the common case: a simulated thread waiting for memory),
 * and calling a plain function pointer with a context argument.
 */

#ifndef MINNOW_SIM_EVENT_QUEUE_HH
#define MINNOW_SIM_EVENT_QUEUE_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace minnow
{

/** Global discrete-event queue; owns simulated time. */
class EventQueue
{
  public:
    using Callback = void (*)(void *);

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Stable reference to the clock (debug-trace timestamping). */
    const Cycle &nowRef() const { return now_; }

    /** Schedule a coroutine to resume at the given absolute cycle. */
    void
    schedule(Cycle when, std::coroutine_handle<> coro)
    {
        panic_if(when < now_, "scheduling into the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        heap_.push(Event{when, seq_++, coro, nullptr, nullptr});
    }

    /** Schedule a callback at the given absolute cycle. */
    void
    schedule(Cycle when, Callback fn, void *arg)
    {
        panic_if(when < now_, "scheduling into the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        heap_.push(Event{when, seq_++, nullptr, fn, arg});
    }

    /** True when nothing remains to execute. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Cycle of the earliest pending event (now() when empty). */
    Cycle
    headTime() const
    {
        return heap_.empty() ? now_ : heap_.top().when;
    }

    /**
     * Install a hook invoked when run() gives up with work still
     * queued (event-budget exhaustion). The Machine points this at
     * the watchdog's structured diagnostic dump so a timed-out run
     * leaves the same post-mortem as a hung one.
     */
    void
    setDiagnosticHook(std::function<void(const char *)> hook)
    {
        diagHook_ = std::move(hook);
    }

    /**
     * Run events until the queue drains, stop() is called, or the
     * event budget is exhausted (a runaway-simulation guard).
     *
     * @param maxEvents Abort the run after this many events; 0 means
     *                  unlimited.
     * @return Number of events executed.
     */
    std::uint64_t run(std::uint64_t maxEvents = 0);

    /** Ask run() to return after the current event completes. */
    void stop() { stopped_ = true; }

    /** True if stop() ended the last run() call. */
    bool stopped() const { return stopped_; }

    /** Reset time to zero; queue must be empty. */
    void
    reset()
    {
        panic_if(!heap_.empty(), "resetting a non-empty event queue");
        now_ = 0;
        seq_ = 0;
        stopped_ = false;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        std::coroutine_handle<> coro;
        Callback fn;
        void *arg;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    bool stopped_ = false;
    std::function<void(const char *)> diagHook_;
};

} // namespace minnow

#endif // MINNOW_SIM_EVENT_QUEUE_HH
