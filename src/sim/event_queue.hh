/**
 * @file
 * Deterministic discrete-event engine.
 *
 * The whole simulation is single-host-threaded: simulated cores,
 * Minnow engines, and DRAM callbacks are all events on this queue.
 * Events at equal cycles fire in scheduling order, so runs are
 * bit-exact reproducible.
 *
 * Two event flavours are supported: resuming a suspended C++20
 * coroutine (the common case: a simulated thread waiting for memory),
 * and calling a plain function pointer with a context argument.
 *
 * Implementation: a hierarchical timing wheel rather than a binary
 * heap. Almost every event in this simulator is scheduled a small,
 * bounded number of cycles ahead (fixed L1/L2/L3/NoC/engine
 * latencies, all well under 1024), so events within the next
 * kWheelBuckets cycles go straight into a bucket indexed by
 * `when mod kWheelBuckets` — O(1) schedule, O(1) amortized pop, and
 * the bucket vectors recycle their storage so steady-state
 * scheduling performs zero allocation. Rare far-future events
 * (watchdog ticks, fault timers, stats-sampling intervals) sit in a
 * small overflow min-heap keyed by (when, seq) and migrate into the
 * wheel when the clock comes within the horizon. See DESIGN.md
 * "Event queue" for the geometry and the determinism argument.
 */

#ifndef MINNOW_SIM_EVENT_QUEUE_HH
#define MINNOW_SIM_EVENT_QUEUE_HH

#include <array>
#include <coroutine>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "base/ckpt.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace minnow
{

class HostProfiler;

namespace parallel
{
class ShardedScheduler;
}

/**
 * Overrides quiescent() when a queue is one shard wheel of a larger
 * group: "only daemons remain" must be judged over every wheel, or
 * a sampler on one wheel would stop re-arming while workers on
 * another wheel still have real work pending.
 */
struct QuiescenceProbe
{
    virtual ~QuiescenceProbe() = default;
    virtual bool quiescent() const = 0;
};

/** Global discrete-event queue; owns simulated time. */
class EventQueue
{
  public:
    using Callback = void (*)(void *);

    /**
     * Wheel geometry: the near-horizon window, in cycles. Power of
     * two so the bucket index is a mask. 1024 comfortably covers
     * every fixed latency in the machine model (DRAM access ~120 +
     * queueing, sync quantum 400); only multi-thousand-cycle timers
     * overflow.
     */
    static constexpr std::size_t kWheelBuckets = 1024;

    EventQueue() { occupied_.fill(0); }
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Stable reference to the clock (debug-trace timestamping). */
    const Cycle &nowRef() const { return now_; }

    /** Schedule a coroutine to resume at the given absolute cycle. */
    void
    schedule(Cycle when, std::coroutine_handle<> coro)
    {
        scheduleCompact(when, Compact{nullptr, coro.address()});
    }

    /** Schedule a callback at the given absolute cycle. */
    void
    schedule(Cycle when, Callback fn, void *arg)
    {
        scheduleCompact(when, Compact{fn, arg});
    }

    /**
     * True when nothing remains to execute. The event currently
     * being executed does not count as pending.
     */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /**
     * Daemon accounting for periodic housekeeping events (the stats
     * and timeline samplers, the watchdog). A daemon re-arms itself
     * only while real work remains — but "real work" must exclude
     * the other daemons, or any two of them keep each other alive
     * and run() never drains. Protocol: call daemonScheduled() when
     * scheduling the event, daemonFired() first thing in its
     * handler, and re-arm only while quiescent() is false.
     */
    void daemonScheduled() { ++daemons_; }

    void
    daemonFired()
    {
        panic_if(daemons_ == 0, "daemonFired with no daemon pending");
        --daemons_;
    }

    /** True when only daemon (housekeeping) events remain pending.
     *  With a probe attached (shard mode) the judgment is global. */
    bool
    quiescent() const
    {
        return qprobe_ ? qprobe_->quiescent() : size_ <= daemons_;
    }

    /** Pending daemon events on this queue alone. */
    std::size_t daemonsPending() const { return daemons_; }

    /** Attach a group-wide quiescence probe (null detaches). */
    void
    setQuiescenceProbe(const QuiescenceProbe *p)
    {
        qprobe_ = p;
    }

    /**
     * Shard mode (DESIGN.md section 5j): tag every scheduled event
     * with a value drawn from the machine-global sequence counter
     * @p seq (shared by all shard wheels). Bucket entries get a
     * parallel per-bucket sequence array and overflow entries use
     * the global value as their heap tie-break, so a k-way merge
     * across wheels by (cycle, seq) reproduces the exact global
     * scheduling order of the single-wheel path. Must be set before
     * any event is scheduled; a seq-tagged queue is driven by the
     * ShardedScheduler, never by its own run().
     */
    void
    setSeqSource(std::uint64_t *seq)
    {
        panic_if(size_ != 0,
                 "attaching a seq source to a non-empty queue");
        seqSource_ = seq;
        if (seq && !bucketSeqs_) {
            bucketSeqs_ = std::make_unique<
                std::array<std::vector<std::uint64_t>,
                           kWheelBuckets>>();
        }
    }

    /** Cycle of the earliest pending event (now() when empty). */
    Cycle headTime() const;

    /**
     * Install a hook invoked when run() gives up with work still
     * queued (event-budget exhaustion). The Machine points this at
     * the watchdog's structured diagnostic dump so a timed-out run
     * leaves the same post-mortem as a hung one.
     */
    void
    setDiagnosticHook(std::function<void(const char *)> hook)
    {
        diagHook_ = std::move(hook);
    }

    /**
     * Attach the host-side self-profiler (null detaches). When set,
     * run() reports per-event counts, wall-clock run time and
     * periodic queue-occupancy samples to it.
     */
    void setHostProfiler(HostProfiler *p) { prof_ = p; }

    /**
     * Run events until the queue drains, stop() is called, or the
     * event budget is exhausted (a runaway-simulation guard).
     * Events on the queue must not call run() themselves.
     *
     * @param maxEvents Abort the run after this many events; 0 means
     *                  unlimited.
     * @return Number of events executed.
     */
    std::uint64_t run(std::uint64_t maxEvents = 0);

    /** Ask run() to return after the current event completes. */
    void stop() { stopped_ = true; }

    /** True if stop() ended the last run() call. */
    bool stopped() const { return stopped_; }

    /** Events fully executed since construction (or reset()). */
    std::uint64_t executed() const { return executed_; }

    /**
     * One-shot: stop run() at the first event boundary where both
     * now() >= @p when and executed() >= @p execCount. The check
     * runs at the top of the run loop — between events, never from
     * inside one, and scheduling nothing — so arming it perturbs no
     * event ordering, sequence numbers, or daemon accounting, and
     * the caller may simply call run() again to continue.
     *
     * The two-coordinate condition makes the stop point exactly
     * reproducible: a replay arms (savedCycle, savedExec) from the
     * checkpoint and halts at the identical boundary, including the
     * clock-advance position within the loop (cycle alone is
     * ambiguous while the clock catches up to the anchor;
     * executed-count alone fires before pending clock advances).
     * The `--checkpoint-after=N` save side arms (N, 0).
     */
    void
    setStopTrigger(Cycle when, std::uint64_t execCount)
    {
        stopAtCycle_ = when;
        stopAtExec_ = execCount;
        stopTriggerArmed_ = true;
        stopTriggerFired_ = false;
        triggersArmed_ = true;
    }

    /** True once the stop trigger has halted a run(). */
    bool stopTriggerFired() const { return stopTriggerFired_; }

    /** Consume the fired flag so a resume loop can run() again. */
    void ackStopTrigger() { stopTriggerFired_ = false; }

    /**
     * Point the run loop at a signal-handler flag (null detaches).
     * The flag is polled every 1024 events; when it becomes nonzero,
     * run() returns at the next event boundary with interrupted()
     * true so the caller can flush stats and write a rescue
     * checkpoint. Polling at event boundaries keeps the interrupted
     * prefix of the run bit-identical to an uninterrupted one.
     */
    void
    setInterruptSource(const volatile std::sig_atomic_t *src)
    {
        interruptSource_ = src;
        triggersArmed_ = true;
    }

    /** True if the interrupt source ended the last run() call. */
    bool interrupted() const { return interrupted_; }

    /**
     * Reset to a freshly-constructed state: time zero, stop flag and
     * diagnostic hook cleared. The queue must be empty and must not
     * be executing. Bucket storage keeps its capacity (recycling).
     */
    void
    reset()
    {
        panic_if(size_ != 0, "resetting a non-empty event queue");
        panic_if(running_, "resetting the event queue from inside"
                 " run()");
        now_ = 0;
        daemons_ = 0;
        farSeq_ = 0;
        cursor_ = 0;
        stopped_ = false;
        diagHook_ = nullptr;
        executed_ = 0;
        interrupted_ = false;
        stopTriggerArmed_ = false;
        stopTriggerFired_ = false;
        triggersArmed_ = interruptSource_ != nullptr;
    }

    /**
     * Serialize the deterministic scheduling coordinates: the
     * clock, pending/daemon counts and the executed-event count.
     * The events themselves (bucket and heap contents) hold
     * coroutine addresses and cannot be serialized; a restore
     * replays deterministically to the same coordinates instead,
     * and this section is the witness it is compared against
     * (DESIGN.md section 5i). Only shard-count-invariant global
     * coordinates travel — the intra-bucket drain position and the
     * overflow tie-break are per-wheel layout, which is why a
     * checkpoint saved at --shards=4 restores at --shards=1: the
     * sharded Machine emits the same four fields summed over its
     * wheels (see Machine::checkpointSections).
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(now_);
        std::uint64_t v = size_;
        ck.io(v);
        if (ck.loading())
            size_ = std::size_t(v);
        v = daemons_;
        ck.io(v);
        if (ck.loading())
            daemons_ = std::size_t(v);
        ck.io(executed_);
        ck.transient("buckets_ bucketSeqs_ occupied_ far_ cursor_"
                     " farSeq_ stopped_ running_ diagHook_ prof_"
                     " qprobe_ seqSource_ interrupted_"
                     " interruptSource_ triggersArmed_ stopAtCycle_"
                     " stopAtExec_ stopTriggerArmed_"
                     " stopTriggerFired_");
    }

  private:
    /** Drives seq-tagged wheels via the shard* helpers below. */
    friend class parallel::ShardedScheduler;

    static constexpr std::size_t kWheelMask = kWheelBuckets - 1;
    static constexpr std::size_t kWheelWords = kWheelBuckets / 64;

    /**
     * 16-byte tagged event payload: fn == nullptr means arg is the
     * address of a coroutine to resume, otherwise fn(arg) is called.
     * Bucket entries carry no timestamp (the bucket implies it) and
     * no sequence number (bucket position is scheduling order).
     */
    struct Compact
    {
        Callback fn;
        void *arg;
    };

    /** Overflow entry: far-future events keep an explicit key. */
    struct FarEvent
    {
        Cycle when;
        std::uint64_t seq;
        Compact ev;

        bool
        operator>(const FarEvent &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    using Bucket = std::vector<Compact>;

    void
    scheduleCompact(Cycle when, Compact ev)
    {
        panic_if(when < now_, "scheduling into the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        if (when - now_ < kWheelBuckets) {
            std::size_t idx = std::size_t(when) & kWheelMask;
            buckets_[idx].push_back(ev);
            occupied_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
            if (seqSource_) [[unlikely]]
                (*bucketSeqs_)[idx].push_back((*seqSource_)++);
        } else {
            far_.push(FarEvent{
                when, seqSource_ ? (*seqSource_)++ : farSeq_++, ev});
        }
        ++size_;
    }

    // ---- shard-wheel helpers (ShardedScheduler only) ----

    /** An undrained event exists in the bucket for now_. */
    bool
    shardHasEventNow() const
    {
        return cursor_ <
               buckets_[std::size_t(now_) & kWheelMask].size();
    }

    /** Global seq of the next event at now_ (requires one). */
    std::uint64_t
    shardHeadSeq() const
    {
        return (*bucketSeqs_)[std::size_t(now_) & kWheelMask]
            [cursor_];
    }

    /** Pop the next event at now_ (requires shardHasEventNow()). */
    Compact
    shardPop()
    {
        Compact ev =
            buckets_[std::size_t(now_) & kWheelMask][cursor_++];
        --size_;
        return ev;
    }

    /** Recycle the bucket for now_ once fully drained. */
    void
    shardRecycleNow()
    {
        std::size_t idx = std::size_t(now_) & kWheelMask;
        Bucket &b = buckets_[idx];
        if (cursor_ < b.size() || b.empty())
            return;
        b.clear();
        (*bucketSeqs_)[idx].clear();
        occupied_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        cursor_ = 0;
    }

    /**
     * Advance the wheel clock to the group-wide next event time and
     * migrate overflow events that entered the horizon, in
     * (when, seq) order — the per-wheel half of the determinism
     * argument at the top of event_queue.cc.
     */
    void
    shardSyncTo(Cycle t)
    {
        now_ = t;
        while (!far_.empty() &&
               far_.top().when - now_ < kWheelBuckets) {
            const FarEvent &fe = far_.top();
            std::size_t idx = std::size_t(fe.when) & kWheelMask;
            buckets_[idx].push_back(fe.ev);
            (*bucketSeqs_)[idx].push_back(fe.seq);
            occupied_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
            far_.pop();
        }
    }

    /** Advance now_ to the next pending event's cycle. */
    void advance();

    /**
     * Cold path for the loop-top trigger/interrupt checks; returns
     * true when the interrupt source asks run() to stop.
     */
    bool pollTriggers();

    /**
     * Earliest occupied bucket cycle strictly after now_. At least
     * one wheel event beyond now_ must exist.
     */
    Cycle nextWheelTime() const;

    std::array<Bucket, kWheelBuckets> buckets_;
    /**
     * Shard mode only: per-bucket global sequence tags, parallel to
     * buckets_ (null on the legacy single-wheel path).
     */
    std::unique_ptr<
        std::array<std::vector<std::uint64_t>, kWheelBuckets>>
        bucketSeqs_;
    /** One bit per bucket; scan via std::countr_zero. */
    std::array<std::uint64_t, kWheelWords> occupied_;
    std::priority_queue<FarEvent, std::vector<FarEvent>,
                        std::greater<>>
        far_;

    Cycle now_ = 0;
    std::size_t size_ = 0;   //!< total pending events (wheel + far)
    std::size_t daemons_ = 0; //!< pending daemon events (<= size_)
    std::size_t cursor_ = 0; //!< drain position in the now_ bucket
    std::uint64_t farSeq_ = 0;
    bool stopped_ = false;
    bool running_ = false; //!< run() re-entrancy guard
    std::function<void(const char *)> diagHook_;
    HostProfiler *prof_ = nullptr;
    const QuiescenceProbe *qprobe_ = nullptr;
    /** Machine-global schedule counter (shard mode; else null). */
    std::uint64_t *seqSource_ = nullptr;

    std::uint64_t executed_ = 0; //!< events fully executed
    bool interrupted_ = false;
    /** True while the stop trigger or an interrupt source is armed. */
    bool triggersArmed_ = false;
    const volatile std::sig_atomic_t *interruptSource_ = nullptr;
    Cycle stopAtCycle_ = 0;
    std::uint64_t stopAtExec_ = 0;
    bool stopTriggerArmed_ = false;
    bool stopTriggerFired_ = false;
};

} // namespace minnow

#endif // MINNOW_SIM_EVENT_QUEUE_HH
