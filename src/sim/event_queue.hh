/**
 * @file
 * Deterministic discrete-event engine.
 *
 * The whole simulation is single-host-threaded: simulated cores,
 * Minnow engines, and DRAM callbacks are all events on this queue.
 * Events at equal cycles fire in scheduling order, so runs are
 * bit-exact reproducible.
 *
 * Two event flavours are supported: resuming a suspended C++20
 * coroutine (the common case: a simulated thread waiting for memory),
 * and calling a plain function pointer with a context argument.
 *
 * Implementation: a hierarchical timing wheel rather than a binary
 * heap. Almost every event in this simulator is scheduled a small,
 * bounded number of cycles ahead (fixed L1/L2/L3/NoC/engine
 * latencies, all well under 1024), so events within the next
 * kWheelBuckets cycles go straight into a bucket indexed by
 * `when mod kWheelBuckets` — O(1) schedule, O(1) amortized pop, and
 * the bucket vectors recycle their storage so steady-state
 * scheduling performs zero allocation. Rare far-future events
 * (watchdog ticks, fault timers, stats-sampling intervals) sit in a
 * small overflow min-heap keyed by (when, seq) and migrate into the
 * wheel when the clock comes within the horizon. See DESIGN.md
 * "Event queue" for the geometry and the determinism argument.
 */

#ifndef MINNOW_SIM_EVENT_QUEUE_HH
#define MINNOW_SIM_EVENT_QUEUE_HH

#include <array>
#include <coroutine>
#include <csignal>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/ckpt.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace minnow
{

class HostProfiler;

/** Global discrete-event queue; owns simulated time. */
class EventQueue
{
  public:
    using Callback = void (*)(void *);

    /**
     * Wheel geometry: the near-horizon window, in cycles. Power of
     * two so the bucket index is a mask. 1024 comfortably covers
     * every fixed latency in the machine model (DRAM access ~120 +
     * queueing, sync quantum 400); only multi-thousand-cycle timers
     * overflow.
     */
    static constexpr std::size_t kWheelBuckets = 1024;

    EventQueue() { occupied_.fill(0); }
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Stable reference to the clock (debug-trace timestamping). */
    const Cycle &nowRef() const { return now_; }

    /** Schedule a coroutine to resume at the given absolute cycle. */
    void
    schedule(Cycle when, std::coroutine_handle<> coro)
    {
        scheduleCompact(when, Compact{nullptr, coro.address()});
    }

    /** Schedule a callback at the given absolute cycle. */
    void
    schedule(Cycle when, Callback fn, void *arg)
    {
        scheduleCompact(when, Compact{fn, arg});
    }

    /**
     * True when nothing remains to execute. The event currently
     * being executed does not count as pending.
     */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /**
     * Daemon accounting for periodic housekeeping events (the stats
     * and timeline samplers, the watchdog). A daemon re-arms itself
     * only while real work remains — but "real work" must exclude
     * the other daemons, or any two of them keep each other alive
     * and run() never drains. Protocol: call daemonScheduled() when
     * scheduling the event, daemonFired() first thing in its
     * handler, and re-arm only while quiescent() is false.
     */
    void daemonScheduled() { ++daemons_; }

    void
    daemonFired()
    {
        panic_if(daemons_ == 0, "daemonFired with no daemon pending");
        --daemons_;
    }

    /** True when only daemon (housekeeping) events remain pending. */
    bool quiescent() const { return size_ <= daemons_; }

    /** Cycle of the earliest pending event (now() when empty). */
    Cycle headTime() const;

    /**
     * Install a hook invoked when run() gives up with work still
     * queued (event-budget exhaustion). The Machine points this at
     * the watchdog's structured diagnostic dump so a timed-out run
     * leaves the same post-mortem as a hung one.
     */
    void
    setDiagnosticHook(std::function<void(const char *)> hook)
    {
        diagHook_ = std::move(hook);
    }

    /**
     * Attach the host-side self-profiler (null detaches). When set,
     * run() reports per-event counts, wall-clock run time and
     * periodic queue-occupancy samples to it.
     */
    void setHostProfiler(HostProfiler *p) { prof_ = p; }

    /**
     * Run events until the queue drains, stop() is called, or the
     * event budget is exhausted (a runaway-simulation guard).
     * Events on the queue must not call run() themselves.
     *
     * @param maxEvents Abort the run after this many events; 0 means
     *                  unlimited.
     * @return Number of events executed.
     */
    std::uint64_t run(std::uint64_t maxEvents = 0);

    /** Ask run() to return after the current event completes. */
    void stop() { stopped_ = true; }

    /** True if stop() ended the last run() call. */
    bool stopped() const { return stopped_; }

    /** Events fully executed since construction (or reset()). */
    std::uint64_t executed() const { return executed_; }

    /**
     * One-shot: stop run() at the first event boundary where both
     * now() >= @p when and executed() >= @p execCount. The check
     * runs at the top of the run loop — between events, never from
     * inside one, and scheduling nothing — so arming it perturbs no
     * event ordering, sequence numbers, or daemon accounting, and
     * the caller may simply call run() again to continue.
     *
     * The two-coordinate condition makes the stop point exactly
     * reproducible: a replay arms (savedCycle, savedExec) from the
     * checkpoint and halts at the identical boundary, including the
     * clock-advance position within the loop (cycle alone is
     * ambiguous while the clock catches up to the anchor;
     * executed-count alone fires before pending clock advances).
     * The `--checkpoint-after=N` save side arms (N, 0).
     */
    void
    setStopTrigger(Cycle when, std::uint64_t execCount)
    {
        stopAtCycle_ = when;
        stopAtExec_ = execCount;
        stopTriggerArmed_ = true;
        stopTriggerFired_ = false;
        triggersArmed_ = true;
    }

    /** True once the stop trigger has halted a run(). */
    bool stopTriggerFired() const { return stopTriggerFired_; }

    /** Consume the fired flag so a resume loop can run() again. */
    void ackStopTrigger() { stopTriggerFired_ = false; }

    /**
     * Point the run loop at a signal-handler flag (null detaches).
     * The flag is polled every 1024 events; when it becomes nonzero,
     * run() returns at the next event boundary with interrupted()
     * true so the caller can flush stats and write a rescue
     * checkpoint. Polling at event boundaries keeps the interrupted
     * prefix of the run bit-identical to an uninterrupted one.
     */
    void
    setInterruptSource(const volatile std::sig_atomic_t *src)
    {
        interruptSource_ = src;
        triggersArmed_ = true;
    }

    /** True if the interrupt source ended the last run() call. */
    bool interrupted() const { return interrupted_; }

    /**
     * Reset to a freshly-constructed state: time zero, stop flag and
     * diagnostic hook cleared. The queue must be empty and must not
     * be executing. Bucket storage keeps its capacity (recycling).
     */
    void
    reset()
    {
        panic_if(size_ != 0, "resetting a non-empty event queue");
        panic_if(running_, "resetting the event queue from inside"
                 " run()");
        now_ = 0;
        daemons_ = 0;
        farSeq_ = 0;
        cursor_ = 0;
        stopped_ = false;
        diagHook_ = nullptr;
        executed_ = 0;
        interrupted_ = false;
        stopTriggerArmed_ = false;
        stopTriggerFired_ = false;
        triggersArmed_ = interruptSource_ != nullptr;
    }

    /**
     * Serialize the deterministic scheduling coordinates: the clock,
     * pending/daemon counts, the intra-bucket drain position and the
     * overflow tie-break sequence. The events themselves (bucket and
     * heap contents) hold coroutine addresses and cannot be
     * serialized; a restore replays deterministically to the same
     * coordinates instead, and this section is the witness it is
     * compared against (DESIGN.md section 5i).
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        ck.io(now_);
        std::uint64_t v = size_;
        ck.io(v);
        if (ck.loading())
            size_ = std::size_t(v);
        v = daemons_;
        ck.io(v);
        if (ck.loading())
            daemons_ = std::size_t(v);
        v = cursor_;
        ck.io(v);
        if (ck.loading())
            cursor_ = std::size_t(v);
        ck.io(farSeq_);
        ck.io(executed_);
        ck.transient("buckets_ occupied_ far_ stopped_ running_"
                     " diagHook_ prof_ interrupted_ interruptSource_"
                     " triggersArmed_ stopAtCycle_ stopAtExec_"
                     " stopTriggerArmed_ stopTriggerFired_");
    }

  private:
    static constexpr std::size_t kWheelMask = kWheelBuckets - 1;
    static constexpr std::size_t kWheelWords = kWheelBuckets / 64;

    /**
     * 16-byte tagged event payload: fn == nullptr means arg is the
     * address of a coroutine to resume, otherwise fn(arg) is called.
     * Bucket entries carry no timestamp (the bucket implies it) and
     * no sequence number (bucket position is scheduling order).
     */
    struct Compact
    {
        Callback fn;
        void *arg;
    };

    /** Overflow entry: far-future events keep an explicit key. */
    struct FarEvent
    {
        Cycle when;
        std::uint64_t seq;
        Compact ev;

        bool
        operator>(const FarEvent &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    using Bucket = std::vector<Compact>;

    void
    scheduleCompact(Cycle when, Compact ev)
    {
        panic_if(when < now_, "scheduling into the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        if (when - now_ < kWheelBuckets) {
            std::size_t idx = std::size_t(when) & kWheelMask;
            buckets_[idx].push_back(ev);
            occupied_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        } else {
            far_.push(FarEvent{when, farSeq_++, ev});
        }
        ++size_;
    }

    /** Advance now_ to the next pending event's cycle. */
    void advance();

    /**
     * Cold path for the loop-top trigger/interrupt checks; returns
     * true when the interrupt source asks run() to stop.
     */
    bool pollTriggers();

    /**
     * Earliest occupied bucket cycle strictly after now_. At least
     * one wheel event beyond now_ must exist.
     */
    Cycle nextWheelTime() const;

    std::array<Bucket, kWheelBuckets> buckets_;
    /** One bit per bucket; scan via std::countr_zero. */
    std::array<std::uint64_t, kWheelWords> occupied_;
    std::priority_queue<FarEvent, std::vector<FarEvent>,
                        std::greater<>>
        far_;

    Cycle now_ = 0;
    std::size_t size_ = 0;   //!< total pending events (wheel + far)
    std::size_t daemons_ = 0; //!< pending daemon events (<= size_)
    std::size_t cursor_ = 0; //!< drain position in the now_ bucket
    std::uint64_t farSeq_ = 0;
    bool stopped_ = false;
    bool running_ = false; //!< run() re-entrancy guard
    std::function<void(const char *)> diagHook_;
    HostProfiler *prof_ = nullptr;

    std::uint64_t executed_ = 0; //!< events fully executed
    bool interrupted_ = false;
    /** True while the stop trigger or an interrupt source is armed. */
    bool triggersArmed_ = false;
    const volatile std::sig_atomic_t *interruptSource_ = nullptr;
    Cycle stopAtCycle_ = 0;
    std::uint64_t stopAtExec_ = 0;
    bool stopTriggerArmed_ = false;
    bool stopTriggerFired_ = false;
};

} // namespace minnow

#endif // MINNOW_SIM_EVENT_QUEUE_HH
