/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A FaultInjector is configured from a compact spec string (the
 * --faults flag) and hands out yes/no and extra-delay decisions to
 * the components that model the faults: the Minnow engines (kill,
 * stall, credit starvation, dropped prefetches) and the memory
 * system (NoC and DRAM latency spikes, dropped hardware prefetches).
 *
 * Spec grammar (whitespace around tokens is ignored):
 *
 *   spec    := clause (';' clause)*
 *   clause  := kind (':' key '=' value (',' key '=' value)*)?
 *
 * Kinds and their keys:
 *
 *   engine_kill    core=<id>, at=<cycle>
 *       The engine owning <core> dies permanently at <at>: local
 *       tasks are rescued to the global queue, blocked workers are
 *       released and fall back to the software worklist path.
 *   engine_stall   core=<id>, at=<cycle>, dur=<cycles>
 *       Same degradation as a kill, but the engine recovers once
 *       the window [at, at+dur) ends.
 *   noc_delay      p=<prob>, add=<cycles> [, at=, dur=]
 *       Each NoC traversal in the window pays <add> extra cycles
 *       with probability p.
 *   dram_delay     p=<prob>, add=<cycles> [, at=, dur=]
 *       Each demand DRAM access in the window pays <add> extra
 *       cycles with probability p.
 *   drop_prefetch  p=<prob> [, core=, at=, dur=]
 *       Each prefetch issue (engine threadlet or hardware
 *       prefetcher) is silently lost with probability p. Dropped
 *       engine prefetches consume no credit.
 *   credit_starve  core=<id>, at=<cycle> [, dur=<cycles>]
 *       Credit-return messages to <core>'s engine are lost inside
 *       the window (dur absent = forever), shrinking the prefetch
 *       credit pool.
 *
 * Determinism contract: every stochastic decision flows through one
 * private Rng seeded from (seed, spec). Because the event queue is
 * single-threaded and bit-reproducible, two runs with the same
 * machine configuration, fault spec, and seed take identical fault
 * decisions and produce byte-identical stats JSON.
 */

#ifndef MINNOW_SIM_FAULT_HH
#define MINNOW_SIM_FAULT_HH

#include <string>
#include <vector>

#include "base/ckpt.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace minnow::timeline
{
class Timeline;
} // namespace minnow::timeline

namespace minnow
{

/** One parsed clause of a fault spec. */
struct FaultClause
{
    enum class Kind
    {
        EngineKill,
        EngineStall,
        NocDelay,
        DramDelay,
        DropPrefetch,
        CreditStarve,
    };

    Kind kind;
    /** Target core (engine faults, credit_starve, drop_prefetch). */
    CoreId core = kAnyCore;
    /** Onset cycle of the fault window. */
    Cycle at = 0;
    /** Window length; 0 means "until the end of the run". */
    Cycle dur = 0;
    /** Per-event probability (stochastic kinds; default fire always). */
    double p = 1.0;
    /** Extra latency in cycles (delay kinds). */
    Cycle add = 0;

    static constexpr CoreId kAnyCore = ~CoreId(0);

    /** kind as the spec-string keyword. */
    const char *kindName() const;
};

/** Aggregate counters for the "faults" stats group. */
struct FaultStats
{
    std::uint64_t nocDelays = 0;
    std::uint64_t nocDelayCycles = 0;
    std::uint64_t dramDelays = 0;
    std::uint64_t dramDelayCycles = 0;
    std::uint64_t prefetchDrops = 0;
    std::uint64_t creditsSwallowed = 0;
};

/**
 * Parses a fault spec and answers injection queries deterministically.
 *
 * The injector is owned by the Machine and consulted from the timing
 * paths; it holds no pointers into the components it perturbs, so the
 * memory system and the engines can both use it freely.
 */
class FaultInjector
{
  public:
    /** Parse spec (fatal() on malformed input) and seed the stream. */
    FaultInjector(const std::string &spec, std::uint64_t seed);

    ~FaultInjector()
    {
        // The "faults" formulas capture `this`; drop them before the
        // injector dies (the registry may outlive us).
        if (statsReg_)
            statsReg_->removeGroup("faults");
    }

    /** Bind the simulated clock (EventQueue::nowRef) for windows. */
    void bindClock(const Cycle *now) { now_ = now; }

    /**
     * Attach the machine's timeline (nullptr detaches): every fired
     * drop_prefetch / credit_starve decision emits an instant event
     * on the simulator track.
     */
    void bindTimeline(timeline::Timeline *tl) { tl_ = tl; }

    const std::vector<FaultClause> &clauses() const
    {
        return clauses_;
    }
    bool empty() const { return clauses_.empty(); }
    const std::string &spec() const { return spec_; }

    /** Extra cycles to add to one NoC traversal happening now. */
    Cycle nocExtraDelay();
    /** Extra cycles to add to one demand DRAM access happening now. */
    Cycle dramExtraDelay();
    /** Should this prefetch issue by/for `core` be dropped? */
    bool dropPrefetch(CoreId core);
    /** Is a credit return to `core`'s engine lost right now? */
    bool swallowCreditReturn(CoreId core);

    const FaultStats &stats() const { return stats_; }

    /** Register the "faults" group with injection counters. */
    void registerStats(StatsRegistry &reg);

    /**
     * Parse one clause; exposed for tests. fatal() on errors, naming
     * the offending token and its offset within the full spec
     * (@p base is the clause's start offset in that spec).
     */
    static FaultClause parseClause(const std::string &text,
                                   std::size_t base = 0);

    /**
     * Serialize the RNG stream position and injection counters. The
     * parsed clauses are construction-time config covered by the
     * machine-level config fingerprint; symmetric.
     */
    void
    checkpoint(ckpt::Ckpt &ck)
    {
        rng_.checkpoint(ck);
        ck.io(stats_);
        ck.transient("spec_ clauses_ now_ tl_ statsReg_");
    }

  private:
    Cycle now() const { return now_ ? *now_ : 0; }
    /** Is `c` active at the current cycle? */
    bool inWindow(const FaultClause &c) const;
    /** Does `c` target `core` (or any core)? */
    static bool targets(const FaultClause &c, CoreId core);

    std::string spec_;
    std::vector<FaultClause> clauses_;
    Rng rng_;
    const Cycle *now_ = nullptr;
    timeline::Timeline *tl_ = nullptr;
    FaultStats stats_;
    /** Registry holding our "faults" group (for dtor removal). */
    StatsRegistry *statsReg_ = nullptr;
};

} // namespace minnow

#endif // MINNOW_SIM_FAULT_HH
