/**
 * @file
 * Machine configuration structures mirroring Table 3 of the paper.
 *
 * Two presets are provided:
 *  - paperMachine(): the exact Table 3 parameters (64 Skylake-like
 *    cores, 256 KB L2, 64 MB L3, 12 DDR4-2400 channels).
 *  - scaledMachine(): same core microarchitecture but with caches
 *    scaled down ~4-64x so that the scaled graph inputs (Section 6 of
 *    DESIGN.md) stress the hierarchy the same way the paper's
 *    150 MB-1 GB inputs stress the real one. Benches default to this.
 */

#ifndef MINNOW_SIM_CONFIG_HH
#define MINNOW_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace minnow
{

class Options;

/** Out-of-order core limit-study parameters. */
struct CoreParams
{
    std::uint32_t dispatchWidth = 4; //!< uops dispatched per cycle.
    std::uint32_t robEntries = 224;  //!< reorder buffer size.
    std::uint32_t rsEntries = 97;    //!< unified reservation station.
    std::uint32_t lqEntries = 72;    //!< load queue size.
    std::uint32_t sqEntries = 56;    //!< store queue size.

    /** Redirect penalty for a mispredicted branch, in cycles. */
    std::uint32_t mispredictPenalty = 16;

    /**
     * TAGE does well on loop exits and visited-checks; residual
     * mispredict rates by branch kind (see cpu::BranchKind).
     */
    double loopMispredictRate = 0.01;
    double dataMispredictRate = 0.12;

    /** Model perfect branch prediction (Fig. 4 "ideal" mode). */
    bool perfectBranches = false;

    /** Model x86-TSO fences around atomics (Fig. 4 realistic mode). */
    bool atomicFences = true;
};

/** One cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 8;
    std::uint32_t latency = 4;       //!< hit latency in cycles.

    std::uint32_t sets() const
    {
        return std::uint32_t(sizeBytes / (assoc * kLineBytes));
    }
};

/** Mesh network-on-chip parameters (Table 3: 8x8, X-Y routing). */
struct NocParams
{
    std::uint32_t meshWidth = 8;     //!< tiles per row/column.
    std::uint32_t cyclesPerHop = 3;
    std::uint32_t linkBits = 512;    //!< payload bits per cycle per link.
    bool modelContention = true;
};

/** DRAM channel model (Table 3: 12-channel DDR4-2400 CL17). */
struct DramParams
{
    std::uint32_t channels = 12;

    /**
     * Random-access latency seen past the L3, in core cycles:
     * tRP+tRCD+tCL of DDR4-2400 (~42 ns) plus controller overheads,
     * at 2.5 GHz.
     */
    std::uint32_t accessLatency = 120;

    /**
     * Channel occupancy per 64 B line transfer in 1/128ths of a core
     * cycle. DDR4-2400 moves 19.2 GB/s; at 2.5 GHz that is 7.68 B per
     * core cycle, i.e. 64 B occupies the channel ~8.33 cycles -> 1067.
     */
    std::uint32_t serviceFp128 = 1067;
};

/** Minnow engine parameters (Table 3 bottom block + Section 5). */
struct MinnowParams
{
    bool enabled = false;            //!< attach engines at all.
    bool prefetchEnabled = false;    //!< worklist-directed prefetching.

    std::uint32_t localQueueEntries = 64;
    std::uint32_t localQueueLatency = 10; //!< core<->engine access.
    std::uint32_t loadBufferEntries = 32;
    std::uint32_t loadBufferWakeup = 4;   //!< CAM search latency.
    std::uint32_t threadletQueueEntries = 128;
    std::uint32_t prefetchCredits = 32;   //!< reserved L2 lines.

    /** Refill the local queue from the global worklist below this. */
    std::uint32_t refillThreshold = 16;

    /**
     * Maximum concurrently-active prefetchTask threadlets per
     * engine; bounds how far beyond the local-queue head the
     * prefetcher works so credits recycle just-in-time. 0 scales it
     * with the credit budget (max(4, credits/4)).
     */
    std::uint32_t prefetchWindow = 0;

    /**
     * Work sharing: when workers idle and nothing is stealable, a
     * busy engine flushes its local-queue excess to the global
     * worklist (a self-issued partial minnow_flush). Rescues the
     * tail of bursty runs whose frontier is small relative to
     * aggregate local-queue capacity.
     */
    bool workSharing = true;

    /**
     * Cores per engine (Section 4: "Cores may share a single Minnow
     * engine to reduce resources"). 1 = the paper's evaluated
     * dedicated-engine design. A shared engine attaches to its
     * first core's L2 and serves all its cores' accelerator calls,
     * so control-unit and local-queue contention emerge naturally.
     */
    std::uint32_t coresPerEngine = 1;

    /**
     * Dequeue bundling: one core->engine round-trip returns up to
     * this many tasks (same priority relaxation as chunked OBIM —
     * the bundle is drawn from the local-queue head). 1 = today's
     * single-task pop, bit-for-bit.
     */
    std::uint32_t dequeueBatch = 1;

    /**
     * Push/credit-return coalescing: enqueues and credit returns
     * buffer per core and flush to the engine when the buffer
     * reaches this size or a 4x localQueueLatency deadline expires,
     * amortizing the doorbell. 1 = unbuffered (today's behavior).
     */
    std::uint32_t pushBatch = 1;

    /**
     * Speculative next-task delivery: the engine deposits the
     * predicted next task into a core-side slot (OooCore) so the
     * common-case pop is a local hit; kill/stall/rescue reclaim the
     * slot back to the global worklist.
     */
    bool specSlot = false;
};

/** Which (if any) hardware L2 prefetcher the baseline cores use. */
enum class PrefetcherKind
{
    None,
    Stride,
    Imp,
};

/** Complete simulated machine. */
struct MachineConfig
{
    std::uint32_t numCores = 64;
    std::uint64_t coreFreqHz = 2'500'000'000ull;

    CoreParams core;
    CacheParams l1d{32 * 1024, 8, 4};
    CacheParams l2{256 * 1024, 8, 7};
    /** Per-core L3 bank; total L3 = numCores * l3Bank.sizeBytes. */
    CacheParams l3Bank{2 * 1024 * 1024, 16, 27};
    NocParams noc;
    DramParams dram;
    MinnowParams minnow;
    PrefetcherKind prefetcher = PrefetcherKind::None;

    /**
     * Functional-vs-timing skew bound: a simulated thread yields to
     * the event queue at least every this many local cycles.
     */
    std::uint32_t syncQuantum = 400;

    /**
     * When nonzero, the machine's stats registry snapshots every
     * non-histogram stat each this-many cycles (--stats-interval=);
     * samples ride along in the JSON stats export.
     */
    std::uint32_t statsSampleInterval = 0;

    /**
     * Fault-injection spec (--faults=; see sim/fault.hh for the
     * grammar). Empty disables injection entirely.
     */
    std::string faultSpec;

    /** RNG seed for the fault injector (--seed; replay contract). */
    std::uint64_t faultSeed = 1;

    /**
     * Watchdog check interval in cycles (--watchdog=). When nonzero
     * the machine arms a sim/watchdog.hh Watchdog that panics with a
     * structured diagnostic after `watchdogChecks` consecutive
     * checks without forward progress.
     */
    std::uint32_t watchdogInterval = 0;

    /** Consecutive stale checks before the watchdog trips. */
    std::uint32_t watchdogChecks = 4;

    /**
     * When nonempty, watchdog trips and event-budget timeouts write
     * their diagnostic JSON here (--diag-json=).
     */
    std::string diagnosticPath;

    /**
     * Best-effort stats JSON written by panic() before aborting
     * (--panic-stats=; empty disables the snapshot).
     */
    std::string panicStatsPath = "minnow-panic-stats.json";

    /**
     * Host-side self-profiling (--host-profile): measure events/sec,
     * host-ns per component class and queue-occupancy histograms,
     * exported as the "hostprof" stats group. Off by default (it
     * adds two clock reads per instrumented component entry).
     */
    bool hostProfile = false;

    /**
     * Simulated-time timeline trace (--timeline=FILE; see
     * sim/timeline.hh). Empty disables tracing entirely — no sink is
     * constructed and emit sites cost one null-check.
     */
    std::string timelinePath;

    /** Ring capacity in records (--timeline-buffer=N). */
    std::uint32_t timelineBufferCap = 1u << 18;

    /**
     * Category selection (--timeline-tracks=task,engine,credit,...);
     * empty or "all" records everything.
     */
    std::string timelineTracks;

    /** Counter-provider sampling period (--timeline-interval=N;
     *  0 disables the sampled counter tracks). */
    std::uint32_t timelineInterval = 1024;

    /**
     * Host-side shard count (--shards=N; DESIGN.md section 5j). At 1
     * (the default) the simulation takes the exact legacy
     * single-wheel path. Above 1 the machine splits into per-core-
     * cluster shards — each owning a contiguous, engine-aligned
     * slice of cores with its own timing wheel — woven in canonical
     * (cycle, seq) order by the ShardedScheduler, with a host-thread
     * pool (one lane per shard) taking the order-insensitive work.
     * Results are byte-identical across shard counts; this is a host
     * performance knob, not a model parameter, and deliberately does
     * NOT enter describe()/configFingerprint(): a checkpoint saved
     * at --shards=4 restores at --shards=1.
     */
    std::uint32_t shards = 1;

    /**
     * Causal attribution layer (--attribution; DESIGN.md section
     * 5k): per-prefetch lifecycle provenance (timely / late /
     * early-evicted / redundant / polluting classification with
     * issue→fill→use histograms, the "attribution" stats group) and
     * task lineage flows (push→pop arrows in the timeline trace).
     * Off by default: no tracker is constructed and every emit site
     * costs one null-check. Unlike --shards this is a model-visible
     * observability knob and enters the config fingerprint.
     */
    bool attribution = false;

    /**
     * Pollution / re-miss window in cycles (--attribution-window=N):
     * a line evicted by a prefetch fill counts as polluting only if
     * it demand-misses again within this many cycles.
     */
    std::uint32_t attributionWindow = 4096;

    std::uint64_t totalL3Bytes() const
    {
        return std::uint64_t(numCores) * l3Bank.sizeBytes;
    }

    /** Sanity-check invariants; fatal() on nonsense. */
    void validate() const;

    /** Apply --cores=, --rob=, --credits=, ... command-line overrides. */
    void applyOptions(const Options &opts);

    /** Human-readable multi-line description (Table 3 bench). */
    std::string describe() const;
};

/** Exact Table 3 machine. */
MachineConfig paperMachine();

/**
 * Cache-scaled machine for second-scale experiment runs: L1D 16 KB,
 * L2 64 KB, L3 32 KB/bank (2 MB total at 64 cores). Everything else
 * matches Table 3.
 */
MachineConfig scaledMachine();

} // namespace minnow

#endif // MINNOW_SIM_CONFIG_HH
