#include "sim/event_queue.hh"

namespace minnow
{

std::uint64_t
EventQueue::run(std::uint64_t maxEvents)
{
    stopped_ = false;
    std::uint64_t executed = 0;
    while (!heap_.empty() && !stopped_) {
        Event ev = heap_.top();
        heap_.pop();
        panic_if(ev.when < now_, "event time went backwards");
        now_ = ev.when;
        if (ev.coro) {
            ev.coro.resume();
        } else {
            ev.fn(ev.arg);
        }
        ++executed;
        if (maxEvents && executed >= maxEvents) {
            // Only a real timeout warns: hitting the budget on the
            // very last event is a completed run.
            if (!heap_.empty()) {
                warn("event budget of %llu exhausted; stopping"
                     " simulation",
                     (unsigned long long)maxEvents);
                if (diagHook_)
                    diagHook_("event budget exhausted");
            }
            break;
        }
    }
    return executed;
}

} // namespace minnow
