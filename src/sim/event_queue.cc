#include "sim/event_queue.hh"

#include <bit>

#include "sim/hostprof.hh"

namespace minnow
{

/*
 * Determinism argument (see also DESIGN.md "Event queue"):
 *
 * The observable contract is that events fire in (when, seq) order,
 * where seq is the global scheduling order. The wheel preserves it
 * without storing seq in bucket entries:
 *
 *  - A bucket holds only events for one cycle X (wheel entries
 *    satisfy now_ <= when < now_ + kWheelBuckets, so the index
 *    `when mod kWheelBuckets` is unambiguous), and push_back keeps
 *    them in scheduling order.
 *  - Once X enters the horizon (X - now_ < kWheelBuckets), it never
 *    leaves it: now_ is monotonic. So no event for X can be pushed
 *    to the overflow heap after any direct schedule for X existed.
 *  - advance() migrates overflow events into the wheel *eagerly*,
 *    before any user code runs at the new now_. The first advance
 *    that brings X inside the horizon therefore moves every overflow
 *    event for X (all scheduled earlier than any direct schedule for
 *    X, hence with smaller seq) into the bucket before the first
 *    direct schedule for X can happen, in heap (when, seq) order.
 *
 * Hence bucket position == seq order, and only the overflow heap
 * needs an explicit tie-break.
 */

std::uint64_t
EventQueue::run(std::uint64_t maxEvents)
{
    panic_if(running_,
             "EventQueue::run() re-entered from inside an event");
    panic_if(seqSource_, "a seq-tagged shard wheel is driven by the"
             " ShardedScheduler, not by its own run()");
    running_ = true;
    stopped_ = false;
    interrupted_ = false;
    if (prof_)
        prof_->beginRun();

    // Budget/diag handling is hoisted out of the per-event path: the
    // loop only decrements a counter, and the warn/diagnostic-hook
    // logic runs once after the loop.
    const std::uint64_t budget0 =
        maxEvents ? maxEvents : ~std::uint64_t(0);
    std::uint64_t budget = budget0;

    while (size_ != 0 && budget != 0 && !stopped_) {
        // Checkpoint triggers and the signal-interrupt poll live in
        // a cold helper behind one almost-always-false flag so the
        // hot path pays a single predicted branch.
        if (triggersArmed_ && pollTriggers()) [[unlikely]]
            break;
        Bucket &b = buckets_[std::size_t(now_) & kWheelMask];
        if (cursor_ >= b.size()) {
            // Bucket for now_ fully drained: recycle its storage
            // (clear() keeps capacity) and advance the clock.
            b.clear();
            std::size_t idx = std::size_t(now_) & kWheelMask;
            occupied_[idx >> 6] &=
                ~(std::uint64_t(1) << (idx & 63));
            cursor_ = 0;
            advance();
            continue;
        }
        // Copy out: executing the event may schedule at now_ and
        // grow (reallocate) this same bucket.
        Compact ev = b[cursor_++];
        --size_; // the executing event no longer counts as pending
        --budget;
        if (prof_)
            prof_->eventTick(size_);
        if (ev.fn)
            ev.fn(ev.arg);
        else
            std::coroutine_handle<>::from_address(ev.arg).resume();
        ++executed_;
    }

    // Normalize before returning so the occupancy bitmap is exact
    // across run() calls: if the loop exited with the now_ bucket
    // fully consumed but not yet recycled, recycle it here.
    {
        std::size_t idx = std::size_t(now_) & kWheelMask;
        Bucket &b = buckets_[idx];
        if (cursor_ != 0 && cursor_ >= b.size()) {
            b.clear();
            occupied_[idx >> 6] &=
                ~(std::uint64_t(1) << (idx & 63));
            cursor_ = 0;
        }
    }

    running_ = false;
    if (prof_)
        prof_->endRun();

    if (budget == 0 && size_ != 0 && !stopped_) {
        // Only a real timeout warns: hitting the budget on the very
        // last event is a completed run.
        warn("event budget of %llu exhausted; stopping simulation",
             (unsigned long long)maxEvents);
        if (diagHook_)
            diagHook_("event budget exhausted");
    }
    return budget0 - budget;
}

bool
EventQueue::pollTriggers()
{
    // One-shot stop trigger: halts between events and schedules
    // nothing, so a run with the trigger armed executes the same
    // event sequence as one without — the caller can run() again to
    // continue bit-identically.
    if (stopTriggerArmed_ && now_ >= stopAtCycle_ &&
        executed_ >= stopAtExec_) {
        stopTriggerArmed_ = false;
        stopTriggerFired_ = true;
        triggersArmed_ = interruptSource_ != nullptr;
        return true;
    }
    // Poll the signal flag only every 1024 events: a volatile read
    // per event would be measurable on the simspeed microbenchmark.
    if (interruptSource_ && (executed_ & 1023) == 0 &&
        *interruptSource_ != 0) {
        interrupted_ = true;
        return true;
    }
    return false;
}

void
EventQueue::advance()
{
    // The caller drained the bucket for now_; every remaining wheel
    // event lies strictly after now_ and strictly before
    // now_ + kWheelBuckets, while every overflow event lies at or
    // beyond now_ + kWheelBuckets — so the wheel, when non-empty,
    // always holds the earlier event.
    std::size_t wheelCount = size_ - far_.size();
    if (wheelCount != 0) {
        now_ = nextWheelTime();
    } else {
        now_ = far_.top().when;
    }

    // Eagerly pull overflow events that just entered the horizon
    // into their buckets, in (when, seq) order, before any event at
    // the new now_ executes. This keeps every bucket in global
    // scheduling order (see the file-top determinism argument).
    while (!far_.empty() &&
           far_.top().when - now_ < kWheelBuckets) {
        const FarEvent &fe = far_.top();
        std::size_t idx = std::size_t(fe.when) & kWheelMask;
        buckets_[idx].push_back(fe.ev);
        occupied_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        far_.pop();
    }
}

Cycle
EventQueue::nextWheelTime() const
{
    // Scan bucket indices in cycle order starting at now_ + 1: the
    // first word is masked below its start bit, then whole words
    // wrap around; the final iteration re-reads the first word so
    // its low (wrapped-around, i.e. farthest-cycle) bits are seen
    // last. A stale bit for the consumed now_ bucket maps to the
    // farthest possible cycle and cannot shadow a real event.
    const std::size_t start = (std::size_t(now_) + 1) & kWheelMask;
    std::size_t word = start >> 6;
    std::uint64_t bits =
        occupied_[word] & (~std::uint64_t(0) << (start & 63));
    for (std::size_t n = 0; n <= kWheelWords; ++n) {
        if (bits) {
            std::size_t idx =
                (word << 6) +
                std::size_t(std::countr_zero(bits));
            Cycle delta = Cycle((idx - start) & kWheelMask);
            return now_ + 1 + delta;
        }
        word = (word + 1) & (kWheelWords - 1);
        bits = occupied_[word];
    }
    panic("event wheel scan found no occupied bucket");
    return now_;
}

Cycle
EventQueue::headTime() const
{
    if (size_ == 0)
        return now_;
    const Bucket &b = buckets_[std::size_t(now_) & kWheelMask];
    if (cursor_ < b.size())
        return now_; // events still pending at the current cycle
    if (size_ > far_.size())
        return nextWheelTime();
    return far_.top().when;
}

} // namespace minnow
