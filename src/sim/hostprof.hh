/**
 * @file
 * Host-side self-profiling: how fast is the *simulator* running?
 *
 * Enabled with --host-profile. Measures, on the host wall clock:
 *
 *  - events/sec through the EventQueue (the universal currency of
 *    simulation speed) and total run() wall time,
 *  - host nanoseconds attributed per component class — core timing
 *    model, memory hierarchy, Minnow engines, worklist — via
 *    HostProfScope markers placed in the synchronous entry points of
 *    each component,
 *  - a queue-occupancy histogram (sampled every 64th event).
 *
 * Everything is exported through the existing StatsRegistry JSON
 * path as the "hostprof" group, so `--stats-json` dumps carry it and
 * scripts/bench_simspeed.py can harvest it.
 *
 * Attribution is exclusive: while a nested scope (e.g. the memory
 * system called from a core) is open, the outer class's clock is
 * paused. Time inside run() not covered by any scope (coroutine
 * resumption glue, the scheduler itself) shows up as "otherNs".
 *
 * IMPORTANT: a HostProfScope must never live across a co_await —
 * host time spent while the coroutine is suspended would be
 * misattributed. Only synchronous functions are instrumented.
 *
 * The profiler is single-threaded, matching the simulator. When no
 * profiler is active (the default), HostProfScope costs one static
 * load and a predictable branch.
 */

#ifndef MINNOW_SIM_HOSTPROF_HH
#define MINNOW_SIM_HOSTPROF_HH

#include <cstddef>
#include <cstdint>

#include "base/stats.hh"

namespace minnow
{

/** Component classes host time is attributed to. */
enum class HostClass : std::uint8_t
{
    Core = 0, //!< OOO core timing model
    Memory,   //!< caches + directory + NoC + DRAM
    Engine,   //!< Minnow engines (threadlets, credits, local queue)
    Worklist, //!< software worklists / global queue
    kNumClasses,
};

/** Collects host-speed measurements for one Machine. */
class HostProfiler
{
  public:
    HostProfiler() = default;
    ~HostProfiler()
    {
        deactivate();
        // The "hostprof" formulas capture `this`; drop them before
        // the profiler dies (the registry may outlive us).
        if (statsReg_)
            statsReg_->removeGroup("hostprof");
    }
    HostProfiler(const HostProfiler &) = delete;
    HostProfiler &operator=(const HostProfiler &) = delete;

    /**
     * Make this the process-wide active profiler picked up by
     * HostProfScope. Nesting-safe: the previously active profiler
     * (if any) is restored by deactivate().
     */
    void activate();

    /** Detach; no-op unless this profiler is the active one. */
    void deactivate();

    /** The profiler HostProfScope reports to (null when disabled). */
    static HostProfiler *active() { return active_; }

    // ---- EventQueue side ----

    void beginRun();
    void endRun();

    /** Per-event hook; @p depth is the post-pop queue occupancy. */
    void
    eventTick(std::size_t depth)
    {
        ++events_;
        if ((events_ & (kOccupancyPeriod - 1)) == 0)
            occupancy_.sample(depth);
    }

    // ---- component side (via HostProfScope) ----

    void enter(HostClass c);
    void exit();

    /** Register the "hostprof" group. */
    void registerStats(StatsRegistry &reg);

    std::uint64_t events() const { return events_; }

    /** Total run() wall time so far, live even mid-run. */
    std::uint64_t wallNs() const;

    std::uint64_t
    classNs(HostClass c) const
    {
        return classNs_[std::size_t(c)];
    }

  private:
    static constexpr std::uint64_t kOccupancyPeriod = 64;
    static constexpr std::size_t kMaxDepth = 64;

    static std::uint64_t nowNs();

    static HostProfiler *active_;
    HostProfiler *prev_ = nullptr;
    bool activated_ = false;

    std::uint64_t events_ = 0;
    std::uint64_t runs_ = 0;
    std::uint64_t runNs_ = 0;
    std::uint64_t runStart_ = 0;
    bool inRun_ = false;

    std::uint64_t classNs_[std::size_t(HostClass::kNumClasses)] = {};
    std::uint64_t classCalls_[std::size_t(HostClass::kNumClasses)] =
        {};
    std::uint8_t stack_[kMaxDepth] = {};
    std::size_t depth_ = 0;
    std::uint64_t sliceStart_ = 0;

    StatHistogram occupancy_;

    /** Registry holding our "hostprof" group (for dtor removal). */
    StatsRegistry *statsReg_ = nullptr;
};

/**
 * RAII attribution marker. Place at the top of a *synchronous*
 * component entry point; never across a co_await.
 */
class HostProfScope
{
  public:
    explicit HostProfScope(HostClass c) : p_(HostProfiler::active())
    {
        if (p_)
            p_->enter(c);
    }
    ~HostProfScope()
    {
        if (p_)
            p_->exit();
    }
    HostProfScope(const HostProfScope &) = delete;
    HostProfScope &operator=(const HostProfScope &) = delete;

  private:
    HostProfiler *p_;
};

} // namespace minnow

#endif // MINNOW_SIM_HOSTPROF_HH
