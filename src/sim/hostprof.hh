/**
 * @file
 * Host-side self-profiling: how fast is the *simulator* running?
 *
 * Enabled with --host-profile. Measures, on the host wall clock:
 *
 *  - events/sec through the EventQueue (the universal currency of
 *    simulation speed) and total run() wall time,
 *  - host nanoseconds attributed per component class — core timing
 *    model, memory hierarchy, Minnow engines, worklist — via
 *    HostProfScope markers placed in the synchronous entry points of
 *    each component,
 *  - a queue-occupancy histogram (sampled every 64th event).
 *
 * Everything is exported through the existing StatsRegistry JSON
 * path as the "hostprof" group, so `--stats-json` dumps carry it and
 * scripts/bench_simspeed.py can harvest it.
 *
 * Attribution is exclusive: while a nested scope (e.g. the memory
 * system called from a core) is open, the outer class's clock is
 * paused. Time inside run() not covered by any scope (coroutine
 * resumption glue, the scheduler itself) shows up as "otherNs".
 *
 * IMPORTANT: a HostProfScope must never live across a co_await —
 * host time spent while the coroutine is suspended would be
 * misattributed. Only synchronous functions are instrumented.
 *
 * Sharded-host mode (--shards=N, DESIGN.md 5j): the ShardPool's
 * worker threads attribute into per-lane counter banks. Each host
 * thread is bound to a lane with setThreadLane() once at spawn, and
 * the pool attaches the machine's profiler to a worker for exactly
 * the span of each fork-join job with setThreadActive(); the active
 * pointer is thread-local so an idle worker costs nothing and a
 * foreign Machine's scopes never cross-talk. Lane banks are
 * cache-line separated and merged only at report time, in lane
 * order, by the stats formulas (which run on the leader). The
 * barrierWaitNs stat — wired via setBarrierWaitSource() — exposes
 * the pool's epoch-barrier wait time so a shards sweep can tell
 * load imbalance from real speedup. When no profiler is active (the
 * default), HostProfScope costs one thread-local load and a
 * predictable branch.
 */

#ifndef MINNOW_SIM_HOSTPROF_HH
#define MINNOW_SIM_HOSTPROF_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "base/stats.hh"

namespace minnow
{

/** Component classes host time is attributed to. */
enum class HostClass : std::uint8_t
{
    Core = 0, //!< OOO core timing model
    Memory,   //!< caches + directory + NoC + DRAM
    Engine,   //!< Minnow engines (threadlets, credits, local queue)
    Worklist, //!< software worklists / global queue
    kNumClasses,
};

/** Collects host-speed measurements for one Machine. */
class HostProfiler
{
  public:
    /** Attribution lanes (leader + pool workers); more host threads
     *  than this fold into the last lane. */
    static constexpr std::size_t kMaxLanes = 16;

    HostProfiler() = default;
    ~HostProfiler()
    {
        deactivate();
        // The "hostprof" formulas capture `this`; drop them before
        // the profiler dies (the registry may outlive us).
        if (statsReg_)
            statsReg_->removeGroup("hostprof");
    }
    HostProfiler(const HostProfiler &) = delete;
    HostProfiler &operator=(const HostProfiler &) = delete;

    /**
     * Make this the process-wide active profiler picked up by
     * HostProfScope. Nesting-safe: the previously active profiler
     * (if any) is restored by deactivate().
     */
    void activate();

    /** Detach; no-op unless this profiler is the active one. */
    void deactivate();

    /** The profiler HostProfScope reports to (null when disabled).
     *  Thread-local: pool workers see only what setThreadActive()
     *  attached to them. */
    static HostProfiler *active() { return active_; }

    /**
     * Bind the calling host thread to an attribution lane. Called
     * once per ShardPool worker at spawn (lane 0 is the leader and
     * needs no call). Lanes beyond the compiled-in maximum fold into
     * the last lane — attribution stays correct, only per-lane
     * resolution degrades.
     */
    static void
    setThreadLane(std::uint32_t lane)
    {
        threadLane_ = lane < kMaxLanes ? lane : kMaxLanes - 1;
    }

    /**
     * Attach @p p as the calling thread's active profiler for the
     * duration of a pool job (null detaches). Workers call this
     * around each job so scopes inside the job attribute to the
     * owning Machine's profiler; between jobs the thread profiles
     * nothing.
     */
    static void setThreadActive(HostProfiler *p) { active_ = p; }

    /**
     * Source for the epoch-barrier wait total (host ns pool lanes
     * spent blocked at fork/join barriers); reported as
     * hostprof.barrierWaitNs.
     */
    void
    setBarrierWaitSource(std::function<std::uint64_t()> fn)
    {
        barrierWaitFn_ = std::move(fn);
    }

    // ---- EventQueue side ----

    void beginRun();
    void endRun();

    /** Per-event hook; @p depth is the post-pop queue occupancy. */
    void
    eventTick(std::size_t depth)
    {
        ++events_;
        if ((events_ & (kOccupancyPeriod - 1)) == 0)
            occupancy_.sample(depth);
    }

    // ---- component side (via HostProfScope) ----

    void enter(HostClass c);
    void exit();

    /** Register the "hostprof" group. */
    void registerStats(StatsRegistry &reg);

    std::uint64_t events() const { return events_; }

    /** Total run() wall time so far, live even mid-run. */
    std::uint64_t wallNs() const;

    /** Host ns attributed to @p c, merged over all lanes. */
    std::uint64_t
    classNs(HostClass c) const
    {
        std::uint64_t sum = 0;
        for (std::size_t l = 0; l < kMaxLanes; ++l)
            sum += lanes_[l].classNs[std::size_t(c)];
        return sum;
    }

    /** Instrumented calls into @p c, merged over all lanes. */
    std::uint64_t
    classCalls(HostClass c) const
    {
        std::uint64_t sum = 0;
        for (std::size_t l = 0; l < kMaxLanes; ++l)
            sum += lanes_[l].classCalls[std::size_t(c)];
        return sum;
    }

  private:
    static constexpr std::uint64_t kOccupancyPeriod = 64;
    static constexpr std::size_t kMaxDepth = 64;

    static std::uint64_t nowNs();

    static thread_local HostProfiler *active_;
    static thread_local std::uint32_t threadLane_;
    HostProfiler *prev_ = nullptr;
    bool activated_ = false;

    std::uint64_t events_ = 0;
    std::uint64_t runs_ = 0;
    std::uint64_t runNs_ = 0;
    std::uint64_t runStart_ = 0;
    bool inRun_ = false;

    /**
     * One attribution bank per host-thread lane. Cache-line
     * separated so concurrent scope bookkeeping on pool workers
     * never false-shares; each lane is only ever written by its own
     * thread, and the merge happens at report time on the leader
     * (after the join barrier, so the values are stable).
     */
    struct alignas(64) Lane
    {
        std::uint64_t classNs[std::size_t(HostClass::kNumClasses)] =
            {};
        std::uint64_t
            classCalls[std::size_t(HostClass::kNumClasses)] = {};
        std::uint8_t stack[kMaxDepth] = {};
        std::size_t depth = 0;
        std::uint64_t sliceStart = 0;
    };
    Lane lanes_[kMaxLanes];

    StatHistogram occupancy_;

    /** Pool epoch-barrier wait total (null when not sharded). */
    std::function<std::uint64_t()> barrierWaitFn_;

    /** Registry holding our "hostprof" group (for dtor removal). */
    StatsRegistry *statsReg_ = nullptr;
};

/**
 * RAII attribution marker. Place at the top of a *synchronous*
 * component entry point; never across a co_await.
 */
class HostProfScope
{
  public:
    explicit HostProfScope(HostClass c) : p_(HostProfiler::active())
    {
        if (p_)
            p_->enter(c);
    }
    ~HostProfScope()
    {
        if (p_)
            p_->exit();
    }
    HostProfScope(const HostProfScope &) = delete;
    HostProfScope &operator=(const HostProfScope &) = delete;

  private:
    HostProfiler *p_;
};

} // namespace minnow

#endif // MINNOW_SIM_HOSTPROF_HH
