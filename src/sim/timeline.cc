#include "sim/timeline.hh"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"
#include "sim/event_queue.hh"

namespace minnow::timeline
{

namespace
{

constexpr const char *kCatNames[std::size_t(Cat::kNum)] = {
    "task", "engine", "threadlet", "credit", "worklist", "mem", "sim",
};

constexpr const char *kNameStrings[std::size_t(Name::kNum)] = {
    "task",
    "dequeue",
    "popWait",
    "push",
    "app",
    "worklist",
    "idle",
    "fillBatch",
    "fillDaemon",
    "spill",
    "spillDrain",
    "prefetchTask",
    "prefetchEdge",
    "engineKill",
    "engineStall",
    "engineRecover",
    "tasksRescued",
    "faultPrefetchDrop",
    "faultCreditSwallow",
    "watchdogTrip",
    "diagnostic",
    "creditHandoff",
    "specDeposit",
    "specReclaim",
    "lineage",
    "prefetch",
};

const char *
pidName(std::uint32_t pid)
{
    switch (Pid(pid)) {
      case Pid::Cores: return "cores";
      case Pid::Engines: return "engines";
      case Pid::Threadlets: return "threadlets";
      case Pid::Counters: return "counters";
      case Pid::Phases: return "phases";
      case Pid::Sim: return "sim";
    }
    return "unknown";
}

// Same number/string grammar as base/stats.cc so trace files diff
// byte-exactly across runs.
void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
jsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "0";
        return;
    }
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        out += buf;
    }
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

} // anonymous namespace

const char *
nameString(Name n)
{
    return kNameStrings[std::size_t(n)];
}

std::uint32_t
allCats()
{
    return (1u << std::uint32_t(Cat::kNum)) - 1;
}

std::uint32_t
parseTracks(const std::string &csv)
{
    if (csv.empty())
        return allCats();
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string tok = csv.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace (mirrors trace::enableList).
        while (!tok.empty() &&
               std::isspace(static_cast<unsigned char>(tok.front())))
            tok.erase(tok.begin());
        while (!tok.empty() &&
               std::isspace(static_cast<unsigned char>(tok.back())))
            tok.pop_back();
        if (tok.empty())
            continue;
        if (tok == "all")
            return allCats();
        bool found = false;
        for (std::size_t c = 0; c < std::size_t(Cat::kNum); ++c) {
            if (tok == kCatNames[c]) {
                mask |= 1u << c;
                found = true;
                break;
            }
        }
        fatal_if(!found,
                 "unknown --timeline-tracks category '%s' (valid: "
                 "task,engine,threadlet,credit,worklist,mem,sim,all)",
                 tok.c_str());
    }
    return mask ? mask : allCats();
}

Timeline::Timeline(std::size_t bufferCap, std::uint32_t catMask)
    : catMask_(catMask), ring_(bufferCap ? bufferCap : 1)
{
    simTrack_ = addTrack(Cat::Sim, Pid::Sim, 0, "sim");
}

TrackId
Timeline::addTrack(Cat cat, Pid pid, std::uint32_t tid,
                   std::string name)
{
    if (!wants(cat))
        return kNoTrack;
    tracks_.push_back(Track{cat, std::uint32_t(pid), tid,
                            std::move(name)});
    return TrackId(tracks_.size() - 1);
}

TrackId
Timeline::addCounterTrack(Cat cat, std::string name)
{
    if (!wants(cat))
        return kNoTrack;
    return addTrack(cat, Pid::Counters, counterTid_++,
                    std::move(name));
}

void
Timeline::registerCoreTracks(std::uint32_t numCores)
{
    coreTasks_.resize(numCores, kNoTrack);
    corePhases_.resize(numCores, kNoTrack);
    for (std::uint32_t c = 0; c < numCores; ++c) {
        coreTasks_[c] = addTrack(Cat::Task, Pid::Cores, c,
                                 "core" + std::to_string(c));
        corePhases_[c] =
            addTrack(Cat::Task, Pid::Phases, c,
                     "core" + std::to_string(c) + ".phase");
    }
}

void
Timeline::push(const Record &r)
{
    if (written_ >= ring_.size())
        ++dropped_;
    ring_[head_] = r;
    head_ = (head_ + 1) % ring_.size();
    ++written_;
}

void
Timeline::span(TrackId t, Name n, Cycle begin, Cycle end)
{
    if (t == kNoTrack)
        return;
    if (end < begin)
        end = begin;
    Record r;
    r.begin = begin;
    r.extra = end;
    r.track = t;
    r.name = std::uint16_t(n);
    r.kind = std::uint8_t(RecKind::Span);
    push(r);
    ++spans_;
}

void
Timeline::instant(TrackId t, Name n, Cycle at)
{
    if (t == kNoTrack)
        return;
    Record r;
    r.begin = at;
    r.extra = at;
    r.track = t;
    r.name = std::uint16_t(n);
    r.kind = std::uint8_t(RecKind::Instant);
    push(r);
    ++instants_;
}

void
Timeline::counter(TrackId t, Cycle at, double value)
{
    if (t == kNoTrack)
        return;
    Record r;
    r.begin = at;
    r.extra = std::bit_cast<std::uint64_t>(value);
    r.track = t;
    r.name = 0;
    r.kind = std::uint8_t(RecKind::Counter);
    push(r);
    ++counterRecs_;
}

void
Timeline::flowRec(TrackId t, Name n, Cycle at, std::uint64_t id,
                  RecKind kind)
{
    if (t == kNoTrack)
        return;
    Record r;
    r.begin = at;
    r.extra = id;
    r.track = t;
    r.name = std::uint16_t(n);
    r.kind = std::uint8_t(kind);
    push(r);
    ++flowRecs_;
}

void
Timeline::flowStart(TrackId t, Name n, Cycle at, std::uint64_t id)
{
    flowRec(t, n, at, id, RecKind::FlowStart);
}

void
Timeline::flowStep(TrackId t, Name n, Cycle at, std::uint64_t id)
{
    flowRec(t, n, at, id, RecKind::FlowStep);
}

void
Timeline::flowEnd(TrackId t, Name n, Cycle at, std::uint64_t id)
{
    flowRec(t, n, at, id, RecKind::FlowEnd);
}

void
Timeline::taskSample(TaskPhase p, Cycle duration)
{
    HistogramStat *h = taskHist_[std::size_t(p)];
    if (h)
        h->sample(duration);
}

void
Timeline::addCounterProvider(Cat cat, const std::string &name,
                             const void *owner,
                             std::function<double()> fn)
{
    TrackId t = addCounterTrack(cat, name);
    if (t == kNoTrack)
        return;
    Provider p;
    p.track = t;
    p.owner = owner;
    p.fn = std::move(fn);
    providers_.push_back(std::move(p));
}

void
Timeline::removeProviders(const void *owner)
{
    std::erase_if(providers_, [owner](const Provider &p) {
        return p.owner == owner;
    });
}

void
Timeline::startSampling(EventQueue &eq, Cycle interval)
{
    fatal_if(interval == 0, "timeline sampling interval must be > 0");
    if (sampler_)
        return; // already armed.
    sampler_ = std::make_unique<Sampler>();
    sampler_->tl = this;
    sampler_->eq = &eq;
    sampler_->interval = interval;
    eq.daemonScheduled();
    eq.schedule(eq.now() + interval, &Timeline::sampleEvent,
                sampler_.get());
}

void
Timeline::sampleEvent(void *arg)
{
    auto *s = static_cast<Sampler *>(arg);
    s->eq->daemonFired();
    s->tl->pollProviders(s->eq->now());
    // Re-arm only while non-daemon work remains: against empty()
    // alone, this sampler and any other periodic daemon (stats
    // sampler, watchdog) would keep each other alive forever.
    if (!s->eq->quiescent()) {
        s->eq->daemonScheduled();
        s->eq->schedule(s->eq->now() + s->interval,
                        &Timeline::sampleEvent, s);
    }
}

void
Timeline::pollProviders(Cycle at)
{
    for (Provider &p : providers_) {
        double v = p.fn();
        // NaN means "no sample yet" (windowed providers return it
        // until one full window has elapsed); note NaN == last is
        // always false, so this must be an explicit skip.
        if (std::isnan(v))
            continue;
        if (p.hasLast && v == p.last)
            continue; // unchanged: the flat line is implied.
        p.last = v;
        p.hasLast = true;
        counter(p.track, at, v);
    }
}

void
Timeline::registerStats(StatsRegistry &reg)
{
    statsReg_ = &reg;
    StatsGroup &g = reg.freshGroup("timeline");
    g.formula("events", "total records emitted",
              [this] { return double(written_); });
    g.formula("spans", "span records emitted",
              [this] { return double(spans_); });
    g.formula("instants", "instant records emitted",
              [this] { return double(instants_); });
    g.formula("counterSamples", "counter records emitted",
              [this] { return double(counterRecs_); });
    g.formula("flowLegs", "flow-arrow leg records emitted",
              [this] { return double(flowRecs_); });
    g.formula("droppedEvents", "oldest records lost to ring wrap",
              [this] { return double(dropped_); });
    g.formula("bufferCapacity", "ring capacity in records",
              [this] { return double(ring_.size()); });

    static constexpr const char *kPhaseNames[] = {
        "popWait", "dequeue", "execute", "push",
    };
    static constexpr const char *kPhaseDescs[] = {
        "cycles parked waiting for work, per park",
        "cycles inside pop/minnow_dequeue, per task",
        "cycles running the operator, per task",
        "cycles inside push/minnow_enqueue, per push",
    };
    for (std::size_t p = 0; p < std::size_t(TaskPhase::kNum); ++p) {
        HistogramStat &h =
            g.histogram(kPhaseNames[p], kPhaseDescs[p], 64, 256);
        taskHist_[p] = &h;
        for (double frac : {0.50, 0.95, 0.99}) {
            char name[32];
            std::snprintf(name, sizeof(name), "%sP%.0f",
                          kPhaseNames[p], frac * 100);
            g.formula(name, "task-latency percentile (cycles)",
                      [&h, frac] {
                          return double(h.percentile(frac));
                      });
        }
    }
}

std::size_t
Timeline::recorded() const
{
    return std::size_t(std::min<std::uint64_t>(written_,
                                               ring_.size()));
}

std::string
Timeline::toJson() const
{
    // One export event, post-ordering: ph selects the JSON shape.
    struct Ev
    {
        Cycle ts;
        char ph; // 'B', 'E', 'i', 'C', 's', 't', 'f'
        TrackId track;
        std::uint16_t name = 0;
        double value = 0;
        std::uint64_t id = 0; // flow id for 's'/'t'/'f'.
    };
    struct SpanRec
    {
        Cycle begin;
        Cycle end;
        std::uint64_t idx; // emission order, tie-break.
        std::uint16_t name;
    };
    struct FlowLeg
    {
        Cycle ts;
        std::uint64_t id;
        std::uint64_t idx;
        TrackId track;
        std::uint16_t name;
        std::uint8_t kind; // 0 start, 1 step, 2 end.
    };

    const std::size_t count = recorded();
    const std::size_t oldest = written_ > ring_.size() ? head_ : 0;

    // Partition the surviving records per track (track ids are
    // assigned in registration order, so this is deterministic).
    std::vector<std::vector<SpanRec>> spansBy(tracks_.size());
    std::vector<std::vector<Ev>> othersBy(tracks_.size());
    std::vector<FlowLeg> flowLegs;
    for (std::size_t i = 0; i < count; ++i) {
        const Record &r = ring_[(oldest + i) % ring_.size()];
        switch (RecKind(r.kind)) {
          case RecKind::Span:
            spansBy[r.track].push_back(
                SpanRec{r.begin, Cycle(r.extra), i, r.name});
            break;
          case RecKind::Instant:
            othersBy[r.track].push_back(
                Ev{r.begin, 'i', r.track, r.name, 0});
            break;
          case RecKind::Counter:
            othersBy[r.track].push_back(
                Ev{r.begin, 'C', r.track, 0,
                   std::bit_cast<double>(r.extra)});
            break;
          case RecKind::FlowStart:
          case RecKind::FlowStep:
          case RecKind::FlowEnd:
            flowLegs.push_back(FlowLeg{
                r.begin, r.extra, i, r.track, r.name,
                std::uint8_t(std::uint8_t(r.kind) -
                             std::uint8_t(RecKind::FlowStart))});
            break;
        }
    }

    std::vector<Ev> evs;
    evs.reserve(count * 2);
    for (TrackId t = 0; t < tracks_.size(); ++t) {
        // Spans on one track nest by construction; rebuild the B/E
        // stream with an explicit stack so that an inner span sharing
        // its begin cycle with its enclosing span still opens second
        // and closes first (a naive sort by timestamp alone would
        // cross the pairs).
        auto &sp = spansBy[t];
        std::sort(sp.begin(), sp.end(),
                  [](const SpanRec &a, const SpanRec &b) {
                      if (a.begin != b.begin)
                          return a.begin < b.begin;
                      if (a.end != b.end)
                          return a.end > b.end;
                      return a.idx < b.idx;
                  });
        std::vector<SpanRec> stack;
        for (const SpanRec &s : sp) {
            while (!stack.empty() && stack.back().end <= s.begin) {
                evs.push_back(Ev{stack.back().end, 'E', t});
                stack.pop_back();
            }
            SpanRec cur = s;
            // Emit sites produce properly nested spans per track;
            // clamp defensively so a buggy site can never make the
            // export Perfetto-rejectable.
            if (!stack.empty() && cur.end > stack.back().end)
                cur.end = stack.back().end;
            evs.push_back(Ev{cur.begin, 'B', t, cur.name});
            stack.push_back(cur);
        }
        while (!stack.empty()) {
            evs.push_back(Ev{stack.back().end, 'E', t});
            stack.pop_back();
        }
        for (const Ev &e : othersBy[t])
            evs.push_back(e);
    }
    // Flow arrows: group legs by id and emit only complete flows —
    // at least one start and one end, start earliest and end latest
    // after ordering by (ts, kind, emission order). A leg lost to
    // ring wrap (or a never-terminated flow) drops the whole id, so
    // the export can never contain a dangling 's'.
    std::sort(flowLegs.begin(), flowLegs.end(),
              [](const FlowLeg &a, const FlowLeg &b) {
                  if (a.id != b.id)
                      return a.id < b.id;
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  return a.idx < b.idx;
              });
    static constexpr char kFlowPh[] = {'s', 't', 'f'};
    for (std::size_t i = 0; i < flowLegs.size();) {
        std::size_t j = i;
        while (j < flowLegs.size() &&
               flowLegs[j].id == flowLegs[i].id)
            ++j;
        bool complete = flowLegs[i].kind == 0 &&
                        flowLegs[j - 1].kind == 2;
        for (std::size_t k = i + 1; complete && k < j - 1; ++k)
            complete = flowLegs[k].kind == 1;
        if (complete) {
            for (std::size_t k = i; k < j; ++k) {
                const FlowLeg &l = flowLegs[k];
                evs.push_back(Ev{l.ts, kFlowPh[l.kind], l.track,
                                 l.name, 0, l.id});
            }
        }
        i = j;
    }
    // Tracks were appended in id order and each track's stream is
    // already time-sorted, so a stable sort by timestamp alone keeps
    // every per-track B/E ordering intact.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const Ev &a, const Ev &b) {
                         return a.ts < b.ts;
                     });

    std::string out;
    out.reserve(256 + evs.size() * 64);
    out += "{\"schema\":\"minnow-timeline-1\","
           "\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ',';
        first = false;
    };

    // Metadata first: name the processes and threads so Perfetto
    // shows "cores / core3" instead of bare numbers.
    std::vector<std::uint32_t> pids;
    for (const Track &tr : tracks_) {
        if (std::find(pids.begin(), pids.end(), tr.pid) == pids.end())
            pids.push_back(tr.pid);
    }
    std::sort(pids.begin(), pids.end());
    for (std::uint32_t pid : pids) {
        sep();
        out += "{\"ph\":\"M\",\"pid\":";
        appendU64(out, pid);
        out += ",\"name\":\"process_name\",\"args\":{\"name\":\"";
        jsonEscape(out, pidName(pid));
        out += "\"}}";
        sep();
        out += "{\"ph\":\"M\",\"pid\":";
        appendU64(out, pid);
        out += ",\"name\":\"process_sort_index\",\"args\":"
               "{\"sort_index\":";
        appendU64(out, pid);
        out += "}}";
    }
    for (const Track &tr : tracks_) {
        sep();
        out += "{\"ph\":\"M\",\"pid\":";
        appendU64(out, tr.pid);
        out += ",\"tid\":";
        appendU64(out, tr.tid);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        jsonEscape(out, tr.name);
        out += "\"}}";
        sep();
        out += "{\"ph\":\"M\",\"pid\":";
        appendU64(out, tr.pid);
        out += ",\"tid\":";
        appendU64(out, tr.tid);
        out += ",\"name\":\"thread_sort_index\",\"args\":"
               "{\"sort_index\":";
        appendU64(out, tr.tid);
        out += "}}";
    }

    for (const Ev &e : evs) {
        const Track &tr = tracks_[e.track];
        sep();
        out += "{\"ph\":\"";
        out += e.ph;
        out += "\",\"pid\":";
        appendU64(out, tr.pid);
        out += ",\"tid\":";
        appendU64(out, tr.tid);
        out += ",\"ts\":";
        appendU64(out, e.ts);
        switch (e.ph) {
          case 'B':
            out += ",\"name\":\"";
            jsonEscape(out, kNameStrings[e.name]);
            out += "\",\"cat\":\"";
            out += kCatNames[std::size_t(tr.cat)];
            out += '"';
            break;
          case 'i':
            out += ",\"name\":\"";
            jsonEscape(out, kNameStrings[e.name]);
            out += "\",\"cat\":\"";
            out += kCatNames[std::size_t(tr.cat)];
            out += "\",\"s\":\"t\"";
            break;
          case 'C':
            out += ",\"name\":\"";
            jsonEscape(out, tr.name);
            out += "\",\"args\":{\"value\":";
            jsonNumber(out, e.value);
            out += '}';
            break;
          case 's':
          case 't':
          case 'f':
            out += ",\"name\":\"";
            jsonEscape(out, kNameStrings[e.name]);
            out += "\",\"cat\":\"";
            out += kCatNames[std::size_t(tr.cat)];
            out += "\",\"id\":";
            appendU64(out, e.id);
            if (e.ph == 'f')
                out += ",\"bp\":\"e\"";
            break;
          default: // 'E' carries no name.
            break;
        }
        out += '}';
    }

    out += "],\"otherData\":{\"droppedEvents\":";
    appendU64(out, dropped_);
    out += ",\"recordedEvents\":";
    appendU64(out, std::uint64_t(count));
    out += ",\"capacity\":";
    appendU64(out, std::uint64_t(ring_.size()));
    out += "}}";
    return out;
}

bool
Timeline::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
              json.size();
    ok = std::fputc('\n', f) != EOF && ok;
    return std::fclose(f) == 0 && ok;
}

} // namespace minnow::timeline
