#include "sim/fault.hh"

#include <cctype>
#include <cstdlib>

#include "base/logging.hh"
#include "sim/timeline.hh"

namespace minnow
{

namespace
{

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/**
 * Absolute spec offset of token @p tok inside @p text (which itself
 * starts at @p base in the spec). Searches from @p from so repeated
 * tokens resolve to the occurrence being parsed.
 */
std::size_t
tokenOffset(const std::string &text, const std::string &tok,
            std::size_t base, std::size_t from = 0)
{
    if (tok.empty())
        return base + from;
    std::size_t pos = text.find(tok, from);
    return base + (pos == std::string::npos ? from : pos);
}

std::uint64_t
parseUint(const std::string &key, const std::string &value,
          std::size_t off)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(value.c_str(), &end, 0);
    fatal_if(end == value.c_str() || *end != '\0',
             "fault spec: bad value '%s' for key '%s' at offset %zu",
             value.c_str(), key.c_str(), off);
    return v;
}

double
parseProb(const std::string &value, std::size_t off)
{
    char *end = nullptr;
    double p = std::strtod(value.c_str(), &end);
    fatal_if(end == value.c_str() || *end != '\0',
             "fault spec: bad probability '%s' at offset %zu",
             value.c_str(), off);
    fatal_if(p < 0.0 || p > 1.0,
             "fault spec: probability '%s' at offset %zu is outside "
             "[0, 1]", value.c_str(), off);
    return p;
}

/** FNV-1a over the spec so different specs get unrelated streams. */
std::uint64_t
hashSpec(const std::string &spec)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : spec) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // anonymous namespace

const char *
FaultClause::kindName() const
{
    switch (kind) {
      case Kind::EngineKill:
        return "engine_kill";
      case Kind::EngineStall:
        return "engine_stall";
      case Kind::NocDelay:
        return "noc_delay";
      case Kind::DramDelay:
        return "dram_delay";
      case Kind::DropPrefetch:
        return "drop_prefetch";
      case Kind::CreditStarve:
        return "credit_starve";
    }
    return "?";
}

FaultClause
FaultInjector::parseClause(const std::string &text, std::size_t base)
{
    std::size_t colon = text.find(':');
    std::string kind = trim(text.substr(0, colon));
    std::size_t kindOff = tokenOffset(text, kind, base);

    FaultClause c;
    bool needsCore = false;
    if (kind == "engine_kill") {
        c.kind = FaultClause::Kind::EngineKill;
        needsCore = true;
    } else if (kind == "engine_stall") {
        c.kind = FaultClause::Kind::EngineStall;
        needsCore = true;
    } else if (kind == "noc_delay") {
        c.kind = FaultClause::Kind::NocDelay;
    } else if (kind == "dram_delay") {
        c.kind = FaultClause::Kind::DramDelay;
    } else if (kind == "drop_prefetch") {
        c.kind = FaultClause::Kind::DropPrefetch;
    } else if (kind == "credit_starve") {
        c.kind = FaultClause::Kind::CreditStarve;
        needsCore = true;
    } else {
        fatal("fault spec: unknown fault kind '%s' at offset %zu",
              kind.c_str(), kindOff);
    }

    if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start <= text.size()) {
            std::size_t comma = text.find(',', start);
            std::size_t end =
                comma == std::string::npos ? text.size() : comma;
            std::string kv = trim(text.substr(start, end - start));
            std::size_t kvOff = tokenOffset(text, kv, base, start);
            std::size_t eq = kv.find('=');
            fatal_if(!kv.empty() && eq == std::string::npos,
                     "fault spec: expected key=value, got '%s' at "
                     "offset %zu", kv.c_str(), kvOff);
            if (!kv.empty()) {
                std::string key = trim(kv.substr(0, eq));
                std::string value = trim(kv.substr(eq + 1));
                std::size_t valOff =
                    tokenOffset(text, value, base, start + eq + 1);
                if (key == "core") {
                    c.core = CoreId(parseUint(key, value, valOff));
                } else if (key == "at") {
                    c.at = parseUint(key, value, valOff);
                } else if (key == "dur") {
                    c.dur = parseUint(key, value, valOff);
                } else if (key == "p") {
                    c.p = parseProb(value, valOff);
                } else if (key == "add") {
                    c.add = parseUint(key, value, valOff);
                } else {
                    fatal("fault spec: unknown key '%s' at offset "
                          "%zu", key.c_str(), kvOff);
                }
            }
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }

    fatal_if(needsCore && c.core == FaultClause::kAnyCore,
             "fault spec: clause '%s' at offset %zu needs core=<id>",
             kind.c_str(), kindOff);
    fatal_if(c.kind == FaultClause::Kind::EngineStall && c.dur == 0,
             "fault spec: clause '%s' at offset %zu needs "
             "dur=<cycles>", kind.c_str(), kindOff);
    fatal_if((c.kind == FaultClause::Kind::NocDelay ||
              c.kind == FaultClause::Kind::DramDelay) &&
                 c.add == 0,
             "fault spec: clause '%s' at offset %zu needs "
             "add=<cycles>", kind.c_str(), kindOff);
    return c;
}

FaultInjector::FaultInjector(const std::string &spec,
                             std::uint64_t seed)
    : spec_(spec), rng_(seed ^ hashSpec(spec))
{
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t semi = spec.find(';', start);
        std::size_t end =
            semi == std::string::npos ? spec.size() : semi;
        std::string clause = spec.substr(start, end - start);
        if (!trim(clause).empty())
            clauses_.push_back(parseClause(clause, start));
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    fatal_if(clauses_.empty(), "fault spec '%s' has no clauses",
             spec.c_str());
}

bool
FaultInjector::inWindow(const FaultClause &c) const
{
    Cycle t = now();
    if (t < c.at)
        return false;
    return c.dur == 0 || t < c.at + c.dur;
}

bool
FaultInjector::targets(const FaultClause &c, CoreId core)
{
    return c.core == FaultClause::kAnyCore || c.core == core;
}

Cycle
FaultInjector::nocExtraDelay()
{
    Cycle extra = 0;
    for (const FaultClause &c : clauses_) {
        if (c.kind != FaultClause::Kind::NocDelay || !inWindow(c))
            continue;
        if (rng_.chance(c.p)) {
            stats_.nocDelays += 1;
            stats_.nocDelayCycles += c.add;
            extra += c.add;
        }
    }
    return extra;
}

Cycle
FaultInjector::dramExtraDelay()
{
    Cycle extra = 0;
    for (const FaultClause &c : clauses_) {
        if (c.kind != FaultClause::Kind::DramDelay || !inWindow(c))
            continue;
        if (rng_.chance(c.p)) {
            stats_.dramDelays += 1;
            stats_.dramDelayCycles += c.add;
            extra += c.add;
        }
    }
    return extra;
}

bool
FaultInjector::dropPrefetch(CoreId core)
{
    for (const FaultClause &c : clauses_) {
        if (c.kind != FaultClause::Kind::DropPrefetch ||
            !targets(c, core) || !inWindow(c))
            continue;
        if (rng_.chance(c.p)) {
            stats_.prefetchDrops += 1;
            if (tl_)
                tl_->instant(tl_->simTrack(),
                             timeline::Name::FaultPrefetchDrop,
                             now());
            return true;
        }
    }
    return false;
}

bool
FaultInjector::swallowCreditReturn(CoreId core)
{
    for (const FaultClause &c : clauses_) {
        if (c.kind != FaultClause::Kind::CreditStarve ||
            !targets(c, core) || !inWindow(c))
            continue;
        stats_.creditsSwallowed += 1;
        if (tl_)
            tl_->instant(tl_->simTrack(),
                         timeline::Name::FaultCreditSwallow, now());
        return true;
    }
    return false;
}

void
FaultInjector::registerStats(StatsRegistry &reg)
{
    statsReg_ = &reg;
    StatsGroup &g = reg.freshGroup("faults");
    g.formula("clauses", "parsed fault clauses in the spec",
              [this] { return double(clauses_.size()); });
    g.formula("nocDelays", "NoC traversals hit by a delay fault",
              [this] { return double(stats_.nocDelays); });
    g.formula("nocDelayCycles", "extra NoC cycles injected",
              [this] { return double(stats_.nocDelayCycles); });
    g.formula("dramDelays", "DRAM accesses hit by a delay fault",
              [this] { return double(stats_.dramDelays); });
    g.formula("dramDelayCycles", "extra DRAM cycles injected",
              [this] { return double(stats_.dramDelayCycles); });
    g.formula("prefetchDrops", "prefetch issues dropped by faults",
              [this] { return double(stats_.prefetchDrops); });
    g.formula("creditsSwallowed",
              "credit returns lost to starvation faults",
              [this] { return double(stats_.creditsSwallowed); });
}

} // namespace minnow
