#include "sim/config.hh"

#include <cstdio>

#include "base/bits.hh"
#include "base/logging.hh"
#include "base/options.hh"

namespace minnow
{

void
MachineConfig::validate() const
{
    fatal_if(numCores == 0, "machine needs at least one core");
    fatal_if(numCores > noc.meshWidth * noc.meshWidth,
             "%u cores do not fit on a %ux%u mesh", numCores,
             noc.meshWidth, noc.meshWidth);
    for (const CacheParams *c : {&l1d, &l2, &l3Bank}) {
        fatal_if(c->sizeBytes == 0, "cache size must be nonzero");
        fatal_if(c->sizeBytes % (c->assoc * kLineBytes) != 0,
                 "cache size %llu not divisible by assoc*line",
                 (unsigned long long)c->sizeBytes);
        fatal_if(!isPow2(c->sets()), "cache set count must be pow2");
    }
    fatal_if(core.robEntries == 0 || core.lqEntries == 0 ||
             core.sqEntries == 0, "core windows must be nonzero");
    fatal_if(dram.channels == 0, "need at least one DRAM channel");
    fatal_if(minnow.enabled && minnow.localQueueEntries == 0,
             "Minnow local queue must be nonzero");
    fatal_if(minnow.prefetchEnabled && !minnow.enabled,
             "prefetching requires Minnow engines");
    fatal_if(minnow.prefetchEnabled && minnow.prefetchCredits == 0,
             "prefetching requires at least one credit");
    fatal_if(minnow.enabled && minnow.dequeueBatch == 0,
             "--dequeue-batch must be at least 1");
    fatal_if(minnow.enabled && minnow.pushBatch == 0,
             "--push-batch must be at least 1");
    fatal_if(watchdogInterval != 0 && watchdogChecks == 0,
             "watchdog needs at least one stale check to trip");
    fatal_if(!timelinePath.empty() && timelineBufferCap == 0,
             "--timeline needs a nonzero --timeline-buffer");
    fatal_if(shards == 0, "--shards must be at least 1");
    fatal_if(attribution && attributionWindow == 0,
             "--attribution needs a nonzero --attribution-window");
}

void
MachineConfig::applyOptions(const Options &opts)
{
    numCores = std::uint32_t(opts.getUint("cores", numCores));
    core.robEntries =
        std::uint32_t(opts.getUint("rob", core.robEntries));
    core.rsEntries = std::uint32_t(opts.getUint("rs", core.rsEntries));
    core.lqEntries = std::uint32_t(opts.getUint("lq", core.lqEntries));
    core.sqEntries = std::uint32_t(opts.getUint("sq", core.sqEntries));
    core.perfectBranches =
        opts.getBool("perfect-branches", core.perfectBranches);
    core.atomicFences = opts.getBool("fences", core.atomicFences);

    l1d.sizeBytes = opts.getUint("l1d-bytes", l1d.sizeBytes);
    l2.sizeBytes = opts.getUint("l2-bytes", l2.sizeBytes);
    l3Bank.sizeBytes = opts.getUint("l3-bank-bytes", l3Bank.sizeBytes);
    dram.channels =
        std::uint32_t(opts.getUint("mem-channels", dram.channels));

    statsSampleInterval = std::uint32_t(
        opts.getUint("stats-interval", statsSampleInterval));
    hostProfile = opts.getBool("host-profile", hostProfile);
    // Host performance knob only — byte-identical results across
    // values, so it never enters describe()/configFingerprint().
    shards = std::uint32_t(opts.getUint("shards", shards));

    // Causal attribution layer (DESIGN.md 5k). Model-visible (the
    // tracker serializes into checkpoints), so it DOES enter
    // describe()/configFingerprint(), unlike --shards.
    attribution = opts.getBool("attribution", attribution);
    attributionWindow = std::uint32_t(
        opts.getUint("attribution-window", attributionWindow));

    // Simulated-time timeline tracing (sim/timeline.hh).
    timelinePath = opts.getString("timeline", timelinePath);
    timelineBufferCap = std::uint32_t(
        opts.getUint("timeline-buffer", timelineBufferCap));
    timelineTracks = opts.getString("timeline-tracks", timelineTracks);
    timelineInterval = std::uint32_t(
        opts.getUint("timeline-interval", timelineInterval));

    // Robustness knobs: fault injection and the hang watchdog. The
    // injector reuses the benches' --seed so a fault run replays
    // from the same command line.
    faultSpec = opts.getString("faults", faultSpec);
    faultSeed = opts.getUint("seed", faultSeed);
    watchdogInterval = std::uint32_t(
        opts.getUint("watchdog", watchdogInterval));
    watchdogChecks = std::uint32_t(
        opts.getUint("watchdog-checks", watchdogChecks));
    diagnosticPath = opts.getString("diag-json", diagnosticPath);
    panicStatsPath = opts.getString("panic-stats", panicStatsPath);

    minnow.enabled = opts.getBool("minnow", minnow.enabled);
    minnow.prefetchEnabled =
        opts.getBool("minnow-prefetch", minnow.prefetchEnabled);
    minnow.prefetchCredits = std::uint32_t(
        opts.getUint("credits", minnow.prefetchCredits));
    minnow.localQueueEntries = std::uint32_t(
        opts.getUint("localq", minnow.localQueueEntries));
    minnow.loadBufferEntries = std::uint32_t(
        opts.getUint("loadbuf", minnow.loadBufferEntries));
    minnow.workSharing =
        opts.getBool("work-sharing", minnow.workSharing);
    minnow.coresPerEngine = std::uint32_t(
        opts.getUint("cores-per-engine", minnow.coresPerEngine));
    minnow.dequeueBatch = std::uint32_t(
        opts.getUint("dequeue-batch", minnow.dequeueBatch));
    minnow.pushBatch = std::uint32_t(
        opts.getUint("push-batch", minnow.pushBatch));
    minnow.specSlot = opts.getBool("spec-slot", minnow.specSlot);

    std::string pf = opts.getString("prefetcher", "");
    if (pf == "stride") {
        prefetcher = PrefetcherKind::Stride;
    } else if (pf == "imp") {
        prefetcher = PrefetcherKind::Imp;
    } else if (pf == "none" || pf.empty()) {
        if (!pf.empty())
            prefetcher = PrefetcherKind::None;
    } else {
        fatal("unknown --prefetcher=%s (none|stride|imp)", pf.c_str());
    }

    // Grow the mesh if more cores were requested than tiles exist.
    while (numCores > noc.meshWidth * noc.meshWidth)
        noc.meshWidth *= 2;
}

std::string
MachineConfig::describe() const
{
    char buf[1536];
    std::snprintf(buf, sizeof(buf),
        "Cores                %u OOO cores @ %.1f GHz\n"
        "  dispatch width     %u uops/cycle\n"
        "  reorder buffer     %u entries\n"
        "  reservation stn    %u entries, unified\n"
        "  load-store queue   %u load, %u store entries\n"
        "  branch predictor   TAGE-like (loop %.1f%%, data %.1f%% miss)"
        "%s\n"
        "  atomics            %s\n"
        "L1 data cache        %llu KB, %u-way, %u cycles\n"
        "L2 cache             %llu KB, %u-way, %u cycles\n"
        "L3 cache             %llu KB total, %llu KB/bank, %u-way,"
        " %u cycles\n"
        "NoC                  %ux%u mesh, %u bits/cycle/link,"
        " X-Y routing, %u cycles/hop\n"
        "Main memory          %u-channel, %u-cycle access,"
        " %.2f B/cycle/channel\n"
        "Minnow engine        %s\n"
        "  local queue        %u entries, %u-cycle access\n"
        "  load buffer        %u entries, %u-cycle wakeup\n"
        "  prefetch           %s, %u credits\n"
        "Attribution          %s, %u-cycle window",
        numCores, coreFreqHz / 1e9,
        core.dispatchWidth, core.robEntries, core.rsEntries,
        core.lqEntries, core.sqEntries,
        100.0 * core.loopMispredictRate,
        100.0 * core.dataMispredictRate,
        core.perfectBranches ? " [perfect]" : "",
        core.atomicFences ? "fenced (x86-TSO)" : "unfenced (ideal)",
        (unsigned long long)(l1d.sizeBytes / 1024), l1d.assoc,
        l1d.latency,
        (unsigned long long)(l2.sizeBytes / 1024), l2.assoc, l2.latency,
        (unsigned long long)(totalL3Bytes() / 1024),
        (unsigned long long)(l3Bank.sizeBytes / 1024), l3Bank.assoc,
        l3Bank.latency,
        noc.meshWidth, noc.meshWidth, noc.linkBits, noc.cyclesPerHop,
        dram.channels, dram.accessLatency,
        64.0 * 128.0 / dram.serviceFp128,
        minnow.enabled ? "enabled" : "disabled",
        minnow.localQueueEntries, minnow.localQueueLatency,
        minnow.loadBufferEntries, minnow.loadBufferWakeup,
        minnow.prefetchEnabled ? "worklist-directed" : "off",
        minnow.prefetchCredits,
        attribution ? "enabled" : "disabled", attributionWindow);
    return buf;
}

MachineConfig
paperMachine()
{
    MachineConfig m;
    // Defaults in the struct definitions are already Table 3.
    return m;
}

MachineConfig
scaledMachine()
{
    MachineConfig m;
    m.l1d.sizeBytes = 16 * 1024;
    m.l2.sizeBytes = 64 * 1024;
    m.l3Bank.sizeBytes = 32 * 1024;
    return m;
}

} // namespace minnow
