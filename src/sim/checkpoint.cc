#include "sim/checkpoint.hh"

#include <array>
#include <cstdio>
#include <cstring>

namespace minnow::ckpt
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

/** Bounds-checked little-endian reads over the validated buffer. */
struct Cursor
{
    const std::uint8_t *p;
    std::size_t len;
    std::size_t pos = 0;

    bool
    need(std::size_t n) const
    {
        return pos + n <= len;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(p[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(p[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }
};

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
Writer::add(const std::string &name,
            std::vector<std::uint8_t> bytes)
{
    Section s;
    s.name = name;
    s.crc = crc32(bytes.data(), bytes.size());
    s.bytes = std::move(bytes);
    sections_.push_back(std::move(s));
}

std::vector<std::uint8_t>
Writer::encode() const
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic, kMagic + kMagicLen);
    putU32(out, std::uint32_t(sections_.size()));
    for (const Section &s : sections_) {
        putU32(out, std::uint32_t(s.name.size()));
        out.insert(out.end(), s.name.begin(), s.name.end());
        putU64(out, s.bytes.size());
        out.insert(out.end(), s.bytes.begin(), s.bytes.end());
        putU32(out, s.crc);
    }
    putU32(out, crc32(out.data(), out.size()));
    return out;
}

std::string
Writer::writeFile(const std::string &path) const
{
    std::vector<std::uint8_t> buf = encode();
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return "cannot open " + tmp + " for writing";
    std::size_t n = buf.empty()
        ? 0
        : std::fwrite(buf.data(), 1, buf.size(), f);
    bool writeOk = n == buf.size();
    bool closeOk = std::fclose(f) == 0;
    if (!writeOk || !closeOk) {
        std::remove(tmp.c_str());
        return "short write to " + tmp;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return "cannot rename " + tmp + " to " + path;
    }
    return "";
}

std::string
Reader::openFile(const std::string &path)
{
    sections_.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "cannot open checkpoint " + path;
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (sz < 0) {
        std::fclose(f);
        return "cannot size checkpoint " + path;
    }
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(sz));
    std::size_t n = buf.empty()
        ? 0
        : std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    if (n != buf.size())
        return "short read of checkpoint " + path;
    std::string err = decode(buf);
    if (!err.empty())
        return path + ": " + err;
    return "";
}

std::string
Reader::decode(const std::vector<std::uint8_t> &buf)
{
    sections_.clear();

    // Magic/version first: a different version must say so rather
    // than fail an opaque CRC check.
    if (buf.size() < kMagicLen + 8)
        return "truncated: " + std::to_string(buf.size()) +
               " bytes is smaller than any valid checkpoint";
    if (std::memcmp(buf.data(), kMagic, kMagicLen) != 0) {
        std::string got(reinterpret_cast<const char *>(buf.data()),
                        kMagicLen);
        for (char &c : got) {
            if (c < 0x20 || c > 0x7E)
                c = '?';
        }
        return "bad magic/version '" + got + "' (want '" +
               std::string(kMagic, kMagicLen - 1) + "')";
    }

    // Whole-file CRC before trusting any length field, so corrupted
    // section tables cannot steer reads out of bounds.
    Cursor c{buf.data(), buf.size() - 4};
    std::uint32_t want = 0;
    for (int i = 0; i < 4; ++i) {
        want |= std::uint32_t(buf[buf.size() - 4 + std::size_t(i)])
                << (8 * i);
    }
    std::uint32_t got = crc32(buf.data(), buf.size() - 4);
    if (got != want)
        return "file CRC mismatch (stored " + std::to_string(want) +
               ", computed " + std::to_string(got) + ")";

    c.pos = kMagicLen;
    if (!c.need(4))
        return "truncated before section count";
    std::uint32_t count = c.u32();
    std::vector<Section> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (!c.need(4))
            return "truncated in section " + std::to_string(i) +
                   " header";
        std::uint32_t nameLen = c.u32();
        if (!c.need(nameLen))
            return "truncated in section " + std::to_string(i) +
                   " name";
        std::string name(
            reinterpret_cast<const char *>(c.p + c.pos), nameLen);
        c.pos += nameLen;
        if (!c.need(8))
            return "truncated in section '" + name + "' length";
        std::uint64_t payLen = c.u64();
        if (payLen > c.len - c.pos)
            return "section '" + name + "' length " +
                   std::to_string(payLen) + " overruns the file";
        Section s;
        s.name = name;
        s.bytes.assign(c.p + c.pos, c.p + c.pos + payLen);
        c.pos += std::size_t(payLen);
        if (!c.need(4))
            return "truncated in section '" + name + "' CRC";
        s.crc = c.u32();
        std::uint32_t payCrc =
            crc32(s.bytes.data(), s.bytes.size());
        if (payCrc != s.crc)
            return "section '" + name + "' CRC mismatch (stored " +
                   std::to_string(s.crc) + ", computed " +
                   std::to_string(payCrc) + ")";
        out.push_back(std::move(s));
    }
    if (c.pos != c.len)
        return std::to_string(c.len - c.pos) +
               " trailing bytes after the last section";
    sections_ = std::move(out);
    return "";
}

const Section *
Reader::find(const std::string &name) const
{
    for (const Section &s : sections_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace minnow::ckpt
