/**
 * @file
 * Checkpoint container format "minnow-ckpt-1".
 *
 * A checkpoint is a single binary file:
 *
 *     magic        "minnow-ckpt-1\n"        (14 bytes)
 *     u32          section count
 *     per section:
 *       u32        name length, then name bytes
 *       u64        payload length, then payload bytes
 *       u32        CRC32 of the payload
 *     u32          CRC32 of everything above (file CRC)
 *
 * All integers are little-endian host order (checkpoints are a
 * same-host warm-start mechanism, not an interchange format; the
 * magic pins the version so a layout change bumps "-1" and old
 * files are rejected, never misread).
 *
 * Integrity: the trailing file CRC is verified over the whole
 * buffer BEFORE any length field is trusted, so a corrupted section
 * table can never steer a read out of bounds; per-section CRCs then
 * localize which component's payload changed. CRC32 detects every
 * burst error up to 32 bits, so any single corrupted byte is
 * guaranteed to be caught. Truncation is caught by explicit bounds
 * checks. Every failure is reported as an error string (the caller
 * warns and degrades to cold start — never a crash, never a silent
 * misload).
 *
 * Section payloads are produced by per-component
 * `checkpoint(ckpt::Ckpt &)` visitors (base/ckpt.hh). What is and
 * is not serialized — and why a restore is nevertheless
 * byte-identical — is documented in DESIGN.md section 5i.
 */

#ifndef MINNOW_SIM_CHECKPOINT_HH
#define MINNOW_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/ckpt.hh"

namespace minnow::ckpt
{

/** The format magic; the trailing digit is the version. */
inline constexpr char kMagic[] = "minnow-ckpt-1\n";
inline constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), seedable for chains. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** One named, CRC-protected payload. */
struct Section
{
    std::string name;
    std::vector<std::uint8_t> bytes;
    std::uint32_t crc = 0;
};

/** Accumulates sections and writes the checkpoint file. */
class Writer
{
  public:
    /** Append a section; the CRC is computed here. */
    void add(const std::string &name,
             std::vector<std::uint8_t> bytes);

    const std::vector<Section> &sections() const
    {
        return sections_;
    }

    /** Serialize the container to an in-memory buffer. */
    std::vector<std::uint8_t> encode() const;

    /**
     * Write atomically (temp file + rename) so a crash mid-write
     * never leaves a truncated checkpoint under the final name.
     * @return "" on success, else a one-line error description.
     */
    std::string writeFile(const std::string &path) const;

  private:
    std::vector<Section> sections_;
};

/** Opens and fully validates a checkpoint file. */
class Reader
{
  public:
    /**
     * Read @p path, verify magic/version, file CRC, section bounds
     * and per-section CRCs. @return "" on success, else a specific
     * diagnostic naming what failed. After a failure the reader
     * holds no sections.
     */
    std::string openFile(const std::string &path);

    /** Validate an in-memory image (testing, and openFile's core). */
    std::string decode(const std::vector<std::uint8_t> &buf);

    /** Section by name; nullptr when absent. */
    const Section *find(const std::string &name) const;

    const std::vector<Section> &sections() const
    {
        return sections_;
    }

  private:
    std::vector<Section> sections_;
};

/** Serialize one component into a byte buffer via its visitor. */
template <typename T>
std::vector<std::uint8_t>
serialize(T &component)
{
    std::vector<std::uint8_t> buf;
    Ckpt ck = Ckpt::saver(&buf);
    component.checkpoint(ck);
    return buf;
}

} // namespace minnow::ckpt

#endif // MINNOW_SIM_CHECKPOINT_HH
