#include "sim/watchdog.hh"

#include <cstdio>

#include "base/logging.hh"
#include "cpu/ooo_core.hh"
#include "runtime/machine.hh"
#include "sim/timeline.hh"

namespace minnow
{

namespace
{

/** Minimal JSON string escaping (stats.cc keeps its own copy). */
void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

const char *
phaseName(cpu::Phase p)
{
    switch (p) {
      case cpu::Phase::App:
        return "app";
      case cpu::Phase::Worklist:
        return "worklist";
      case cpu::Phase::Idle:
        return "idle";
    }
    return "?";
}

} // anonymous namespace

std::string
diagnosticJson(runtime::Machine &machine, const std::string &reason)
{
    runtime::Machine &m = machine;
    std::string out = "{\"schema\":\"minnow-diag-1\",\"reason\":\"";
    appendEscaped(out, reason);
    out += "\",\"cycle\":" + std::to_string(m.eq.now());
    out += ",\"eventQueue\":{\"pending\":" +
           std::to_string(m.pendingTotal()) +
           ",\"head\":" + std::to_string(m.nextEventTime()) + "}";
    out += ",\"monitor\":{\"pending\":" +
           std::to_string(m.monitor.pending()) +
           ",\"stealable\":" + std::to_string(m.monitor.stealable()) +
           ",\"idleWorkers\":" +
           std::to_string(m.monitor.idleWorkers()) +
           ",\"terminated\":" +
           (m.monitor.terminated() ? "true" : "false") + "}";
    out += ",\"cores\":[";
    for (std::size_t i = 0; i < m.cores.size(); ++i) {
        const cpu::OooCore &core = *m.cores[i];
        if (i)
            out += ",";
        out += "{\"id\":" + std::to_string(i);
        out += ",\"phase\":\"";
        out += phaseName(core.phase());
        out += "\",\"frontier\":" + std::to_string(core.frontier());
        out += ",\"drain\":" + std::to_string(core.drain());
        out += ",\"uops\":" + std::to_string(core.stats().uops) + "}";
    }
    out += "],\"stats\":" + m.stats.toJson() + "}";
    return out;
}

void
dumpDiagnostic(runtime::Machine &machine, const std::string &reason)
{
    runtime::Machine &m = machine;
    if (m.timeline)
        m.timeline->instant(m.timeline->simTrack(),
                            timeline::Name::Diagnostic, m.eq.now());
    std::fprintf(stderr, "=== minnow diagnostic: %s ===\n",
                 reason.c_str());
    std::fprintf(stderr,
                 "cycle %llu; event queue: %zu pending, head at"
                 " %llu\n",
                 (unsigned long long)m.eq.now(), m.pendingTotal(),
                 (unsigned long long)m.nextEventTime());
    std::fprintf(stderr,
                 "monitor: pending=%llu stealable=%llu"
                 " idleWorkers=%u terminated=%d\n",
                 (unsigned long long)m.monitor.pending(),
                 (unsigned long long)m.monitor.stealable(),
                 m.monitor.idleWorkers(), m.monitor.terminated());
    for (std::size_t i = 0; i < m.cores.size(); ++i) {
        const cpu::OooCore &core = *m.cores[i];
        std::fprintf(stderr,
                     "core %2zu: phase=%-8s frontier=%llu"
                     " drain=%llu uops=%llu\n",
                     i, phaseName(core.phase()),
                     (unsigned long long)core.frontier(),
                     (unsigned long long)core.drain(),
                     (unsigned long long)core.stats().uops);
    }
    if (!m.cfg.diagnosticPath.empty()) {
        std::FILE *f = std::fopen(m.cfg.diagnosticPath.c_str(), "w");
        if (f) {
            std::string doc = diagnosticJson(m, reason);
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::fprintf(stderr, "diagnostic JSON written to %s\n",
                         m.cfg.diagnosticPath.c_str());
        } else {
            std::fprintf(stderr,
                         "cannot write diagnostic JSON to %s\n",
                         m.cfg.diagnosticPath.c_str());
        }
    }
    std::fflush(stderr);
}

Watchdog::Watchdog(runtime::Machine *machine, Cycle interval,
                   std::uint32_t threshold)
    : machine_(machine), interval_(interval), threshold_(threshold)
{
    panic_if(interval_ == 0, "watchdog interval must be nonzero");
    panic_if(threshold_ == 0, "watchdog threshold must be nonzero");
}

void
Watchdog::arm()
{
    if (armed_)
        return;
    armed_ = true;
    last_ = sample();
    machine_->eq.daemonScheduled();
    machine_->eq.schedule(machine_->eq.now() + interval_,
                          &Watchdog::checkEvent, this);
}

void
Watchdog::checkEvent(void *arg)
{
    auto *wd = static_cast<Watchdog *>(arg);
    wd->machine_->eq.daemonFired();
    wd->check();
}

Watchdog::Snapshot
Watchdog::sample() const
{
    runtime::Machine &m = *machine_;
    mem::MemStats mt = m.memory.totals();
    Snapshot s;
    s.uops = m.totalUops();
    s.pending = m.monitor.pending();
    s.stealable = m.monitor.stealable();
    s.memTraffic = mt.loads + mt.stores + mt.atomics +
                   mt.engineAccesses;
    return s;
}

void
Watchdog::check()
{
    checksRun_ += 1;
    runtime::Machine &m = *machine_;
    // A finished run stops the heartbeat: the monitor declared
    // termination, so pending==0 forever is expected, not a hang.
    if (m.monitor.terminated())
        return;
    Snapshot cur = sample();
    if (cur == last_) {
        stale_ += 1;
        if (stale_ >= threshold_) {
            tripped_ = true;
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "no forward progress for %llu cycles"
                          " (uops=%llu pending=%llu stealable=%llu"
                          " memTraffic=%llu)",
                          (unsigned long long)(Cycle(stale_) *
                                               interval_),
                          (unsigned long long)cur.uops,
                          (unsigned long long)cur.pending,
                          (unsigned long long)cur.stealable,
                          (unsigned long long)cur.memTraffic);
            std::string reason(buf);
            if (m.timeline)
                m.timeline->instant(m.timeline->simTrack(),
                                    timeline::Name::WatchdogTrip,
                                    m.eq.now());
            if (onStall_) {
                onStall_(reason);
                return;
            }
            dumpDiagnostic(m, reason);
            panic("watchdog: %s", reason.c_str());
        }
    } else {
        stale_ = 0;
        last_ = cur;
    }
    // Re-arm only while non-daemon work remains, like the samplers:
    // the watchdog must not keep a drained queue running, and
    // against empty() alone it and a periodic sampler would keep
    // each other alive forever.
    if (!m.eq.quiescent()) {
        m.eq.daemonScheduled();
        m.eq.schedule(m.eq.now() + interval_, &Watchdog::checkEvent,
                      this);
    }
}

} // namespace minnow
