/**
 * @file
 * Table 1: the evaluated graph inputs — nodes, edges, estimated
 * diameter, largest node degree, and simulated size — for the
 * scaled stand-ins of the paper's datasets, alongside the originals
 * for reference.
 */

#include <cstdio>

#include "bench_common.hh"
#include "graph/gstats.hh"

using namespace minnow;
using namespace minnow::bench;

namespace
{

struct PaperInput
{
    const char *workload;
    const char *name;
    const char *nodes;
    const char *edges;
    const char *diam;
    const char *maxDeg;
};

const PaperInput kPaper[] = {
    {"sssp", "USA-road-d.W", "6.2M", "15.1M", "4420", "9"},
    {"bfs", "r4-2e23", "8.4M", "33.6M", "17", "16"},
    {"g500", "rmat16-2e22", "4.2M", "67.1M", "4", "18.4M"},
    {"cc", "wikipedia-20051105", "1.6M", "19.8M", "18", "4970"},
    {"pr", "wiki-Talk", "2.4M", "5.0M", "9", "100022"},
    {"tc", "com-dblp-sym", "426K", "2.1M", "21", "343"},
    {"bc", "amazon-ratings", "3.4M", "11.5M", "16", "12180"},
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 1);
    opts.rejectUnused();

    banner("Table 1: evaluated graph inputs (scaled stand-ins)",
           "same classes as the paper's datasets at simulation"
           " scale");

    TextTable table;
    table.header({"workload", "generator", "nodes", "edges",
                  "est.diam", "maxdeg", "sim-size", "paper-input",
                  "paper-n/m/diam/maxdeg"});
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        graph::GraphStats s = graph::analyzeGraph(w.graph);
        SimAlloc alloc;
        w.graph.assignAddresses(alloc, w.nodeBytes);
        const PaperInput *pi = nullptr;
        for (const auto &p : kPaper) {
            if (name == p.workload)
                pi = &p;
        }
        char sz[32];
        std::snprintf(sz, sizeof(sz), "%.1f MB",
                      double(w.graph.simBytes()) / 1e6);
        table.row(
            {w.name, w.inputDesc, TextTable::count(s.nodes),
             TextTable::count(s.edges),
             TextTable::count(s.estDiameter),
             TextTable::count(s.maxDegree), sz,
             pi ? pi->name : "-",
             pi ? std::string(pi->nodes) + "/" + pi->edges + "/" +
                      pi->diam + "/" + pi->maxDeg
                : "-"});
    }
    table.print();
    return 0;
}
