/**
 * @file
 * Run exactly one (workload, config, threads) figure point and emit
 * a machine-readable result (schema "minnow-point-1").
 *
 * This is the worker the warm-sweep orchestrator
 * (scripts/sweep_orchestrator.py) forks per point, and the subject
 * of the checkpoint A/B equivalence test
 * (scripts/check_checkpoint_ab.py): it accepts every common bench
 * flag, including --checkpoint-out/--checkpoint-in/
 * --checkpoint-after, so one invocation can produce a warm
 * checkpoint and later invocations can start from it.
 *
 * Extra flags beyond bench_common:
 *   --workload=<name>  required: one of the harness workloads.
 *   --config=<name>    scheduler config (default minnow-pf).
 *   --json=<path>      write the result JSON to a file instead of
 *                      stdout.
 *
 * The result includes hostSeconds (wall-clock for workload build +
 * simulation), which scripts/bench_simspeed.py uses to measure
 * warm-vs-cold time-to-first-figure-point.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 64);
    std::string workload = opts.getString("workload", "");
    std::string configName =
        opts.getString("config", "minnow-pf");
    std::string jsonPath = opts.getString("json", "");
    opts.rejectUnused();
    fatal_if(workload.empty(), "point_runner needs --workload=");
    harness::Config config = harness::parseConfig(configName);

    auto t0 = std::chrono::steady_clock::now();
    harness::Workload w = makeWorkload(workload, args);
    auto t1 = std::chrono::steady_clock::now();
    harness::ExperimentResult r =
        run(w, config, args.threads, args);
    auto t2 = std::chrono::steady_clock::now();

    auto secs = [](auto a, auto b) {
        return std::chrono::duration<double>(b - a).count();
    };
    char buf[160];
    std::string j = "{\"schema\":\"minnow-point-1\"";
    j += ",\"workload\":\"" + w.name + "\"";
    j += ",\"config\":\"" + configName + "\"";
    j += ",\"threads\":" + std::to_string(args.threads);
    std::snprintf(buf, sizeof buf, "%.6g", args.scale);
    j += std::string(",\"scale\":") + buf;
    j += ",\"seed\":" + std::to_string(args.seed);
    j += ",\"cycles\":" + std::to_string(r.run.cycles);
    j += ",\"instructions\":" + std::to_string(r.run.instructions);
    j += ",\"tasks\":" + std::to_string(r.run.tasks);
    std::snprintf(buf, sizeof buf, "%.6g", r.run.l2Mpki);
    j += std::string(",\"l2Mpki\":") + buf;
    j += std::string(",\"timedOut\":") +
         (r.run.timedOut ? "true" : "false");
    j += std::string(",\"verified\":") +
         (r.run.verified ? "true" : "false");
    j += std::string(",\"warmStart\":") +
         (w.warmLoaded ? "true" : "false");
    std::snprintf(buf, sizeof buf,
                  ",\"buildSeconds\":%.6f,\"simSeconds\":%.6f,"
                  "\"hostSeconds\":%.6f",
                  secs(t0, t1), secs(t1, t2), secs(t0, t2));
    j += buf;
    j += "}\n";

    if (jsonPath.empty()) {
        std::fputs(j.c_str(), stdout);
    } else if (std::FILE *f = std::fopen(jsonPath.c_str(), "w")) {
        std::fputs(j.c_str(), f);
        std::fclose(f);
    } else {
        fatal("cannot write %s", jsonPath.c_str());
    }
    return r.run.timedOut ? 2 : 0;
}
