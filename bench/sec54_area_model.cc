/**
 * @file
 * Section 5.4: Minnow engine area estimation — SRAM structures,
 * Quark-like control unit, L2 prefetch metadata — and the <1%
 * per-slice overhead headline, plus a sweep over structure sizes.
 */

#include <cstdio>

#include "base/options.hh"
#include "base/table.hh"
#include "minnow/area.hh"
#include "sim/config.hh"

using namespace minnow;
using namespace minnow::minnowengine;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.rejectUnused();

    std::printf("=== Section 5.4: area estimation ===\n");
    std::printf("paper: ~0.03 mm^2 SRAM @28nm, 0.1 mm^2 control"
                " @14nm, <1%% of a 12.1 mm^2 Skylake slice\n\n");
    MachineConfig cfg = paperMachine();
    AreaEstimate a = estimateArea(cfg);
    std::printf("%s\n\n", a.describe().c_str());

    std::printf("--- structure sweep (local queue x load buffer)"
                " ---\n");
    TextTable table;
    table.header({"localQ", "loadBuf", "sram mm^2@28",
                  "total mm^2@14", "overhead %"});
    for (std::uint32_t lq : {16u, 32u, 64u, 128u, 256u}) {
        for (std::uint32_t lb : {16u, 32u, 64u}) {
            MachineConfig c = paperMachine();
            c.minnow.localQueueEntries = lq;
            c.minnow.loadBufferEntries = lb;
            AreaEstimate e = estimateArea(c);
            table.row({std::to_string(lq), std::to_string(lb),
                       TextTable::num(e.sramMm2At28, 4),
                       TextTable::num(e.totalMm2At14, 4),
                       TextTable::num(e.overheadPercent, 2)});
        }
    }
    table.print();
    return 0;
}
