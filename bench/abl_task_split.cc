/**
 * @file
 * Ablation: the Section 6.2.1 task-splitting threshold on the
 * hub-dominated G500 input. Without splitting, Amdahl's Law caps
 * speedup at the largest node's share of edges (the paper's
 * rmat16-2e22 capped at 3.65x); with splitting, the hub's edges
 * process in parallel.
 */

#include <cstdio>

#include "apps/sssp.hh"
#include "bench_common.hh"
#include "graph/gstats.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 32);
    opts.rejectUnused();

    banner("Ablation: task splitting threshold on g500 (rmat)",
           "no splitting caps parallel speedup at the hub's edge"
           " share");

    harness::Workload w =
        harness::makeWorkload("g500", args.scale, args.seed);
    graph::GraphStats gs = graph::analyzeGraph(w.graph);
    std::printf("input: %s, max degree %s of %s edges (%.1f%%)\n",
                w.inputDesc.c_str(),
                TextTable::count(gs.maxDegree).c_str(),
                TextTable::count(gs.edges).c_str(),
                100.0 * gs.maxDegree / double(gs.edges));

    TextTable t;
    t.header({"threshold", "cycles", "speedup-vs-nosplit",
              "tasks"});
    double nosplit = 0;
    for (std::uint32_t thr :
         {0u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
        harness::Workload wl =
            harness::makeWorkload("g500", args.scale, args.seed);
        std::uint32_t effective = thr == 0 ? (1u << 30) : thr;
        wl.app = std::make_unique<apps::SsspApp>(
            &wl.graph, 0, true, effective, "g500");
        auto r =
            run(wl, harness::Config::MinnowPf, args.threads, args);
        checkVerified(r, "g500");
        double c = r.run.timedOut ? 0 : double(r.run.cycles);
        if (thr == 0)
            nosplit = c;
        t.row({thr == 0 ? "off" : std::to_string(thr),
               cyclesOrTimeout(r.run),
               (c && nosplit)
                   ? TextTable::num(nosplit / c, 2) + "x"
                   : "-",
               TextTable::count(r.run.tasks)});
    }
    t.print();
    return 0;
}
