/**
 * @file
 * Table 2: benchmark configuration — algorithm, input, and the
 * cycle count of the single-threaded baseline run (the paper lists
 * billions of cycles on the full-size inputs; ours are scaled).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

namespace
{

const char *
algorithmOf(const std::string &w)
{
    if (w == "sssp") return "Single-Source Shortest Path (delta)";
    if (w == "bfs") return "Breadth-First Search";
    if (w == "g500") return "Breadth-First Search (Graph500)";
    if (w == "cc") return "Connected Components (min-label)";
    if (w == "pr") return "PageRank (push, data-driven)";
    if (w == "tc") return "Triangle Counting (node-iter-hashed)";
    if (w == "bc") return "Bipartite Coloring";
    return "?";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 1);
    opts.rejectUnused();

    banner("Table 2: benchmark configuration",
           "paper single-thread runs: 1.7B-10.7B cycles on"
           " full-size inputs");

    TextTable table;
    table.header({"workload", "algorithm", "input",
                  "serial-cycles", "tasks", "verified"});
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto r = run(w, harness::Config::SerialRelaxed, 1, args);
        table.row({w.name, algorithmOf(name), w.inputDesc,
                   TextTable::count(r.run.cycles),
                   TextTable::count(r.run.tasks),
                   r.run.verified ? "yes" : "NO"});
    }
    table.print();
    return 0;
}
