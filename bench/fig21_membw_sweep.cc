/**
 * @file
 * Fig. 21: 64-thread speedup vs number of DRAM channels (relative
 * to the 12-channel configuration), with and without
 * worklist-directed prefetching. Paper shape: without prefetching,
 * workloads are latency-bound — only dropping below ~4 channels
 * hurts; with prefetching, Minnow converts several workloads to
 * bandwidth-bound (sensitive across the sweep); TC (in-LLC input)
 * is insensitive throughout.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 2.0, 64);
    opts.rejectUnused();

    const std::vector<std::uint32_t> channels = {1, 2, 4, 8, 12};
    banner("Fig. 21: speedup vs memory channels (normalized to 12"
           " channels)",
           "latency-bound without prefetch (flat to ~4ch);"
           " bandwidth-bound with prefetch; TC insensitive");

    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        std::printf("\n-- %s --\n", name.c_str());
        TextTable table;
        table.header({"channels", "minnow", "minnow+pf"});
        double norm[2] = {0, 0};
        std::vector<std::array<double, 2>> rows;
        for (std::uint32_t ch : channels) {
            BenchArgs a = args;
            a.machine.dram.channels = ch;
            auto off =
                run(w, harness::Config::Minnow, args.threads, a);
            auto on =
                run(w, harness::Config::MinnowPf, args.threads, a);
            checkVerified(off, name);
            checkVerified(on, name);
            double c0 = off.run.timedOut ? 0 : double(off.run.cycles);
            double c1 = on.run.timedOut ? 0 : double(on.run.cycles);
            rows.push_back({c0, c1});
            if (ch == 12) {
                norm[0] = c0;
                norm[1] = c1;
            }
        }
        for (std::size_t i = 0; i < channels.size(); ++i) {
            auto cell = [&](double v, double n) {
                if (v == 0 || n == 0)
                    return std::string("T/O");
                return TextTable::num(n / v, 2) + "x";
            };
            table.row({std::to_string(channels[i]),
                       cell(rows[i][0], norm[0]),
                       cell(rows[i][1], norm[1])});
        }
        table.print();
    }
    return 0;
}
