/**
 * @file
 * Fig. 4: benchmark sensitivity to ROB size. Sweeps the reorder
 * buffer (scaling RS/LQ/SQ with the same ratios, per the paper) in
 * three modes: realistic (TAGE-like branches + x86-TSO fences),
 * perfect branch prediction, and perfect branches + no fences.
 * Speedup is normalized to the 256-entry realistic configuration.
 *
 * Paper conclusion: realistic speedup past 256 entries is minimal;
 * remove the serializing events and ROB scaling works again (PR up
 * to 5x once fences go).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 16);
    opts.rejectUnused();

    const std::vector<std::uint32_t> robs = {64, 128, 256, 512,
                                             1024};
    banner("Fig. 4: speedup vs ROB size (normalized to 256-entry"
           " realistic)",
           "realistic curve flat past 256; ideal (perfect branch,"
           " no fence) keeps scaling");

    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        std::printf("\n-- %s --\n", name.c_str());
        TextTable table;
        table.header({"rob", "realistic", "perfect-branch",
                      "ideal(nofence)"});

        // Normalization run: 256-entry realistic.
        double norm = 0;
        std::vector<std::vector<double>> cols(
            3, std::vector<double>(robs.size(), 0));
        for (int mode = 0; mode < 3; ++mode) {
            for (std::size_t i = 0; i < robs.size(); ++i) {
                BenchArgs a = args;
                a.machine.core.robEntries = robs[i];
                a.machine.core.rsEntries =
                    std::max(8u, robs[i] * 97 / 224);
                a.machine.core.lqEntries =
                    std::max(8u, robs[i] * 72 / 224);
                a.machine.core.sqEntries =
                    std::max(8u, robs[i] * 56 / 224);
                a.machine.core.perfectBranches = mode >= 1;
                a.machine.core.atomicFences = mode < 2;
                auto r = run(w, harness::Config::Obim,
                             args.threads, a);
                checkVerified(r, name + "/rob" +
                                     std::to_string(robs[i]));
                cols[mode][i] =
                    r.run.timedOut ? 0 : double(r.run.cycles);
                if (mode == 0 && robs[i] == 256)
                    norm = cols[mode][i];
            }
        }
        for (std::size_t i = 0; i < robs.size(); ++i) {
            auto cell = [&](double v) {
                if (v == 0)
                    return std::string("TIMEOUT");
                return TextTable::num(norm / v, 2) + "x";
            };
            table.row({std::to_string(robs[i]), cell(cols[0][i]),
                       cell(cols[1][i]), cell(cols[2][i])});
        }
        table.print();
    }
    return 0;
}
