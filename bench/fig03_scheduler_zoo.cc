/**
 * @file
 * Fig. 3: runtime of various Galois scheduling policies normalized
 * to GraphMat (lower is better); improper policies time out on
 * ordering-sensitive workloads. LIFO models Carbon's fixed policy.
 */

#include <cstdio>

#include "bench_common.hh"
#include "worklist/obim.hh"

using namespace minnow;
using namespace minnow::bench;

namespace
{

/** Run Galois OBIM with an overridden bucket interval. */
harness::ExperimentResult
runObimLg(harness::Workload &w, std::uint32_t lg,
          std::uint32_t threads, const BenchArgs &a)
{
    std::uint32_t saved = w.lgDelta;
    w.lgDelta = lg;
    auto r = run(w, harness::Config::Obim, threads, a);
    w.lgDelta = saved;
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 0.5, 10);
    // Fig. 3 relies on timeouts: keep the event budget modest.
    args.maxEvents = opts.getUint("max-events", 80'000'000);
    opts.rejectUnused();

    banner("Fig. 3: scheduler zoo runtime normalized to GraphMat"
           " (lower is better), " +
               std::to_string(args.threads) + " threads",
           "high bars = timeouts; Carbon(LIFO) times out on"
           " sssp/bfs/cc/pr; several OBIM deltas time out too");

    TextTable table;
    table.header({"workload", "fifo", "lifo(carbon)", "strict",
                  "obim(fine)", "obim(tuned)", "obim(coarse)"});
    for (const std::string &name : args.workloads) {
        if (name == "tc" || name == "bc")
            continue;
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto gmat =
            run(w, harness::Config::Bsp, args.threads, args);
        checkVerified(gmat, name + "/bsp");
        double norm = double(gmat.run.cycles);
        auto rel = [&](const harness::ExperimentResult &r) {
            if (r.run.timedOut)
                return std::string("TIMEOUT");
            return TextTable::num(double(r.run.cycles) / norm, 2);
        };

        auto fifo =
            run(w, harness::Config::Fifo, args.threads, args);
        auto lifo =
            run(w, harness::Config::Lifo, args.threads, args);
        auto strict =
            run(w, harness::Config::Strict, args.threads, args);
        auto fine = runObimLg(w, 0, args.threads, args);
        auto tuned = runObimLg(w, w.lgDelta, args.threads, args);
        auto coarse =
            runObimLg(w, w.lgDelta + 6, args.threads, args);

        table.row({w.name, rel(fifo), rel(lifo), rel(strict),
                   rel(fine), rel(tuned), rel(coarse)});
    }
    table.print();
    std::printf("expected shape: tuned OBIM lowest on sssp by a"
                " wide margin; LIFO pathological on"
                " ordering-sensitive inputs; conservative"
                " (coarse) OBIM degrades gracefully.\n");
    return 0;
}
