/**
 * @file
 * Fig. 6: delinquent load density — the fraction of all loads that
 * are first accesses to graph nodes/edges (the frequently-missing
 * loads). The paper reports ~10% on average: large OOO windows hold
 * mostly stack traffic and secondary accesses, which is the Section
 * 3.4 motivation for offloading helper threads to an engine whose
 * load buffer holds only delinquent loads.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 16);
    opts.rejectUnused();

    banner("Fig. 6: delinquent load density",
           "~10% of loads are delinquent on average");

    TextTable table;
    table.header({"workload", "delinquent", "all-loads", "density%",
                  "lq72-delinquent"});
    double sum = 0;
    int counted = 0;
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto r = run(w, harness::Config::Obim, args.threads, args);
        checkVerified(r, name);
        if (r.run.timedOut || r.run.allLoads == 0)
            continue;
        double density =
            100.0 * double(r.run.delinquentLoads) / r.run.allLoads;
        sum += density;
        ++counted;
        // Of a 72-entry Skylake load queue, how many entries hold
        // delinquent loads on average (the paper's ~7)?
        double lqShare = 72.0 * density / 100.0;
        table.row({w.name, TextTable::count(r.run.delinquentLoads),
                   TextTable::count(r.run.allLoads),
                   TextTable::num(density, 1),
                   TextTable::num(lqShare, 1)});
    }
    table.print();
    if (counted) {
        std::printf("average density: %.1f%% (paper: ~10%%; ~7 of"
                    " 72 LQ entries delinquent)\n",
                    sum / counted);
    }
    return 0;
}
