/**
 * @file
 * Shared prefetch-credit sweep used by Figs. 18 (L2 MPKI), 19
 * (speedup) and 20 (prefetch efficiency). One sweep produces all
 * three metrics; each bench binary prints its own figure.
 */

#ifndef MINNOW_BENCH_CREDIT_SWEEP_HH
#define MINNOW_BENCH_CREDIT_SWEEP_HH

#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench_common.hh"
#include "sim/parallel/task_farm.hh"

namespace minnow::bench
{

/** Metrics captured at one credit count. */
struct CreditPoint
{
    std::uint32_t credits = 0;
    double mpki = 0;
    double speedup = 0;     //!< vs Minnow with prefetching off.
    double efficiency = 0;  //!< used / fills.
    bool timedOut = false;
};

/** Per-workload sweep results (plus the prefetch-off baseline). */
struct CreditSweep
{
    std::string workload;
    double baseMpki = 0;
    std::vector<CreditPoint> points;
};

inline std::vector<std::uint32_t>
defaultCredits()
{
    return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

/**
 * Swept credit counts: --credits-list=a,b,c overrides the default
 * nine-point sweep (CI runs a single point to stay fast).
 */
inline std::vector<std::uint32_t>
creditsFromOpts(const Options &opts)
{
    std::string list = opts.getString("credits-list", "");
    if (list.empty())
        return defaultCredits();
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        std::string tok = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty())
            out.push_back(std::uint32_t(std::stoul(tok)));
        pos = comma == std::string::npos ? list.size() : comma + 1;
    }
    fatal_if(out.empty(), "--credits-list parsed to nothing: '%s'",
             list.c_str());
    return out;
}

/** Run the sweep for one workload. */
inline CreditSweep
sweepCredits(const std::string &name, const BenchArgs &args,
             const std::vector<std::uint32_t> &credits)
{
    CreditSweep out;
    out.workload = name;
    harness::Workload w =
        harness::makeWorkload(name, args.scale, args.seed);

    auto base =
        run(w, harness::Config::Minnow, args.threads, args);
    checkVerified(base, name + "/minnow");
    out.baseMpki = base.run.l2Mpki;
    double baseCycles = double(base.run.cycles);

    // One MinnowPf run per credit count. The points are independent
    // simulations, so --host-par=N farms them over N host threads.
    // A run mutates its workload (address assignment, app state),
    // so each farmed point builds a private workload from the same
    // deterministic generator; shared outputs (--stats-json,
    // --stats-dir, --checkpoint-out) are suppressed inside the farm
    // and replayed in point order after the join, keeping every
    // output file byte-identical to a serial sweep.
    const bool farmed = args.hostPar > 1;
    std::vector<harness::ExperimentResult> results(credits.size());
    parallel::runTaskFarm(
        credits.size(), args.hostPar, [&](std::size_t i) {
            BenchArgs a = args;
            a.machine.minnow.prefetchCredits = credits[i];
            if (!farmed) {
                results[i] = run(w, harness::Config::MinnowPf,
                                 args.threads, a);
                return;
            }
            a.statsJson.reset();
            a.statsDir.clear();
            a.checkpointOut.clear();
            harness::Workload wi = makeWorkload(name, a);
            results[i] = run(wi, harness::Config::MinnowPf,
                             args.threads, a);
        });

    for (std::size_t i = 0; i < credits.size(); ++i) {
        std::uint32_t c = credits[i];
        const harness::ExperimentResult &r = results[i];
        checkVerified(r, name + "/credits" + std::to_string(c));
        if (farmed && args.statsJson) {
            args.statsJson->add(
                w.name, harness::configName(harness::Config::MinnowPf),
                args.threads, args.scale, args.seed, c,
                r.run.timedOut, r.run.verified, r.run.cycles,
                r.run.instructions, r.run.l2Mpki, r.run.statsJson);
        }
        if (farmed && !args.statsDir.empty()) {
            std::string path =
                args.statsDir + "/" + w.name + "-" +
                harness::configName(harness::Config::MinnowPf) +
                "-t" + std::to_string(args.threads) + ".stats";
            if (std::FILE *f = std::fopen(path.c_str(), "w")) {
                r.run.report.dump(f);
                std::fclose(f);
            }
        }
        CreditPoint p;
        p.credits = c;
        p.timedOut = r.run.timedOut || base.run.timedOut;
        if (!p.timedOut) {
            p.mpki = r.run.l2Mpki;
            p.speedup = baseCycles / double(r.run.cycles);
            std::uint64_t fills = r.run.mem.prefetchFills;
            p.efficiency =
                fills ? 100.0 * double(r.run.mem.prefetchUsed) /
                            double(fills)
                      : 0.0;
        }
        out.points.push_back(p);
    }
    return out;
}

} // namespace minnow::bench

#endif // MINNOW_BENCH_CREDIT_SWEEP_HH
