/**
 * @file
 * Shared prefetch-credit sweep used by Figs. 18 (L2 MPKI), 19
 * (speedup) and 20 (prefetch efficiency). One sweep produces all
 * three metrics; each bench binary prints its own figure.
 */

#ifndef MINNOW_BENCH_CREDIT_SWEEP_HH
#define MINNOW_BENCH_CREDIT_SWEEP_HH

#include <cstdio>
#include <vector>

#include "bench_common.hh"

namespace minnow::bench
{

/** Metrics captured at one credit count. */
struct CreditPoint
{
    std::uint32_t credits = 0;
    double mpki = 0;
    double speedup = 0;     //!< vs Minnow with prefetching off.
    double efficiency = 0;  //!< used / fills.
    bool timedOut = false;
};

/** Per-workload sweep results (plus the prefetch-off baseline). */
struct CreditSweep
{
    std::string workload;
    double baseMpki = 0;
    std::vector<CreditPoint> points;
};

inline std::vector<std::uint32_t>
defaultCredits()
{
    return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

/** Run the sweep for one workload. */
inline CreditSweep
sweepCredits(const std::string &name, const BenchArgs &args,
             const std::vector<std::uint32_t> &credits)
{
    CreditSweep out;
    out.workload = name;
    harness::Workload w =
        harness::makeWorkload(name, args.scale, args.seed);

    auto base =
        run(w, harness::Config::Minnow, args.threads, args);
    checkVerified(base, name + "/minnow");
    out.baseMpki = base.run.l2Mpki;
    double baseCycles = double(base.run.cycles);

    for (std::uint32_t c : credits) {
        BenchArgs a = args;
        a.machine.minnow.prefetchCredits = c;
        auto r =
            run(w, harness::Config::MinnowPf, args.threads, a);
        checkVerified(r, name + "/credits" + std::to_string(c));
        CreditPoint p;
        p.credits = c;
        p.timedOut = r.run.timedOut || base.run.timedOut;
        if (!p.timedOut) {
            p.mpki = r.run.l2Mpki;
            p.speedup = baseCycles / double(r.run.cycles);
            std::uint64_t fills = r.run.mem.prefetchFills;
            p.efficiency =
                fills ? 100.0 * double(r.run.mem.prefetchUsed) /
                            double(fills)
                      : 0.0;
        }
        out.points.push_back(p);
    }
    return out;
}

} // namespace minnow::bench

#endif // MINNOW_BENCH_CREDIT_SWEEP_HH
