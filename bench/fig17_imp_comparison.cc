/**
 * @file
 * Fig. 17: 16-thread prefetcher comparison — classic stride, IMP
 * (re-tuned per the paper: 4x tables, distance 4), and Minnow
 * worklist-directed prefetching — normalized to Minnow with
 * prefetching disabled.
 *
 * Paper shape: IMP ~ stride except on G500/PR/TC (dense indirect
 * streams); both useless on the low-degree mesh inputs (SSSP, BFS)
 * because the prefetch distance exceeds node degree; Minnow's
 * proactive prefetching wins everywhere.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 16);
    opts.rejectUnused();

    banner("Fig. 17: prefetching speedup vs Minnow-without-prefetch,"
           " " + std::to_string(args.threads) + " threads",
           "stride ~ IMP except g500/pr/tc; Minnow best across the"
           " board");

    TextTable table;
    table.header({"workload", "stride", "imp", "minnow-pf",
                  "imp-patterns"});
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto base = run(w, harness::Config::Minnow, args.threads,
                        args);
        checkVerified(base, name + "/minnow");
        double norm = double(base.run.cycles);
        auto cell = [&](const harness::ExperimentResult &r) {
            if (r.run.timedOut || base.run.timedOut)
                return std::string("TIMEOUT");
            return TextTable::num(norm / double(r.run.cycles), 2) +
                   "x";
        };

        // Stride/IMP run on the same Minnow-offload system with a
        // hardware L2 prefetcher instead of worklist direction, so
        // the comparison isolates the prefetching mechanism.
        BenchArgs strideArgs = args;
        strideArgs.machine.prefetcher = PrefetcherKind::Stride;
        auto stride = run(w, harness::Config::Minnow, args.threads,
                          strideArgs);
        checkVerified(stride, name + "/stride");
        BenchArgs impArgs = args;
        impArgs.machine.prefetcher = PrefetcherKind::Imp;
        auto imp = run(w, harness::Config::Minnow, args.threads,
                       impArgs);
        checkVerified(imp, name + "/imp");
        auto mpf = run(w, harness::Config::MinnowPf, args.threads,
                       args);
        checkVerified(mpf, name + "/minnow-pf");

        table.row({w.name, cell(stride), cell(imp), cell(mpf),
                   "-"});
    }
    table.print();
    std::printf("note: all configs share Minnow worklist offload;"
                " only the prefetching mechanism differs.\n");
    return 0;
}
