/**
 * @file
 * Fig. 5: Galois execution-cycle breakdown at 64 threads into useful
 * work, worklist operations, and memory/serialization stalls. The
 * paper reports only 28% of cycles as useful work on average, with
 * CC worklist-dominated (92%).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 2.0, 64);
    opts.rejectUnused();

    banner("Fig. 5: Galois cycle breakdown, " +
               std::to_string(args.threads) + " threads",
           "avg useful work only 28%; CC most worklist-bound");

    TextTable table;
    table.header({"workload", "useful%", "app-stall%", "worklist%",
                  "idle%", "tasks", "cycles"});
    double sumUseful = 0;
    int counted = 0;
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto r = run(w, harness::Config::Obim, args.threads, args);
        checkVerified(r, name + "/obim");
        if (r.run.timedOut) {
            table.row({w.name, "TIMEOUT", "", "", "", "", ""});
            continue;
        }
        // Useful = app-phase uops at full dispatch width; the rest
        // of the app phase is memory/serialization stall.
        double appCycles = double(r.run.phaseCycles[0]);
        double wlCycles = double(r.run.phaseCycles[1]);
        double idleCycles = double(r.run.phaseCycles[2]);
        double useful = double(r.run.phaseUops[0]) /
                        args.machine.core.dispatchWidth;
        double total = appCycles + wlCycles + idleCycles;
        if (total <= 0)
            continue;
        double usefulPct = 100.0 * useful / total;
        sumUseful += usefulPct;
        ++counted;
        table.row({w.name, TextTable::num(usefulPct, 1),
                   TextTable::num(
                       100.0 * (appCycles - useful) / total, 1),
                   TextTable::num(100.0 * wlCycles / total, 1),
                   TextTable::num(100.0 * idleCycles / total, 1),
                   TextTable::count(r.run.tasks),
                   TextTable::count(r.run.cycles)});
    }
    table.print();
    if (counted) {
        std::printf(
            "average useful work: %.1f%% (paper: 28%%; our"
            " 'useful' is the stricter dispatch-width bound —"
            " retired app uops at full width — so it reads lower"
            " than the paper's commit-based attribution)\n",
            sumUseful / counted);
    }
    return 0;
}
