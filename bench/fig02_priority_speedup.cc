/**
 * @file
 * Fig. 2: Galois (OBIM and FIFO) and GraphMat speedup at 10 threads,
 * normalized to single-threaded GraphMat. The paper's headline:
 * SSSP is extraordinarily sensitive to priority ordering (576x for
 * OBIM over unordered GraphMat; GMat*, a bucketed GraphMat kernel,
 * recovers only ~2x of it).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 10);
    opts.rejectUnused();

    banner("Fig. 2: priority-ordering speedup vs 1-thread GraphMat, " +
               std::to_string(args.threads) + " threads",
           "SSSP: Galois-OBIM 576x vs GraphMat; GMat* ~2x over"
           " GraphMat");

    TextTable table;
    table.header({"workload", "gmat1T(cyc)", "gmat", "gmat*",
                  "galois-obim", "galois-fifo"});
    for (const std::string &name : args.workloads) {
        if (name == "tc" || name == "bc")
            continue; // Fig. 2 covers BFS/G500/SSSP/CC/PR.
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto base1 = run(w, harness::Config::Bsp, 1, args);
        checkVerified(base1, name + "/bsp-1t");
        double norm = double(base1.run.cycles);
        auto speedup = [&](const harness::ExperimentResult &r) {
            if (r.run.timedOut || r.run.cycles == 0)
                return std::string("TIMEOUT");
            return TextTable::num(norm / double(r.run.cycles), 2) +
                   "x";
        };

        auto gmat =
            run(w, harness::Config::Bsp, args.threads, args);
        checkVerified(gmat, name + "/bsp");
        auto gmatStar = run(w, harness::Config::BspBucketed,
                            args.threads, args);
        checkVerified(gmatStar, name + "/bsp-bucket");
        auto obim =
            run(w, harness::Config::Obim, args.threads, args);
        checkVerified(obim, name + "/obim");
        auto fifo =
            run(w, harness::Config::Fifo, args.threads, args);
        checkVerified(fifo, name + "/fifo");

        table.row({w.name, TextTable::count(base1.run.cycles),
                   speedup(gmat), speedup(gmatStar), speedup(obim),
                   speedup(fifo)});
    }
    table.print();
    std::printf("expected shape: OBIM >> GraphMat on sssp (ordering"
                " changes Big-O); gmat* between; bfs/g500/cc/pr less"
                " sensitive.\n");
    return 0;
}
