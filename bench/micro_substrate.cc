/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: event queue throughput, cache lookup/fill, NoC traversal,
 * DRAM booking, and the OOO core per-op cost. These bound the
 * simulator's host-side performance (how many simulated memory ops
 * per wall-second the experiment harness can drive).
 */

#include <benchmark/benchmark.h>

#include <coroutine>
#include <queue>
#include <vector>

#include "cpu/ooo_core.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

using namespace minnow;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            eq.schedule(eq.now() + std::uint64_t(i % 7),
                        [](void *p) {
                            ++*static_cast<std::uint64_t *>(p);
                        },
                        &sink);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

/**
 * The pre-timing-wheel EventQueue (a binary heap of 40-byte events),
 * kept here verbatim as an in-binary baseline so
 * scripts/bench_simspeed.py can report the wheel-vs-heap speedup
 * from a single process on the same host.
 */
class BaselineHeapEventQueue
{
  public:
    using Callback = void (*)(void *);

    Cycle now() const { return now_; }

    void
    schedule(Cycle when, Callback fn, void *arg)
    {
        heap_.push(Event{when, seq_++, nullptr, fn, arg});
    }

    void
    run()
    {
        while (!heap_.empty()) {
            Event ev = heap_.top();
            heap_.pop();
            now_ = ev.when;
            if (ev.coro)
                ev.coro.resume();
            else
                ev.fn(ev.arg);
        }
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        std::coroutine_handle<> coro;
        Callback fn;
        void *arg;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
};

/** Identical workload to BM_EventQueueScheduleRun, heap engine. */
void
BM_EventQueueBaselineHeap(benchmark::State &state)
{
    BaselineHeapEventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            eq.schedule(eq.now() + std::uint64_t(i % 7),
                        [](void *p) {
                            ++*static_cast<std::uint64_t *>(p);
                        },
                        &sink);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueBaselineHeap);

/**
 * Mixed near/far schedule: mostly short latencies with a trickle of
 * far-future timers (the watchdog/fault/DRAM-callback pattern),
 * exercising the wheel's overflow heap and its migration path.
 */
void
BM_EventQueueFarFutureMix(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 63; ++i) {
            eq.schedule(eq.now() + std::uint64_t(i % 120),
                        [](void *p) {
                            ++*static_cast<std::uint64_t *>(p);
                        },
                        &sink);
        }
        eq.schedule(eq.now() + 10000, // far: overflow path
                    [](void *p) {
                        ++*static_cast<std::uint64_t *>(p);
                    },
                    &sink);
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueFarFutureMix);

void
BM_CacheLookupHit(benchmark::State &state)
{
    mem::CacheArray cache(CacheParams{64 * 1024, 8, 4});
    mem::Eviction ev;
    for (Addr a = 0; a < 512; ++a)
        cache.fill(a, false, ev);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a % 512));
        ++a;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void
BM_MemorySystemAccess(benchmark::State &state)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 8;
    mem::MemorySystem ms(cfg);
    Addr a = 0x100000;
    Cycle t = 0;
    for (auto _ : state) {
        mem::MemAccess req;
        req.addr = a;
        req.core = CoreId(a / 64 % 8);
        req.when = t;
        auto r = ms.access(req);
        benchmark::DoNotOptimize(r);
        a += 64;
        t += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemorySystemAccess);

void
BM_OooCoreLoad(benchmark::State &state)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    mem::MemorySystem ms(cfg);
    cpu::OooCore core(0, cfg.core, &ms, 1);
    Addr a = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core.load(a));
        a += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OooCoreLoad);

} // anonymous namespace

BENCHMARK_MAIN();
