/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: event queue throughput, cache lookup/fill, NoC traversal,
 * DRAM booking, and the OOO core per-op cost. These bound the
 * simulator's host-side performance (how many simulated memory ops
 * per wall-second the experiment harness can drive).
 */

#include <benchmark/benchmark.h>

#include "cpu/ooo_core.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

using namespace minnow;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            eq.schedule(eq.now() + std::uint64_t(i % 7),
                        [](void *p) {
                            ++*static_cast<std::uint64_t *>(p);
                        },
                        &sink);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheLookupHit(benchmark::State &state)
{
    mem::CacheArray cache(CacheParams{64 * 1024, 8, 4});
    mem::Eviction ev;
    for (Addr a = 0; a < 512; ++a)
        cache.fill(a, false, ev);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a % 512));
        ++a;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void
BM_MemorySystemAccess(benchmark::State &state)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 8;
    mem::MemorySystem ms(cfg);
    Addr a = 0x100000;
    Cycle t = 0;
    for (auto _ : state) {
        mem::MemAccess req;
        req.addr = a;
        req.core = CoreId(a / 64 % 8);
        req.when = t;
        auto r = ms.access(req);
        benchmark::DoNotOptimize(r);
        a += 64;
        t += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemorySystemAccess);

void
BM_OooCoreLoad(benchmark::State &state)
{
    MachineConfig cfg = scaledMachine();
    cfg.numCores = 2;
    mem::MemorySystem ms(cfg);
    cpu::OooCore core(0, cfg.core, &ms, 1);
    Addr a = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core.load(a));
        a += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OooCoreLoad);

} // anonymous namespace

BENCHMARK_MAIN();
