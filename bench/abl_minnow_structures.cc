/**
 * @file
 * Ablations beyond the paper: sensitivity of Minnow performance to
 * its structure sizes — local queue depth, load buffer entries, and
 * the OBIM bucket interval of the offloaded global worklist — on a
 * priority-sensitive workload (SSSP) and a throughput one (BFS).
 * These quantify the design choices DESIGN.md calls out.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 16);
    std::string workload = opts.getString("workload", "sssp");
    opts.rejectUnused();

    banner("Ablation: Minnow structure sizing (" + workload + ", " +
               std::to_string(args.threads) + " threads)",
           "");

    {
        std::printf("\n--- local queue depth ---\n");
        TextTable t;
        t.header({"localQ", "cycles", "deq-blocks", "spills"});
        for (std::uint32_t lq : {8u, 16u, 32u, 64u, 128u}) {
            harness::Workload w = harness::makeWorkload(
                workload, args.scale, args.seed);
            BenchArgs a = args;
            a.machine.minnow.localQueueEntries = lq;
            a.machine.minnow.refillThreshold =
                std::max(2u, lq / 4);
            auto r = run(w, harness::Config::MinnowPf,
                         args.threads, a);
            checkVerified(r, workload);
            t.row({std::to_string(lq),
                   cyclesOrTimeout(r.run),
                   TextTable::count(r.engines.dequeueBlocks),
                   TextTable::count(r.engines.spillsSpawned)});
        }
        t.print();
    }
    {
        std::printf("\n--- load buffer entries ---\n");
        TextTable t;
        t.header({"loadBuf", "cycles", "lb-stalls", "mpki"});
        for (std::uint32_t lb : {4u, 8u, 16u, 32u, 64u}) {
            harness::Workload w = harness::makeWorkload(
                workload, args.scale, args.seed);
            BenchArgs a = args;
            a.machine.minnow.loadBufferEntries = lb;
            auto r = run(w, harness::Config::MinnowPf,
                         args.threads, a);
            checkVerified(r, workload);
            t.row({std::to_string(lb), cyclesOrTimeout(r.run),
                   TextTable::count(r.engines.loadBufStalls),
                   TextTable::num(r.run.l2Mpki, 1)});
        }
        t.print();
    }
    {
        std::printf("\n--- offloaded OBIM bucket interval ---\n");
        TextTable t;
        t.header({"lgDelta", "cycles", "tasks(work-eff)"});
        for (std::uint32_t lg : {0u, 2u, 4u, 6u, 8u, 12u}) {
            harness::Workload w = harness::makeWorkload(
                workload, args.scale, args.seed);
            w.lgDelta = lg;
            auto r = run(w, harness::Config::MinnowPf,
                         args.threads, args);
            checkVerified(r, workload);
            t.row({std::to_string(lg), cyclesOrTimeout(r.run),
                   TextTable::count(r.run.tasks)});
        }
        t.print();
    }
    return 0;
}
