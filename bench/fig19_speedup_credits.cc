/**
 * @file
 * Fig. 19: Minnow prefetching speedup (vs Minnow with prefetching
 * disabled) as prefetch credits sweep 1..256. Paper shape: all
 * workloads gain (1.39x TC .. 2.47x BC); diminishing returns near
 * 32-64 credits; G500 degrades past its optimum (cache overflow on
 * the scale-free input).
 */

#include <cstdio>

#include "credit_sweep.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 64);
    auto credits = creditsFromOpts(opts);
    opts.rejectUnused();

    banner("Fig. 19: prefetching speedup vs credits (normalized to"
           " Minnow, prefetch off)",
           "gains 1.39x-2.47x; diminishing past 32-64; G500 drops"
           " at high credits");

    TextTable table;
    std::vector<std::string> header = {"workload"};
    for (auto c : credits)
        header.push_back(std::to_string(c));
    table.header(header);
    for (const std::string &name : args.workloads) {
        CreditSweep s = sweepCredits(name, args, credits);
        std::vector<std::string> row = {s.workload};
        for (const CreditPoint &p : s.points) {
            row.push_back(p.timedOut
                              ? "T/O"
                              : TextTable::num(p.speedup, 2) + "x");
        }
        table.row(row);
    }
    table.print();
    return 0;
}
