/**
 * @file
 * Fig. 16: overall Minnow speedup vs the optimized Galois software
 * baseline at 64 threads, with and without worklist-directed
 * prefetching. The paper reports per-workload speedups averaging
 * 2.96x (offload only) and 6.01x (offload + prefetch).
 *
 * --stats-json=<path> captures every run's full registry snapshot
 * (per-core MPKI, prefetch coverage/accuracy, engine counters) for
 * machine-readable comparison against the figure.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

namespace
{

/** Paper Fig. 16 approximate speedups (read off the figure). */
double
paperNoPf(const std::string &w)
{
    if (w == "sssp") return 2.4;
    if (w == "bfs") return 2.7;
    if (w == "g500") return 2.6;
    if (w == "cc") return 6.5;
    if (w == "pr") return 3.3;
    if (w == "tc") return 1.1;
    if (w == "bc") return 2.1;
    return 0;
}

double
paperWithPf(const std::string &w)
{
    if (w == "sssp") return 4.6;
    if (w == "bfs") return 6.3;
    if (w == "g500") return 5.9;
    if (w == "cc") return 12.4;
    if (w == "pr") return 6.7;
    if (w == "tc") return 1.5;
    if (w == "bc") return 5.2;
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 4.0, 64);
    opts.rejectUnused();

    banner("Fig. 16: Minnow speedup vs software baseline, " +
               std::to_string(args.threads) + " threads",
           "avg 2.96x (Minnow), 6.01x (Minnow+prefetch)");

    TextTable table;
    table.header({"workload", "galois(cyc)", "minnow(cyc)",
                  "minnow+pf(cyc)", "speedup", "speedup+pf",
                  "paper", "paper+pf"});
    double geoNoPf = 1, geoPf = 1;
    int counted = 0;
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto base = run(w, harness::Config::Obim, args.threads,
                        args);
        checkVerified(base, name + "/obim");
        auto mn = run(w, harness::Config::Minnow, args.threads,
                      args);
        checkVerified(mn, name + "/minnow");
        auto pf = run(w, harness::Config::MinnowPf, args.threads,
                      args);
        checkVerified(pf, name + "/minnow-pf");

        double s1 = base.run.timedOut || mn.run.timedOut
                        ? 0
                        : double(base.run.cycles) / mn.run.cycles;
        double s2 = base.run.timedOut || pf.run.timedOut
                        ? 0
                        : double(base.run.cycles) / pf.run.cycles;
        if (s1 > 0 && s2 > 0) {
            geoNoPf *= s1;
            geoPf *= s2;
            ++counted;
        }
        table.row({w.name, cyclesOrTimeout(base.run),
                   cyclesOrTimeout(mn.run), cyclesOrTimeout(pf.run),
                   TextTable::num(s1, 2) + "x",
                   TextTable::num(s2, 2) + "x",
                   TextTable::num(paperNoPf(name), 1) + "x",
                   TextTable::num(paperWithPf(name), 1) + "x"});
    }
    table.print();
    if (counted) {
        std::printf("geomean speedup: %.2fx (minnow), %.2fx"
                    " (minnow+prefetch); paper avg: 2.96x / 6.01x\n",
                    std::pow(geoNoPf, 1.0 / counted),
                    std::pow(geoPf, 1.0 / counted));
    }
    return 0;
}
