/**
 * @file
 * Table 3: the simulated machine configuration — the paper-exact
 * parameters and the cache-scaled preset the benches run on.
 */

#include <cstdio>

#include "base/options.hh"
#include "sim/config.hh"

using namespace minnow;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    MachineConfig paper = paperMachine();
    paper.minnow.enabled = true;
    paper.minnow.prefetchEnabled = true;
    MachineConfig scaled = scaledMachine();
    scaled.applyOptions(opts);
    scaled.minnow.enabled = true;
    scaled.minnow.prefetchEnabled = true;
    opts.rejectUnused();

    std::printf("=== Table 3: baseline microarchitecture ===\n\n");
    std::printf("--- paper configuration (Table 3 exact) ---\n%s\n",
                paper.describe().c_str());
    std::printf("\n--- scaled configuration (bench default;"
                " cache-scaled per DESIGN.md) ---\n%s\n",
                scaled.describe().c_str());
    return 0;
}
