/**
 * @file
 * Fig. 18: Minnow prefetching effect on L2 misses per
 * kilo-instruction as prefetch credits sweep 1..256. Paper shape:
 * without prefetching all benchmarks except TC sit above 20 MPKI;
 * MPKI falls with credits, is minimized between 32 and 128, and
 * over-aggressive prefetching thrashes the L2 (MPKI rises again on
 * several inputs; SSSP cannot hide everything).
 */

#include <cstdio>

#include "credit_sweep.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 64);
    auto credits = creditsFromOpts(opts);
    opts.rejectUnused();

    banner("Fig. 18: L2 MPKI vs prefetch credits",
           "no-pf MPKI >20 (except tc); minimum between 32-128"
           " credits");

    TextTable table;
    std::vector<std::string> header = {"workload", "no-pf"};
    for (auto c : credits)
        header.push_back(std::to_string(c));
    table.header(header);
    for (const std::string &name : args.workloads) {
        CreditSweep s = sweepCredits(name, args, credits);
        std::vector<std::string> row = {
            s.workload, TextTable::num(s.baseMpki, 1)};
        for (const CreditPoint &p : s.points) {
            row.push_back(p.timedOut ? "T/O"
                                     : TextTable::num(p.mpki, 1));
        }
        table.row(row);
    }
    table.print();
    return 0;
}
