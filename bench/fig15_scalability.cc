/**
 * @file
 * Fig. 15: Galois scalability 1..64 threads with and without Minnow
 * (prefetching disabled to isolate worklist offload), relative to
 * the optimized serial baseline (Galois with atomics removed).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 2.0, 64);
    opts.rejectUnused();

    const std::vector<std::uint32_t> threads = {1, 2, 4, 8,
                                                16, 32, 64};
    banner("Fig. 15: scalability vs optimized serial baseline",
           "Galois scales to ~32 threads then flattens; CC slows"
           " past 16; Minnow keeps scaling");

    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto serial = run(w, harness::Config::SerialRelaxed, 1,
                          args);
        checkVerified(serial, name + "/serial");
        double norm = double(serial.run.cycles);

        std::printf("\n-- %s (serial baseline %s cycles) --\n",
                    name.c_str(),
                    TextTable::count(serial.run.cycles).c_str());
        TextTable table;
        table.header({"threads", "galois", "minnow"});
        for (std::uint32_t t : threads) {
            if (t > args.threads)
                break;
            auto sw = run(w, harness::Config::Obim, t, args);
            checkVerified(sw, name + "/obim");
            auto hw = run(w, harness::Config::Minnow, t, args);
            checkVerified(hw, name + "/minnow");
            auto cell = [&](const harness::ExperimentResult &r) {
                if (r.run.timedOut)
                    return std::string("TIMEOUT");
                return TextTable::num(norm / double(r.run.cycles),
                                      2) +
                       "x";
            };
            table.row({std::to_string(t), cell(sw), cell(hw)});
        }
        table.print();
    }
    return 0;
}
