/**
 * @file
 * Shared driver code for the per-figure/table bench binaries.
 *
 * Every bench accepts:
 *   --scale=<f>     input scale factor (default per bench)
 *   --threads=<n>   worker count for the headline runs
 *   --workloads=a,b comma list (default: all seven)
 *   --seed=<n>      generator seed
 *   --max-events=<n> timeout knob
 * plus the machine overrides understood by
 * MachineConfig::applyOptions (--rob=, --credits=, --mem-channels=,
 * ...).
 *
 * Output convention: each bench prints the paper's rows/series as a
 * fixed-width table, with the paper's published value alongside where
 * one exists, so shape comparisons are one glance.
 */

#ifndef MINNOW_BENCH_BENCH_COMMON_HH
#define MINNOW_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "base/options.hh"
#include "base/trace.hh"
#include "base/table.hh"
#include "harness/workloads.hh"

namespace minnow::bench
{

/** Parsed common flags. */
struct BenchArgs
{
    double scale = 1.0;
    std::uint32_t threads = 64;
    std::uint64_t seed = 1;
    std::uint64_t maxEvents = 400'000'000;
    std::vector<std::string> workloads;
    std::string statsDir; //!< dump per-run .stats files here.
    MachineConfig machine;

    BenchArgs() : machine(scaledMachine()) {}
};

/** Parse common flags; @p defaultScale tunes per-bench run time. */
inline BenchArgs
parseArgs(const Options &opts, double defaultScale = 1.0,
          std::uint32_t defaultThreads = 64)
{
    BenchArgs a;
    a.scale = opts.getDouble("scale", defaultScale);
    a.threads =
        std::uint32_t(opts.getUint("threads", defaultThreads));
    a.seed = opts.getUint("seed", 1);
    a.maxEvents = opts.getUint("max-events", a.maxEvents);
    trace::enableList(opts.getString("debug-flags", ""));
    a.statsDir = opts.getString("stats-dir", "");
    a.machine.applyOptions(opts);
    if (a.machine.numCores < a.threads)
        a.machine.numCores = a.threads;

    std::string list = opts.getString("workloads", "");
    if (list.empty()) {
        a.workloads = harness::workloadNames();
    } else {
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            std::size_t comma = list.find(',', pos);
            a.workloads.push_back(list.substr(
                pos, comma == std::string::npos ? comma
                                                : comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    }
    return a;
}

/** Run one workload/config and return the result (fresh machine). */
inline harness::ExperimentResult
run(harness::Workload &w, harness::Config config,
    std::uint32_t threads, const BenchArgs &a, bool verify = true)
{
    harness::RunSpec spec;
    spec.config = config;
    spec.threads = threads;
    spec.machine = a.machine;
    spec.verify = verify;
    spec.maxEvents = a.maxEvents;
    harness::ExperimentResult r = harness::runExperiment(w, spec);
    if (!a.statsDir.empty()) {
        std::string path = a.statsDir + "/" + w.name + "-" +
                           harness::configName(config) + "-t" +
                           std::to_string(threads) + ".stats";
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            r.run.report.dump(f);
            std::fclose(f);
        }
    }
    return r;
}

/** "12.34" or "TIMEOUT". */
inline std::string
cyclesOrTimeout(const galois::RunResult &r, double norm = 1.0)
{
    if (r.timedOut)
        return "TIMEOUT";
    return TextTable::num(double(r.cycles) / norm, 2);
}

/** Header banner naming the figure/table reproduced. */
inline void
banner(const std::string &what, const std::string &paperNote)
{
    std::printf("=== %s ===\n", what.c_str());
    if (!paperNote.empty())
        std::printf("paper: %s\n", paperNote.c_str());
}

/** Warn loudly if a run failed verification. */
inline void
checkVerified(const harness::ExperimentResult &r,
              const std::string &label)
{
    if (!r.run.timedOut && !r.run.verified) {
        std::fprintf(stderr,
                     "WARNING: %s failed output verification\n",
                     label.c_str());
    }
}

} // namespace minnow::bench

#endif // MINNOW_BENCH_BENCH_COMMON_HH
