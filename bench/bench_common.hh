/**
 * @file
 * Shared driver code for the per-figure/table bench binaries.
 *
 * Every bench accepts:
 *   --scale=<f>     input scale factor (default per bench)
 *   --threads=<n>   worker count for the headline runs
 *   --workloads=a,b comma list (default: all seven)
 *   --seed=<n>      generator seed
 *   --max-events=<n> timeout knob
 *   --stats-json=<path> machine-readable per-run stats dump
 *                   (schema "minnow-bench-stats-1"; every run's
 *                   full StatsRegistry snapshot rides along)
 * plus the machine overrides understood by
 * MachineConfig::applyOptions (--rob=, --credits=, --mem-channels=,
 * ...). The credit-sweep benches (18/19/20) additionally take
 * --credits-list=a,b to override the swept credit counts.
 *
 * Offload round-trip knobs (applyOptions; see DESIGN.md section 5h):
 *   --dequeue-batch=<k>  one engine round-trip returns up to k tasks
 *                        (default 1: single-task calls, bit-for-bit
 *                        with earlier builds).
 *   --push-batch=<k>     buffer pushes/credit returns per core and
 *                        flush k at a time (or on a deadline);
 *                        default 1 sends each immediately.
 *   --spec-slot          engine speculatively delivers the next task
 *                        into a core-side slot so a hitting dequeue
 *                        skips the round-trip entirely.
 *   offload_breakdown additionally takes --batch-list=a,b and
 *   --json=<path> (schema "minnow-offload-1").
 *
 * Checkpoint knobs (DESIGN.md section 5i):
 *   --checkpoint-out=<path>   write a checkpoint (when depends on
 *                        --checkpoint-after; also written as a
 *                        rescue on SIGINT/SIGTERM).
 *   --checkpoint-in=<path>    warm-start from a checkpoint; any
 *                        validation failure warns and degrades to
 *                        a cold start, never wrong results.
 *   --checkpoint-after=<when> "warmup" (default: save at the warm
 *                        boundary, before simulated time starts) or
 *                        a cycle count (save a mid-run rescue
 *                        anchor at the first event boundary at or
 *                        after that cycle).
 * SIGINT/SIGTERM always stop cleanly at the next event boundary:
 * stats/diag JSON are flushed, a rescue checkpoint is written when
 * --checkpoint-out is set, and the bench exits 128+signal.
 *
 * Robustness knobs (also via applyOptions; see DESIGN.md "Fault
 * model"):
 *   --faults=<spec>   deterministic fault injection, e.g.
 *                     --faults="engine_stall:core=3,at=50000,dur=20000;
 *                               noc_delay:p=0.01,add=200"
 *                     Replays are reproduced by the same spec plus
 *                     the same --seed.
 *   --watchdog=<n>    check forward progress every n cycles; after
 *                     --watchdog-checks (default 4) stale checks the
 *                     run dumps a diagnostic and aborts.
 *   --diag-json=<path>   write the watchdog/budget diagnostic
 *                        (schema "minnow-diag-1") to a file too.
 *   --panic-stats=<path> best-effort stats snapshot on panic()
 *                        (default minnow-panic-stats.json).
 *
 * Observability knobs:
 *   --debug-file=<path>  route DPRINTF debug-flag records to a file
 *                        instead of stderr (fatal if unwritable).
 *   --timeline=<path>    record simulated-time span/instant/counter
 *                        events and write a Chrome trace_event JSON
 *                        (open in Perfetto) when the machine is torn
 *                        down. Adds a "timeline" stats group with
 *                        task-latency percentiles.
 *   --timeline-buffer=<n>  ring-buffer capacity in events (default
 *                        262144); on overflow the oldest events are
 *                        dropped and counted.
 *   --timeline-tracks=a,b  category filter, from task, engine,
 *                        threadlet, credit, worklist, mem, sim
 *                        (default all).
 *   --timeline-interval=<n>  counter-track sampling period in cycles
 *                        (default 1024; 0 disables sampling).
 *
 * Output convention: each bench prints the paper's rows/series as a
 * fixed-width table, with the paper's published value alongside where
 * one exists, so shape comparisons are one glance.
 */

#ifndef MINNOW_BENCH_BENCH_COMMON_HH
#define MINNOW_BENCH_BENCH_COMMON_HH

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/options.hh"
#include "base/trace.hh"
#include "base/table.hh"
#include "harness/workloads.hh"

namespace minnow::bench
{

/**
 * Graceful-stop plumbing: the handler only sets a flag; the event
 * loop polls it at event boundaries, so an interrupted run's
 * simulated prefix stays bit-identical to an uninterrupted one.
 */
inline volatile std::sig_atomic_t gStopRequested = 0;
inline volatile std::sig_atomic_t gStopSignal = 0;

extern "C" inline void
benchSignalHandler(int sig)
{
    gStopSignal = sig;
    gStopRequested = 1;
}

/** Install SIGINT/SIGTERM handlers (called by parseArgs). */
inline void
installSignalHandlers()
{
    std::signal(SIGINT, benchSignalHandler);
    std::signal(SIGTERM, benchSignalHandler);
}

/**
 * Accumulates one JSON entry per benchmark run and writes the whole
 * log as {"schema":"minnow-bench-stats-1","runs":[...]} — each run
 * carries its identifying parameters plus the machine's full
 * StatsRegistry snapshot (schema "minnow-stats-1") under "stats".
 *
 * Shared by value-copied BenchArgs (e.g. inside credit sweeps) via
 * shared_ptr, so every run of the process lands in one file. The
 * destructor flushes, so a bench needs no explicit final call.
 */
class StatsJsonLog
{
  public:
    explicit StatsJsonLog(std::string path) : path_(std::move(path))
    {
    }

    ~StatsJsonLog() { flush(); }

    StatsJsonLog(const StatsJsonLog &) = delete;
    StatsJsonLog &operator=(const StatsJsonLog &) = delete;

    /** Append one run; @p statsJson is RunResult::statsJson. */
    void
    add(const std::string &workload, const std::string &config,
        std::uint32_t threads, double scale, std::uint64_t seed,
        std::uint32_t credits, bool timedOut, bool verified,
        Cycle cycles, std::uint64_t instructions, double l2Mpki,
        const std::string &statsJson)
    {
        char buf[64];
        std::string e = "{\"workload\":\"" + workload + "\"";
        e += ",\"config\":\"" + config + "\"";
        e += ",\"threads\":" + std::to_string(threads);
        std::snprintf(buf, sizeof buf, "%.6g", scale);
        e += std::string(",\"scale\":") + buf;
        e += ",\"seed\":" + std::to_string(seed);
        e += ",\"credits\":" + std::to_string(credits);
        e += std::string(",\"timedOut\":") +
             (timedOut ? "true" : "false");
        e += std::string(",\"verified\":") +
             (verified ? "true" : "false");
        e += ",\"cycles\":" + std::to_string(cycles);
        e += ",\"instructions\":" + std::to_string(instructions);
        std::snprintf(buf, sizeof buf, "%.6g", l2Mpki);
        e += std::string(",\"l2Mpki\":") + buf;
        e += ",\"stats\":" +
             (statsJson.empty() ? std::string("{}") : statsJson);
        e += "}";
        entries_.push_back(std::move(e));
        dirty_ = true;
    }

    /** Write (or rewrite) the log file. */
    void
    flush()
    {
        if (!dirty_)
            return;
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (!f) {
            std::fprintf(stderr,
                         "WARNING: cannot write stats json %s\n",
                         path_.c_str());
            return;
        }
        std::fprintf(f, "{\"schema\":\"minnow-bench-stats-1\","
                        "\"runs\":[");
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            std::fprintf(f, "%s%s", i ? "," : "",
                         entries_[i].c_str());
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        dirty_ = false;
    }

  private:
    std::string path_;
    std::vector<std::string> entries_;
    bool dirty_ = true; //!< start true: an empty log still writes.
};

/** Parsed common flags. */
struct BenchArgs
{
    double scale = 1.0;
    std::uint32_t threads = 64;
    std::uint64_t seed = 1;
    std::uint64_t maxEvents = 400'000'000;
    std::vector<std::string> workloads;
    std::string statsDir; //!< dump per-run .stats files here.
    std::shared_ptr<StatsJsonLog> statsJson; //!< --stats-json log.
    std::string checkpointOut;   //!< --checkpoint-out.
    std::string checkpointIn;    //!< --checkpoint-in.
    std::string checkpointAfter = "warmup"; //!< --checkpoint-after.

    /**
     * Host task-farm width for independent sweep points
     * (--host-par=N, default 1 = serial). Sweep drivers farm their
     * per-point loop over N host threads; every farmed point runs
     * its own Machine and workload, and shared outputs
     * (--stats-json, --stats-dir) are replayed in point order after
     * the join, so all files stay byte-identical to a serial sweep.
     */
    std::uint32_t hostPar = 1;
    MachineConfig machine;

    BenchArgs() : machine(scaledMachine()) {}
};

/** Parse common flags; @p defaultScale tunes per-bench run time. */
inline BenchArgs
parseArgs(const Options &opts, double defaultScale = 1.0,
          std::uint32_t defaultThreads = 64)
{
    BenchArgs a;
    a.scale = opts.getDouble("scale", defaultScale);
    a.threads =
        std::uint32_t(opts.getUint("threads", defaultThreads));
    a.seed = opts.getUint("seed", 1);
    a.maxEvents = opts.getUint("max-events", a.maxEvents);
    std::string dbg = opts.getString("debug-file", "");
    if (!dbg.empty())
        trace::setOutputFile(dbg);
    trace::enableList(opts.getString("debug-flags", ""));
    a.statsDir = opts.getString("stats-dir", "");
    std::string sj = opts.getString("stats-json", "");
    if (!sj.empty())
        a.statsJson = std::make_shared<StatsJsonLog>(sj);
    a.checkpointOut = opts.getString("checkpoint-out", "");
    a.checkpointIn = opts.getString("checkpoint-in", "");
    a.checkpointAfter =
        opts.getString("checkpoint-after", "warmup");
    a.hostPar = std::uint32_t(opts.getUint("host-par", 1));
    fatal_if(a.hostPar == 0, "--host-par must be at least 1");
    installSignalHandlers();
    a.machine.applyOptions(opts);
    if (a.machine.numCores < a.threads)
        a.machine.numCores = a.threads;

    std::string list = opts.getString("workloads", "");
    if (list.empty()) {
        a.workloads = harness::workloadNames();
    } else {
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            std::size_t comma = list.find(',', pos);
            a.workloads.push_back(list.substr(
                pos, comma == std::string::npos ? comma
                                                : comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    }
    return a;
}

/**
 * Build a workload honoring --checkpoint-in: warm-loads the graph
 * from the checkpoint when one was given (degrading to cold
 * generation on any validation failure), else generates cold.
 */
inline harness::Workload
makeWorkload(const std::string &name, const BenchArgs &a)
{
    if (!a.checkpointIn.empty()) {
        return harness::makeWorkloadWarm(name, a.scale, a.seed,
                                         a.checkpointIn);
    }
    return harness::makeWorkload(name, a.scale, a.seed);
}

/** Run one workload/config and return the result (fresh machine). */
inline harness::ExperimentResult
run(harness::Workload &w, harness::Config config,
    std::uint32_t threads, const BenchArgs &a, bool verify = true)
{
    harness::RunSpec spec;
    spec.config = config;
    spec.threads = threads;
    spec.machine = a.machine;
    spec.verify = verify;
    spec.maxEvents = a.maxEvents;
    spec.checkpointOut = a.checkpointOut;
    spec.checkpointIn = a.checkpointIn;
    spec.checkpointAfter = a.checkpointAfter;
    spec.interruptFlag = &gStopRequested;
    harness::ExperimentResult r = harness::runExperiment(w, spec);
    if (a.statsJson) {
        a.statsJson->add(w.name, harness::configName(config),
                         threads, a.scale, a.seed,
                         a.machine.minnow.prefetchCredits,
                         r.run.timedOut, r.run.verified,
                         r.run.cycles, r.run.instructions,
                         r.run.l2Mpki, r.run.statsJson);
    }
    if (!a.statsDir.empty()) {
        std::string path = a.statsDir + "/" + w.name + "-" +
                           harness::configName(config) + "-t" +
                           std::to_string(threads) + ".stats";
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            r.run.report.dump(f);
            std::fclose(f);
        }
    }
    if (r.run.interrupted) {
        // Clean signal exit: everything a crashed run would leave
        // behind (diag/stats via the panic-hook registry, the
        // bench's own JSON log, a rescue checkpoint — already
        // written by the harness) is flushed before exiting
        // nonzero so callers can distinguish this from success.
        std::fprintf(stderr,
                     "interrupted by signal %d: stopped at an event"
                     " boundary, output flushed%s\n",
                     int(gStopSignal),
                     a.checkpointOut.empty()
                         ? ""
                         : ", rescue checkpoint written");
        if (a.statsJson)
            a.statsJson->flush();
        flushPanicHooks();
        std::exit(128 + int(gStopSignal));
    }
    return r;
}

/** "12.34" or "TIMEOUT". */
inline std::string
cyclesOrTimeout(const galois::RunResult &r, double norm = 1.0)
{
    if (r.timedOut)
        return "TIMEOUT";
    return TextTable::num(double(r.cycles) / norm, 2);
}

/** Header banner naming the figure/table reproduced. */
inline void
banner(const std::string &what, const std::string &paperNote)
{
    std::printf("=== %s ===\n", what.c_str());
    if (!paperNote.empty())
        std::printf("paper: %s\n", paperNote.c_str());
}

/** Warn loudly if a run failed verification. */
inline void
checkVerified(const harness::ExperimentResult &r,
              const std::string &label)
{
    if (!r.run.timedOut && !r.run.verified) {
        std::fprintf(stderr,
                     "WARNING: %s failed output verification\n",
                     label.c_str());
    }
}

} // namespace minnow::bench

#endif // MINNOW_BENCH_BENCH_COMMON_HH
