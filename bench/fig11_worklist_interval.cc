/**
 * @file
 * Fig. 11: average cycles between worklist enqueue/dequeue
 * operations per core. The paper uses this (ops once every few
 * hundred cycles) to argue the Minnow engine front-end does not
 * need an aggressive design.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 2.0, 64);
    opts.rejectUnused();

    banner("Fig. 11: average cycles per worklist enq/deq operation",
           "hundreds of cycles between accelerator calls");

    TextTable table;
    table.header({"workload", "pushes", "pops", "core-cycles",
                  "cycles/op"});
    for (const std::string &name : args.workloads) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto r = run(w, harness::Config::Minnow, args.threads,
                     args);
        checkVerified(r, name);
        if (r.run.timedOut) {
            table.row({w.name, "TIMEOUT", "", "", ""});
            continue;
        }
        std::uint64_t ops =
            r.engines.enqueues + r.engines.dequeues;
        double coreCycles =
            double(r.run.cycles) * args.threads;
        table.row({w.name, TextTable::count(r.engines.enqueues),
                   TextTable::count(r.engines.dequeues),
                   TextTable::count(r.run.cycles),
                   ops ? TextTable::num(coreCycles / ops, 0)
                       : "-"});
    }
    table.print();
    return 0;
}
