/**
 * @file
 * Ablation: cores per Minnow engine (Section 4: "Cores may share a
 * single Minnow engine to reduce resources. This work focuses on
 * dedicated engines."). Sweeps the sharing degree and reports the
 * performance/area trade-off using the Section 5.4 model.
 */

#include <cstdio>

#include "bench_common.hh"
#include "minnow/area.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 16);
    std::string workload = opts.getString("workload", "bfs");
    opts.rejectUnused();

    banner("Ablation: cores per Minnow engine (" + workload + ", " +
               std::to_string(args.threads) + " threads)",
           "the paper evaluates dedicated engines (1 core/engine)");

    TextTable t;
    t.header({"cores/engine", "cycles", "slowdown", "engine-area"
              " mm^2 total@14nm", "deq-blocks"});
    double base = 0;
    for (std::uint32_t share : {1u, 2u, 4u, 8u}) {
        harness::Workload w =
            harness::makeWorkload(workload, args.scale, args.seed);
        BenchArgs a = args;
        a.machine.minnow.coresPerEngine = share;
        auto r = run(w, harness::Config::MinnowPf, args.threads, a);
        checkVerified(r, workload);
        double c = r.run.timedOut ? 0 : double(r.run.cycles);
        if (share == 1)
            base = c;
        minnowengine::AreaEstimate area =
            minnowengine::estimateArea(a.machine);
        double totalArea = area.totalMm2At14 *
                           ((args.threads + share - 1) / share);
        t.row({std::to_string(share), cyclesOrTimeout(r.run),
               (c && base) ? TextTable::num(c / base, 2) + "x"
                           : "-",
               TextTable::num(totalArea, 3),
               TextTable::count(r.engines.dequeueBlocks)});
    }
    t.print();
    return 0;
}
