/**
 * @file
 * Engine offload round-trip breakdown: where the cycles of a
 * minnow_dequeue go (doorbell hop, waiting for work at the engine,
 * delivery hop), and how dequeue bundling (--dequeue-batch=k)
 * amortizes them. Sweeps k over --batch-list (default 1,2,4,8) on
 * one workload point and prints per-call component cycles plus the
 * worker-side popWait percentiles from the timeline task histogram.
 *
 * Expected shape: the doorbell and delivery legs are a fixed
 * 2 x localQueueLatency per engine call; bundling divides the call
 * count by up to k so per-pop round-trip cost and the popWait tail
 * (P95) drop as k grows, until queue depth can no longer fill a
 * bundle.
 *
 * --json=<path> additionally writes a compact machine-readable
 * summary (schema "minnow-offload-1") consumed by
 * scripts/bench_simspeed.py.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

namespace
{

struct Point
{
    std::uint32_t batch = 1;
    bool specSlot = false;
    bool timedOut = false;
    Cycle cycles = 0;
    std::uint64_t dequeues = 0;       //!< engine round-trips.
    std::uint64_t bundleTasks = 0;    //!< tasks via bundles.
    std::uint64_t specHits = 0;
    double doorbellPerCall = 0;
    double waitPerCall = 0;
    double deliverPerCall = 0;
    double popWaitP50 = 0;
    double popWaitP95 = 0;
    double popWaitP99 = 0;
};

/** One swept configuration: dequeue batch + spec-slot toggle. */
struct SweptConfig
{
    std::uint32_t batch = 1;
    bool specSlot = false;
};

/**
 * Parse --batch-list. A plain token ("4") sweeps that dequeue
 * batch; an "s" suffix ("4s") runs it with the core-side spec slot
 * enabled, so the sweep exercises the speculative-delivery fast
 * path too (specHits stays identically zero otherwise — that dead
 * column hid the slot being off in recorded sweeps). The default
 * sweep carries one spec point at the bundling knee.
 */
std::vector<SweptConfig>
batchesFromOpts(const Options &opts)
{
    std::string list = opts.getString("batch-list", "1,2,4,8,4s");
    std::vector<SweptConfig> out;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        std::size_t comma = list.find(',', pos);
        std::string tok = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) {
            SweptConfig c;
            if (tok.back() == 's') {
                c.specSlot = true;
                tok.pop_back();
            }
            fatal_if(tok.empty(),
                     "--batch-list token has no batch count");
            c.batch = std::uint32_t(std::stoul(tok));
            out.push_back(c);
        }
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    fatal_if(out.empty(), "--batch-list parsed to nothing");
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    // Small default point: popWait contention needs more workers
    // than engine-side supply, not a big graph.
    BenchArgs args = parseArgs(opts, 0.05, 4);
    auto batches = batchesFromOpts(opts);
    std::string jsonPath = opts.getString("json", "");
    opts.rejectUnused();

    banner("Offload round-trip breakdown vs --dequeue-batch",
           "doorbell/delivery legs fixed at localQueueLatency each;"
           " bundling amortizes them per pop");

    const std::string wl =
        args.workloads.empty() ? "sssp" : args.workloads.front();
    harness::Workload w =
        harness::makeWorkload(wl, args.scale, args.seed);

    std::vector<Point> points;
    for (const SweptConfig &sc : batches) {
        std::uint32_t k = sc.batch;
        harness::RunSpec spec;
        spec.config = harness::Config::MinnowPf;
        spec.threads = args.threads;
        spec.machine = args.machine;
        spec.machine.minnow.dequeueBatch = k;
        if (sc.specSlot)
            spec.machine.minnow.specSlot = true;
        // The popWait histogram lives in the timeline stats group;
        // route the (unused) trace to the null device and keep only
        // the task category so tracing cost stays negligible.
        spec.machine.timelinePath = "/dev/null";
        spec.machine.timelineTracks = "task";
        spec.maxEvents = args.maxEvents;
        harness::ExperimentResult r = harness::runExperiment(w, spec);
        checkVerified(r, wl + " k=" + std::to_string(k) +
                             (sc.specSlot ? "s" : ""));

        Point p;
        p.batch = k;
        p.specSlot = spec.machine.minnow.specSlot;
        p.timedOut = r.run.timedOut;
        p.cycles = r.run.cycles;
        p.dequeues = r.engines.dequeues;
        p.bundleTasks = r.engines.dequeueBundleTasks;
        p.specHits = r.engines.specHits;
        double calls = double(std::max<std::uint64_t>(
            1, r.engines.dequeues));
        p.doorbellPerCall = double(r.engines.dqDoorbellCycles) / calls;
        p.waitPerCall = double(r.engines.dqWaitCycles) / calls;
        p.deliverPerCall = double(r.engines.dqDeliverCycles) / calls;
        p.popWaitP50 = r.run.report.get("timeline.popWaitP50");
        p.popWaitP95 = r.run.report.get("timeline.popWaitP95");
        p.popWaitP99 = r.run.report.get("timeline.popWaitP99");
        points.push_back(p);

        if (args.statsJson) {
            args.statsJson->add(wl, "minnow-pf(k=" +
                                std::to_string(k) +
                                (sc.specSlot ? "s)" : ")"),
                                args.threads, args.scale, args.seed,
                                spec.machine.minnow.prefetchCredits,
                                r.run.timedOut, r.run.verified,
                                r.run.cycles, r.run.instructions,
                                r.run.l2Mpki, r.run.statsJson);
        }
    }

    TextTable table;
    table.header({"batch", "specHits", "cycles", "engineCalls",
                  "bundleTasks", "doorbell/call", "wait/call",
                  "deliver/call", "popWaitP50", "popWaitP95",
                  "popWaitP99"});
    for (const Point &p : points) {
        table.row({std::to_string(p.batch) +
                       (p.specSlot ? "s" : ""),
                   std::to_string(p.specHits),
                   p.timedOut ? "TIMEOUT"
                              : std::to_string(p.cycles),
                   std::to_string(p.dequeues),
                   std::to_string(p.bundleTasks),
                   TextTable::num(p.doorbellPerCall, 1),
                   TextTable::num(p.waitPerCall, 1),
                   TextTable::num(p.deliverPerCall, 1),
                   TextTable::num(p.popWaitP50, 0),
                   TextTable::num(p.popWaitP95, 0),
                   TextTable::num(p.popWaitP99, 0)});
    }
    table.print();

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        fatal_if(!f, "cannot write %s", jsonPath.c_str());
        std::fprintf(f, "{\"schema\":\"minnow-offload-1\","
                        "\"workload\":\"%s\",\"threads\":%u,"
                        "\"points\":[", wl.c_str(), args.threads);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            std::fprintf(
                f,
                "%s{\"batch\":%u,\"specSlot\":%s,"
                "\"timedOut\":%s,\"cycles\":%llu,"
                "\"engineCalls\":%llu,\"bundleTasks\":%llu,"
                "\"specHits\":%llu,\"doorbellPerCall\":%.3f,"
                "\"waitPerCall\":%.3f,\"deliverPerCall\":%.3f,"
                "\"popWaitP50\":%.0f,\"popWaitP95\":%.0f,"
                "\"popWaitP99\":%.0f}",
                i ? "," : "", p.batch,
                p.specSlot ? "true" : "false",
                p.timedOut ? "true" : "false",
                (unsigned long long)p.cycles,
                (unsigned long long)p.dequeues,
                (unsigned long long)p.bundleTasks,
                (unsigned long long)p.specHits, p.doorbellPerCall,
                p.waitPerCall, p.deliverPerCall, p.popWaitP50,
                p.popWaitP95, p.popWaitP99);
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
    }
    return 0;
}
