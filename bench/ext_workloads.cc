/**
 * @file
 * Extension study (paper conclusion: "extending Minnow to
 * accelerate other classes of irregular workloads"): maximal
 * independent set and k-core decomposition under the same
 * configurations as Fig. 16.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 2.0, 64);
    opts.rejectUnused();

    banner("Extension workloads under Minnow (" +
               std::to_string(args.threads) + " threads)",
           "beyond the paper: MIS (dataflow greedy) and k-core"
           " peeling");

    TextTable table;
    table.header({"workload", "galois(cyc)", "minnow(cyc)",
                  "minnow+pf(cyc)", "speedup", "speedup+pf",
                  "verified"});
    for (const char *name : {"mis", "kcore"}) {
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        auto base =
            run(w, harness::Config::Obim, args.threads, args);
        auto mn =
            run(w, harness::Config::Minnow, args.threads, args);
        auto pf =
            run(w, harness::Config::MinnowPf, args.threads, args);
        bool ok = base.run.verified && mn.run.verified &&
                  pf.run.verified;
        double s1 = mn.run.timedOut
                        ? 0
                        : double(base.run.cycles) / mn.run.cycles;
        double s2 = pf.run.timedOut
                        ? 0
                        : double(base.run.cycles) / pf.run.cycles;
        table.row({w.name, cyclesOrTimeout(base.run),
                   cyclesOrTimeout(mn.run), cyclesOrTimeout(pf.run),
                   TextTable::num(s1, 2) + "x",
                   TextTable::num(s2, 2) + "x", ok ? "yes" : "NO"});
    }
    table.print();
    return 0;
}
