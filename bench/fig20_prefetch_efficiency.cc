/**
 * @file
 * Fig. 20: prefetch efficiency — prefetched lines used before
 * eviction as a fraction of all prefetch fills — across the credit
 * sweep, plus the IMP prefetcher's efficiency for contrast. Paper
 * shape: near-100% at low credits, degrading for G500/CC/PR/BC as
 * aggressiveness grows; 32 credits give >99% everywhere; IMP is far
 * less efficient.
 */

#include <cstdio>

#include "credit_sweep.hh"

using namespace minnow;
using namespace minnow::bench;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 64);
    auto credits = creditsFromOpts(opts);
    opts.rejectUnused();

    banner("Fig. 20: prefetch efficiency (used-before-evict /"
           " fills) vs credits, plus IMP",
           ">99% at 32 credits for all workloads; IMP much lower");

    TextTable table;
    std::vector<std::string> header = {"workload"};
    for (auto c : credits)
        header.push_back(std::to_string(c));
    header.push_back("imp");
    table.header(header);
    for (const std::string &name : args.workloads) {
        CreditSweep s = sweepCredits(name, args, credits);
        std::vector<std::string> row = {s.workload};
        for (const CreditPoint &p : s.points) {
            row.push_back(p.timedOut
                              ? "T/O"
                              : TextTable::num(p.efficiency, 1));
        }
        // IMP efficiency point (hardware prefetcher, same system).
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        BenchArgs impArgs = args;
        impArgs.machine.prefetcher = PrefetcherKind::Imp;
        auto imp = run(w, harness::Config::Minnow, args.threads,
                       impArgs);
        std::uint64_t fills = imp.run.mem.prefetchFills;
        row.push_back(
            fills ? TextTable::num(100.0 *
                                       double(imp.run.mem
                                                  .prefetchUsed) /
                                       double(fills),
                                   1)
                  : "-");
        table.row(row);
    }
    table.print();
    return 0;
}
