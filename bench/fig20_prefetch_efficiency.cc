/**
 * @file
 * Fig. 20: prefetch efficiency — prefetched lines used before
 * eviction as a fraction of all prefetch fills — across the credit
 * sweep, plus the IMP prefetcher's efficiency for contrast. Paper
 * shape: near-100% at low credits, degrading for G500/CC/PR/BC as
 * aggressiveness grows; 32 credits give >99% everywhere; IMP is far
 * less efficient.
 *
 * The last three columns come from one extra --attribution run at
 * 32 credits per workload: accuracy (fills used before eviction,
 * per the provenance tracker), timeliness (timely share of the used
 * fills — the rest were late, i.e. demanded while still in flight),
 * and pollution (fills whose victim re-missed inside the window).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "credit_sweep.hh"

using namespace minnow;
using namespace minnow::bench;

namespace
{

/** Pull one numeric stat out of the run's "attribution" group. */
double
attrStat(const std::string &json, const std::string &key)
{
    std::size_t base = json.find("\"attribution\":");
    if (base == std::string::npos)
        return 0.0;
    std::string needle = "\"" + key + "\":";
    std::size_t pos = json.find(needle, base);
    return pos == std::string::npos
               ? 0.0
               : std::strtod(json.c_str() + pos + needle.size(),
                             nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    BenchArgs args = parseArgs(opts, 1.0, 64);
    auto credits = creditsFromOpts(opts);
    opts.rejectUnused();

    banner("Fig. 20: prefetch efficiency (used-before-evict /"
           " fills) vs credits, plus IMP",
           ">99% at 32 credits for all workloads; IMP much lower");

    TextTable table;
    std::vector<std::string> header = {"workload"};
    for (auto c : credits)
        header.push_back(std::to_string(c));
    header.push_back("imp");
    header.push_back("acc%@32");
    header.push_back("timely%@32");
    header.push_back("pollut%@32");
    table.header(header);
    for (const std::string &name : args.workloads) {
        CreditSweep s = sweepCredits(name, args, credits);
        std::vector<std::string> row = {s.workload};
        for (const CreditPoint &p : s.points) {
            row.push_back(p.timedOut
                              ? "T/O"
                              : TextTable::num(p.efficiency, 1));
        }
        // IMP efficiency point (hardware prefetcher, same system).
        harness::Workload w =
            harness::makeWorkload(name, args.scale, args.seed);
        BenchArgs impArgs = args;
        impArgs.machine.prefetcher = PrefetcherKind::Imp;
        auto imp = run(w, harness::Config::Minnow, args.threads,
                       impArgs);
        std::uint64_t fills = imp.run.mem.prefetchFills;
        row.push_back(
            fills ? TextTable::num(100.0 *
                                       double(imp.run.mem
                                                  .prefetchUsed) /
                                       double(fills),
                                   1)
                  : "-");
        // Attribution columns: the paper-point credit count (32)
        // re-run with the provenance tracker on.
        harness::Workload wa =
            harness::makeWorkload(name, args.scale, args.seed);
        BenchArgs attrArgs = args;
        attrArgs.machine.minnow.prefetchCredits = 32;
        attrArgs.machine.attribution = true;
        auto ar = run(wa, harness::Config::MinnowPf, args.threads,
                      attrArgs);
        const std::string &aj = ar.run.statsJson;
        double afills = attrStat(aj, "fills");
        double timely = attrStat(aj, "timely");
        double late = attrStat(aj, "late");
        double used = timely + late;
        row.push_back(
            afills ? TextTable::num(100.0 * used / afills, 1)
                   : "-");
        row.push_back(
            used > 0 ? TextTable::num(100.0 * timely / used, 1)
                     : "-");
        row.push_back(
            afills ? TextTable::num(attrStat(aj, "pollutionPct"), 2)
                   : "-");
        table.row(row);
    }
    table.print();
    return 0;
}
