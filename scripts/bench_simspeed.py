#!/usr/bin/env python3
"""Measure simulation speed and write BENCH_simspeed.json.

Two measurements, both from binaries built in this tree:

 1. micro_substrate's event-queue benchmarks: the timing-wheel
    EventQueue (BM_EventQueueScheduleRun) against the pre-wheel
    binary-heap baseline compiled into the same binary
    (BM_EventQueueBaselineHeap), so the speedup is apples-to-apples
    on the same host in the same process. The acceptance bar for the
    wheel is >= 1.3x events/sec on a Release build.
 2. One fig workload (fig18, one sweep point) run with
    --host-profile, harvesting the "hostprof" stats group:
    events/sec, run() wall time, host-ns per component class and
    queue-occupancy percentiles.
 3. offload_breakdown's --dequeue-batch sweep: the engine round-trip
    component split per batch size lands in the "offload" section,
    and the run fails if k=4 bundling does not pull the worker
    popWait P95 strictly below the k=1 value (the round-trip
    amortization the batched-dequeue path exists for).

 4. a --shards=1,2,4,8 sweep of the same fig18 point with
    stats-interval sampling on: events/sec per shard count plus the
    pool's barrier-wait share land in the "shards" section. On
    hosts with >= 4 CPUs, shards=4 must beat shards=1 events/sec
    (on smaller hosts the sweep is recorded, the floor skipped —
    serial event weaving cannot go faster without host cores).

 5. the checkpoint subsystem (DESIGN.md section 5i): host-time cost
    of saving and warm-restoring a fig18-scale point via
    point_runner, and warm-vs-cold time-to-first-figure-point for a
    crash-resumed sweep (scripts/sweep_orchestrator.py serving a
    finished point from its manifest vs re-running it cold). The
    resumed sweep must deliver its first figure point >= 2x faster
    than the cold run.

 6. the causal-attribution layer (--attribution, DESIGN.md section
    5k): wall time of the same point_runner point with attribution
    off (twice, to measure host noise) and on. With the knob off no
    tracker exists (every emit site is a null pointer check), so
    the off runs bound the noise floor; with it on the run must
    stay under a 15% slowdown (or twice the measured off-run noise
    if the host is noisier than that). The smoke point runs ~60 ms,
    where scheduler jitter alone is several percent, so the smoke
    ceiling floor is 1.25x (min-of-3 walls; the full run keeps the
    strict 1.15x contract recorded in BENCH_simspeed.json).

--smoke runs a smaller workload point and only enforces a
conservative >= 1.05x micro speedup (wired into ctest so sim-speed
regressions fail loudly without flaking on noisy CI hosts); the 2x
checkpoint-resume floor and the attribution overhead ceiling apply
in both modes.

Usage:
  bench_simspeed.py [--build-dir DIR] [--micro PATH] [--fig PATH]
                    [--runner PATH] [--out BENCH_simspeed.json]
                    [--smoke] [--min-speedup X]
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"bench_simspeed: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def find_binary(args, explicit, rel):
    if explicit:
        return explicit
    candidates = []
    if args.build_dir:
        candidates.append(os.path.join(args.build_dir, rel))
    candidates += [os.path.join("build-release", rel),
                   os.path.join("build", rel)]
    for c in candidates:
        if os.path.exists(c):
            return c
    fail(f"cannot find {rel}; pass --build-dir or an explicit path")


def run_micro(micro):
    proc = subprocess.run(
        [micro, "--benchmark_filter=BM_EventQueue",
         "--benchmark_format=json"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"micro_substrate exited {proc.returncode}:"
             f"\n{proc.stdout}\n{proc.stderr}")
    doc = json.loads(proc.stdout)
    eps = {}
    for b in doc.get("benchmarks", []):
        eps[b["name"]] = b.get("items_per_second", 0.0)
    wheel = eps.get("BM_EventQueueScheduleRun")
    heap = eps.get("BM_EventQueueBaselineHeap")
    if not wheel or not heap:
        fail("micro_substrate output missing the event-queue"
             f" benchmarks (got {sorted(eps)})")
    return {
        "wheelEventsPerSec": wheel,
        "heapEventsPerSec": heap,
        "farFutureMixEventsPerSec":
            eps.get("BM_EventQueueFarFutureMix", 0.0),
        "speedup": wheel / heap,
    }


def run_workload(fig, smoke):
    scale = "0.05" if smoke else "0.2"
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "stats.json")
        cmd = [
            fig,
            "--workloads=sssp",
            f"--scale={scale}",
            "--threads=4",
            "--cores=4",
            "--credits-list=8",
            "--seed=42",
            "--host-profile",
            f"--stats-json={out}",
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=1800)
        if proc.returncode != 0:
            fail(f"fig workload exited {proc.returncode}:"
                 f"\n{proc.stdout}\n{proc.stderr}")
        with open(out) as f:
            doc = json.load(f)
    runs = doc.get("runs") or []
    if not runs:
        fail("no runs in workload stats JSON")
    hp = (runs[0].get("stats", {}).get("groups", {})
          .get("hostprof"))
    if not hp:
        fail("no 'hostprof' group in workload stats JSON"
             " (--host-profile not plumbed?)")
    return {"bench": os.path.basename(fig),
            "args": " ".join(cmd[1:-1]),
            "hostprof": hp}


def run_offload(offload, smoke):
    """Sweep --dequeue-batch and gate on the popWait tail.

    k=1 pops pay a full engine round-trip per task, so a meaningful
    share of them wait >= one popWait histogram bucket; k=4 bundles
    amortize the round-trip and must pull the P95 strictly below the
    k=1 value on the same workload point.
    """
    scale = "0.05" if smoke else "0.1"
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "offload.json")
        cmd = [
            offload,
            "--workloads=sssp",
            f"--scale={scale}",
            "--threads=4",
            "--cores=4",
            "--seed=42",
            "--batch-list=1,2,4,8,4s",
            f"--json={out}",
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=1800)
        if proc.returncode != 0:
            fail(f"offload_breakdown exited {proc.returncode}:"
                 f"\n{proc.stdout}\n{proc.stderr}")
        with open(out) as f:
            doc = json.load(f)
    points = {(p["batch"], p.get("specSlot", False)): p
              for p in doc.get("points", [])}
    k1, k4 = points.get((1, False)), points.get((4, False))
    spec = points.get((4, True))
    if not k1 or not k4:
        fail("offload_breakdown output missing the k=1/k=4 points")
    if not spec:
        fail("offload_breakdown output missing the k=4 spec-slot"
             " point (--batch-list '4s' entry)")
    for p in (k1, k4, spec):
        if p["timedOut"]:
            fail(f"offload point k={p['batch']} timed out")
    if k4["popWaitP95"] >= k1["popWaitP95"]:
        fail(f"dequeue batching regression: k=4 popWaitP95"
             f" {k4['popWaitP95']} not below k=1's"
             f" {k1['popWaitP95']}")
    if spec["specHits"] <= 0:
        fail("spec-slot point recorded zero specHits: the core-side"
             " slot is not delivering (or the sweep lost the"
             " --spec-slot plumbing again)")
    return {"bench": os.path.basename(offload),
            "args": " ".join(cmd[1:-1]),
            "workload": doc.get("workload"),
            "points": doc.get("points", [])}


def run_shards(fig, smoke):
    """Sweep --shards on one fig18 point and record events/sec.

    The sharded scheduler keeps event execution serial (that is the
    byte-identity argument), so its host speedup comes from the
    shard pool's fan-out of stats-interval sampling and, at the
    bench layer, the --host-par point farm. Both need real host
    cores: the shards=4-beats-shards=1 floor is only enforced when
    the host has >= 4 CPUs, otherwise the sweep is recorded with
    the gate marked skipped (a 1-CPU CI box cannot express host
    parallelism, and failing there would only teach people to
    ignore the bench).
    """
    scale = "0.05" if smoke else "0.2"
    cores = "16" if smoke else "64"
    sweep = []
    for shards in (1, 2, 4, 8):
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "stats.json")
            cmd = [
                fig,
                "--workloads=sssp",
                f"--scale={scale}",
                "--threads=8",
                f"--cores={cores}",
                "--credits-list=8",
                "--seed=42",
                "--host-profile",
                "--stats-interval=2000",
                f"--shards={shards}",
                f"--stats-json={out}",
            ]
            wall, proc = timed_run(cmd)
            if proc.returncode != 0:
                fail(f"shards={shards} fig point exited"
                     f" {proc.returncode}:\n{proc.stdout}\n"
                     f"{proc.stderr}")
            with open(out) as f:
                doc = json.load(f)
        runs = doc.get("runs") or []
        if not runs:
            fail(f"no runs in shards={shards} stats JSON")
        hp = (runs[0].get("stats", {}).get("groups", {})
              .get("hostprof"))
        if not hp:
            fail(f"no hostprof group at shards={shards}")
        sweep.append({
            "shards": shards,
            "eventsPerSec": hp.get("eventsPerSec", 0.0),
            "events": hp.get("events", 0.0),
            "wallNs": hp.get("wallNs", 0.0),
            "barrierWaitNs": hp.get("barrierWaitNs", 0.0),
            "wallSeconds": wall,
        })
    by = {p["shards"]: p for p in sweep}
    host_cpus = os.cpu_count() or 1
    gate_enforced = host_cpus >= 4
    if gate_enforced and \
            by[4]["eventsPerSec"] <= by[1]["eventsPerSec"]:
        fail(f"sharded-host regression: shards=4"
             f" {by[4]['eventsPerSec']:.3e} ev/s not above"
             f" shards=1 {by[1]['eventsPerSec']:.3e} ev/s"
             f" on a {host_cpus}-CPU host")
    return {
        "bench": os.path.basename(fig),
        "point": f"sssp scale={scale} threads=8 cores={cores}"
                 f" credits=8 stats-interval=2000",
        "hostCpus": host_cpus,
        "gateEnforced": gate_enforced,
        "sweep": sweep,
    }


def timed_run(cmd, timeout=1800):
    """Run a subprocess; return (wall_seconds, proc)."""
    t0 = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          timeout=timeout)
    return time.monotonic() - t0, proc


def run_checkpoint(runner):
    """Measure checkpoint save/restore host cost and the
    warm-vs-cold time-to-first-figure-point of a resumed sweep."""
    orch = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "sweep_orchestrator.py")
    scale = "1.0"  # generation + sim must dominate process startup
    point = ["--workload=sssp", "--config=minnow-pf",
             "--threads=4", "--cores=4", f"--scale={scale}",
             "--seed=42"]
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "warm.ckpt")

        def point_run(extra):
            out = os.path.join(tmp, "point.json")
            wall, proc = timed_run(
                [runner] + point + [f"--json={out}"] + extra)
            if proc.returncode != 0:
                fail(f"point_runner exited {proc.returncode}:"
                     f"\n{proc.stdout}\n{proc.stderr}")
            with open(out) as f:
                return wall, json.load(f)

        cold_wall, cold = point_run([])
        save_wall, _save = point_run([f"--checkpoint-out={ckpt}"])
        warm_wall, warm = point_run([f"--checkpoint-in={ckpt}"])
        if not warm.get("warmStart"):
            fail("checkpoint restore did not warm-start")

        # Orchestrated sweep: first invocation runs the point and
        # journals it; the re-invocation (a crash-recovery resume)
        # serves it from the manifest. Its wall clock is the
        # resumed sweep's time-to-first-figure-point.
        sweep = [sys.executable, orch, f"--runner={runner}",
                 f"--points=sssp:minnow-pf:4", f"--scale={scale}",
                 "--seed=42", f"--out={os.path.join(tmp, 'sweep')}"]
        _, proc = timed_run(sweep)
        if proc.returncode != 0:
            fail(f"orchestrator sweep failed:\n{proc.stdout}"
                 f"\n{proc.stderr}")
        resume_wall, proc = timed_run(sweep)
        if proc.returncode != 0 or \
                "served from manifest" not in proc.stdout:
            fail(f"orchestrator resume did not serve from the "
                 f"manifest:\n{proc.stdout}\n{proc.stderr}")
        ckpt_bytes = os.path.getsize(ckpt)

    return {
        "runner": os.path.basename(runner),
        "point": " ".join(point),
        "coldSeconds": cold_wall,
        "saveSeconds": save_wall,
        "warmSeconds": warm_wall,
        "coldBuildSeconds": cold["buildSeconds"],
        "warmBuildSeconds": warm["buildSeconds"],
        "checkpointBytes": ckpt_bytes,
        "resumeSeconds": resume_wall,
        "resumeSpeedup": cold_wall / resume_wall,
    }


def run_attribution(runner, smoke):
    """Measure the --attribution overhead against an off baseline."""
    scale = "0.2" if smoke else "1.0"
    point = ["--workload=sssp", "--config=minnow-pf",
             "--threads=8", "--cores=8", f"--scale={scale}",
             "--seed=42"]

    # Smoke points run ~60 ms, where scheduler jitter alone is a
    # few percent of the wall time; min-of-N keeps the ratio about
    # the simulator instead of the host.
    reps = 3 if smoke else 2

    def point_run(extra):
        best = None
        for _ in range(reps):
            wall, proc = timed_run([runner] + point + extra)
            if proc.returncode != 0:
                fail(f"point_runner exited {proc.returncode}:"
                     f"\n{proc.stdout}\n{proc.stderr}")
            best = wall if best is None else min(best, wall)
        return best

    # Two off measurements bound the host noise; with the knob off
    # the tracker does not exist, so any spread between them is
    # pure host jitter, not attribution cost.
    off_a = point_run([])
    off_b = point_run([])
    on_wall = point_run(["--attribution"])
    off_wall = min(off_a, off_b)
    noise = abs(off_a - off_b) / off_wall if off_wall else 0.0
    floor = 1.25 if smoke else 1.15
    ceiling = max(floor, 1.0 + 2.0 * noise)
    overhead = on_wall / off_wall if off_wall else 1.0
    if overhead > ceiling:
        fail(f"--attribution overhead {overhead:.2f}x exceeds the "
             f"{ceiling:.2f}x ceiling (off {off_wall:.2f}s twice "
             f"within {noise * 100:.1f}%, on {on_wall:.2f}s)")
    return {
        "runner": os.path.basename(runner),
        "point": " ".join(point),
        "offSecondsA": off_a,
        "offSecondsB": off_b,
        "offNoise": noise,
        "onSeconds": on_wall,
        "overhead": overhead,
        "ceiling": ceiling,
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default=None)
    ap.add_argument("--micro", default=None,
                    help="path to micro_substrate")
    ap.add_argument("--fig", default=None,
                    help="path to fig18_mpki_credits")
    ap.add_argument("--offload", default=None,
                    help="path to offload_breakdown")
    ap.add_argument("--runner", default=None,
                    help="path to point_runner")
    ap.add_argument("--out", default="BENCH_simspeed.json")
    ap.add_argument("--smoke", action="store_true",
                    help="small workload, conservative threshold")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="override the wheel-vs-heap bar")
    args = ap.parse_args()

    micro = find_binary(args, args.micro, "bench/micro_substrate")
    fig = find_binary(args, args.fig, "bench/fig18_mpki_credits")
    offload = find_binary(args, args.offload,
                          "bench/offload_breakdown")
    runner = find_binary(args, args.runner, "bench/point_runner")

    micro_res = run_micro(micro)
    workload_res = run_workload(fig, args.smoke)
    offload_res = run_offload(offload, args.smoke)
    shards_res = run_shards(fig, args.smoke)
    ckpt_res = run_checkpoint(runner)
    attr_res = run_attribution(runner, args.smoke)

    bar = args.min_speedup
    if bar is None:
        bar = 1.05 if args.smoke else 1.3

    doc = {
        "schema": "minnow-simspeed-1",
        "smoke": args.smoke,
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "micro": micro_res,
        "workload": workload_res,
        "offload": offload_res,
        "shards": shards_res,
        "checkpoint": ckpt_res,
        "attribution": attr_res,
        "minSpeedup": bar,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    hp = workload_res["hostprof"]
    opts = {p["batch"]: p for p in offload_res["points"]
            if not p.get("specSlot")}
    sh = {p["shards"]: p for p in shards_res["sweep"]}
    print(f"bench_simspeed: wheel {micro_res['wheelEventsPerSec']:.3e}"
          f" ev/s vs heap {micro_res['heapEventsPerSec']:.3e} ev/s"
          f" -> {micro_res['speedup']:.2f}x"
          f" | workload {hp.get('eventsPerSec', 0):.3e} ev/s"
          f" ({int(hp.get('events', 0))} events)"
          f" | popWaitP95 k=1 {opts[1]['popWaitP95']:.0f}"
          f" -> k=4 {opts[4]['popWaitP95']:.0f}"
          f" | shards 1->{sh[1]['eventsPerSec']:.2e}"
          f" 4->{sh[4]['eventsPerSec']:.2e} ev/s"
          f" (gate {'on' if shards_res['gateEnforced'] else 'off'},"
          f" {shards_res['hostCpus']} host CPUs)"
          f" | ckpt cold {ckpt_res['coldSeconds']:.3f}s, resume "
          f"{ckpt_res['resumeSeconds']:.3f}s"
          f" ({ckpt_res['resumeSpeedup']:.1f}x)"
          f" | attribution {attr_res['overhead']:.2f}x"
          f" (ceiling {attr_res['ceiling']:.2f}x)"
          f" | wrote {args.out}")

    if micro_res["speedup"] < bar:
        fail(f"wheel-vs-heap speedup {micro_res['speedup']:.3f}x"
             f" below the {bar}x bar")
    if ckpt_res["resumeSpeedup"] < 2.0:
        fail(f"resumed sweep's time-to-first-figure-point is only "
             f"{ckpt_res['resumeSpeedup']:.2f}x faster than cold "
             f"(floor 2x)")
    print("bench_simspeed: OK")


if __name__ == "__main__":
    main()
