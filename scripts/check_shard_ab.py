#!/usr/bin/env python3
"""Check sharded-host A/B equivalence (ISSUE acceptance).

The sharded scheduler (--shards=N, sim/parallel/) must be a pure
host-side change: every simulated outcome is byte-identical to the
legacy single-wheel path. This script drives point_runner through
the shard matrix:

  1. plain A/B: sssp/minnow-pf (with --timeline) and pr/obim run at
     --shards=1 and --shards={2,4,8}; stats JSON and timeline JSON
     must be byte-identical per workload.
  2. faulted A/B: sssp/minnow-pf with a seeded --faults spec at
     --shards=1 vs --shards=4; injected faults must replay
     identically on sharded wheels.
  3. checkpoint cross-shard roundtrip: save a warm checkpoint at
     --shards=4, restore it at --shards=1 and --shards=8; both
     restores must warm-start and produce stats byte-identical to
     the --shards=1 cold baseline (shard count is a host knob, so
     it is deliberately absent from the checkpoint fingerprint).

Usage: check_shard_ab.py <path-to-point_runner-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

SCALE = "0.05"
THREADS = "8"
SEED = "7"
FAULTS = (
    "engine_stall:core=0,at=20000,dur=40000;"
    "dram_delay:p=0.2,add=150;"
    "noc_delay:p=0.05,add=80;"
    "drop_prefetch:p=0.3"
)


def fail(msg):
    print(f"check_shard_ab: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_point(runner, workload, config, shards, extra):
    cmd = [
        runner,
        f"--workload={workload}",
        f"--config={config}",
        f"--scale={SCALE}",
        f"--threads={THREADS}",
        f"--cores={THREADS}",
        f"--seed={SEED}",
        f"--shards={shards}",
    ] + extra
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        fail(
            f"point_runner exited {proc.returncode} for "
            f"{workload}/{config} shards={shards} {extra}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    doc = json.loads(proc.stdout)
    if doc.get("schema") != "minnow-point-1":
        fail(f"bad point schema: {proc.stdout!r}")
    return doc


def read(path):
    with open(path, "rb") as f:
        return f.read()


def check_plain(runner, tmp, workload, config, with_timeline):
    tag = f"{workload}/{config}"
    base_stats = os.path.join(tmp, f"{workload}-s1.json")
    base_tl = os.path.join(tmp, f"{workload}-s1-tl.json")
    extra = [f"--stats-json={base_stats}"]
    if with_timeline:
        extra.append(f"--timeline={base_tl}")
    doc = run_point(runner, workload, config, 1, extra)
    if not doc["verified"]:
        fail(f"{tag}: shards=1 run failed verification")
    a_stats = read(base_stats)
    a_tl = read(base_tl) if with_timeline else None

    for shards in (2, 4, 8):
        stats = os.path.join(tmp, f"{workload}-s{shards}.json")
        tl = os.path.join(tmp, f"{workload}-s{shards}-tl.json")
        extra = [f"--stats-json={stats}"]
        if with_timeline:
            extra.append(f"--timeline={tl}")
        doc = run_point(runner, workload, config, shards, extra)
        if not doc["verified"]:
            fail(f"{tag}: shards={shards} failed verification")
        if read(stats) != a_stats:
            fail(
                f"{tag}: stats JSON differs between shards=1 and "
                f"shards={shards}"
            )
        if with_timeline and read(tl) != a_tl:
            fail(
                f"{tag}: timeline JSON differs between shards=1 "
                f"and shards={shards}"
            )
    print(
        f"check_shard_ab: {tag} OK (stats"
        f"{' + timeline' if with_timeline else ''} identical at "
        f"shards=1,2,4,8; {len(a_stats)} bytes)"
    )
    return a_stats


def check_faulted(runner, tmp):
    outs = {}
    for shards in (1, 4):
        stats = os.path.join(tmp, f"fault-s{shards}.json")
        run_point(
            runner, "sssp", "minnow-pf", shards,
            [f"--stats-json={stats}", f"--faults={FAULTS}"],
        )
        outs[shards] = read(stats)
    if outs[1] != outs[4]:
        fail(
            "faulted sssp/minnow-pf stats differ between shards=1 "
            "and shards=4"
        )
    print(
        "check_shard_ab: faulted sssp/minnow-pf OK (identical at "
        "shards=1,4)"
    )


def check_ckpt_cross_shard(runner, tmp, baseline):
    ckpt = os.path.join(tmp, "warm-s4.ckpt")
    run_point(runner, "sssp", "minnow-pf", 4,
              [f"--checkpoint-out={ckpt}"])
    if not os.path.exists(ckpt):
        fail("no warm checkpoint written at shards=4")
    for shards in (1, 8):
        stats = os.path.join(tmp, f"restore-s{shards}.json")
        doc = run_point(
            runner, "sssp", "minnow-pf", shards,
            [f"--stats-json={stats}", f"--checkpoint-in={ckpt}"],
        )
        if not doc["warmStart"]:
            fail(
                f"checkpoint saved at shards=4 did not warm-start "
                f"at shards={shards}"
            )
        if read(stats) != baseline:
            fail(
                f"stats after save@shards=4 restore@shards={shards}"
                f" differ from the shards=1 cold baseline"
            )
    print(
        "check_shard_ab: checkpoint save@4 restore@{1,8} OK "
        "(warm-started, byte-identical stats)"
    )


def main():
    if len(sys.argv) != 2:
        fail("usage: check_shard_ab.py <point_runner-binary>")
    runner = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        # sssp stats come from the timeline-free run inside
        # check_plain? No: the baseline carries a timeline stats
        # group, and the checkpoint restores are timeline-free, so
        # record a timeline-free sssp baseline for the roundtrip.
        baseline = os.path.join(tmp, "sssp-plain-s1.json")
        run_point(runner, "sssp", "minnow-pf", 1,
                  [f"--stats-json={baseline}"])
        base = read(baseline)

        check_plain(runner, tmp, "sssp", "minnow-pf", True)
        check_plain(runner, tmp, "pr", "obim", False)
        check_faulted(runner, tmp)
        check_ckpt_cross_shard(runner, tmp, base)
    print("check_shard_ab: OK")


if __name__ == "__main__":
    main()
