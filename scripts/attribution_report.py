#!/usr/bin/env python3
"""The "why is this slow" report (--attribution joins).

Joins a --stats-json document (minnow-bench-stats-1) with an
optional --timeline trace (Chrome trace_event JSON) and renders the
causal-attribution picture per run:

  * prefetch class mix — timely / late / early-evicted / polluting
    as shares of fills, plus redundant issues that never filled;
  * coverage — how many demand misses on prefetched lines were
    absorbed (timely + late) and the stall cycles the late ones
    still covered;
  * pollution — fills whose victim demand-missed inside the window,
    and re-misses to early-evicted lines;
  * timeliness — issue->fill / fill->use / issue->use percentiles;
  * lineage — ids assigned vs drained, fan-out, and the per-task
    critical-path split (push->enqueue->dequeue->first miss);
  * trace join — push->pop flow arrows with how many cross cores
    (work migration) when a trace file is given;
  * a verdict — the dominant reason the run is slow, derived from
    the shares above.

Usage:
  attribution_report.py STATS.json [TRACE.json]
  attribution_report.py --compare A.json B.json

--compare prints the key attribution metrics of two stats documents
side by side with B-A deltas — the quick way to see what a knob
change (credits, batching, window) did to prefetch quality.
"""

import json
import sys


def fail(msg):
    print(f"attribution_report: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def attr_runs(doc, path):
    if doc.get("schema") != "minnow-bench-stats-1":
        fail(f"{path}: schema != minnow-bench-stats-1")
    out = []
    for run in doc.get("runs", []):
        group = (
            run.get("stats", {}).get("groups", {}).get("attribution")
        )
        if group is not None:
            out.append((run, group))
    if not out:
        fail(
            f"{path}: no run carries an attribution group "
            "(was the sweep run with --attribution?)"
        )
    return out


def pct(part, whole):
    return 100.0 * part / whole if whole else 0.0


def flow_stats(path):
    """Count lineage arrows (and core-crossers) in a trace."""
    doc = load(path)
    legs = {}
    for e in doc.get("traceEvents", []):
        if e.get("ph") in ("s", "f") and e.get("name") == "lineage":
            legs.setdefault(e.get("id"), {})[e["ph"]] = (
                e.get("pid"),
                e.get("tid"),
            )
    arrows = cross = 0
    for pair in legs.values():
        if "s" in pair and "f" in pair:
            arrows += 1
            if pair["s"] != pair["f"]:
                cross += 1
    return arrows, cross


def verdict(g):
    """One-line diagnosis from the attribution shares."""
    fills = g["fills"]
    issues = fills + g["redundant"]
    reasons = []
    if g["coveredPct"] < 50:
        reasons.append(
            "low coverage: most demand misses were never prefetched"
            " — widen the prefetch window or raise credits"
        )
    if pct(g["late"], fills) > 40:
        reasons.append(
            "prefetches are late: issue earlier (deeper worklist"
            " lookahead) or cut fill latency"
        )
    if pct(g["earlyEvicted"], fills) > 25:
        reasons.append(
            "prefetches evicted before use: fewer credits or a"
            " bigger L2 would hold lines longer"
        )
    if g["pollutionPct"] > 5:
        reasons.append(
            "prefetch pollution: fills displace live lines that"
            " re-miss — throttle credits"
        )
    if pct(g["redundant"], issues) > 60:
        reasons.append(
            "mostly redundant issues: the engine re-requests lines"
            " already cached — prefetch is saturated, not useful"
        )
    if g.get("enqueueToDequeueP95", 0) > 10 * max(
        1, g.get("dequeueToFirstMissP95", 0)
    ):
        reasons.append(
            "tasks wait in the queue far longer than they run —"
            " scheduling latency, not memory, bounds this run"
        )
    if not reasons:
        reasons.append(
            "prefetching is healthy: misses are covered and the"
            " queue is not the bottleneck"
        )
    return reasons


def print_run(run, g, trace):
    tag = (
        f"{run.get('workload', '?')}/{run.get('config', '?')}"
        f" credits={run.get('credits', '?')}"
        f" cycles={run.get('cycles', '?')}"
    )
    print(f"== {tag} ==")
    fills = g["fills"]
    issues = fills + g["redundant"]
    print(f"{'class':<16}{'count':>10}{'share':>9}")
    for cls in ("timely", "late", "earlyEvicted", "polluting"):
        print(
            f"{cls:<16}{g[cls]:>10.0f}"
            f"{pct(g[cls], fills):>8.1f}%"
        )
    print(
        f"{'redundant':<16}{g['redundant']:>10.0f}"
        f"{pct(g['redundant'], issues):>8.1f}%  (of issues)"
    )
    print(
        f"coverage: {g['coveredPct']:.1f}% of demand misses on"
        f" prefetched lines ({g['timely']:.0f} timely +"
        f" {g['late']:.0f} late vs {g['missAfterEvict']:.0f}"
        " re-missed after eviction)"
    )
    if g["late"]:
        print(
            f"late fills still covered {g['stallCyclesCovered']:.0f}"
            f" stall cycles ({g['stallCyclesCovered'] / g['late']:.0f}"
            " per late prefetch)"
        )
    print(
        f"pollution: {g['pollutionPct']:.2f}% of fills displaced a"
        " line that re-missed in the window"
    )
    print(
        f"{'histogram':<20}{'P50':>8}{'P95':>8}{'P99':>8}"
    )
    for h in (
        "issueToFill",
        "fillToUse",
        "issueToUse",
        "pushToEnqueue",
        "enqueueToDequeue",
        "dequeueToFirstMiss",
    ):
        print(
            f"{h:<20}{g.get(h + 'P50', 0):>8.0f}"
            f"{g.get(h + 'P95', 0):>8.0f}{g.get(h + 'P99', 0):>8.0f}"
        )
    print(
        f"lineage: {g['lineageAssigned']:.0f} pushed,"
        f" {g['lineageDequeued']:.0f} popped,"
        f" {g['lineageLive']:.0f} live at exit,"
        f" fan-out {g['lineageFanout']:.2f}"
    )
    if trace:
        arrows, cross = trace
        print(
            f"trace join: {arrows} push->pop lineage arrows,"
            f" {cross} cross cores ({pct(cross, arrows):.1f}%"
            " work migration)"
        )
    print("why is this slow:")
    for reason in verdict(g):
        print(f"  - {reason}")
    print()


COMPARE_KEYS = [
    ("timely", "{:.0f}"),
    ("late", "{:.0f}"),
    ("earlyEvicted", "{:.0f}"),
    ("redundant", "{:.0f}"),
    ("polluting", "{:.0f}"),
    ("fills", "{:.0f}"),
    ("coveredPct", "{:.1f}"),
    ("pollutionPct", "{:.2f}"),
    ("stallCyclesCovered", "{:.0f}"),
    ("issueToUseP95", "{:.0f}"),
    ("enqueueToDequeueP95", "{:.0f}"),
    ("dequeueToFirstMissP95", "{:.0f}"),
    ("lineageAssigned", "{:.0f}"),
    ("lineageFanout", "{:.2f}"),
]


def compare(path_a, path_b):
    runs_a = attr_runs(load(path_a), path_a)
    runs_b = attr_runs(load(path_b), path_b)

    def key(entry):
        run = entry[0]
        return (run.get("workload"), run.get("config"),
                run.get("credits"))

    by_a = {key(e): e for e in runs_a}
    by_b = {key(e): e for e in runs_b}
    shared = [k for k in by_a if k in by_b]
    if not shared:
        fail("no (workload, config, credits) point in both files")
    print(f"A = {path_a}")
    print(f"B = {path_b}")
    for k in shared:
        ga, gb = by_a[k][1], by_b[k][1]
        print(f"== {k[0]}/{k[1]} credits={k[2]} ==")
        print(f"{'metric':<22}{'A':>12}{'B':>12}{'B-A':>12}")
        for name, fmt in COMPARE_KEYS:
            va, vb = ga.get(name, 0), gb.get(name, 0)
            print(
                f"{name:<22}{fmt.format(va):>12}"
                f"{fmt.format(vb):>12}{fmt.format(vb - va):>12}"
            )
        print()


def main():
    args = sys.argv[1:]
    if len(args) == 3 and args[0] == "--compare":
        compare(args[1], args[2])
        return
    if len(args) not in (1, 2):
        fail(
            "usage: attribution_report.py STATS.json [TRACE.json]"
            " | --compare A.json B.json"
        )
    trace = flow_stats(args[1]) if len(args) == 2 else None
    for run, group in attr_runs(load(args[0]), args[0]):
        print_run(run, group, trace)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)


