#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
# Usage: scripts/run_sanitized_tests.sh [address|undefined|thread]...
# With no arguments, runs all three sanitizers in sequence. Each
# sanitizer gets its own build directory (build-san-<name>) so
# incremental rebuilds stay cheap. The thread leg additionally runs
# the tsan_shard_ab ctest (sharded-host A/B under the race
# detector); it only exists in MINNOW_SANITIZE=thread builds.

set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
    sanitizers=(address undefined thread)
fi

for san in "${sanitizers[@]}"; do
    case "$san" in
      address|undefined|thread) ;;
      *)
        echo "unknown sanitizer '$san' (want address, undefined, or thread)" >&2
        exit 1
        ;;
    esac
    build="build-san-$san"
    echo "=== $san sanitizer: configuring $build ==="
    cmake -B "$build" -S . -DMINNOW_SANITIZE="$san" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
    echo "=== $san sanitizer: building ==="
    cmake --build "$build" -j"$(nproc)"
    echo "=== $san sanitizer: testing ==="
    (cd "$build" && ctest --output-on-failure -j"$(nproc)")
done

echo "=== all sanitized test runs passed ==="
