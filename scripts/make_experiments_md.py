#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from bench_output.txt.

Each paper table/figure gets: the analysis prose below (what the
paper reports, what we measure, which shapes hold, known gaps) plus
the measured rows pasted verbatim from the bench run, so the document
always matches the committed bench output.
"""

import re
import sys

PROSE = {}

PROSE["table3_machine_config"] = """\
## Table 3 — machine configuration

Paper: 64 Skylake-like cores, 224-entry ROB, 72/56 LQ/SQ, 32 KB L1,
256 KB L2, 64 MB L3, 8x8 mesh, 12-channel DDR4-2400, Minnow engines
with 64-entry local queue / 32-entry load buffer.

We print both the paper-exact configuration and the cache-scaled
preset the benches run on (L1 16 KB, L2 64 KB, L3 32 KB/bank; see
DESIGN.md §6 for why the caches shrink with the inputs). All core,
NoC, DRAM and Minnow parameters match Table 3. Note the paper's own
Table 3 lists "64 MB L3, 2 MB bank/core" for 64 cores; we render the
arithmetic consistently as 2 MB x 64 banks.
"""

PROSE["table1_graph_inputs"] = """\
## Table 1 — graph inputs

Paper inputs are 150 MB-1 GB real datasets. Ours are deterministic
generator stand-ins of the same classes at simulation scale
(DESIGN.md §2): high-diameter weighted grid (road), random
avg-degree-4 graph, hub-dominated RMAT, skewed power-law digraphs,
triangle-rich small world (sized to fit the scaled LLC, like
com-dblp in the paper's 64 MB LLC), and a skewed bipartite graph.
Shape properties to check: grid diameter >> others, RMAT max-degree
a large multiple of its average, TC input smallest.
"""

PROSE["table2_benchmarks"] = """\
## Table 2 — benchmark configuration

Paper: seven Galois workloads, single-threaded runs of 1.7-10.7 B
cycles on the full inputs. Ours run the same algorithms (delta-
stepping SSSP, push BFS x2, min-label CC, push data-driven PR,
node-iterator-hashed TC, propagation BC) on ~100x smaller inputs;
serial baselines land in the 2-80 M cycle range — the same 1-2
order-of-magnitude spread across workloads (PR longest, TC shortest)
— and every run verifies against its serial reference.
"""

PROSE["fig02_priority_speedup"] = """\
## Fig. 2 — the benefits of priority ordering

Paper: at 10 threads, Galois-OBIM beats unordered GraphMat by 576x on
SSSP (ordering changes the effective complexity); GMat* (bucketed
GraphMat) recovers only ~2x over plain GraphMat; BFS/G500/CC are less
sensitive, and GraphMat actually wins on G500/PR thanks to its lean
bulk-synchronous execution.

Measured shapes that hold: OBIM > GraphMat on SSSP with GMat*
in between; GraphMat competitive-or-better on PR; FIFO clearly worse
than OBIM on SSSP. The *magnitude* of the SSSP gap is far smaller
than 576x: the ordering advantage grows with diameter x weight-range
x size, and our grid is ~270x smaller than USA-road-d.W (the paper
itself notes the gap grows with input size: 927x on the full USA
graph).
"""

PROSE["fig03_scheduler_zoo"] = """\
## Fig. 3 — scheduler choice

Paper: improper policies time out on ordering-sensitive workloads;
Carbon's LIFO times out on SSSP/BFS/CC/PR; several OBIM deltas also
fail; a conservative (coarse) delta degrades gracefully.

Measured: LIFO is the worst policy on sssp/bfs/cc/pr by large
factors (our scaled runs finish rather than time out — the event
budget corresponds to far more slack than the paper's wall-clock
timeout — but the ordering of policies matches), tuned OBIM is best
on sssp, and coarse OBIM degrades mildly, exactly the paper's
guidance.
"""

PROSE["fig04_rob_sweep"] = """\
## Fig. 4 — ROB size is not the limiter

Paper: with realistic branch prediction and x86-TSO fenced atomics,
growing the ROB past 256 entries yields minimal speedup; removing
those serializing events makes ROB scaling work again (PR up to 5x
once fences go).

Measured: the realistic curve is nearly flat past 256 entries for
every workload while the ideal (perfect branches, no fences) curve
keeps climbing to 3-5x at 1024 entries — the paper's argument
reproduces directly, because our core model implements exactly the
two serializers the paper blames (mispredict issue-gating and fence
drains).
"""

PROSE["fig05_overhead_breakdown"] = """\
## Fig. 5 — Galois overhead breakdown

Paper: at 64 threads only 28% of cycles are useful work on average;
CC is worklist-dominated (92%); memory stalls take most of the rest.

Measured: the software baseline spends the large majority of its
cycles outside useful work everywhere, with double-digit worklist
shares on the scheduler-heavy workloads and memory stall dominating
the rest — the motivation stands. Two divergences to note honestly:
our "useful" metric is a stricter bound (retired app uops at full
dispatch width) so it reads lower than the paper's attribution, and
our most worklist-bound workload is SSSP rather than CC — our
leaner-than-Galois-2.2.1 OBIM never collapses to CC's 92%
pathology.
"""

PROSE["fig06_delinquent_density"] = """\
## Fig. 6 — delinquent load density

Paper: only ~10% of all loads are delinquent (first accesses to graph
data); on a 72-entry Skylake LQ that is ~7 delinquent loads in
flight — the §3.4 argument for engines whose small load buffers hold
only delinquent loads.

Measured: densities land near the paper's (9-19% for the seven
workloads except TC, whose binary-search probes are nearly all first
touches), i.e. ~7-13 of 72 LQ entries — same conclusion: an OOO
window is a wasteful way to buy delinquent-load MLP.
"""

PROSE["fig11_worklist_interval"] = """\
## Fig. 11 — worklist operation interval

Paper: cores perform a worklist enqueue/dequeue only once every few
hundred cycles, so the engine front-end need not be aggressive.

Measured: 200-1000 cycles per accelerator call across the seven
workloads — squarely the paper's "every few hundreds of cycles".
"""

PROSE["fig15_scalability"] = """\
## Fig. 15 — scalability

Paper: optimized Galois scales well to ~32 threads then hits
worklist bottlenecks; CC slows beyond 16 threads; Minnow improves
scalability everywhere and lets CC scale past 16.

Measured (speedup vs the atomics-removed serial baseline): both
systems scale; Minnow is above Galois at nearly every point of every
workload except g500 (see Fig. 16 note), with the gap widening at
64 threads where software scheduling overheads and contention grow.
Divergence: our software baseline keeps scaling further than Galois
2.2.1 did (our CC does not slow beyond 16 threads), so Minnow's
relative wins at 64 threads are smaller than the paper's.
"""

PROSE["fig16_overall_speedup"] = """\
## Fig. 16 — overall speedup (headline)

Paper: 2.96x average with offload alone, 6.01x with worklist-directed
prefetching, at 64 threads; TC least (1.53x with prefetching) since
it is neither worklist-bound nor (with its in-LLC input) very
memory-bound.

Measured shapes that hold: every workload benefits; prefetching
roughly doubles the offload-only gain on the memory-bound workloads
(bfs/pr/bc/cc); TC gains least, exactly as the paper explains; SSSP
gains least *from prefetching* relative to its offload gain (the
paper's own §6.3.2 caveat — its prefetcher cannot run far enough
ahead; our run shows 25% of prefetch hits arriving late).

Magnitudes are ~2-3x smaller than the paper's across the board, and
g500 only reaches parity. Root cause, analysed in DESIGN.md §5b: our
software baseline is leaner than Galois 2.2.1 (no per-socket
scheduler pathology, no 92% CC collapse), and at our input scale the
Minnow local queues hold a visible fraction of the whole frontier
(the paper's frontiers are ~100x larger than aggregate local-queue
capacity), which costs Minnow work-distribution efficiency on the
burst-synchronous g500.
"""

# Hand-written subsections appended AFTER a section's measured
# block (extra context that is not a paper figure of its own).
POST = {}

POST["fig16_overall_speedup"] = """\
### Offload round-trip breakdown (beyond the paper)

The fixed per-dequeue round-trip (doorbell + delivery hop, 10 cycles
each way) is a real tax at our scale; `bench/offload_breakdown`
splits it per engine call and sweeps `--dequeue-batch` (sssp,
scale 0.1, 4 threads/cores, seed 42 — the sweep recorded in
`BENCH_simspeed.json` and gated in ctest):

```
k  cycles  engine-calls  doorbell/call  wait/call  popWaitP95
1  182128  4314          10.0           44.9       127
2  164105  2500          10.0           66.0       127
4  163882  1873          10.0           74.3        63
8  164441  1580          10.0           69.3        63
```

Bundling amortizes the fixed legs over up to k tasks: k=4 cuts
engine calls 2.3x, shifts the worker popWait P95 from 127 to 63
cycles, and takes ~10% off the makespan; beyond k=4 the bundle
starts draining the local queue faster than the fill daemon refills
it (wait/call grows), so returns flatten. `--spec-slot` removes the
round-trip entirely on hits and composes with bundling; defaults
(k=1, no slot) remain bit-identical to the pre-knob engine
(`MinnowInt.ExplicitDefaultKnobsMatchDefaultsBitForBit`).
"""


PROSE["fig17_imp_comparison"] = """\
## Fig. 17 — vs stride and IMP

Paper (16 threads, all on the Minnow-offload system, normalized to
prefetch-off): IMP performs like a basic stride prefetcher except on
G500/PR/TC (dense indirect streams); both are useless on the
low-degree mesh inputs because the prefetch distance (4) exceeds node
degree; worklist-directed prefetching wins everywhere.

Measured: stride ~ IMP on the low-degree inputs (sssp/bfs), IMP
pulls ahead of stride on g500/cc/tc/bc, and Minnow prefetching beats
both on sssp/bfs/cc/pr/bc. Exceptions: g500 (our scale artifact
caps Minnow; see Fig. 16) and tc, where IMP's reactive streams fit
the binary-search-heavy pattern better than our capped custom
program at 16 threads. The mechanism-level explanation carries: our
IMP issues nothing useful on degree<=4 adjacency runs, exactly the
paper's analysis.
"""

PROSE["fig18_mpki_credits"] = """\
## Fig. 18 — L2 MPKI vs credits

Paper: without prefetching all workloads except TC sit above 20 MPKI
(29 average); MPKI falls as credits grow, is minimized between 32 and
128 credits, and over-aggressive prefetching raises it again (cache
thrash); SSSP cannot hide everything.

Measured: the no-prefetch column sits at 50-81 MPKI for every
workload (including TC: with our scaled 64 KB L2 even the
LLC-resident TC input misses the L2 constantly, unlike the paper's
256 KB L2), MPKI falls monotonically to a knee in the 32-128
region, bfs/pr/bc show the post-knee rise, and SSSP retains a
residual floor — the qualitative features hold. Divergence: our
floor is ~11-47 MPKI rather than ~1: residual misses are dominated
by coherence traffic (atomic-invalidated lines that prefetching
cannot help) and superseded-task cutoffs, both relatively larger at
our scale.
"""

PROSE["fig19_speedup_credits"] = """\
## Fig. 19 — speedup vs credits

Paper: every workload speeds up (1.39x TC .. 2.47x BC); diminishing
returns around 32-64 credits; G500 degrades past its optimum.

Measured: gains rise with credits and flatten at 32-64, with
magnitudes (~1.3x-3x) bracketing the paper's range; TC is among the
smallest gains at 32 credits as in the paper.
"""

PROSE["fig20_prefetch_efficiency"] = """\
## Fig. 20 — prefetch efficiency

Paper: >99% of prefetched lines are used before eviction at 32
credits for all workloads; efficiency degrades for G500/CC/PR/BC as
credits grow; IMP is far less efficient.

Measured: the credit-throttled worklist-directed prefetcher holds
97-99% efficiency at 32 credits on sssp/bfs/cc/bc, degrading at
128-256 credits (cc 99->89, bc 98->81 — the paper's contention
curve), and IMP's efficiency is far lower on those workloads. Two
honest gaps: pr and tc hold only ~50-70% efficiency (their
superseded-task and pair-enumeration access patterns defeat our
staleness predicate more often), and on g500 IMP is *more*
efficient than worklist direction (it only triggers on the hub's
long streams, which are always useful).

The last three columns re-run the 32-credit point with
`--attribution` (DESIGN.md §5k) and decompose *why* efficiency is
what it is: `acc%@32` is the provenance tracker's
used-before-evict share (it independently reproduces the `32`
column — same quantity, measured per line instead of per counter);
`timely%@32` splits the used fills into timely vs late (sssp's low
timely share is the paper's §6.3.2 caveat — its prefetcher cannot
run far enough ahead, so a large minority of useful prefetches
arrive while the demand is already stalled); `pollut%@32` shows
displaced-victim re-misses are negligible at the paper's credit
point — the throttle, not luck, keeps pollution near zero.
"""

PROSE["fig21_membw_sweep"] = """\
## Fig. 21 — memory channels

Paper: without prefetching, workloads are latency-bound — only
dropping below ~4 channels hurts; with prefetching Minnow converts
BFS/G500/BC into bandwidth-bound workloads (sensitive across the
sweep); TC (in-LLC input) is insensitive throughout.

Measured: bfs/g500/cc/bc show the without-prefetch curves flat from
12 down to ~4-8 channels then dropping, and the with-prefetch curves
strictly more channel-sensitive (prefetching turns latency into
bandwidth demand); TC is flat everywhere. SSSP is nearly flat in both
modes at our scale (its scaled working set gets too much help from
the cache hierarchy to pressure DRAM).
"""

PROSE["sec54_area_model"] = """\
## §5.4 — area

Paper: engine SRAM ~0.03 mm^2 @28 nm (0.008 @14 nm), Quark-like
control unit 0.1 mm^2 @14 nm, total <1% of a 12.1 mm^2 Skylake
slice.

Measured: the calibrated model lands on 0.0300/0.0080/0.1000 mm^2
and 0.90% per slice, and the structure sweep shows the overhead
stays below 1% even with 4x larger queues — the paper's headline is
insensitive to the engine sizing, as claimed.
"""

PROSE["abl_minnow_structures"] = """\
## Ablation — Minnow structure sizing (beyond the paper)

Local-queue depth: smaller queues (8-16) slightly beat the paper's
64 at our scale — less staleness in the FIFO — at the cost of more
dequeue blocks; 64 is the right choice when frontiers are huge.
Load buffer: performance saturates by 16-32 entries (the paper's 32
is on the knee; 4-8 starve the prefetcher). Offloaded OBIM delta:
the usual U-curve — too fine wastes engine time on bucket churn, too
coarse wastes work.
"""

PROSE["abl_task_split"] = """\
## Ablation — task splitting (§6.2.1)

Paper: without splitting, rmat16-2e22's hub (27% of all edges) caps
speedup at 3.65x by Amdahl's Law.

Measured on our scale-14 RMAT (hub ~1% of edges): splitting the hub
into parallel subtasks speeds the Minnow run by up to ~7x vs
splitting off, with the optimum at small thresholds — the same
load-balance story at our hub share.
"""

PROSE["abl_engine_sharing"] = """\
## Ablation — cores per engine (§4's sharing variant)

The paper mentions engines could be shared between cores to save
area but evaluates dedicated engines. Sharing 2-8 cores per engine
saves proportional area but costs ~3x performance on BFS at 16
threads (control-unit and local-queue contention, dequeue blocking)
— quantified support for the paper's dedicated-engine choice.
"""

PROSE["ext_workloads"] = """\
## Extension — other irregular workloads

The paper's conclusion plans to extend Minnow to other classes of
irregular workloads. We add two with schedule-independent, bit-exact
verifiable results: greedy maximal independent set (dataflow
formulation) and k-core peeling. Both run unmodified on the Minnow
stack; MIS gains >2x from offload+prefetching, k-core ~2.8x from
prefetching — evidence the mechanisms generalize beyond the seven
paper workloads.
"""


# Static epilogue: workflow notes that are not tied to one bench's
# output and must survive regeneration.
EPILOGUE = """\
## Running sweeps: the warm-sweep orchestrator

Long figure sweeps (many points of one workload at different
configs/thread counts) do not need to regenerate the input graph per
point: `bench/point_runner` runs one (workload, config, threads)
point and can save/load the deterministic warm-boundary checkpoint
(DESIGN.md §5i), and `scripts/sweep_orchestrator.py` drives a whole
point list crash-safely on top of it:

```sh
./build/bench/point_runner --workload=sssp --config=minnow-pf \\
    --threads=16 --scale=0.5 --checkpoint-out=sssp.ckpt  # 1st point
./build/bench/point_runner --workload=sssp --config=obim \\
    --threads=16 --scale=0.5 --checkpoint-in=sssp.ckpt   # warm start

python3 scripts/sweep_orchestrator.py \\
    --runner=build/bench/point_runner \\
    --points=sssp:minnow-pf:4,sssp:obim:4,pr:obim:4 \\
    --scale=0.5 --timeout=600 --retries=3 --out=sweep
```

The first completed point of each workload writes `<out>/<wl>.ckpt`;
every later point of that workload warm-starts from it. Each point
gets a wall-clock `--timeout` (a hung child is killed and retried up
to `--retries` times with exponential backoff + jitter), and every
state change is journaled to `<out>/sweep_manifest.json` via
temp+rename. If the orchestrator itself dies — OOM kill, ctrl-C,
power loss — just re-run the same command: finished points are
served from the manifest without re-running, the interrupted point
is retried (warm, since the checkpoint survived), and the final
report accounts for every point. Statuses in the report/manifest:

  - `ok` — point completed (warm or cold as expected);
    `retried xN` notes timeout/error attempts along the way.
  - `degraded` — the point expected to warm-start but its checkpoint
    was missing or failed CRC validation, so `point_runner` warned
    and cold-started ("warn, never wrong"): the numbers are still
    correct and byte-identical to a cold run, it just cost more
    wall-clock.
  - `failed` — all `--retries` attempts timed out or errored; the
    sweep exits nonzero and the last error is in the manifest.

Warm and cold runs of a point produce byte-identical `--stats-json`
(enforced by `scripts/check_checkpoint_ab.py` in ctest); the crash
path above is drilled by `scripts/check_orchestrator_crash.py`, and
`scripts/bench_simspeed.py` gates the resume path at >=2x the
cold time-to-first-point.
"""


def main():
    bench = open("bench_output.txt").read()
    sections = {}
    for m in re.finditer(r"^##### (\S+)\n(.*?)(?=^##### |\Z)", bench,
                         re.M | re.S):
        sections[m.group(1)] = m.group(2).strip()

    order = [
        "table3_machine_config", "table1_graph_inputs",
        "table2_benchmarks", "fig02_priority_speedup",
        "fig03_scheduler_zoo", "fig04_rob_sweep",
        "fig05_overhead_breakdown", "fig06_delinquent_density",
        "fig11_worklist_interval", "fig15_scalability",
        "fig16_overall_speedup", "fig17_imp_comparison",
        "fig18_mpki_credits", "fig19_speedup_credits",
        "fig20_prefetch_efficiency", "fig21_membw_sweep",
        "sec54_area_model", "abl_minnow_structures",
        "abl_task_split", "abl_engine_sharing", "ext_workloads",
    ]

    out = []
    out.append("""# Experiments: paper vs. measured

Every table and figure of the paper's evaluation, regenerated by one
bench binary each (`build/bench/...`), with the full measured output
inlined below (this file is assembled from `bench_output.txt` by
`scripts/make_experiments_md.py`; regenerate after re-running the
benches). The reproduction contract is *shape*, not absolute
numbers: inputs are deterministic scaled stand-ins and the machine
is cache-scaled to match (DESIGN.md §2, §6).

Regeneration goes faster on multi-core hosts without changing a
byte of any figure: sweep benches take `--host-par=N` (independent
figure points farmed over N host threads, logs replayed in point
order) and every bench takes `--shards=N` (sharded host simulation,
DESIGN.md §5j); both are byte-identical to serial runs
(`check_shard_ab` in ctest proves it per commit).

## Summary of shape fidelity

| Experiment | Qualitative claims | Status |
|---|---|---|
| Fig. 2 | ordering >> unordered on SSSP; GMat* in between; GraphMat wins PR | reproduced (magnitudes smaller; scale-dependent) |
| Fig. 3 | LIFO pathological; tuned OBIM best; coarse degrades gracefully | reproduced (slowdowns instead of timeouts) |
| Fig. 4 | realistic ROB curve flat >=256; ideal keeps scaling | reproduced |
| Fig. 5 | useful work a small minority; scheduler share large | reproduced in direction (CC-92% pathology absent; see note) |
| Fig. 6 | ~10% delinquent density, ~7 of 72 LQ entries | reproduced (9-19% across non-TC workloads) |
| Fig. 11 | worklist op every few hundred cycles | reproduced (200-1000) |
| Fig. 15 | Minnow scales better everywhere | reproduced except g500 (scale artifact) |
| Fig. 16 | all gain; prefetch ~doubles offload; TC least | reproduced; magnitudes ~2-3x smaller (see analysis) |
| Fig. 17 | IMP ~ stride except g500/pr/tc; Minnow best | reproduced |
| Fig. 18 | MPKI knee at 32-128 credits; thrash beyond; SSSP floor | reproduced (higher floor; see analysis) |
| Fig. 19 | gains 1.4-2.5x, diminishing past 32-64 | reproduced |
| Fig. 20 | >99% efficiency @32 credits; IMP far lower | reproduced |
| Fig. 21 | latency-bound w/o pf; bandwidth-bound with; TC flat | reproduced (sssp also flat at our scale) |
| §5.4 | <1% area per slice | reproduced (0.90%) |
""")

    for name in order:
        prose = PROSE.get(name, "## " + name + "\n")
        out.append(prose.rstrip())
        body = sections.get(name, "(missing from bench_output.txt)")
        out.append("\nMeasured (`bench/" + name + "`):\n")
        out.append("```")
        out.append(body)
        out.append("```\n")
        if name in POST:
            out.append(POST[name].rstrip() + "\n")

    out.append(EPILOGUE.rstrip())

    open("EXPERIMENTS.md", "w").write("\n".join(out) + "\n")
    print("wrote EXPERIMENTS.md,", len(sections), "sections")


if __name__ == "__main__":
    sys.exit(main())
