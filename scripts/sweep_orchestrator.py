#!/usr/bin/env python3
"""Crash-safe warm-sweep orchestrator for point_runner figure points.

Runs a list of (workload, config, threads) figure points as child
processes, warm-starting every point of a workload from a shared
warm-boundary checkpoint that the workload's first point writes
(--checkpoint-out at the warm boundary; see DESIGN.md section 5i).

Robustness contract ("warn, never wrong"):

  - Journal: every state change is written to sweep_manifest.json
    (temp file + rename, so a crash never leaves a torn manifest).
    Re-invoking the orchestrator on the same --out directory resumes
    from the manifest: finished points are served from it, points
    that were mid-run when the orchestrator died ("running") are
    retried, and nothing is ever silently dropped.
  - Timeout/retry/backoff: each point gets a wall-clock timeout; a
    timed-out child is killed and the point retried up to --retries
    times with exponential backoff (base * 2^attempt) plus jitter
    drawn from a dedicated seeded RNG reseeded per attempt, so two
    orchestrators racing on one machine do not retry in lockstep.
  - Graceful degradation: a missing or corrupt checkpoint makes
    point_runner itself warn and cold-start (CRC-validated load);
    the orchestrator records such points as "degraded" rather than
    failing the sweep, and says so in the final report.

Point results land in <out>/points/<id>.json; the final integrity
report lists every point as ok / retried / degraded / failed and the
exit status is nonzero if any point failed (or, with --smoke, if any
self-check is violated).

Test hooks (used by the ctest crash drill and --smoke):
  --inject-timeout=<id>   force the first attempt of point <id> to
                          time out (exercises kill+backoff+retry).
  --kill-after-launch=<id>  SIGKILL the child AND the orchestrator
                          right after launching point <id>, leaving
                          the manifest mid-run ("running").

Usage:
  sweep_orchestrator.py --runner=build/bench/point_runner \
      --points=sssp:minnow-pf:4,pr:obim:4 --scale=0.1 --out=sweep
  sweep_orchestrator.py --runner=... --smoke --out=sweep
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time

SCHEMA = "minnow-sweep-1"


def log(msg):
    print(f"sweep_orchestrator: {msg}", flush=True)


def fail(msg):
    print(f"sweep_orchestrator: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Manifest:
    """The journal. Every mutation is flushed via temp+rename."""

    def __init__(self, path, scale, seed, point_ids):
        self.path = path
        self.doc = {
            "schema": SCHEMA,
            "scale": scale,
            "seed": seed,
            "points": {
                pid: {"status": "pending", "attempts": 0,
                      "warm": False, "error": None, "result": None}
                for pid in point_ids
            },
        }

    def load_existing(self):
        """Resume from a prior journal if one is compatible.
        Returns a description of what was recovered."""
        if not os.path.exists(self.path):
            return "fresh manifest"
        try:
            with open(self.path) as f:
                old = json.load(f)
        except (OSError, ValueError) as e:
            log(f"warn: unreadable manifest ({e}); starting fresh")
            return "fresh manifest (old one unreadable)"
        if old.get("schema") != SCHEMA or \
                old.get("scale") != self.doc["scale"] or \
                old.get("seed") != self.doc["seed"]:
            log("warn: manifest is for a different sweep "
                "(schema/scale/seed); starting fresh")
            return "fresh manifest (old one incompatible)"
        resumed = interrupted = 0
        for pid, entry in old.get("points", {}).items():
            if pid not in self.doc["points"]:
                continue  # dropped from the point list; forget it
            if entry.get("status") == "running":
                # The orchestrator died mid-run; the result never
                # landed, so the point must be retried (attempts
                # carry over into the backoff schedule).
                entry["status"] = "pending"
                entry["error"] = "orchestrator died mid-run"
                interrupted += 1
            else:
                resumed += 1
            self.doc["points"][pid] = entry
        return (f"resumed {resumed} finished, "
                f"{interrupted} interrupted point(s)")

    def flush(self):
        tmp = self.path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(self.doc, f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, self.path)

    def entry(self, pid):
        return self.doc["points"][pid]

    def set(self, pid, **kv):
        self.doc["points"][pid].update(kv)
        self.flush()


def parse_points(spec):
    """'sssp:minnow-pf:4,pr:obim:4' -> [(id, wl, cfg, threads)]."""
    points = []
    for item in spec.split(","):
        parts = item.split(":")
        if len(parts) != 3:
            fail(f"bad point '{item}' (want workload:config:threads)")
        wl, cfg, threads = parts
        points.append((item, wl, cfg, int(threads)))
    return points


def run_attempt(args, point, ckpt, write_ckpt, timeout, out_json):
    """One child launch. Returns (status, detail) where status is
    'ok', 'timeout', or 'error'."""
    pid, wl, cfg, threads = point
    cmd = [
        args.runner,
        f"--workload={wl}",
        f"--config={cfg}",
        f"--threads={threads}",
        f"--cores={threads}",
        f"--scale={args.scale}",
        f"--seed={args.seed}",
        f"--json={out_json}",
    ]
    if write_ckpt:
        cmd.append(f"--checkpoint-out={ckpt}")
    elif os.path.exists(ckpt):
        cmd.append(f"--checkpoint-in={ckpt}")
    child = subprocess.Popen(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True)
    if args.kill_after_launch == pid:
        # Crash drill: die ungracefully with the point mid-run.
        time.sleep(0.2)
        child.kill()
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        _, err = child.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        child.kill()
        child.wait()
        return "timeout", f"killed after {timeout:.3g}s"
    if child.returncode != 0:
        return "error", (f"exit {child.returncode}: "
                         f"{err.strip()[-500:]}")
    for line in err.splitlines():
        log(f"  [{pid}] {line}")
    return "ok", err


def run_point(args, manifest, point, rng):
    pid, wl, _cfg, _threads = point
    entry = manifest.entry(pid)
    if entry["status"] in ("ok", "degraded"):
        log(f"{pid}: {entry['status']} (served from manifest)")
        return
    ckpt = os.path.join(args.out, f"{wl}.ckpt")
    out_json = os.path.join(args.out, "points", f"{pid}.json")

    while entry["attempts"] < args.retries:
        attempt = entry["attempts"]
        if attempt > 0:
            # Exponential backoff with jitter from a dedicated RNG
            # reseeded per attempt (decoupled from the simulation
            # seed, which must stay fixed for determinism).
            rng.seed((args.seed << 16) ^ hash(pid) ^ attempt)
            delay = args.backoff * (2 ** (attempt - 1)) \
                + rng.uniform(0, args.backoff)
            log(f"{pid}: retry {attempt} in {delay:.2f}s")
            time.sleep(delay)
        manifest.set(pid, status="running", attempts=attempt + 1)

        # A workload's first completed point writes the shared warm
        # checkpoint; later points (and retries once it exists)
        # start from it.
        write_ckpt = not os.path.exists(ckpt)
        timeout = args.timeout
        if args.inject_timeout == pid and attempt == 0:
            timeout = 0.001
        status, detail = run_attempt(
            args, point, ckpt, write_ckpt, timeout, out_json)

        if status == "ok":
            try:
                with open(out_json) as f:
                    result = json.load(f)
            except (OSError, ValueError) as e:
                status, detail = "error", f"bad point JSON: {e}"
            else:
                warm = bool(result.get("warmStart"))
                expected_warm = not write_ckpt
                final = "ok"
                if expected_warm and not warm:
                    # point_runner warned and cold-started (missing
                    # or corrupt checkpoint): right answer, slower
                    # path. Record it honestly.
                    final = "degraded"
                manifest.set(pid, status=final, warm=warm,
                             error=None, result=result)
                log(f"{pid}: {final} "
                    f"({'warm' if warm else 'cold'}, attempt "
                    f"{attempt + 1})")
                return
        log(f"{pid}: attempt {attempt + 1} {status}: "
            f"{detail.splitlines()[-1] if detail else status}")
        manifest.set(pid, status="pending", error=detail)
    manifest.set(pid, status="failed")
    log(f"{pid}: FAILED after {args.retries} attempts")


def report(manifest, points):
    """Final integrity report; returns the number of failures."""
    log("---- sweep report ----")
    failures = 0
    for pid, *_ in points:
        e = manifest.entry(pid)
        status = e["status"]
        notes = []
        if e["attempts"] > 1:
            notes.append(f"retried x{e['attempts'] - 1}")
        notes.append("warm" if e["warm"] else "cold")
        if status == "degraded":
            notes.append("checkpoint unusable, cold fallback")
        if status not in ("ok", "degraded"):
            failures += 1
            if e["error"]:
                notes.append(e["error"].splitlines()[-1][:120])
        log(f"  {pid}: {status} ({', '.join(notes)})")
    log(f"---- {len(points)} points, {failures} failed ----")
    return failures


def smoke_checks(manifest, points, inject_id):
    """Self-asserting --smoke invariants."""
    problems = []
    for pid, *_ in points:
        e = manifest.entry(pid)
        if e["status"] != "ok":
            problems.append(f"{pid}: status {e['status']}, want ok")
    inj = manifest.entry(inject_id)
    if inj["attempts"] < 2:
        problems.append(
            f"{inject_id}: injected timeout did not force a retry "
            f"(attempts={inj['attempts']})")
    # The workload's non-first point must have warm-started from the
    # first point's checkpoint.
    warm_ids = [pid for pid, *_ in points
                if manifest.entry(pid)["warm"]]
    if not warm_ids:
        problems.append("no point warm-started from the shared "
                        "checkpoint")
    return problems


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--runner", required=True)
    ap.add_argument("--points",
                    default="sssp:minnow-pf:4,sssp:obim:4")
    ap.add_argument("--out", default="sweep_out")
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="per-point wall-clock timeout (seconds)")
    ap.add_argument("--retries", type=int, default=3,
                    help="max attempts per point")
    ap.add_argument("--backoff", type=float, default=1.0,
                    help="base backoff (seconds)")
    ap.add_argument("--smoke", action="store_true",
                    help="2-point self-asserting smoke sweep (with "
                         "an injected first-attempt timeout)")
    ap.add_argument("--inject-timeout", default="")
    ap.add_argument("--kill-after-launch", default="")
    args = ap.parse_args()

    if args.smoke:
        args.scale = 0.05
        args.points = "sssp:minnow-pf:4,sssp:obim:4"
        if not args.inject_timeout:
            args.inject_timeout = "sssp:obim:4"
        args.backoff = min(args.backoff, 0.2)
        # The smoke is self-asserting about what a fresh sweep does;
        # never let a stale manifest serve its points.
        shutil.rmtree(args.out, ignore_errors=True)

    points = parse_points(args.points)
    os.makedirs(os.path.join(args.out, "points"), exist_ok=True)
    manifest = Manifest(
        os.path.join(args.out, "sweep_manifest.json"),
        args.scale, args.seed, [p[0] for p in points])
    log(manifest.load_existing())
    manifest.flush()

    rng = random.Random()
    for point in points:
        run_point(args, manifest, point, rng)

    failures = report(manifest, points)
    if args.smoke:
        problems = smoke_checks(manifest, points,
                                args.inject_timeout)
        for p in problems:
            log(f"smoke check FAILED: {p}")
        if problems:
            sys.exit(1)
        log("smoke checks passed")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
