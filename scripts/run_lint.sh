#!/usr/bin/env bash
# Run the full static-analysis pass:
#
#   1. minnow-lint (tools/lint) over src/ — the project-specific
#      determinism / lifetime / instrumentation / architecture
#      rules, including the whole-program ProjectModel pass (call
#      graph, include graph, layer DAG). Always runs; needs only
#      python3. The "graph: N files, ... layers" summary line it
#      prints is the CI-visible record of the model's coverage.
#   2. clang-tidy (.clang-tidy config) over src/ — generic C++ bug
#      classes. Runs only when a clang-tidy binary AND a compilation
#      database are present; skipped (with a notice) otherwise, so
#      the script works on minimal containers.
#
# Usage: scripts/run_lint.sh [build-dir]
#   build-dir: where compile_commands.json lives (default: build).
#
# Exit status: non-zero if either stage reports findings.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
status=0

echo "== minnow-lint: src/ =="
if command -v python3 >/dev/null 2>&1; then
    # 2>&1 keeps the graph/summary lines (stderr) in CI logs even
    # when the log collector only captures stdout.
    python3 "$ROOT/tools/lint/minnow-lint.py" --root "$ROOT" \
        --jobs 2 --budget-seconds 30 src 2>&1 \
        || status=1
else
    echo "error: python3 not found; minnow-lint cannot run" >&2
    status=1
fi

echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (minnow-lint still ran)"
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "no $BUILD_DIR/compile_commands.json; configure first" \
         "(the presets export it: cmake --preset default)"
else
    # Lint the library sources; headers come along via
    # HeaderFilterRegex in .clang-tidy.
    find "$ROOT/src" -name '*.cc' -print0 |
        xargs -0 clang-tidy -p "$BUILD_DIR" --quiet || status=1
fi

exit $status
