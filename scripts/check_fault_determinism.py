#!/usr/bin/env python3
"""Check that fault injection replays deterministically.

Runs the same one-point fig18 sweep twice in separate processes with
an identical --faults spec and --seed, then byte-compares the two
--stats-json documents. Any divergence means a fault decision leaked
out of the seeded stream (or the simulation itself went
non-deterministic), which breaks the replay contract documented in
DESIGN.md "Fault model".

Usage: check_fault_determinism.py <path-to-fig18-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

FAULTS = (
    "engine_stall:core=0,at=20000,dur=40000;"
    "dram_delay:p=0.2,add=150;"
    "noc_delay:p=0.05,add=80;"
    "drop_prefetch:p=0.3"
)


def fail(msg):
    print(f"check_fault_determinism: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_once(bench, out):
    cmd = [
        bench,
        "--workloads=sssp",
        "--scale=0.05",
        "--threads=4",
        "--cores=4",
        "--credits-list=4",
        "--seed=42",
        f"--faults={FAULTS}",
        f"--stats-json={out}",
    ]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        fail(
            f"bench exited {proc.returncode}:\n{proc.stdout}"
            f"\n{proc.stderr}"
        )
    with open(out, "rb") as f:
        return f.read()


def main():
    if len(sys.argv) != 2:
        fail("usage: check_fault_determinism.py <fig18-binary>")
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        a = run_once(bench, os.path.join(tmp, "a.json"))
        b = run_once(bench, os.path.join(tmp, "b.json"))

    if a != b:
        fail(
            "stats JSON differs between two runs with identical "
            "--faults and --seed (replay contract broken)"
        )

    # Sanity: the faults actually fired, so the comparison was not
    # between two fault-free runs.
    doc = json.loads(a)
    runs = doc.get("runs") or []
    if not runs:
        fail("no runs in stats JSON")
    fired = any(
        run.get("stats", {})
        .get("groups", {})
        .get("faults", {})
        .get("clauses", 0)
        > 0
        for run in runs
    )
    if not fired:
        fail("no 'faults' stats group in any run (spec not applied?)")

    print(
        "check_fault_determinism: OK "
        f"({len(runs)} runs, {len(a)} bytes, byte-identical)"
    )


if __name__ == "__main__":
    main()
