#!/usr/bin/env python3
"""Validate the --stats-json output of a bench binary.

Runs a small fig18 credit sweep with --stats-json, then checks the
emitted document against the "minnow-bench-stats-1" schema: every run
entry must carry its identifying parameters plus a full
"minnow-stats-1" registry snapshot, and the minnow-pf runs must
expose the acceptance metrics (per-core L2 MPKI, prefetch
coverage/accuracy, credit-stall counters).

The sweep runs with --host-profile=true, --timeline and
--attribution, so the snapshot must also carry the observability
groups: "hostprof" (host wall-clock attribution), "timeline" (event
counts plus the pop-wait/dequeue/execute/push latency percentiles),
and "attribution" (the five prefetch lifecycle classes, the derived
coverage and pollution rates, lineage conservation counters, and the
six latency histograms with P50/P95/P99), all numeric and
non-negative.

Usage: check_stats_json.py <path-to-fig18-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import json
import subprocess
import sys
import tempfile
import os


RUN_KEYS = {
    "workload": str,
    "config": str,
    "threads": int,
    "scale": (int, float),
    "seed": int,
    "credits": int,
    "timedOut": bool,
    "verified": bool,
    "cycles": int,
    "instructions": int,
    "l2Mpki": (int, float),
    "stats": dict,
}


def fail(msg):
    print(f"check_stats_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_run_entry(run, i):
    for key, ty in RUN_KEYS.items():
        if key not in run:
            fail(f"runs[{i}] missing key '{key}'")
        ok = isinstance(run[key], ty)
        if ok and ty is int and isinstance(run[key], bool):
            ok = False  # bool is an int subclass; reject it.
        if not ok:
            fail(
                f"runs[{i}].{key} has type "
                f"{type(run[key]).__name__}, wanted {ty}"
            )
    stats = run["stats"]
    if stats.get("schema") != "minnow-stats-1":
        fail(f"runs[{i}].stats.schema != minnow-stats-1")
    groups = stats.get("groups")
    if not isinstance(groups, dict) or not groups:
        fail(f"runs[{i}].stats.groups missing or empty")
    for gname, group in groups.items():
        if not isinstance(group, dict):
            fail(f"runs[{i}] group '{gname}' is not an object")
        for sname, sval in group.items():
            if isinstance(sval, dict):
                if sval.get("type") != "histogram":
                    fail(
                        f"runs[{i}] {gname}.{sname}: object stat "
                        "that is not a histogram"
                    )
                counts = sval.get("counts")
                if not isinstance(counts, list) or not counts:
                    fail(f"runs[{i}] {gname}.{sname}: bad counts")
                if sum(counts) != sval.get("total"):
                    fail(
                        f"runs[{i}] {gname}.{sname}: counts sum "
                        f"{sum(counts)} != total {sval.get('total')}"
                    )
            elif not isinstance(sval, (int, float)):
                fail(f"runs[{i}] {gname}.{sname}: non-numeric stat")
    return groups


def check_minnow_pf_groups(groups, i):
    """The acceptance metrics for an engine+prefetch run."""
    l2 = [g for g in groups if g.startswith("l2_")]
    if not l2:
        fail(f"runs[{i}]: no l2_<N> groups")
    for g in l2:
        if "mpki" not in groups[g]:
            fail(f"runs[{i}]: group {g} lacks mpki")
    mem = groups.get("mem")
    if mem is None:
        fail(f"runs[{i}]: no mem group")
    for key in ("prefetchCoverage", "prefetchAccuracy"):
        if key not in mem:
            fail(f"runs[{i}]: mem group lacks {key}")
    engines = [g for g in groups if g.startswith("minnow")]
    if not engines:
        fail(f"runs[{i}]: no minnow<N> engine groups")
    for g in engines:
        if "creditStalls" not in groups[g]:
            fail(f"runs[{i}]: group {g} lacks creditStalls")


def check_attribution_group(groups, i):
    """The --attribution group (prefetch provenance + lineage)."""
    g = groups.get("attribution")
    if g is None:
        fail(f"runs[{i}]: no attribution group")
    for cls in ("timely", "late", "earlyEvicted", "redundant",
                "polluting"):
        if not isinstance(g.get(cls), (int, float)):
            fail(f"runs[{i}]: attribution lacks class '{cls}'")
    for key in ("fills", "stallCyclesCovered", "missAfterEvict",
                "demandMisses", "coveredPct", "pollutionPct",
                "lineageAssigned", "lineageDequeued", "lineageLive",
                "lineageFanout"):
        if key not in g:
            fail(f"runs[{i}]: attribution lacks '{key}'")
    if not (0 <= g["coveredPct"] <= 100):
        fail(f"runs[{i}]: coveredPct out of range")
    if g["lineageLive"] != 0:
        fail(f"runs[{i}]: lineage leak ({g['lineageLive']} live)")
    for hist in ("issueToFill", "fillToUse", "issueToUse",
                 "pushToEnqueue", "enqueueToDequeue",
                 "dequeueToFirstMiss"):
        h = g.get(hist)
        if not isinstance(h, dict) or h.get("type") != "histogram":
            fail(f"runs[{i}]: attribution lacks histogram {hist}")
        for pct in ("P50", "P95", "P99"):
            if f"{hist}{pct}" not in g:
                fail(f"runs[{i}]: attribution lacks {hist}{pct}")


def check_observability_groups(groups, i):
    """The --host-profile / --timeline groups (PR 4)."""
    for gname in ("hostprof", "timeline"):
        g = groups.get(gname)
        if g is None:
            fail(f"runs[{i}]: no {gname} group")
        for sname, sval in g.items():
            if isinstance(sval, dict):
                continue  # histograms checked by check_run_entry.
            if not isinstance(sval, (int, float)):
                fail(f"runs[{i}] {gname}.{sname}: non-numeric")
            if sval < 0:
                fail(f"runs[{i}] {gname}.{sname}: negative ({sval})")
    tl = groups["timeline"]
    for key in (
        "events",
        "droppedEvents",
        "bufferCapacity",
        "popWaitP50",
        "dequeueP95",
        "executeP99",
        "pushP50",
    ):
        if key not in tl:
            fail(f"runs[{i}]: timeline group lacks {key}")
    if tl["events"] <= 0:
        fail(f"runs[{i}]: timeline recorded no events")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_stats_json.py <fig18-binary>")
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "stats.json")
        trace = os.path.join(tmp, "trace.json")
        cmd = [
            bench,
            "--workloads=sssp",
            "--scale=0.05",
            "--threads=4",
            "--cores=4",
            "--credits-list=4",
            "--host-profile=true",
            "--attribution",
            f"--timeline={trace}",
            f"--stats-json={out}",
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600
        )
        if proc.returncode != 0:
            fail(
                f"bench exited {proc.returncode}:\n{proc.stdout}"
                f"\n{proc.stderr}"
            )
        try:
            with open(out) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot parse {out}: {e}")

    if doc.get("schema") != "minnow-bench-stats-1":
        fail("top-level schema != minnow-bench-stats-1")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs missing or empty")

    saw_pf = False
    for i, run in enumerate(runs):
        groups = check_run_entry(run, i)
        if run["config"] == "minnow-pf":
            saw_pf = True
            check_minnow_pf_groups(groups, i)
            check_observability_groups(groups, i)
            check_attribution_group(groups, i)
    if not saw_pf:
        fail("no minnow-pf run in the sweep output")

    print(f"check_stats_json: OK ({len(runs)} runs validated)")


if __name__ == "__main__":
    main()
