#!/usr/bin/env python3
"""Summarize a --timeline trace (Chrome trace_event JSON).

Rebuilds span durations from the B/E stream (per-(pid, tid) stacks,
so nested spans attribute correctly), aggregates them by span name,
and prints count / total cycles / mean / p50 / p95 / p99 per name,
plus instant-event counts, flow-arrow aggregates (the --attribution
push->pop lineage and prefetch issue->fill->use arrows, with
latency percentiles, how many cross tracks, and a few example
arrows), and the ranges of every counter track.
Percentiles here are exact (computed from the individual durations),
unlike the bucketed approximations in the "timeline" stats group.

Usage:
  trace_summary.py TRACE.json
  trace_summary.py --compare A.json B.json

--compare prints the two summaries side by side with the B/A ratio of
mean duration per span name — the quick way to answer "where did the
cycles go" between a baseline and a Minnow run (fig05 in two
commands) or between two credit settings.
"""

import json
import sys


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents array")
    return doc, events


def summarize(events):
    """Return (spans, instants, counters, flows) aggregates."""
    stacks = {}
    spans = {}  # name -> list of durations.
    instants = {}  # name -> count.
    counters = {}  # name -> [min, max, samples].
    flow_legs = {}  # id -> list of (ts, ph, name, key).
    for e in events:
        ph = e.get("ph")
        key = (e.get("pid"), e.get("tid"))
        if ph in ("s", "t", "f"):
            flow_legs.setdefault(e.get("id"), []).append(
                (e.get("ts", 0), ph, e.get("name", "?"), key)
            )
            continue
        if ph == "B":
            stacks.setdefault(key, []).append(e)
        elif ph == "E":
            st = stacks.get(key)
            if not st:
                fail(f"unbalanced E event on track {key}")
            b = st.pop()
            spans.setdefault(b["name"], []).append(
                e["ts"] - b["ts"]
            )
        elif ph == "i":
            instants[e["name"]] = instants.get(e["name"], 0) + 1
        elif ph == "C":
            v = e.get("args", {}).get("value", 0)
            c = counters.setdefault(e["name"], [v, v, 0])
            c[0] = min(c[0], v)
            c[1] = max(c[1], v)
            c[2] += 1
    for key, st in stacks.items():
        if st:
            fail(f"{len(st)} unterminated spans on track {key}")
    # name -> {"lat": [..], "cross": n, "examples": [(s, f), ..]}.
    flows = {}
    for legs in flow_legs.values():
        start = next((l for l in legs if l[1] == "s"), None)
        end = next((l for l in legs if l[1] == "f"), None)
        if start is None or end is None:
            continue
        f = flows.setdefault(
            start[2], {"lat": [], "cross": 0, "examples": []}
        )
        f["lat"].append(end[0] - start[0])
        if start[3] != end[3]:
            f["cross"] += 1
            if len(f["examples"]) < 3:
                f["examples"].append((start, end))
        elif not f["examples"]:
            f["examples"].append((start, end))
    return spans, instants, counters, flows


def percentile(sorted_vals, frac):
    if not sorted_vals:
        return 0
    idx = min(
        len(sorted_vals) - 1, int(frac * (len(sorted_vals) - 1))
    )
    return sorted_vals[idx]


def span_rows(spans):
    rows = {}
    for name, durs in spans.items():
        durs.sort()
        rows[name] = {
            "count": len(durs),
            "total": sum(durs),
            "mean": sum(durs) / len(durs),
            "p50": percentile(durs, 0.50),
            "p95": percentile(durs, 0.95),
            "p99": percentile(durs, 0.99),
        }
    return rows


def print_summary(path, doc, spans, instants, counters, flows):
    other = doc.get("otherData", {})
    print(f"== {path} ==")
    print(
        f"events recorded: {other.get('recordedEvents', '?')}"
        f"  dropped: {other.get('droppedEvents', '?')}"
        f"  buffer: {other.get('capacity', '?')}"
    )
    rows = span_rows(spans)
    if rows:
        print(f"{'span':<14}{'count':>8}{'total':>12}{'mean':>10}"
              f"{'p50':>8}{'p95':>8}{'p99':>8}")
        for name in sorted(rows, key=lambda n: -rows[n]["total"]):
            r = rows[name]
            print(
                f"{name:<14}{r['count']:>8}{r['total']:>12}"
                f"{r['mean']:>10.1f}{r['p50']:>8}{r['p95']:>8}"
                f"{r['p99']:>8}"
            )
    if instants:
        print("instants:")
        for name in sorted(instants):
            print(f"  {name:<22}{instants[name]:>8}")
    if flows:
        print("flows (causal arrows, --attribution):")
        print(
            f"  {'name':<12}{'count':>8}{'mean':>10}{'p50':>8}"
            f"{'p95':>8}{'cross-track':>12}"
        )
        for name in sorted(flows):
            f = flows[name]
            lat = sorted(f["lat"])
            mean = sum(lat) / len(lat) if lat else 0.0
            print(
                f"  {name:<12}{len(lat):>8}{mean:>10.1f}"
                f"{percentile(lat, 0.50):>8}"
                f"{percentile(lat, 0.95):>8}{f['cross']:>12}"
            )
        for name in sorted(flows):
            for start, end in flows[name]["examples"]:
                print(
                    f"  {name}: track{start[3]}@{start[0]} -> "
                    f"track{end[3]}@{end[0]}"
                )
    if counters:
        print("counters (min..max over samples):")
        for name in sorted(counters):
            lo, hi, n = counters[name]
            print(f"  {name:<28}{lo:>10g}..{hi:<10g} ({n} samples)")


def compare(path_a, path_b):
    doc_a, ev_a = load_events(path_a)
    doc_b, ev_b = load_events(path_b)
    rows_a = span_rows(summarize(ev_a)[0])
    rows_b = span_rows(summarize(ev_b)[0])
    names = sorted(
        set(rows_a) | set(rows_b),
        key=lambda n: -(
            rows_a.get(n, {}).get("total", 0)
            + rows_b.get(n, {}).get("total", 0)
        ),
    )
    print(f"A = {path_a}")
    print(f"B = {path_b}")
    print(
        f"{'span':<14}{'countA':>8}{'countB':>8}{'meanA':>10}"
        f"{'meanB':>10}{'B/A':>8}"
    )
    for name in names:
        a = rows_a.get(name)
        b = rows_b.get(name)
        ca = a["count"] if a else 0
        cb = b["count"] if b else 0
        ma = a["mean"] if a else 0.0
        mb = b["mean"] if b else 0.0
        ratio = f"{mb / ma:.2f}" if a and b and ma else "-"
        print(
            f"{name:<14}{ca:>8}{cb:>8}{ma:>10.1f}{mb:>10.1f}"
            f"{ratio:>8}"
        )


def main():
    args = sys.argv[1:]
    if len(args) == 3 and args[0] == "--compare":
        compare(args[1], args[2])
        return
    if len(args) != 1:
        fail(
            "usage: trace_summary.py TRACE.json | "
            "--compare A.json B.json"
        )
    doc, events = load_events(args[0])
    spans, instants, counters, flows = summarize(events)
    print_summary(args[0], doc, spans, instants, counters, flows)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Piping into `head` is a normal way to use this tool.
        sys.exit(0)
