#!/usr/bin/env python3
"""Check causal-attribution A/B equivalence (ISSUE acceptance).

The attribution layer (--attribution, mem/attribution.hh) must be a
pure observer: enabling it may add the "attribution" stats group and
flow events to the timeline, but must not perturb any simulated
outcome. This script drives point_runner through the matrix:

  1. zero-perturbation A/B: sssp/minnow-pf with and without
     --attribution; after stripping the "attribution" group from the
     enabled run, the two stats documents must be identical (same
     canonical JSON). The run geometry (cycles, instructions,
     verification) must match exactly.
  2. shard invariance: the attribution-enabled stats JSON and flow
     timeline must be byte-identical at --shards=1, 4 and 8.
  3. checkpoint roundtrip: saving a warm checkpoint must not perturb
     the attribution-enabled stats, and a fresh process restoring it
     must reproduce them byte-identically (the tracker state rides
     in the "attribution" checkpoint section).
  4. schema: the attribution group must report all five lifecycle
     classes, the derived coverage/pollution rates, lineage
     conservation (assigned == dequeued, live == 0 at exit), and the
     six latency histograms with P50/P95/P99.

Usage: check_attribution_ab.py <path-to-point_runner-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

SCALE = "0.05"
THREADS = "8"
SEED = "7"

CLASSES = ["timely", "late", "earlyEvicted", "redundant", "polluting"]
HISTS = [
    "issueToFill",
    "fillToUse",
    "issueToUse",
    "pushToEnqueue",
    "enqueueToDequeue",
    "dequeueToFirstMiss",
]


def fail(msg):
    print(f"check_attribution_ab: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_point(runner, extra):
    cmd = [
        runner,
        "--workload=sssp",
        "--config=minnow-pf",
        f"--scale={SCALE}",
        f"--threads={THREADS}",
        f"--cores={THREADS}",
        f"--seed={SEED}",
    ] + extra
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        fail(
            f"point_runner exited {proc.returncode} for {extra}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    doc = json.loads(proc.stdout)
    if doc.get("schema") != "minnow-point-1":
        fail(f"bad point schema: {proc.stdout!r}")
    return doc


def read(path):
    with open(path, "rb") as f:
        return f.read()


def canonical_without_attribution(path):
    doc = json.loads(read(path))
    for run in doc.get("runs", []):
        run.get("stats", {}).get("groups", {}).pop(
            "attribution", None
        )
    return json.dumps(doc, sort_keys=True)


def attribution_group(path):
    doc = json.loads(read(path))
    runs = doc.get("runs", [])
    if not runs:
        fail(f"{path}: no runs in stats JSON")
    group = runs[0].get("stats", {}).get("groups", {}).get(
        "attribution"
    )
    if group is None:
        fail(f"{path}: no attribution group in stats JSON")
    return group


def check_zero_perturbation(runner, tmp):
    off = os.path.join(tmp, "off.json")
    on = os.path.join(tmp, "on.json")
    doc_off = run_point(runner, [f"--stats-json={off}"])
    doc_on = run_point(
        runner, ["--attribution", f"--stats-json={on}"]
    )
    for key in ("cycles", "instructions", "verified"):
        if doc_off[key] != doc_on[key]:
            fail(
                f"--attribution changed {key}: "
                f"{doc_off[key]} vs {doc_on[key]}"
            )
    if canonical_without_attribution(
        off
    ) != canonical_without_attribution(on):
        fail(
            "--attribution perturbed pre-existing stats groups "
            "(off vs on with the attribution group stripped)"
        )
    print("check_attribution_ab: zero-perturbation OK")


def check_shard_invariance(runner, tmp):
    base_stats = base_trace = None
    for shards in (1, 4, 8):
        stats = os.path.join(tmp, f"shard{shards}.json")
        trace = os.path.join(tmp, f"shard{shards}-trace.json")
        run_point(
            runner,
            [
                "--attribution",
                f"--shards={shards}",
                f"--stats-json={stats}",
                f"--timeline={trace}",
            ],
        )
        if shards == 1:
            base_stats, base_trace = read(stats), read(trace)
        else:
            if read(stats) != base_stats:
                fail(f"stats differ at --shards={shards}")
            if read(trace) != base_trace:
                fail(f"flow trace differs at --shards={shards}")
    print("check_attribution_ab: shard invariance OK")


def check_checkpoint_roundtrip(runner, tmp):
    cold = os.path.join(tmp, "cold.json")
    run_point(runner, ["--attribution", f"--stats-json={cold}"])
    a = read(cold)

    ckpt = os.path.join(tmp, "warm.ckpt")
    save = os.path.join(tmp, "save.json")
    run_point(
        runner,
        [
            "--attribution",
            f"--stats-json={save}",
            f"--checkpoint-out={ckpt}",
        ],
    )
    if read(save) != a:
        fail("saving a checkpoint perturbed attribution stats")
    if not os.path.exists(ckpt):
        fail("no checkpoint written")

    warm = os.path.join(tmp, "warm.json")
    doc = run_point(
        runner,
        [
            "--attribution",
            f"--stats-json={warm}",
            f"--checkpoint-in={ckpt}",
        ],
    )
    if not doc["warmStart"]:
        fail("checkpoint restore did not warm-start")
    if read(warm) != a:
        fail("restored attribution stats differ from cold run")
    print("check_attribution_ab: checkpoint roundtrip OK")


def check_schema(tmp):
    group = attribution_group(os.path.join(tmp, "cold.json"))
    for cls in CLASSES:
        if cls not in group:
            fail(f"attribution group missing class '{cls}'")
        if not isinstance(group[cls], (int, float)):
            fail(f"attribution class '{cls}' is not numeric")
    for key in (
        "fills",
        "stallCyclesCovered",
        "coveredPct",
        "pollutionPct",
        "lineageAssigned",
        "lineageDequeued",
        "lineageLive",
    ):
        if key not in group:
            fail(f"attribution group missing '{key}'")
    if group["lineageLive"] != 0:
        fail(f"lineage leak: lineageLive={group['lineageLive']}")
    if group["lineageAssigned"] != group["lineageDequeued"]:
        fail(
            "lineage not conserved: "
            f"assigned={group['lineageAssigned']} "
            f"dequeued={group['lineageDequeued']}"
        )
    if not (0 <= group["coveredPct"] <= 100):
        fail(f"coveredPct out of range: {group['coveredPct']}")
    for hist in HISTS:
        h = group.get(hist)
        if not isinstance(h, dict) or h.get("type") != "histogram":
            fail(f"attribution histogram '{hist}' missing")
        for pct in ("P50", "P95", "P99"):
            if f"{hist}{pct}" not in group:
                fail(f"attribution group missing {hist}{pct}")
    print("check_attribution_ab: schema OK")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_attribution_ab.py <point_runner-binary>")
    runner = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        check_zero_perturbation(runner, tmp)
        check_shard_invariance(runner, tmp)
        check_checkpoint_roundtrip(runner, tmp)
        check_schema(tmp)
    print("check_attribution_ab: PASS")


if __name__ == "__main__":
    main()
