#!/usr/bin/env python3
"""Crash drill for the warm-sweep orchestrator (ISSUE acceptance).

Scenario:
  1. Launch sweep_orchestrator.py with --kill-after-launch on the
     second point: the orchestrator SIGKILLs the running child AND
     itself mid-sweep, leaving sweep_manifest.json with the first
     point finished and the second "running".
  2. Assert the manifest survived torn-write-free and records
     exactly that state.
  3. Re-invoke the orchestrator on the same --out directory.
     It must resume from the manifest: the finished point is served
     without re-running (its result, including host timestamps, is
     byte-equal), the interrupted point is retried, and the final
     report covers every point — none silently missing, each ok or
     explicitly degraded/failed.

Usage: check_orchestrator_crash.py <point_runner-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ORCH = os.path.join(HERE, "sweep_orchestrator.py")

POINTS = "sssp:minnow-pf:4,sssp:obim:4"
P1 = "sssp:minnow-pf:4"
P2 = "sssp:obim:4"


def fail(msg):
    print(f"check_orchestrator_crash: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_orch(runner, out, extra):
    cmd = [
        sys.executable, ORCH,
        f"--runner={runner}",
        f"--points={POINTS}",
        "--scale=0.05",
        "--backoff=0.2",
        f"--out={out}",
    ] + extra
    return subprocess.run(
        cmd, capture_output=True, text=True, timeout=600)


def manifest(out):
    with open(os.path.join(out, "sweep_manifest.json")) as f:
        return json.load(f)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_orchestrator_crash.py "
             "<point_runner-binary>")
    runner = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="minnow_crash_drill_")
    out = os.path.join(tmp, "sweep")

    # 1. Crash mid-sweep: child killed, orchestrator SIGKILLed.
    proc = run_orch(runner, out, [f"--kill-after-launch={P2}"])
    if proc.returncode != -9:
        fail(f"orchestrator did not die by SIGKILL "
             f"(exit {proc.returncode}):\n{proc.stdout}\n"
             f"{proc.stderr}")

    # 2. The journal must reflect the crash exactly.
    doc = manifest(out)
    e1, e2 = doc["points"][P1], doc["points"][P2]
    if e1["status"] != "ok":
        fail(f"finished point lost: {P1} is {e1['status']}")
    if e2["status"] != "running":
        fail(f"interrupted point is {e2['status']}, want 'running'")
    host_before = e1["result"]["hostSeconds"]

    # 3. Resume: finished point served, interrupted point retried.
    proc = run_orch(runner, out, [])
    if proc.returncode != 0:
        fail(f"resume failed (exit {proc.returncode}):\n"
             f"{proc.stdout}\n{proc.stderr}")
    if f"{P1}: ok (served from manifest)" not in proc.stdout:
        fail(f"resume re-ran the finished point:\n{proc.stdout}")

    doc = manifest(out)
    e1, e2 = doc["points"][P1], doc["points"][P2]
    if e1["result"]["hostSeconds"] != host_before:
        fail("finished point's result changed on resume "
             "(it was re-run)")
    if e2["status"] not in ("ok", "degraded"):
        fail(f"interrupted point ended as {e2['status']}")
    if e2["attempts"] < 2:
        fail(f"interrupted point's attempt count lost "
             f"(attempts={e2['attempts']})")
    if e2["error"] is not None:
        fail(f"retried point kept a stale error: {e2['error']}")
    for pid, e in doc["points"].items():
        if e["status"] not in ("ok", "degraded"):
            fail(f"{pid}: final status {e['status']}")
        if e["result"] is None:
            fail(f"{pid}: no result recorded")

    # The interrupted point's retry must have warm-started from the
    # checkpoint the finished point wrote before the crash.
    if not e2["warm"]:
        fail("retried point did not warm-start from the surviving "
             "checkpoint")

    print(
        "check_orchestrator_crash: OK (crash left "
        f"{P2} mid-run; resume served {P1} from the manifest and "
        f"retried {P2} to '{e2['status']}' on attempt "
        f"{e2['attempts']})"
    )


if __name__ == "__main__":
    main()
