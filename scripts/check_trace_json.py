#!/usr/bin/env python3
"""Validate the --timeline output of a bench binary.

Runs a small fig16 configuration twice with --timeline and checks the
emitted Chrome trace_event JSON ("minnow-timeline-1"):

  * the document parses and carries the expected otherData block;
  * metadata ("M") events name every process and thread;
  * non-metadata timestamps are monotonically non-decreasing (the
    exporter emits one globally time-sorted stream);
  * every "B" has a matching "E" on the same (pid, tid) — the
    begin/end stream forms balanced, properly nested stacks;
  * instants use the thread scope ("s": "t") and counters carry a
    numeric args.value;
  * the trace contains the load-bearing content: task spans on a core
    track, threadlet lifetime spans, and at least one credit counter
    track;
  * flow events ("s"/"t"/"f") form complete arrows: every flow id
    opens with exactly one start, closes with exactly one end
    (carrying "bp": "e"), keeps one name across its legs, and its
    timestamps are monotonically non-decreasing — no dangling
    starts, no orphan steps;
  * a third run with --attribution contains both prefetch and
    lineage flow arrows (the causal-attribution layer);
  * two runs with the same seed produce byte-identical files
    (determinism contract).

Usage: check_trace_json.py <path-to-fig16-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import filecmp
import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"check_trace_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench, trace_path, extra=()):
    cmd = [
        bench,
        "--workloads=sssp",
        "--scale=0.04",
        "--threads=4",
        "--cores=4",
        f"--timeline={trace_path}",
    ] + list(extra)
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        fail(
            f"bench exited {proc.returncode}:\n{proc.stdout}"
            f"\n{proc.stderr}"
        )


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def check_document(doc):
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("otherData missing")
    for key in ("droppedEvents", "recordedEvents", "capacity"):
        v = other.get(key)
        if not isinstance(v, int) or v < 0:
            fail(f"otherData.{key} missing or negative")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    return events


def check_events(events):
    named_pids = set()
    named_tids = set()
    stacks = {}
    last_ts = -1
    saw_task_begin = False
    saw_threadlet = False
    credit_tracks = set()
    flows = {}

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(e.get("pid"))
            if e.get("name") == "thread_name":
                named_tids.add((e.get("pid"), e.get("tid")))
            continue
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if ts < last_ts:
            fail(f"event {i}: ts {ts} < previous {last_ts}")
        last_ts = ts
        key = (e.get("pid"), e.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(i)
            if e.get("name") == "task":
                saw_task_begin = True
            if e.get("cat") == "threadlet":
                saw_threadlet = True
        elif ph == "E":
            st = stacks.get(key)
            if not st:
                fail(f"event {i}: E with empty stack on {key}")
            st.pop()
        elif ph == "i":
            if e.get("s") != "t":
                fail(f"event {i}: instant without thread scope")
        elif ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"event {i}: counter without numeric value")
            if e.get("name", "").endswith(".credits"):
                credit_tracks.add(key)
        elif ph in ("s", "t", "f"):
            fid = e.get("id")
            if not isinstance(fid, int):
                fail(f"event {i}: flow leg without integer id")
            if ph == "f" and e.get("bp") != "e":
                fail(f"event {i}: flow end without bp=e binding")
            flows.setdefault(fid, []).append(
                (ts, ph, e.get("name"), i)
            )
        else:
            fail(f"event {i}: unknown phase {ph!r}")

    for key, st in stacks.items():
        if st:
            fail(f"{len(st)} unterminated B events on {key}")
    for key in stacks:
        if key not in named_tids:
            fail(f"span track {key} has no thread_name metadata")
    if not saw_task_begin:
        fail("no task span in the trace")
    if not saw_threadlet:
        fail("no threadlet-category span in the trace")
    if not credit_tracks:
        fail("no *.credits counter track in the trace")

    flow_names = set()
    for fid, legs in flows.items():
        phases = [ph for _, ph, _, _ in legs]
        if phases[0] != "s":
            fail(f"flow {fid}: first leg is {phases[0]!r}, not 's'")
        if phases[-1] != "f":
            fail(f"flow {fid}: dangling start (no 'f' leg)")
        if phases.count("s") != 1 or phases.count("f") != 1:
            fail(f"flow {fid}: unbalanced s/f legs {phases}")
        if any(ph != "t" for ph in phases[1:-1]):
            fail(f"flow {fid}: non-step leg in the middle {phases}")
        names = {name for _, _, name, _ in legs}
        if len(names) != 1:
            fail(f"flow {fid}: mixed names {sorted(names)}")
        ts_list = [ts for ts, _, _, _ in legs]
        if ts_list != sorted(ts_list):
            fail(f"flow {fid}: non-monotonic timestamps {ts_list}")
        flow_names.add(names.pop())
    return flow_names


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace_json.py <fig16-binary>")
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        a = os.path.join(tmp, "a.json")
        b = os.path.join(tmp, "b.json")
        attr = os.path.join(tmp, "attr.json")
        run_bench(bench, a)
        run_bench(bench, b)
        if not filecmp.cmp(a, b, shallow=False):
            fail("same-seed runs produced different trace files")
        events = check_document(load(a))
        check_events(events)

        run_bench(bench, attr, ["--attribution"])
        attr_events = check_document(load(attr))
        flow_names = check_events(attr_events)
        for name in ("prefetch", "lineage"):
            if name not in flow_names:
                fail(
                    f"--attribution trace has no '{name}' flow "
                    f"arrows (saw {sorted(flow_names)})"
                )

    print(
        f"check_trace_json: OK ({len(events)} events, "
        f"{len(attr_events)} with attribution flows validated)"
    )


if __name__ == "__main__":
    main()
