#!/usr/bin/env python3
"""Check checkpoint/restore A/B equivalence (ISSUE acceptance).

Drives the point_runner bench through the full checkpoint matrix for
sssp (minnow-pf) and pr (obim):

  1. cold baseline: one uninterrupted run with --stats-json (and,
     for sssp, --timeline).
  2. warm save: same run writing a warm-boundary checkpoint; saving
     must not perturb the stats (byte-compare vs baseline).
  3. warm restore: a fresh process starting from the checkpoint must
     report warmStart and produce byte-identical stats (and
     timeline) to the cold baseline.
  4. rescue roundtrip: save a mid-run rescue anchor
     (--checkpoint-after=<cycles>), restore it in a fresh process,
     and byte-compare the stats again.
  5. corruption: flip one byte of the warm checkpoint; the restore
     run must warn (CRC mismatch), degrade to a cold start
     (warmStart false), and still produce byte-identical stats
     ("warn, never wrong").

Usage: check_checkpoint_ab.py <path-to-point_runner-binary>
Exit status 0 on success; prints the first failure otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

POINTS = [
    # (workload, config, timeline?)
    ("sssp", "minnow-pf", True),
    ("pr", "obim", False),
]
SCALE = "0.1"
THREADS = "4"
SEED = "7"


def fail(msg):
    print(f"check_checkpoint_ab: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_point(runner, workload, config, extra, expect_ok=True):
    cmd = [
        runner,
        f"--workload={workload}",
        f"--config={config}",
        f"--scale={SCALE}",
        f"--threads={THREADS}",
        f"--cores={THREADS}",
        f"--seed={SEED}",
    ] + extra
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600
    )
    if expect_ok and proc.returncode != 0:
        fail(
            f"point_runner exited {proc.returncode} for "
            f"{workload}/{config} {extra}:\n{proc.stdout}\n"
            f"{proc.stderr}"
        )
    return proc


def read(path):
    with open(path, "rb") as f:
        return f.read()


def point_json(proc):
    doc = json.loads(proc.stdout)
    if doc.get("schema") != "minnow-point-1":
        fail(f"bad point schema: {proc.stdout!r}")
    return doc


def check_point(runner, tmp, workload, config, with_timeline):
    tag = f"{workload}/{config}"
    d = os.path.join(tmp, workload)
    os.mkdir(d)
    stats_a = os.path.join(d, "a.json")
    tl_a = os.path.join(d, "tl_a.json")
    ckpt = os.path.join(d, "warm.ckpt")

    # 1. Cold baseline.
    extra = [f"--stats-json={stats_a}"]
    if with_timeline:
        extra.append(f"--timeline={tl_a}")
    cold = point_json(run_point(runner, workload, config, extra))
    if cold["warmStart"]:
        fail(f"{tag}: cold run reported warmStart")
    if not cold["verified"]:
        fail(f"{tag}: cold run failed verification")
    a = read(stats_a)

    # 2. Warm save: writing the checkpoint must not perturb stats.
    # (--timeline adds a stats group, so timeline-enabled points
    # must record one in every run to stay comparable.)
    stats_s = os.path.join(d, "save.json")
    extra = [f"--stats-json={stats_s}", f"--checkpoint-out={ckpt}"]
    if with_timeline:
        extra.append(f"--timeline={os.path.join(d, 'tl_s.json')}")
    run_point(runner, workload, config, extra)
    if read(stats_s) != a:
        fail(f"{tag}: saving a checkpoint changed the stats JSON")
    if not os.path.exists(ckpt):
        fail(f"{tag}: no checkpoint written")

    # 3. Warm restore in a fresh process: byte-identical outputs.
    stats_b = os.path.join(d, "b.json")
    tl_b = os.path.join(d, "tl_b.json")
    extra = [f"--stats-json={stats_b}", f"--checkpoint-in={ckpt}"]
    if with_timeline:
        extra.append(f"--timeline={tl_b}")
    warm = point_json(run_point(runner, workload, config, extra))
    if not warm["warmStart"]:
        fail(f"{tag}: restore did not warm-start")
    if read(stats_b) != a:
        fail(f"{tag}: warm-restored stats JSON differs from cold")
    if with_timeline and read(tl_b) != read(tl_a):
        fail(f"{tag}: warm-restored timeline differs from cold")

    # 4. Rescue roundtrip at a mid-run anchor.
    anchor = max(1, int(cold["cycles"]) // 3)
    rescue = os.path.join(d, "rescue.ckpt")
    extra = [f"--checkpoint-out={rescue}",
             f"--checkpoint-after={anchor}"]
    if with_timeline:
        extra.append(f"--timeline={os.path.join(d, 'tl_r.json')}")
    run_point(runner, workload, config, extra)
    if not os.path.exists(rescue):
        fail(f"{tag}: no rescue checkpoint at cycle {anchor}")
    stats_c = os.path.join(d, "c.json")
    extra = [f"--stats-json={stats_c}", f"--checkpoint-in={rescue}"]
    if with_timeline:
        extra.append(f"--timeline={os.path.join(d, 'tl_c.json')}")
    proc = run_point(runner, workload, config, extra)
    if "witness mismatch" in proc.stderr:
        fail(f"{tag}: rescue witness mismatch:\n{proc.stderr}")
    if read(stats_c) != a:
        fail(f"{tag}: rescue-restored stats JSON differs from cold")

    # 5. Corrupted checkpoint: warn, degrade cold, identical stats.
    blob = bytearray(read(ckpt))
    blob[len(blob) // 2] ^= 0x40
    bad = os.path.join(d, "bad.ckpt")
    with open(bad, "wb") as f:
        f.write(blob)
    stats_d = os.path.join(d, "d.json")
    extra = [f"--stats-json={stats_d}", f"--checkpoint-in={bad}"]
    if with_timeline:
        extra.append(f"--timeline={os.path.join(d, 'tl_d.json')}")
    proc = run_point(runner, workload, config, extra)
    if "CRC mismatch" not in proc.stderr:
        fail(
            f"{tag}: corrupt checkpoint produced no CRC warning:\n"
            f"{proc.stderr}"
        )
    degraded = point_json(proc)
    if degraded["warmStart"]:
        fail(f"{tag}: corrupt checkpoint still warm-started")
    if read(stats_d) != a:
        fail(f"{tag}: degraded run's stats JSON differs from cold")

    print(
        f"check_checkpoint_ab: {tag} OK ({len(a)} bytes; warm, "
        f"rescue@{anchor}, and degraded runs all byte-identical)"
    )


def main():
    if len(sys.argv) != 2:
        fail("usage: check_checkpoint_ab.py <point_runner-binary>")
    runner = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        for workload, config, with_timeline in POINTS:
            check_point(runner, tmp, workload, config,
                        with_timeline)
    print("check_checkpoint_ab: OK")


if __name__ == "__main__":
    main()
