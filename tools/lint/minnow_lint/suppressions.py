"""LINT-OK suppression parsing and staleness tracking.

Syntax (in a // or /* */ comment):

    LINT-OK(rule-id): reason text

A suppression silences findings of `rule-id` on the comment's own
line and on the line immediately below it (so both trailing comments
and comment-above-statement style work). Suppressions are themselves
linted:

  - an unknown rule id or a missing reason is a `bad-suppression`
    finding,
  - a suppression that silenced nothing is a `stale-suppression`
    finding (dead suppressions rot into lies about the code).
"""

import re
from dataclasses import dataclass, field

_SUPPRESS_RE = re.compile(
    r"LINT-OK\(\s*([A-Za-z0-9_-]*)\s*\)\s*(?::\s*(.*?))?\s*$",
    re.MULTILINE)


@dataclass
class Suppression:
    rule: str
    reason: str
    line: int
    used: bool = False


@dataclass
class FileSuppressions:
    path: str
    entries: list = field(default_factory=list)
    problems: list = field(default_factory=list)  # (line, rule, msg)


def collect(path, comments, known_rules):
    """Extract suppressions from a file's comments."""
    fs = FileSuppressions(path=path)
    for c in comments:
        for m in _SUPPRESS_RE.finditer(c.text):
            # Line offset inside multi-line /* */ comments.
            line = c.line + c.text[:m.start()].count("\n")
            rule = m.group(1)
            reason = (m.group(2) or "").strip()
            if rule not in known_rules:
                fs.problems.append(
                    (line, "bad-suppression",
                     "LINT-OK names unknown rule '%s' (known: %s)"
                     % (rule, ", ".join(sorted(known_rules)))))
                continue
            if not reason:
                fs.problems.append(
                    (line, "bad-suppression",
                     "LINT-OK(%s) has no reason; write "
                     "'LINT-OK(%s): why this is safe'"
                     % (rule, rule)))
                continue
            fs.entries.append(
                Suppression(rule=rule, reason=reason, line=line))
    return fs


def apply(fs, findings):
    """Filter `findings` [(line, rule, msg)] through `fs`, marking
    used suppressions. Returns the surviving findings."""
    out = []
    for line, rule, msg in findings:
        hit = None
        for s in fs.entries:
            if s.rule == rule and s.line in (line, line - 1):
                hit = s
                break
        if hit is not None:
            hit.used = True
        else:
            out.append((line, rule, msg))
    return out


def stale(fs):
    """[(line, rule, msg)] for unused suppressions + parse problems."""
    out = list(fs.problems)
    for s in fs.entries:
        if not s.used:
            out.append(
                (s.line, "stale-suppression",
                 "LINT-OK(%s) suppresses nothing here; delete it "
                 "(reason was: %s)" % (s.rule, s.reason)))
    return out
