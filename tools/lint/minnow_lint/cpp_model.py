"""Lightweight structural model of a C++ translation unit.

Built on the token stream from tokenizer.py, this recognizes the
subset of C++ structure the lint rules need:

  - class/struct definitions (including nesting; nested bodies are
    excluded from the parent's member scan),
  - data-member declarations with their type tokens, names and lines,
  - member function definitions (inline and out-of-line via the
    Class::method qualifier) with body token ranges,
  - free function definitions.

It is an *outline* parser: it tracks brace/paren nesting, constructor
initializer lists, enum bodies, and template headers, but it does not
attempt full declaration parsing. Rules are written to be robust to
the places where the outline is approximate (e.g. a member whose
default initializer is a lambda is skipped rather than misparsed).
"""

from dataclasses import dataclass, field


@dataclass
class Member:
    name: str
    type_tokens: list  # Token list (declaration minus name/init)
    line: int


@dataclass
class Method:
    name: str  # '~Foo' for destructors
    line: int
    body: list  # Token list of the body, without outer braces
    cls: str = ""  # owning class name ('' for free functions)
    header: list = field(default_factory=list)  # decl tokens before '{'


@dataclass
class ClassDef:
    name: str
    line: int
    members: list = field(default_factory=list)  # [Member]
    methods: list = field(default_factory=list)  # [Method]


@dataclass
class FileModel:
    path: str
    tokens: list
    comments: list
    classes: list = field(default_factory=list)  # [ClassDef]
    functions: list = field(default_factory=list)  # [Method]
    pp: list = field(default_factory=list)  # [PpLine] directives


_KEYWORD_NOT_NAME = {
    "public", "private", "protected", "virtual", "static",
    "constexpr", "const", "mutable", "inline", "explicit", "typename",
    "class", "struct", "friend", "using", "template", "operator",
    "noexcept", "override", "final", "default", "delete", "return",
}


def _match_brace(tokens, i):
    """tokens[i] is '{'; return index just past its matching '}'."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _match_paren(tokens, i):
    """tokens[i] is '('; return index just past its matching ')'."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _skip_template_args(tokens, i):
    """tokens[i] is '<'; return index just past the matching '>'.

    Balances '<'/'>' and skips over parenthesized regions (so a
    comparison inside a default template argument cannot derail the
    count). Gives up (returns i+1) if no balance is found within the
    statement - callers treat that as 'not a template'.
    """
    depth = 0
    n = len(tokens)
    j = i
    while j < n:
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t.text == "(":
                j = _match_paren(tokens, j)
                continue
            elif t.text in (";", "{", "}"):
                return i + 1  # not a template after all
        j += 1
    return i + 1


def _decl_name(decl_tokens):
    """Best-effort declared name(s) for a data-member declaration.

    Handles `T name;`, `T name = init;`, `T name{init};`,
    `T name[expr];`, and comma-separated declarator lists. Returns a
    list of (name, line).
    """
    names = []
    depth_angle = 0
    depth_par = 0
    prev_id = None
    i = 0
    n = len(decl_tokens)
    while i < n:
        t = decl_tokens[i]
        if t.kind == "punct":
            if t.text == "<":
                depth_angle += 1
            elif t.text == ">":
                depth_angle = max(0, depth_angle - 1)
            elif t.text in ("(", "["):
                depth_par += 1
            elif t.text in (")", "]"):
                depth_par -= 1
            elif depth_angle == 0 and depth_par == 0:
                if t.text in (",", "=", "{") and prev_id is not None:
                    names.append(prev_id)
                    prev_id = None
                    if t.text in ("=", "{"):
                        # Skip the initializer to the next top-level
                        # comma or the end.
                        if t.text == "{":
                            i = _match_brace(decl_tokens, i)
                            continue
                        while i < n:
                            u = decl_tokens[i]
                            if u.kind == "punct" and u.text == "(":
                                i = _match_paren(decl_tokens, i)
                                continue
                            if u.kind == "punct" and u.text == "{":
                                i = _match_brace(decl_tokens, i)
                                continue
                            if u.kind == "punct" and u.text == ",":
                                break
                            i += 1
                        continue
        elif t.kind == "id" and depth_angle == 0 and depth_par == 0:
            if t.text not in _KEYWORD_NOT_NAME:
                prev_id = (t.text, t.line)
        i += 1
    if prev_id is not None:
        names.append(prev_id)
    return names


class _Parser:
    def __init__(self, model):
        self.model = model
        self.toks = model.tokens

    def parse(self):
        self._scan_region(0, len(self.toks), cls=None)

    # -- region scanning ------------------------------------------------

    def _scan_region(self, i, end, cls):
        """Scan declarations in [i, end); cls is the enclosing
        ClassDef or None for namespace/file scope."""
        toks = self.toks
        decl_start = i
        while i < end:
            t = toks[i]
            if t.kind == "id" and t.text == "namespace" and cls is None:
                # namespace [a::b] { ... }  -> recurse transparently.
                j = i + 1
                while j < end and not (toks[j].kind == "punct" and
                                       toks[j].text in ("{", ";", "=")):
                    j += 1
                if j < end and toks[j].text == "{":
                    body_end = _match_brace(toks, j) - 1
                    self._scan_region(j + 1, body_end, cls=None)
                    i = body_end + 1
                elif j < end and toks[j].text == "=":
                    # namespace alias; skip to ';'.
                    while j < end and toks[j].text != ";":
                        j += 1
                    i = j + 1
                else:
                    i = j + 1
                decl_start = i
                continue

            if cls is not None and t.kind == "id" and \
                    t.text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].kind == "punct" and \
                    toks[i + 1].text == ":":
                # Access specifier: must not leak into the next
                # member's declaration tokens.
                i += 2
                decl_start = i
                continue

            if t.kind == "id" and t.text == "template":
                j = i + 1
                if j < end and toks[j].kind == "punct" and \
                        toks[j].text == "<":
                    j = _skip_template_args(toks, j)
                i = j
                continue  # decl_start keeps accumulating

            if t.kind == "id" and t.text == "enum":
                i = self._skip_enum(i, end)
                decl_start = i
                continue

            if t.kind == "id" and t.text in ("class", "struct") and \
                    not self._is_elaborated_use(i):
                nxt = self._parse_class(i, end, cls)
                if nxt is not None:
                    i = nxt
                    decl_start = i
                    continue
                # fall through: forward decl or elaborated type.

            if t.kind == "punct" and t.text == "{":
                # A brace inside a declaration: function body,
                # brace-initializer, or a stray block.
                if self._looks_like_function(decl_start, i):
                    name, line = self._function_name(decl_start, i)
                    body_end = _match_brace(toks, i)
                    body = toks[i + 1:body_end - 1]
                    self._record_function(name, line, body, cls,
                                          decl_start, i)
                    i = body_end
                    decl_start = i
                    continue
                # Brace initializer or block: skip it, keep the decl
                # accumulating so the ';' handler sees it.
                i = _match_brace(toks, i)
                continue

            if t.kind == "punct" and t.text == ";":
                if cls is not None and i > decl_start:
                    self._record_member(decl_start, i, cls)
                i += 1
                decl_start = i
                continue

            if t.kind == "punct" and t.text == "(":
                i = _match_paren(toks, i)
                # Constructor initializer list: ') : id(..) ... {'
                if i < end and toks[i].kind == "punct" and \
                        toks[i].text == ":" and \
                        self._looks_like_function(decl_start, i):
                    i = self._skip_ctor_init(i, end)
                continue

            i += 1

    def _is_elaborated_use(self, i):
        """True for `class X *p;`-style uses we should not treat as a
        definition opener: enum class handled separately; here we
        check the *previous* token for 'enum'."""
        if i > 0:
            p = self.toks[i - 1]
            if p.kind == "id" and p.text == "enum":
                return True
        return False

    def _skip_enum(self, i, end):
        """Skip an enum/enum-class definition or reference."""
        toks = self.toks
        j = i + 1
        while j < end and not (toks[j].kind == "punct" and
                               toks[j].text in ("{", ";")):
            j += 1
        if j < end and toks[j].text == "{":
            j = _match_brace(toks, j)
            # trailing ';'
            if j < end and toks[j].kind == "punct" and \
                    toks[j].text == ";":
                j += 1
        else:
            j = min(j + 1, end)
        return j

    def _parse_class(self, i, end, outer_cls):
        """toks[i] is class/struct. If a definition follows, record
        it (and recurse into its body); return the index past it.
        Return None for forward declarations / elaborated uses."""
        toks = self.toks
        j = i + 1
        # Skip attributes.
        while j < end and toks[j].kind == "punct" and \
                toks[j].text == "[":
            depth = 0
            while j < end:
                if toks[j].text == "[":
                    depth += 1
                elif toks[j].text == "]":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
        name = None
        if j < end and toks[j].kind == "id":
            name = toks[j].text
            line = toks[j].line
            j += 1
            if j < end and toks[j].kind == "punct" and \
                    toks[j].text == "<":
                j = _skip_template_args(toks, j)  # specialization
            # Out-of-line nested definition (`struct A::B { ... }`):
            # the class is the last qualifier, not the first.
            while j + 1 < end and toks[j].kind == "punct" and \
                    toks[j].text == "::" and toks[j + 1].kind == "id":
                name = toks[j + 1].text
                line = toks[j + 1].line
                j += 2
                if j < end and toks[j].kind == "punct" and \
                        toks[j].text == "<":
                    j = _skip_template_args(toks, j)
        else:
            line = toks[i].line
            name = "<anon>"
        # Scan to '{' (definition), ';' (forward decl) or something
        # else (elaborated use as a type).
        k = j
        while k < end:
            t = toks[k]
            if t.kind == "punct" and t.text == "{":
                break
            if t.kind == "punct" and t.text in (";", ")", ",", "=",
                                                "*", "&"):
                return None
            if t.kind == "punct" and t.text == "<":
                k = _skip_template_args(toks, k)
                continue
            k += 1
        if k >= end:
            return None
        cdef = ClassDef(name=name, line=line)
        self.model.classes.append(cdef)
        body_end = _match_brace(toks, k) - 1
        self._scan_region(k + 1, body_end, cls=cdef)
        # Consume trailing ';' if present.
        nxt = body_end + 1
        if nxt < end and toks[nxt].kind == "punct" and \
                toks[nxt].text == ";":
            nxt += 1
        return nxt

    def _skip_ctor_init(self, i, end):
        """toks[i] is the ':' starting a ctor initializer list;
        return the index of the body '{' (or end)."""
        toks = self.toks
        j = i + 1
        while j < end:
            t = toks[j]
            if t.kind == "punct" and t.text == "(":
                j = _match_paren(toks, j)
                continue
            if t.kind == "punct" and t.text == "{":
                # Either a brace-initializer `member{...}` (preceded
                # by an id or '>') followed by ',' or '{', or the
                # constructor body itself. Disambiguate: an init-list
                # brace directly follows an identifier/template close.
                prev = toks[j - 1]
                if prev.kind == "id" or (prev.kind == "punct" and
                                         prev.text == ">"):
                    j2 = _match_brace(toks, j)
                    if j2 < end and toks[j2].kind == "punct" and \
                            toks[j2].text == ",":
                        j = j2 + 1
                        continue
                    # followed by the body brace (or end).
                    return j2 if (j2 < end and toks[j2].text == "{") \
                        else j
                return j
            j += 1
        return end

    # -- classification helpers -----------------------------------------

    def _looks_like_function(self, decl_start, brace_i):
        """Does toks[decl_start:brace_i] look like a function header
        (has a top-level parameter list, no top-level '=')?"""
        toks = self.toks
        has_parens = False
        i = decl_start
        while i < brace_i:
            t = toks[i]
            if t.kind == "punct" and t.text == "(":
                has_parens = True
                i = _match_paren(toks, i)
                continue
            if t.kind == "punct" and t.text == "=":
                prev = toks[i - 1] if i > decl_start else None
                if not (prev and prev.kind == "id" and
                        prev.text == "operator"):
                    return False  # initializer, not a function
            if t.kind == "punct" and t.text == "<":
                i = _skip_template_args(toks, i)
                continue
            i += 1
        return has_parens

    def _function_name(self, decl_start, brace_i):
        """Name of the function whose header is
        toks[decl_start:brace_i]. For `A::B::name(...)` returns
        ('A::name' collapsed to class+name via the last qualifier)."""
        toks = self.toks
        # Find the '(' opening the parameter list: the last
        # top-level '(' before the first top-level ':' (a bare ':'
        # in a header starts a constructor initializer list; '::' is
        # a single distinct token, so it cannot confuse this).
        i = decl_start
        paren_at = None
        while i < brace_i:
            t = toks[i]
            if t.kind == "punct" and t.text == ":":
                break
            if t.kind == "punct" and t.text == "(":
                nxt = _match_paren(toks, i)
                paren_at = i
                i = nxt
                continue
            if t.kind == "punct" and t.text == "<":
                i = _skip_template_args(toks, i)
                continue
            i += 1
        if paren_at is None or paren_at == decl_start:
            return "<anon>", toks[decl_start].line
        # Walk back over the name: id, possibly '~id', possibly
        # qualified with Class::
        k = paren_at - 1
        if toks[k].kind == "punct" and toks[k].text == ">":
            # templated name `name<T>(...)`: back over the args.
            depth = 0
            while k > decl_start:
                if toks[k].text == ">":
                    depth += 1
                elif toks[k].text == "<":
                    depth -= 1
                    if depth == 0:
                        k -= 1
                        break
                k -= 1
        if toks[k].kind != "id":
            return "<anon>", toks[k].line
        name = toks[k].text
        line = toks[k].line
        if k > decl_start and toks[k - 1].kind == "punct" and \
                toks[k - 1].text == "~":
            name = "~" + name
            k -= 1
        cls_name = ""
        if k - 2 >= decl_start and toks[k - 1].kind == "punct" and \
                toks[k - 1].text == "::" and toks[k - 2].kind == "id":
            cls_name = toks[k - 2].text
        return (cls_name + "::" + name if cls_name else name), line

    def _record_function(self, qualname, line, body, cls,
                         decl_start, brace_i):
        header = self.toks[decl_start:brace_i]
        if "::" in qualname:
            cls_name, name = qualname.rsplit("::", 1)
        else:
            cls_name, name = ("", qualname)
        if cls is not None:
            m = Method(name=qualname, line=line, body=body,
                       cls=cls.name, header=header)
            cls.methods.append(m)
        elif cls_name:
            # Out-of-line member definition: attach to the class if
            # we saw its definition, else record as a free function
            # tagged with the class name (unit merging resolves it).
            m = Method(name=name, line=line, body=body, cls=cls_name,
                       header=header)
            for cdef in self.model.classes:
                if cdef.name == cls_name:
                    cdef.methods.append(m)
                    break
            else:
                self.model.functions.append(m)
        else:
            self.model.functions.append(
                Method(name=name, line=line, body=body, cls="",
                       header=header))

    def _record_member(self, decl_start, semi_i, cls):
        toks = self.toks
        decl = toks[decl_start:semi_i]
        if not decl:
            return
        # Skip access specifiers, using/friend/typedef declarations,
        # and pure-virtual or defaulted function declarations.
        first = decl[0]
        if first.kind == "id" and first.text in (
                "using", "friend", "typedef", "static_assert"):
            return
        if first.kind == "punct" and first.text == ":":
            return
        has_parens = any(t.kind == "punct" and t.text == "("
                         for t in decl)
        if has_parens:
            # Method declaration (no body) — record the name so rules
            # can see the interface, but not as a data member.
            return
        names = _decl_name(decl)
        for name, line in names:
            cls.members.append(
                Member(name=name, type_tokens=decl, line=line))


def build_model(path, tokens, comments, pp=None):
    """Parse tokens into a FileModel. Never raises on weird input —
    an outline that missed something simply yields fewer findings."""
    model = FileModel(path=path, tokens=tokens, comments=comments,
                      pp=list(pp) if pp else [])
    try:
        _Parser(model).parse()
    except RecursionError:  # pragma: no cover - safety net
        pass
    return model
