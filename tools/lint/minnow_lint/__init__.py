"""minnow-lint: in-tree static analysis for the Minnow simulator.

A libclang-free analyzer enforcing the project's determinism,
lifetime, and instrumentation invariants (see DESIGN.md section 5g).
It is built from a real C++ tokenizer (tools/lint/minnow_lint/
tokenizer.py) and a lightweight structural model (cpp_model.py) that
per-rule visitors walk; it is deliberately *not* a pile of regexes
over raw text, so string literals, comments, and nested class bodies
cannot confuse the rules.

Rules (stable identifiers, used in LINT-OK suppressions):

  determinism        D1: no wall-clock / ambient-entropy / pointer-
                     keyed-ordered-container use in src/.
  unordered-export   D2: no iteration over unordered containers in
                     functions that export JSON / dumps.
  coroutine-order    L1: timeline/stat bookkeeping members must be
                     declared before coroutine containers.
  stats-lifetime     L2: external StatsRegistry group registrations
                     need a removeGroup reachable from the dtor.
  daemon-accounting  E1: self-rearming EventQueue events must use the
                     daemon accounting API, never empty().
  trace-format       T1: DPRINTF/logging format strings must match
                     their argument counts.
  serializer-coverage C1: every member of a checkpointed class must
                     be serialized or declared transient.
  host-threading     P1: std::thread/mutex/atomic and other host
                     concurrency primitives only inside
                     sim/parallel/.

Meta findings: stale-suppression (a LINT-OK that suppressed nothing)
and bad-suppression (unknown rule or missing reason).
"""

__version__ = "1.0"

SCHEMA = "minnow-lint-1"
