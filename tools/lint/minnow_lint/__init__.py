"""minnow-lint: in-tree static analysis for the Minnow simulator.

A libclang-free analyzer enforcing the project's determinism,
lifetime, instrumentation, and architecture invariants (see DESIGN.md
sections 5g and 5l). It is built from a real C++ tokenizer
(tools/lint/minnow_lint/tokenizer.py), a lightweight structural model
(cpp_model.py) that per-rule visitors walk, and a whole-program
ProjectModel (project.py) — call graph, include graph, layer DAG —
that whole-program rules query; it is deliberately *not* a pile of
regexes over raw text, so string literals, comments, and nested class
bodies cannot confuse the rules.

Rules (stable identifiers, used in LINT-OK suppressions):

  determinism        D1: no wall-clock / ambient-entropy / pointer-
                     keyed-ordered-container use in src/.
  unordered-export   D2: no iteration over unordered containers in
                     functions that export JSON / dumps.
  coroutine-order    L1: timeline/stat bookkeeping members must be
                     declared before coroutine containers.
  stats-lifetime     L2: external StatsRegistry group registrations
                     need a removeGroup reachable from the dtor
                     (whole-program: follows helper chains).
  daemon-accounting  E1: self-rearming EventQueue events must use the
                     daemon accounting API, never empty()
                     (whole-program: re-arms N helpers deep count).
  trace-format       T1: DPRINTF/logging format strings must match
                     their argument counts.
  serializer-coverage S1: every member of a checkpointed class must
                     be serialized or declared transient.
  host-threading     P1: std::thread/mutex/atomic and other host
                     concurrency primitives only inside
                     sim/parallel/.
  coro-suspend-safety C1: no reference/pointer into a stack frame,
                     by-ref parameter, or by-ref lambda capture used
                     across a co_await suspension in CoTask bodies.
  determinism-taint  D3: values derived from hostNowNs()/D1 entropy
                     sources must not flow (<= 3 call-graph hops)
                     into schedule times, stats, checkpointed
                     members, or RNG seeds.
  layer-dag          A1: src/ includes must respect the layer DAG in
                     tools/lint/layers.toml; backward edges and
                     include cycles are findings.

Meta findings: stale-suppression (a LINT-OK that suppressed nothing)
and bad-suppression (unknown rule or missing reason).
"""

__version__ = "2.0"

SCHEMA = "minnow-lint-2"
