"""Driver: discover files, build models (optionally in a process
pool), assemble the ProjectModel, run per-unit and whole-program
rules, apply the allowlist and LINT-OK suppressions, and produce
findings.

Findings are 4-tuples (path, line, rule, message) with `path`
relative to the scan root, sorted by (path, line, rule) so output is
stable for golden-file diffing.
"""

import os

from . import SCHEMA, __version__
from .tokenizer import tokenize, TokenizeError
from .cpp_model import build_model
from .project import ProjectModel, load_layers, LayersError
from .rules import UNIT_RULES, PROJECT_RULES, RULE_IDS, META_RULE_IDS
from . import suppressions

_EXTS = (".hh", ".cc", ".h", ".cpp")

# The project-wide allowlist: (rule, path suffix, token). A finding
# of `rule` in a file whose path ends with the suffix is dropped when
# the token appears in its message. Deliberately tiny: the
# --host-profile self-profiler measures host wall time by design,
# and every host-time read in the tree is funneled through the single
# hostNowNs() in base/host_clock.cc so the exemption covers one
# symbol in one file. Grow this list only with a matching DESIGN.md
# 5g note.
DEFAULT_ALLOWLIST = [
    ("determinism", "base/host_clock.cc", "steady_clock"),
]


class LintError(Exception):
    """Fatal analyzer problem (unreadable file, tokenizer failure)."""


def discover(root, paths):
    """Expand `paths` (files or directories, relative to `root`)
    into a sorted list of source files relative to root."""
    out = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            out.append(os.path.relpath(full, root))
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith(_EXTS):
                        out.append(os.path.relpath(
                            os.path.join(dirpath, fn), root))
        else:
            raise LintError("no such file or directory: %s" % p)
    return sorted(set(out))


def _parse_one(args):
    """Tokenize + model one file. Top-level so a multiprocessing
    pool can pickle it; returns (rel, FileModel) or raises strings
    wrapped by the caller."""
    root, rel = args
    full = os.path.join(root, rel)
    try:
        with open(full, "r", encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
    except OSError as e:
        raise LintError("cannot read %s: %s" % (rel, e))
    try:
        tokens, comments, pp = tokenize(text, rel)
    except TokenizeError as e:
        raise LintError(str(e))
    return build_model(rel, tokens, comments, pp)


def _build_models(root, rel_files, jobs):
    if jobs > 1 and len(rel_files) > 4:
        import multiprocessing
        with multiprocessing.Pool(jobs) as pool:
            return pool.map(_parse_one,
                            [(root, rel) for rel in rel_files],
                            chunksize=8)
    return [_parse_one((root, rel)) for rel in rel_files]


def _units(models):
    """Group FileModels by path stem so foo.hh and foo.cc are
    analyzed together (out-of-line definitions see the class)."""
    by_stem = {}
    for m in models:
        stem = os.path.splitext(m.path)[0]
        by_stem.setdefault(stem, []).append(m)
    return [by_stem[s] for s in sorted(by_stem)]


def _allowlisted(finding, allowlist):
    path, _line, rule, msg = finding
    for arule, suffix, token in allowlist:
        if rule == arule and path.endswith(suffix) and token in msg:
            return True
    return False


def run(root, paths, allowlist=None, jobs=1):
    """Lint `paths` under `root`. Returns (findings, files_scanned,
    graph_summary).

    Raises LintError on unreadable input, tokenizer failure, or a
    malformed tools/lint/layers.toml — a config the analyzer cannot
    trust is a hard error, not a silent pass.
    """
    if allowlist is None:
        allowlist = DEFAULT_ALLOWLIST
    rel_files = discover(root, paths)
    models = _build_models(root, rel_files, jobs)
    file_comments = {m.path: m.comments for m in models}

    try:
        layers = load_layers(root)
    except LayersError as e:
        raise LintError(str(e))
    project = ProjectModel(models, layers)

    raw = []
    for unit in _units(models):
        for rule in UNIT_RULES:
            raw.extend(rule.check(unit))
    for rule in PROJECT_RULES:
        raw.extend(rule.check_project(project))

    raw = [f for f in raw if not _allowlisted(f, allowlist)]

    # Apply suppressions file by file; stale/bad suppressions are
    # findings in their own right.
    by_path = {}
    for path, line, rule, msg in raw:
        by_path.setdefault(path, []).append((line, rule, msg))
    known = set(RULE_IDS) | set(META_RULE_IDS)
    final = []
    for rel in rel_files:
        fs = suppressions.collect(rel, file_comments[rel], known)
        kept = suppressions.apply(fs, by_path.get(rel, []))
        kept.extend(suppressions.stale(fs))
        final.extend((rel, line, rule, msg)
                     for line, rule, msg in kept)

    final.sort(key=lambda f: (f[0], f[1], f[2], f[3]))
    return final, len(rel_files), project.summary()


def to_json(findings, files_scanned, root, graph):
    return {
        "schema": SCHEMA,
        "version": __version__,
        "root": root,
        "files_scanned": files_scanned,
        "count": len(findings),
        "graph": graph,
        "findings": [
            {"path": p, "line": l, "rule": r, "message": m}
            for p, l, r, m in findings
        ],
    }
