"""Shared token-scanning helpers used by the rule visitors."""


def match_paren(tokens, i):
    """tokens[i] is '('; index just past the matching ')'."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def calls(tokens, name):
    """Indices i where tokens[i] is identifier `name` followed by '('
    (a call or macro invocation)."""
    out = []
    for i in range(len(tokens) - 1):
        t = tokens[i]
        if t.kind == "id" and t.text == name and \
                tokens[i + 1].kind == "punct" and \
                tokens[i + 1].text == "(":
            # Exclude declarations/definitions: a preceding '.'/'->'
            # is definitely a call; a preceding type-ish id means a
            # declaration like `void name(...)`. Keep it simple: only
            # exclude when preceded by '~' (destructor decl).
            if i > 0 and tokens[i - 1].kind == "punct" and \
                    tokens[i - 1].text == "~":
                continue
            out.append(i)
    return out


def has_call(tokens, name):
    return bool(calls(tokens, name))


def receiver_chain(tokens, i):
    """For a call at index i (tokens[i] is the method name id),
    return the list of identifier texts forming the postfix receiver
    chain, outermost first.

    `machine_->stats.freshGroup(` at the `freshGroup` token returns
    ['machine_', 'stats']; a bare call returns []. `(*x).y.f(` gives
    up at the ')’ and returns what it saw (['y'])."""
    chain = []
    k = i - 1
    while k > 0:
        t = tokens[k]
        if t.kind == "punct" and t.text in (".", "->"):
            p = tokens[k - 1]
            if p.kind == "id":
                chain.append(p.text)
                k -= 2
                continue
            if p.kind == "punct" and p.text in (")", "]"):
                break  # complex receiver; stop with what we have
            break
        break
    chain.reverse()
    return chain


def split_args(tokens, open_paren):
    """tokens[open_paren] is '('; return (args, close_index) where
    args is a list of token sublists split at top-level commas.
    Tracks (), [], {} nesting (not <>, which is ambiguous)."""
    args = []
    cur = []
    depth = 0
    i = open_paren
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text in ("(", "[", "{"):
            depth += 1
            if depth > 1:
                cur.append(t)
            i += 1
            continue
        if t.kind == "punct" and t.text in (")", "]", "}"):
            depth -= 1
            if depth == 0:
                if cur:
                    args.append(cur)
                return args, i
            cur.append(t)
            i += 1
            continue
        if t.kind == "punct" and t.text == "," and depth == 1:
            args.append(cur)
            cur = []
            i += 1
            continue
        if depth >= 1:
            cur.append(t)
        i += 1
    return args, n


def string_value(tok):
    """Contents of a string-literal token (quotes stripped; raw
    strings unwrapped; escape sequences left as-is, which is fine
    for %-spec counting)."""
    s = tok.text
    if s.startswith('R"'):
        op = s.index("(")
        return s[op + 1:s.rindex(")")]
    return s[1:-1]


def type_mentions(type_tokens, names):
    """True if any token in a declaration's type matches one of
    `names` (a set of identifier texts)."""
    return any(t.kind == "id" and t.text in names
               for t in type_tokens)
