"""Command-line front end.

Usage:
    minnow-lint [--root DIR] [--json] [--jobs N]
                [--budget-seconds S] [PATH...]
    minnow-lint --list-rules

Paths default to `src`. Exit status: 0 = clean, 1 = findings
(including stale/bad suppressions), 2 = analyzer error (unreadable
input, malformed layers.toml, or a blown --budget-seconds gate).

The whole-program graph summary ("graph: N files, ...") always goes
to stderr in text mode so CI logs show at a glance whether the
ProjectModel's coverage regressed; --json carries the same numbers
in the `graph` block (schema minnow-lint-2).
"""

import argparse
import json
import sys
import time

from . import __version__
from .engine import run, to_json, LintError
from .rules import ALL_RULES, META_RULE_IDS


def _list_rules():
    width = max(len(r.RULE_ID) for r in ALL_RULES)
    for r in ALL_RULES:
        print("%-*s  %s" % (width, r.RULE_ID, r.DOC))
    for meta in META_RULE_IDS:
        print("%-*s  %s" % (width, meta,
                            "(meta) raised by the suppression "
                            "machinery itself"))


def _graph_line(graph):
    return ("graph: %d files, %d functions, %d call edges, "
            "%d include edges, %d layers (%d files layered)"
            % (graph["files"], graph["functions"],
               graph["call_edges"], graph["include_edges"],
               graph["layers"], graph["layered_files"]))


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="minnow-lint",
        description="Minnow in-tree static analysis "
                    "(determinism / lifetime / instrumentation / "
                    "architecture invariants; see DESIGN.md 5g, 5l)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint "
                         "(default: src)")
    ap.add_argument("--root", default=".",
                    help="repository root paths are relative to")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON on stdout "
                         "(schema minnow-lint-2)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parse files in an N-process pool "
                         "(default 1; rules still run serially)")
    ap.add_argument("--budget-seconds", type=float, default=None,
                    metavar="S",
                    help="fail (exit 2) if the whole pass takes "
                         "longer than S wall-clock seconds — the "
                         "ctest tier-1 time gate")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule ids and one-line docs, then "
                         "exit")
    ap.add_argument("--version", action="version",
                    version="minnow-lint " + __version__)
    args = ap.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    if args.jobs < 1:
        print("minnow-lint: error: --jobs must be >= 1",
              file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    t0 = time.monotonic()
    try:
        findings, files_scanned, graph = run(
            args.root, paths, jobs=args.jobs)
    except LintError as e:
        print("minnow-lint: error: %s" % e, file=sys.stderr)
        return 2
    elapsed = time.monotonic() - t0

    if args.json:
        json.dump(to_json(findings, files_scanned, args.root, graph),
                  sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for path, line, rule, msg in findings:
            print("%s:%d: [%s] %s" % (path, line, rule, msg))
        print("minnow-lint: %s" % _graph_line(graph),
              file=sys.stderr)
        print("minnow-lint: %d finding%s in %d file%s (%.2fs)"
              % (len(findings), "" if len(findings) == 1 else "s",
                 files_scanned, "" if files_scanned == 1 else "s",
                 elapsed),
              file=sys.stderr)

    if args.budget_seconds is not None and \
            elapsed > args.budget_seconds:
        print("minnow-lint: error: pass took %.2fs, over the "
              "%.0fs budget — profile the analyzer or raise the "
              "gate deliberately" % (elapsed, args.budget_seconds),
              file=sys.stderr)
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
