"""Command-line front end.

Usage:
    minnow-lint [--root DIR] [--json] [PATH...]
    minnow-lint --list-rules

Paths default to `src`. Exit status: 0 = clean, 1 = findings
(including stale/bad suppressions), 2 = analyzer error.
"""

import argparse
import json
import sys

from . import __version__
from .engine import run, to_json, LintError
from .rules import ALL_RULES, META_RULE_IDS


def _list_rules():
    width = max(len(r.RULE_ID) for r in ALL_RULES)
    for r in ALL_RULES:
        print("%-*s  %s" % (width, r.RULE_ID, r.DOC))
    for meta in META_RULE_IDS:
        print("%-*s  %s" % (width, meta,
                            "(meta) raised by the suppression "
                            "machinery itself"))


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="minnow-lint",
        description="Minnow in-tree static analysis "
                    "(determinism / lifetime / instrumentation "
                    "invariants; see DESIGN.md 5g)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint "
                         "(default: src)")
    ap.add_argument("--root", default=".",
                    help="repository root paths are relative to")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON on stdout")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule ids and one-line docs, then "
                         "exit")
    ap.add_argument("--version", action="version",
                    version="minnow-lint " + __version__)
    args = ap.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    paths = args.paths or ["src"]
    try:
        findings, files_scanned = run(args.root, paths)
    except LintError as e:
        print("minnow-lint: error: %s" % e, file=sys.stderr)
        return 2

    if args.json:
        json.dump(to_json(findings, files_scanned, args.root),
                  sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for path, line, rule, msg in findings:
            print("%s:%d: [%s] %s" % (path, line, rule, msg))
        print("minnow-lint: %d finding%s in %d file%s"
              % (len(findings), "" if len(findings) == 1 else "s",
                 files_scanned, "" if files_scanned == 1 else "s"),
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
